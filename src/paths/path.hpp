// Combinational paths and transition path delay faults (dissertation §2.2).
//
// A path runs from a launch point (primary input or state variable) through
// combinational gates to a capture point (primary output or flip-flop data
// input). A transition path delay fault (TPDF) is a path plus a transition at
// its source; it is detected only by a test that detects every individual
// transition fault along the path, where the transition at node i follows the
// source transition through the inversion parity of the gates traversed.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace fbt {

struct Path {
  std::vector<NodeId> nodes;  ///< source first, capture point last

  std::size_t length() const { return nodes.empty() ? 0 : nodes.size() - 1; }
};

/// A transition path delay fault: a path and the transition at its source.
struct PathDelayFault {
  Path path;
  bool rising = true;  ///< transition at the source
};

/// The set TR(fp): one transition fault per node of the path, polarity
/// following the inversion parity (kNot/kNand/kNor/kXnor invert).
std::vector<TransitionFault> transition_faults_along(const Netlist& netlist,
                                                     const PathDelayFault& f);

/// "a-c-e-g (rising)" style display name.
std::string path_fault_name(const Netlist& netlist, const PathDelayFault& f);

/// True when `node` can end a path (primary output or flip-flop D input).
bool is_capture_point(const Netlist& netlist, NodeId node);

/// Enumerates every path in the circuit (both transitions are emitted by the
/// caller). Stops after max_paths paths; returns whether enumeration was
/// complete.
struct PathEnumeration {
  std::vector<Path> paths;
  bool complete = true;
};
PathEnumeration enumerate_all_paths(const Netlist& netlist,
                                    std::size_t max_paths);

/// Yields paths in non-increasing length (unit gate delay), lazily, for
/// circuits whose full path set is too large (§2.4, §3.1).
class LongestPathEnumerator {
 public:
  explicit LongestPathEnumerator(const Netlist& netlist);

  /// Next-longest path, or an empty path when exhausted / capped.
  Path next();

  bool exhausted() const { return heap_.empty(); }

 private:
  struct Item {
    std::vector<NodeId> nodes;
    unsigned bound = 0;     ///< length so far + best completion
    bool complete = false;  ///< ends at a capture point, no further extension

    bool operator<(const Item& other) const { return bound < other.bound; }
  };

  const Netlist* netlist_;
  std::vector<unsigned> max_remaining_;  ///< longest edge count to any capture
  std::vector<std::uint8_t> reaches_capture_;
  std::vector<Item> heap_;  // std::push_heap/pop_heap managed
};

}  // namespace fbt
