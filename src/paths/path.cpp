#include "paths/path.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

std::vector<TransitionFault> transition_faults_along(const Netlist& netlist,
                                                     const PathDelayFault& f) {
  require(!f.path.nodes.empty(), "transition_faults_along", "empty path");
  std::vector<TransitionFault> faults;
  faults.reserve(f.path.nodes.size());
  bool polarity = f.rising;
  for (std::size_t i = 0; i < f.path.nodes.size(); ++i) {
    if (i > 0 && inverts(netlist.type(f.path.nodes[i]))) polarity = !polarity;
    faults.push_back({f.path.nodes[i], polarity});
  }
  return faults;
}

std::string path_fault_name(const Netlist& netlist, const PathDelayFault& f) {
  std::string name;
  for (std::size_t i = 0; i < f.path.nodes.size(); ++i) {
    if (i) name += '-';
    name += netlist.gate(f.path.nodes[i]).name;
  }
  name += f.rising ? " (rising)" : " (falling)";
  return name;
}

bool is_capture_point(const Netlist& netlist, NodeId node) {
  if (netlist.is_output(node)) return true;
  for (const NodeId out : netlist.fanouts(node)) {
    if (netlist.type(out) == GateType::kDff) return true;
  }
  return false;
}

PathEnumeration enumerate_all_paths(const Netlist& netlist,
                                    std::size_t max_paths) {
  PathEnumeration result;
  std::vector<NodeId> stack;

  // Iterative DFS with an explicit frame stack (path prefix + fanout cursor).
  struct Frame {
    NodeId node;
    std::size_t next_fanout = 0;
  };
  std::vector<Frame> frames;

  std::vector<NodeId> sources;
  for (const NodeId pi : netlist.inputs()) sources.push_back(pi);
  for (const NodeId ff : netlist.flops()) sources.push_back(ff);

  for (const NodeId src : sources) {
    frames.clear();
    frames.push_back({src, 0});
    while (!frames.empty()) {
      const std::size_t ti = frames.size() - 1;  // frames may reallocate below
      if (frames[ti].next_fanout == 0 &&
          is_capture_point(netlist, frames[ti].node)) {
        Path path;
        for (const Frame& fr : frames) path.nodes.push_back(fr.node);
        result.paths.push_back(std::move(path));
        if (result.paths.size() >= max_paths) {
          result.complete = false;
          return result;
        }
      }
      const auto& fanouts = netlist.fanouts(frames[ti].node);
      bool descended = false;
      while (frames[ti].next_fanout < fanouts.size()) {
        const NodeId next = fanouts[frames[ti].next_fanout++];
        if (!is_combinational(netlist.type(next))) continue;  // flop D edge
        frames.push_back({next, 0});
        descended = true;
        break;
      }
      if (!descended) frames.pop_back();
    }
  }
  return result;
}

LongestPathEnumerator::LongestPathEnumerator(const Netlist& netlist)
    : netlist_(&netlist) {
  // Reverse DP: longest edge count from each node to any capture point.
  max_remaining_.assign(netlist.size(), 0);
  reaches_capture_.assign(netlist.size(), 0);
  const auto& order = netlist.eval_order();
  // Process in reverse topological order; sources handled afterwards.
  auto relax = [&](NodeId id) {
    if (is_capture_point(netlist, id)) reaches_capture_[id] = 1;
    for (const NodeId out : netlist.fanouts(id)) {
      if (!is_combinational(netlist.type(out))) continue;
      if (reaches_capture_[out]) {
        reaches_capture_[id] = 1;
        max_remaining_[id] =
            std::max(max_remaining_[id], max_remaining_[out] + 1);
      }
    }
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) relax(*it);
  for (const NodeId pi : netlist.inputs()) relax(pi);
  for (const NodeId ff : netlist.flops()) relax(ff);

  for (const NodeId pi : netlist.inputs()) {
    if (reaches_capture_[pi]) {
      heap_.push_back({{pi}, max_remaining_[pi], false});
    }
  }
  for (const NodeId ff : netlist.flops()) {
    if (reaches_capture_[ff]) {
      heap_.push_back({{ff}, max_remaining_[ff], false});
    }
  }
  std::make_heap(heap_.begin(), heap_.end());
}

Path LongestPathEnumerator::next() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Item item = std::move(heap_.back());
    heap_.pop_back();
    if (item.complete) {
      return Path{std::move(item.nodes)};
    }
    const NodeId last = item.nodes.back();
    const auto length = static_cast<unsigned>(item.nodes.size() - 1);
    // Ending here is one completion option.
    if (is_capture_point(*netlist_, last)) {
      heap_.push_back({item.nodes, length, true});
      std::push_heap(heap_.begin(), heap_.end());
    }
    for (const NodeId out : netlist_->fanouts(last)) {
      if (!is_combinational(netlist_->type(out))) continue;
      if (!reaches_capture_[out]) continue;
      Item extended;
      extended.nodes = item.nodes;
      extended.nodes.push_back(out);
      extended.bound = length + 1 + max_remaining_[out];
      heap_.push_back(std::move(extended));
      std::push_heap(heap_.begin(), heap_.end());
    }
  }
  return {};
}

}  // namespace fbt
