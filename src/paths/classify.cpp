#include "paths/classify.hpp"

#include "fault/fault_sim.hpp"
#include "sim/seqsim.hpp"
#include "util/require.hpp"

namespace fbt {

const char* path_test_class_name(PathTestClass c) {
  switch (c) {
    case PathTestClass::kNotATest: return "not a test";
    case PathTestClass::kWeakNonRobust: return "weak non-robust";
    case PathTestClass::kStrongNonRobust: return "strong non-robust";
    case PathTestClass::kRobust: return "robust";
  }
  return "?";
}

PathTestClass classify_path_test(const Netlist& netlist,
                                 const BroadsideTest& test,
                                 const PathDelayFault& fault) {
  require(!fault.path.nodes.empty(), "classify_path_test", "empty path");

  // Settle both patterns.
  SeqSim sim1(netlist);
  if (!test.scan_state.empty()) {
    sim1.load_state(test.scan_state);
  } else {
    sim1.load_reset_state();
  }
  sim1.step(test.v1);
  std::vector<std::uint8_t> s2 = test.state2_override.empty()
                                     ? sim1.state()
                                     : test.state2_override;
  SeqSim sim2(netlist);
  sim2.load_state(s2);
  sim2.step(test.v2);

  auto v1 = [&](NodeId n) { return sim1.value(n); };
  auto v2 = [&](NodeId n) { return sim2.value(n); };

  // Launch condition at the source.
  const NodeId src = fault.path.nodes.front();
  const std::uint8_t init = fault.rising ? 0 : 1;
  if (v1(src) != init || v2(src) == init) return PathTestClass::kNotATest;

  // Off-path second-pattern sensitization (weak non-robust baseline) and the
  // robust side conditions, gate by gate.
  bool robust_sides = true;
  const auto& nodes = fault.path.nodes;
  const auto expected = transition_faults_along(netlist, fault);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const Gate& g = netlist.gate(nodes[i]);
    const NodeId on_path = nodes[i - 1];
    const bool has_ctrl = has_controlling_value(g.type);
    const std::uint8_t ctrl =
        has_ctrl ? (controlling_value(g.type) ? 1 : 0) : 0;
    // Is the on-path input's transition controlling -> non-controlling?
    const bool to_noncontrolling =
        has_ctrl && v1(on_path) == ctrl && v2(on_path) != ctrl;
    for (const NodeId fi : g.fanins) {
      if (fi == on_path) continue;
      if (has_ctrl) {
        if (v2(fi) == ctrl) return PathTestClass::kNotATest;
        if (to_noncontrolling && v1(fi) == ctrl) robust_sides = false;
      } else {
        // XOR family: off-path inputs must be steady in every class.
        if (v1(fi) != v2(fi)) return PathTestClass::kNotATest;
      }
    }
  }

  // Strong non-robust: the matching transition appears on every on-path line.
  bool strong = true;
  for (const TransitionFault& tf : expected) {
    const std::uint8_t want1 = tf.rising ? 0 : 1;
    if (v1(tf.line) != want1 || v2(tf.line) == want1) {
      strong = false;
      break;
    }
  }
  if (!strong) return PathTestClass::kWeakNonRobust;
  return robust_sides ? PathTestClass::kRobust
                      : PathTestClass::kStrongNonRobust;
}

}  // namespace fbt
