#include "paths/segments.hpp"

#include "util/require.hpp"

namespace fbt {
namespace {

bool extend(const Netlist& netlist, std::vector<NodeId>& nodes,
            std::size_t target_nodes, SegmentEnumeration& out,
            std::size_t max_segments) {
  if (nodes.size() == target_nodes) {
    out.segments.push_back(Path{nodes});
    if (out.segments.size() >= max_segments) {
      out.complete = false;
      return false;
    }
    return true;
  }
  for (const NodeId next : netlist.fanouts(nodes.back())) {
    if (!is_combinational(netlist.type(next))) continue;
    nodes.push_back(next);
    const bool keep_going =
        extend(netlist, nodes, target_nodes, out, max_segments);
    nodes.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

SegmentEnumeration enumerate_segments(const Netlist& netlist,
                                      std::size_t length,
                                      std::size_t max_segments) {
  require(length >= 1, "enumerate_segments", "segment length must be >= 1");
  require(netlist.finalized(), "enumerate_segments",
          "netlist must be finalized");
  SegmentEnumeration out;
  std::vector<NodeId> nodes;
  for (NodeId start = 0; start < netlist.size(); ++start) {
    const GateType t = netlist.type(start);
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    nodes.assign(1, start);
    if (!extend(netlist, nodes, length + 1, out, max_segments)) break;
  }
  return out;
}

}  // namespace fbt
