// Segment delay faults (§2.1, refs [24][25]): transition path delay faults
// on subpaths of a bounded length. A segment fault's detection criterion is
// the same as a whole-path TPDF's -- every transition fault along the
// segment detected by one test -- so the Chapter-2 engine processes them
// unchanged; only the enumeration differs (fixed-length walks from every
// line instead of source-to-capture paths).
#pragma once

#include <cstddef>
#include <vector>

#include "paths/path.hpp"

namespace fbt {

/// All segments of exactly `length` edges (length+1 nodes), starting at any
/// line, capped at `max_segments`. Segments of a DAG are enumerated in
/// start-node order.
struct SegmentEnumeration {
  std::vector<Path> segments;
  bool complete = true;
};
SegmentEnumeration enumerate_segments(const Netlist& netlist,
                                      std::size_t length,
                                      std::size_t max_segments);

}  // namespace fbt
