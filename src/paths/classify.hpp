// Path-delay-fault test classification (dissertation §1.2, refs [5]-[7]).
//
// Given a two-pattern test and a path delay fault, classifies the test as
// robust / strong non-robust / weak non-robust / not a test, under zero-delay
// two-pattern semantics:
//
//  * weak non-robust:   the source transition is launched and every off-path
//                       input of every on-path gate holds a non-controlling
//                       value under the second pattern;
//  * strong non-robust: weak, and every on-path line carries the transition
//                       matching the source transition through the path's
//                       inversion parity (exactly the condition under which a
//                       test for the transition path delay fault exists,
//                       §2.2);
//  * robust:            strong, and for every on-path gate whose on-path
//                       input transitions from the controlling to the
//                       non-controlling value, the off-path inputs hold
//                       steady non-controlling values under BOTH patterns
//                       (so no off-path glitch can mask the propagation).
//
// XOR/XNOR gates have no controlling value: their off-path inputs must be
// steady (equal in both patterns) for every class.
#pragma once

#include <cstdint>

#include "fault/broadside_test.hpp"
#include "paths/path.hpp"

namespace fbt {

enum class PathTestClass : std::uint8_t {
  kNotATest,
  kWeakNonRobust,
  kStrongNonRobust,
  kRobust,
};

const char* path_test_class_name(PathTestClass c);

PathTestClass classify_path_test(const Netlist& netlist,
                                 const BroadsideTest& test,
                                 const PathDelayFault& fault);

}  // namespace fbt
