#include "atpg/necessary.hpp"

#include <algorithm>

namespace fbt {
namespace {

/// Seeds the implicator with every on-path transition-fault condition.
/// Returns false on conflict.
bool seed_path_conditions(const Netlist& netlist, const PathDelayFault& fault,
                          Implicator& imp) {
  for (const TransitionFault& tr : transition_faults_along(netlist, fault)) {
    const Val3 init = tr.rising ? Val3::k0 : Val3::k1;
    const Val3 fin = tr.rising ? Val3::k1 : Val3::k0;
    if (!imp.assign({Frame::k1, tr.line}, init)) return false;
    if (!imp.assign({Frame::k2, tr.line}, fin)) return false;
  }
  return true;
}

/// §3.2 step 3: every off-path input of every gate along the path must take
/// its gate's non-controlling value under the second pattern.
bool seed_propagation_conditions(const Netlist& netlist,
                                 const PathDelayFault& fault,
                                 Implicator& imp) {
  const auto& nodes = fault.path.nodes;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const Gate& g = netlist.gate(nodes[i]);
    if (!has_controlling_value(g.type)) continue;  // XOR/NOT/BUF side inputs free
    const bool nc = !controlling_value(g.type);
    for (const NodeId fi : g.fanins) {
      if (fi == nodes[i - 1]) continue;  // the on-path input
      if (!imp.assign({Frame::k2, fi}, nc ? Val3::k1 : Val3::k0)) return false;
    }
  }
  return true;
}

NecessaryAnalysis finish(const Implicator& imp) {
  NecessaryAnalysis out;
  out.input_assignments = imp.specified_inputs();
  out.detection_conditions = imp.specified();
  return out;
}

NecessaryAnalysis undetectable_result() {
  NecessaryAnalysis out;
  out.undetectable = true;
  return out;
}

}  // namespace

namespace {

/// §3.2 step 4 on an already-seeded implicator: probe every unspecified free
/// input with both values; both failing proves undetectability, one failing
/// forces the other value. Returns false on a proof of undetectability.
bool probe_inputs(const Netlist& netlist, Implicator& imp,
                  std::size_t probe_rounds) {
  std::vector<FrameNode> inputs;
  for (int f = 0; f < 2; ++f) {
    const auto frame = static_cast<Frame>(f);
    for (const NodeId pi : netlist.inputs()) inputs.push_back({frame, pi});
  }
  for (const NodeId ff : netlist.flops()) inputs.push_back({Frame::k1, ff});

  for (std::size_t round = 0; round < probe_rounds; ++round) {
    bool added = false;
    for (const FrameNode fn : inputs) {
      if (imp.value(fn) != Val3::kX) continue;
      bool ok[2];
      for (int v = 0; v <= 1; ++v) {
        const Implicator::Checkpoint mark = imp.checkpoint();
        ok[v] = imp.assign(fn, v ? Val3::k1 : Val3::k0);
        imp.rollback(mark);
      }
      if (!ok[0] && !ok[1]) return false;
      if (ok[0] != ok[1]) {
        if (!imp.assign(fn, ok[1] ? Val3::k1 : Val3::k0)) return false;
        added = true;
      }
    }
    if (!added) break;
  }
  return true;
}

}  // namespace

NecessaryAnalysis necessary_for_path(const Netlist& netlist,
                                     const PathDelayFault& fault,
                                     std::size_t probe_rounds) {
  Implicator imp(netlist);
  if (!seed_path_conditions(netlist, fault, imp)) return undetectable_result();
  if (probe_rounds > 0 && !probe_inputs(netlist, imp, probe_rounds)) {
    return undetectable_result();
  }
  return finish(imp);
}

NecessaryAnalysis input_necessary_assignments(const Netlist& netlist,
                                              const PathDelayFault& fault,
                                              std::size_t probe_rounds) {
  Implicator imp(netlist);
  // Steps 1-2: per-fault conditions and their implications.
  if (!seed_path_conditions(netlist, fault, imp)) return undetectable_result();
  // Step 3: off-path propagation conditions.
  if (!seed_propagation_conditions(netlist, fault, imp)) {
    return undetectable_result();
  }

  // Step 4: probe every unspecified free input with both values; if both
  // conflict the fault is undetectable, if exactly one conflicts the other
  // value is a new input necessary assignment. Repeated until a round adds
  // nothing (bounded by probe_rounds).
  if (probe_rounds > 0 && !probe_inputs(netlist, imp, probe_rounds)) {
    return undetectable_result();
  }
  return finish(imp);
}

}  // namespace fbt
