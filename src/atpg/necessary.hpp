// Necessary assignments for transition (path delay) faults (dissertation
// §2.3.2 and §3.2).
//
// A transition fault v->v' on line g must have g = v under the first pattern
// and g = v' under the second; the direct forward/backward implications of
// those literals are necessary assignments too. For a transition path delay
// fault, the necessary assignments of all its transition faults are merged:
// a conflict proves the fault undetectable without any search. The four-step
// procedure of §3.2 additionally adds the off-path non-controlling
// propagation conditions (step 3) and probes unspecified inputs with both
// values (step 4) to harvest extra input necessary assignments.
#pragma once

#include <optional>
#include <vector>

#include "atpg/implicator.hpp"
#include "fault/fault.hpp"
#include "paths/path.hpp"

namespace fbt {

struct NecessaryAnalysis {
  bool undetectable = false;
  /// Input necessary assignments InNecAssign(fp): specified free inputs.
  std::vector<Assignment> input_assignments;
  /// All implied line values DetCon(fp) (both frames).
  std::vector<Assignment> detection_conditions;
};

/// §2.3.2: merge the necessary assignments of every transition fault along
/// the path; undetectable on conflict. `probe_rounds` optionally adds the
/// §3.2 step-4 both-value probing of unspecified inputs, which is sound for
/// transition path delay faults too (it implies only from the merged
/// per-fault conditions, never from propagation assumptions) and converts
/// many would-be search aborts into cheap undetectability proofs.
NecessaryAnalysis necessary_for_path(const Netlist& netlist,
                                     const PathDelayFault& fault,
                                     std::size_t probe_rounds = 0);

/// §3.2 steps 2-4: like necessary_for_path, plus the off-path non-controlling
/// conditions under the second pattern (step 3) and both-value probing of
/// unspecified inputs (step 4). `probe_inputs` bounds step 4's work; 0 skips
/// probing.
NecessaryAnalysis input_necessary_assignments(const Netlist& netlist,
                                              const PathDelayFault& fault,
                                              std::size_t probe_rounds = 1);

}  // namespace fbt
