#include "atpg/tpdf_engine.hpp"

#include <algorithm>

#include "fault/fault_sim.hpp"
#include "util/timer.hpp"

namespace fbt {

TpdfEngine::TpdfEngine(const Netlist& netlist, const TpdfEngineConfig& config)
    : netlist_(&netlist),
      config_(config),
      rng_(config.rng_seed, 0x5851f42d4c957f2dULL) {
  tf_status_.assign(2 * netlist.size(), TfStatus::kUnknown);
  PodemConfig cfg = config_.tf_atpg;
  cfg.rng_seed = rng_.next64();
  tf_engine_ = std::make_unique<PodemEngine>(netlist, cfg);
}

void TpdfEngine::run_transition_fault_atpg(
    const std::vector<std::vector<TransitionFault>>& per_path,
    TpdfRunReport& report) {
  Timer timer;
  for (const auto& trs : per_path) {
    for (const TransitionFault& tf : trs) {
      if (tf_status(tf) != TfStatus::kUnknown) continue;
      const PodemOutcome outcome = tf_engine_->generate(tf);
      switch (outcome.status) {
        case PodemStatus::kDetected:
          tf_status(tf) = TfStatus::kHasTest;
          tf_tests_.push_back(tf_engine_->extract_test());
          break;
        case PodemStatus::kUndetectable:
          tf_status(tf) = TfStatus::kUndetectable;
          break;
        case PodemStatus::kAborted:
          tf_status(tf) = TfStatus::kAborted;
          break;
      }
    }
  }
  report.seconds_tf_atpg = timer.seconds();
}

bool TpdfEngine::heuristic_attempts(const std::vector<TransitionFault>& trs,
                                    const std::vector<Assignment>& preassign,
                                    TpdfRunReport& report) {
  // Fig. 2.2 bookkeeping.
  std::vector<std::size_t> failures(trs.size(), 0);
  std::vector<std::uint8_t> used(trs.size(), 0);

  PodemConfig cfg = config_.heuristic;
  cfg.rng_seed = rng_.next64();
  PodemEngine engine(*netlist_, cfg);

  for (std::size_t attempt = 0; attempt < config_.heuristic_attempts;
       ++attempt) {
    // Primary target: random among unused faults with the highest failure
    // count.
    std::size_t best_failures = 0;
    std::vector<std::size_t> candidates;
    for (std::size_t k = 0; k < trs.size(); ++k) {
      if (used[k]) continue;
      if (failures[k] > best_failures) {
        best_failures = failures[k];
        candidates.clear();
      }
      if (failures[k] == best_failures) candidates.push_back(k);
    }
    if (candidates.empty()) return false;  // every fault is marked used
    const std::size_t primary =
        candidates[rng_.below(static_cast<std::uint32_t>(candidates.size()))];

    engine.reset();
    if (!engine.preassign(preassign)) return false;
    if (engine.target(trs[primary], /*backtrack_into_earlier=*/true).status !=
        PodemStatus::kDetected) {
      // The primary could not be detected even with full freedom: give up on
      // this fault for the heuristic phase (Fig. 2.2 "stop attempting").
      return false;
    }

    // Secondary targets in decreasing failure count (random tie-break).
    std::vector<std::size_t> order;
    for (std::size_t k = 0; k < trs.size(); ++k) {
      if (k != primary) order.push_back(k);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return failures[a] > failures[b];
    });

    bool all_detected = true;
    for (std::size_t s = 0; s < order.size(); ++s) {
      const std::size_t k = order[s];
      const PodemOutcome out =
          engine.target(trs[k], /*backtrack_into_earlier=*/false);
      if (out.status == PodemStatus::kDetected) continue;
      ++failures[k];
      if (s == 0) used[primary] = 1;  // first secondary failed: primary "used"
      all_detected = false;
      break;
    }
    if (all_detected) {
      report.tests.push_back(engine.extract_test());
      return true;
    }
  }
  return false;
}

TpdfRunReport TpdfEngine::run(const std::vector<PathDelayFault>& faults) {
  TpdfRunReport report;
  report.num_faults = faults.size();
  report.per_fault.assign(faults.size(), {});

  // Phase 1: transition-fault ATPG, lazily over the lines this batch's paths
  // touch (earlier batches' results are cached and their tests retained).
  std::vector<std::vector<TransitionFault>> trs(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    trs[i] = transition_faults_along(*netlist_, faults[i]);
  }
  run_transition_fault_atpg(trs, report);
  report.tests = tf_tests_;

  // Phase 2: preprocessing.
  std::vector<std::vector<Assignment>> stored_inputs(faults.size());
  std::vector<std::size_t> pending;
  {
    Timer timer;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const bool any_undet =
          std::any_of(trs[i].begin(), trs[i].end(),
                      [&](const TransitionFault& tf) {
                        return tf_undetectable(tf);
                      });
      if (any_undet) {
        report.per_fault[i] = {TpdfStatus::kUndetectable,
                               TpdfPhase::kPreprocessing};
        continue;
      }
      NecessaryAnalysis na =
          necessary_for_path(*netlist_, faults[i], /*probe_rounds=*/1);
      if (na.undetectable) {
        report.per_fault[i] = {TpdfStatus::kUndetectable,
                               TpdfPhase::kPreprocessing};
        continue;
      }
      stored_inputs[i] = std::move(na.input_assignments);
      pending.push_back(i);
    }
    report.seconds_preprocessing = timer.seconds();
  }
  report.detectable_upper_bound = pending.size();

  // Phase 3: fault simulation of the transition-fault tests under the
  // pending TPDFs. A test detects the TPDF iff it detects every transition
  // fault along the path.
  {
    Timer timer;
    if (!tf_tests_.empty() && !pending.empty()) {
      // Unique transition faults across all pending paths.
      std::vector<TransitionFault> unique_list;
      {
        std::vector<std::uint8_t> seen(2 * netlist_->size(), 0);
        for (const std::size_t i : pending) {
          for (const TransitionFault& tf : trs[i]) {
            auto& flag = seen[2 * tf.line + (tf.rising ? 0 : 1)];
            if (!flag) {
              flag = 1;
              unique_list.push_back(tf);
            }
          }
        }
      }
      const TransitionFaultList unique_tfs =
          TransitionFaultList::from_faults(std::move(unique_list));
      BroadsideFaultSim fsim(*netlist_);
      const auto matrix = fsim.detection_matrix(tf_tests_, unique_tfs);
      std::vector<std::size_t> index(2 * netlist_->size(),
                                     TransitionFaultList::npos);
      for (std::size_t k = 0; k < unique_tfs.size(); ++k) {
        const TransitionFault& tf = unique_tfs.fault(k);
        index[2 * tf.line + (tf.rising ? 0 : 1)] = k;
      }
      std::vector<std::size_t> still_pending;
      const std::size_t words = (tf_tests_.size() + 63) / 64;
      std::vector<std::uint64_t> acc(words);
      for (const std::size_t i : pending) {
        std::fill(acc.begin(), acc.end(), ~0ULL);
        for (const TransitionFault& tf : trs[i]) {
          const auto& row = matrix[index[2 * tf.line + (tf.rising ? 0 : 1)]];
          for (std::size_t w = 0; w < words; ++w) acc[w] &= row[w];
        }
        const bool hit = std::any_of(acc.begin(), acc.end(),
                                     [](std::uint64_t w) { return w != 0; });
        if (hit) {
          report.per_fault[i] = {TpdfStatus::kDetected, TpdfPhase::kFaultSim};
          ++report.detected_fsim;
        } else {
          still_pending.push_back(i);
        }
      }
      pending = std::move(still_pending);
    }
    report.seconds_fsim = timer.seconds();
  }

  // Phase 4: dynamic-compaction heuristic.
  {
    Timer timer;
    std::vector<std::size_t> still_pending;
    for (const std::size_t i : pending) {
      if (heuristic_attempts(trs[i], stored_inputs[i], report)) {
        report.per_fault[i] = {TpdfStatus::kDetected, TpdfPhase::kHeuristic};
        ++report.detected_heuristic;
      } else {
        still_pending.push_back(i);
      }
    }
    pending = std::move(still_pending);
    report.seconds_heuristic = timer.seconds();
  }

  // Phase 5: complete branch-and-bound.
  {
    Timer timer;
    PodemConfig cfg = config_.branch_and_bound;
    cfg.rng_seed = rng_.next64();
    PodemEngine engine(*netlist_, cfg);
    for (const std::size_t i : pending) {
      engine.reset();
      if (!engine.preassign(stored_inputs[i])) {
        report.per_fault[i] = {TpdfStatus::kUndetectable,
                               TpdfPhase::kBranchBound};
        continue;
      }
      const PodemOutcome out =
          engine.solve(trs[i], /*backtrack_into_earlier=*/true);
      switch (out.status) {
        case PodemStatus::kDetected:
          report.per_fault[i] = {TpdfStatus::kDetected,
                                 TpdfPhase::kBranchBound};
          ++report.detected_bnb;
          report.tests.push_back(engine.extract_test());
          break;
        case PodemStatus::kUndetectable:
          report.per_fault[i] = {TpdfStatus::kUndetectable,
                                 TpdfPhase::kBranchBound};
          break;
        case PodemStatus::kAborted:
          report.per_fault[i] = {TpdfStatus::kAborted, TpdfPhase::kBranchBound};
          break;
      }
    }
    report.seconds_bnb = timer.seconds();
  }

  for (const TpdfFaultReport& r : report.per_fault) {
    switch (r.status) {
      case TpdfStatus::kDetected: ++report.detected; break;
      case TpdfStatus::kUndetectable: ++report.undetectable; break;
      case TpdfStatus::kAborted: ++report.aborted; break;
    }
  }
  return report;
}

}  // namespace fbt
