#include "atpg/implicator.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

Implicator::Implicator(const Netlist& netlist) : netlist_(&netlist) {
  require(netlist.finalized(), "Implicator", "netlist must be finalized");
  values_.assign(2 * netlist.size(), Val3::kX);
}

void Implicator::clear() {
  std::fill(values_.begin(), values_.end(), Val3::kX);
  trail_.clear();
  worklist_.clear();
}

bool Implicator::set_value(std::size_t idx, Val3 v) {
  if (v == Val3::kX) return true;
  if (values_[idx] == v) return true;
  if (values_[idx] != Val3::kX) return false;  // conflict
  values_[idx] = v;
  trail_.push_back(idx);
  worklist_.push_back(idx);
  return true;
}

void Implicator::rollback(Checkpoint mark) {
  require(mark <= trail_.size(), "Implicator::rollback", "bad checkpoint");
  while (trail_.size() > mark) {
    values_[trail_.back()] = Val3::kX;
    trail_.pop_back();
  }
  worklist_.clear();
}

bool Implicator::imply_gate(Frame frame, NodeId gate) {
  const Gate& g = netlist_->gate(gate);
  const std::size_t out_idx = index({frame, gate});

  // Forward: evaluate from inputs (indexed into this frame's value plane).
  {
    const Val3* plane =
        values_.data() + static_cast<std::size_t>(frame) * netlist_->size();
    const Val3 computed =
        eval_gate3_indexed(g.type, g.fanins.data(), g.fanins.size(), plane);
    if (!set_value(out_idx, computed)) return false;
  }

  // Backward: force inputs from a known output.
  const Val3 out = values_[out_idx];
  if (out == Val3::kX) return true;
  const bool out1 = out == Val3::k1;

  switch (g.type) {
    case GateType::kBuf:
      return set_value(index({frame, g.fanins[0]}), out);
    case GateType::kNot:
      return set_value(index({frame, g.fanins[0]}), not3(out));
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: {
      const bool c = controlling_value(g.type);       // controlling input value
      const bool inv = inverts(g.type);
      const bool all_nc_out = !c != inv;              // output when no input = c
      if (out1 == all_nc_out) {
        // Every input must be non-controlling.
        for (const NodeId f : g.fanins) {
          if (!set_value(index({frame, f}), c ? Val3::k0 : Val3::k1)) {
            return false;
          }
        }
      } else {
        // At least one input is controlling: force it when unique.
        std::size_t unknown = 0;
        NodeId candidate = kNoNode;
        for (const NodeId f : g.fanins) {
          const Val3 v = values_[index({frame, f})];
          if (v == Val3::kX) {
            ++unknown;
            candidate = f;
          } else if ((v == Val3::k1) == c) {
            return true;  // already justified by a controlling input
          }
        }
        if (unknown == 1) {
          return set_value(index({frame, candidate}),
                           c ? Val3::k1 : Val3::k0);
        }
      }
      return true;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::size_t unknown = 0;
      NodeId candidate = kNoNode;
      bool parity = g.type == GateType::kXnor;  // fold output inversion
      for (const NodeId f : g.fanins) {
        const Val3 v = values_[index({frame, f})];
        if (v == Val3::kX) {
          ++unknown;
          candidate = f;
        } else {
          parity ^= (v == Val3::k1);
        }
      }
      if (unknown == 1) {
        const bool needed = parity != out1;
        return set_value(index({frame, candidate}),
                         needed ? Val3::k1 : Val3::k0);
      }
      return true;
    }
    default:
      return true;
  }
}

bool Implicator::imply_linkage(NodeId flop) {
  const std::size_t q2 = index({Frame::k2, flop});
  const std::size_t d1 = index({Frame::k1, netlist_->dff_input(flop)});
  if (values_[q2] != Val3::kX && !set_value(d1, values_[q2])) return false;
  if (values_[d1] != Val3::kX && !set_value(q2, values_[d1])) return false;
  return true;
}

bool Implicator::propagate() {
  while (!worklist_.empty()) {
    const std::size_t idx = worklist_.back();
    worklist_.pop_back();
    const FrameNode fn = coord(idx);
    const Gate& g = netlist_->gate(fn.node);

    // Backward within the node's own definition.
    if (is_combinational(g.type)) {
      if (!imply_gate(fn.frame, fn.node)) return false;
    }
    // Linkage when a frame-2 state variable became known.
    if (g.type == GateType::kDff && fn.frame == Frame::k2) {
      if (!imply_linkage(fn.node)) return false;
    }
    // Fanouts: forward/backward through driven gates; linkage through driven
    // flip-flop D pins (frame 1 only -- the frame-2 capture is past the test).
    for (const NodeId out : netlist_->fanouts(fn.node)) {
      if (netlist_->type(out) == GateType::kDff) {
        if (fn.frame == Frame::k1 && !imply_linkage(out)) return false;
      } else if (!imply_gate(fn.frame, out)) {
        return false;
      }
    }
  }
  return true;
}

bool Implicator::assign(FrameNode fn, Val3 value) {
  require(value != Val3::kX, "Implicator::assign", "cannot assign X");
  if (!set_value(index(fn), value)) return false;
  return propagate();
}

bool Implicator::assign_all(std::span<const Assignment> batch) {
  for (const Assignment& a : batch) {
    if (!assign(a)) return false;
  }
  return true;
}

std::vector<Assignment> Implicator::specified() const {
  std::vector<Assignment> result;
  for (std::size_t idx = 0; idx < values_.size(); ++idx) {
    if (values_[idx] == Val3::kX) continue;
    result.push_back({coord(idx), values_[idx] == Val3::k1});
  }
  return result;
}

std::vector<Assignment> Implicator::specified_inputs() const {
  std::vector<Assignment> result;
  for (std::size_t idx = 0; idx < values_.size(); ++idx) {
    if (values_[idx] == Val3::kX) continue;
    const FrameNode fn = coord(idx);
    if (!is_free_input(*netlist_, fn)) continue;
    result.push_back({fn, values_[idx] == Val3::k1});
  }
  return result;
}

}  // namespace fbt
