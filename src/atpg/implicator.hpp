// Two-frame three-valued implication engine.
//
// Maintains a value per (frame, node) and propagates direct implications to a
// fixpoint: forward gate evaluation, backward forcing (an AND output at 1
// forces all inputs to 1; at 0 with one unresolved input forces that input to
// 0; BUF/NOT bidirectional; XOR/XNOR resolve when one operand is missing),
// and the broadside frame linkage value2[ff] == value1[D(ff)]. Used for the
// necessary-assignment computations of §2.3.2 and §3.2 and as the consistency
// oracle of the branch-and-bound procedure.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "atpg/two_frame.hpp"
#include "netlist/netlist.hpp"
#include "sim/value.hpp"

namespace fbt {

class Implicator {
 public:
  explicit Implicator(const Netlist& netlist);

  /// Resets every value to X.
  void clear();

  Val3 value(FrameNode fn) const { return values_[index(fn)]; }

  /// Asserts an assignment and propagates. Returns false on conflict (the
  /// engine's state is then inconsistent; clear() or restore a checkpoint
  /// before reuse).
  bool assign(FrameNode fn, Val3 value);
  bool assign(const Assignment& a) {
    return assign(a.where, a.value ? Val3::k1 : Val3::k0);
  }

  /// Asserts a batch; false if any conflict arises.
  bool assign_all(std::span<const Assignment> batch);

  /// All currently specified values as assignments.
  std::vector<Assignment> specified() const;

  /// Specified values restricted to free inputs (PI1, PI2, PPI1) --
  /// the "input necessary assignments" of §3.2 when the engine was seeded
  /// with a fault's detection conditions.
  std::vector<Assignment> specified_inputs() const;

  /// Checkpoint/rollback for trial implications (§3.2 step 4).
  using Checkpoint = std::size_t;
  Checkpoint checkpoint() const { return trail_.size(); }
  void rollback(Checkpoint mark);

 private:
  std::size_t index(FrameNode fn) const {
    return static_cast<std::size_t>(fn.frame) * netlist_->size() + fn.node;
  }
  FrameNode coord(std::size_t idx) const {
    return FrameNode{idx < netlist_->size() ? Frame::k1 : Frame::k2,
                     static_cast<NodeId>(idx % netlist_->size())};
  }

  bool set_value(std::size_t idx, Val3 v);
  bool propagate();
  bool imply_gate(Frame frame, NodeId gate);
  bool imply_linkage(NodeId flop);

  const Netlist* netlist_;
  std::vector<Val3> values_;           // 2 * size
  std::vector<std::size_t> trail_;     // indices set, in order
  std::vector<std::size_t> worklist_;  // indices with fresh values
};

}  // namespace fbt
