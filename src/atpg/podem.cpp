#include "atpg/podem.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

PodemEngine::PodemEngine(const Netlist& netlist, const PodemConfig& config)
    : netlist_(&netlist),
      flat_(netlist),
      config_(config),
      rng_(config.rng_seed, 0x2545f4914f6cdd1dULL) {
  require(netlist.finalized(), "PodemEngine", "netlist must be finalized");
  input_val_.assign(2 * netlist.size(), Val3::kX);
  good_.assign(2 * netlist.size(), Val3::kX);
  faulty_scratch_.assign(netlist.size(), Val3::kX);
}

void PodemEngine::reset() {
  std::fill(input_val_.begin(), input_val_.end(), Val3::kX);
  decisions_.clear();
  fixed_.clear();
}

bool PodemEngine::preassign(std::span<const Assignment> assignments) {
  for (const Assignment& a : assignments) {
    require(is_free_input(*netlist_, a.where), "PodemEngine::preassign",
            "pre-assignments must be on free inputs");
    const Val3 v = a.value ? Val3::k1 : Val3::k0;
    Val3& slot = input_val_[idx(a.where)];
    if (slot != Val3::kX && slot != v) return false;
    slot = v;
    fixed_.push_back(a);
  }
  return true;
}

void PodemEngine::simulate() {
  const Netlist& nl = *netlist_;
  const NodeId* ids = flat_.fanin_ids();
  for (int f = 0; f < 2; ++f) {
    const auto frame = static_cast<Frame>(f);
    Val3* vals = good_.data() + static_cast<std::size_t>(frame) * nl.size();
    // Sources.
    for (const NodeId pi : nl.inputs()) {
      vals[pi] = input_val_[idx({frame, pi})];
    }
    for (const NodeId ff : nl.flops()) {
      if (frame == Frame::k1) {
        vals[ff] = input_val_[idx({frame, ff})];
      } else {
        vals[ff] = good_[idx({Frame::k1, nl.dff_input(ff)})];
      }
    }
    for (const NodeId id : flat_.const0_nodes()) vals[id] = Val3::k0;
    for (const NodeId id : flat_.const1_nodes()) vals[id] = Val3::k1;
    // Gates.
    for (const FlatFanins::Entry& e : flat_.entries()) {
      vals[e.node] = eval_gate3_indexed(e.type, ids + e.first, e.count, vals);
    }
  }
}

void PodemEngine::simulate_faulty(const TransitionFault& fault,
                                  std::vector<Val3>& out) const {
  const Netlist& nl = *netlist_;
  out.assign(nl.size(), Val3::kX);
  const Val3 forced = fault.rising ? Val3::k0 : Val3::k1;
  // Frame-2 sources (the faulty circuit shares frame 1 with the good one).
  for (const NodeId pi : nl.inputs()) out[pi] = good_[idx({Frame::k2, pi})];
  for (const NodeId ff : nl.flops()) out[ff] = good_[idx({Frame::k2, ff})];
  for (const NodeId id : flat_.const0_nodes()) out[id] = Val3::k0;
  for (const NodeId id : flat_.const1_nodes()) out[id] = Val3::k1;
  if (!is_combinational(nl.type(fault.line))) out[fault.line] = forced;
  const NodeId* ids = flat_.fanin_ids();
  Val3* vals = out.data();
  for (const FlatFanins::Entry& e : flat_.entries()) {
    if (e.node == fault.line) {
      vals[e.node] = forced;
      continue;
    }
    vals[e.node] = eval_gate3_indexed(e.type, ids + e.first, e.count, vals);
  }
}

PodemEngine::GoalState PodemEngine::goal_state(
    const TransitionFault& fault, const std::vector<Val3>& faulty) const {
  const Val3 init = fault.rising ? Val3::k0 : Val3::k1;
  const Val3 launch = good_[idx({Frame::k1, fault.line})];
  if (launch != Val3::kX && launch != init) return GoalState::kImpossible;

  bool any_binary_diff = false;
  bool any_maybe_diff = false;
  auto inspect = [&](NodeId obs) {
    const Val3 g = good_[idx({Frame::k2, obs})];
    const Val3 f = faulty[obs];
    if (g != Val3::kX && f != Val3::kX) {
      if (g != f) {
        any_binary_diff = true;
        any_maybe_diff = true;
      }
    } else {
      any_maybe_diff = true;
    }
  };
  for (const NodeId po : netlist_->outputs()) inspect(po);
  for (const NodeId ff : netlist_->flops()) inspect(netlist_->dff_input(ff));

  if (launch == init && any_binary_diff) return GoalState::kDetected;
  if (!any_maybe_diff) return GoalState::kImpossible;
  return GoalState::kPending;
}

std::pair<FrameNode, Val3> PodemEngine::backtrace(FrameNode node, Val3 want) {
  const Netlist& nl = *netlist_;
  for (std::size_t guard = 0; guard < 4 * nl.size() + 8; ++guard) {
    if (is_free_input(nl, node)) return {node, want};
    const GateType type = nl.type(node.node);
    const auto fanins = nl.fanins(node.node);
    if (type == GateType::kDff) {
      // Frame-2 state variable: justified through the frame-1 next state.
      node = {Frame::k1, nl.dff_input(node.node)};
      continue;
    }
    if (type == GateType::kConst0 || type == GateType::kConst1) {
      return {{Frame::k1, kNoNode}, want};  // cannot justify through constants
    }
    // Choose an unassigned fanin to continue through.
    NodeId chosen = kNoNode;
    std::size_t nx = 0;
    for (const NodeId fi : fanins) {
      if (good_[idx({node.frame, fi})] == Val3::kX) {
        ++nx;
        if (chosen == kNoNode || rng_.chance(1, static_cast<std::uint32_t>(nx))) {
          chosen = fi;
        }
      }
    }
    if (chosen == kNoNode) return {{Frame::k1, kNoNode}, want};

    switch (type) {
      case GateType::kBuf:
        break;
      case GateType::kNot:
        want = not3(want);
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        // With the output inversion folded away, either one controlling input
        // suffices (drive `chosen` controlling) or all inputs must be
        // non-controlling -- in both cases the needed input value equals the
        // folded output value.
        const bool core_want = (want == Val3::k1) != inverts(type);
        want = core_want ? Val3::k1 : Val3::k0;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity = type == GateType::kXnor;
        for (const NodeId fi : fanins) {
          if (fi == chosen) continue;
          const Val3 v = good_[idx({node.frame, fi})];
          if (v == Val3::k1) parity = !parity;  // X treated as 0 heuristically
        }
        const bool need = (want == Val3::k1) != parity;
        want = need ? Val3::k1 : Val3::k0;
        break;
      }
      default:
        return {{Frame::k1, kNoNode}, want};
    }
    node = {node.frame, chosen};
  }
  return {{Frame::k1, kNoNode}, want};
}

std::pair<FrameNode, Val3> PodemEngine::pick_objective(
    const TransitionFault& fault, const std::vector<Val3>& faulty) {
  const Netlist& nl = *netlist_;
  const Val3 init = fault.rising ? Val3::k0 : Val3::k1;
  const Val3 final_v = fault.rising ? Val3::k1 : Val3::k0;

  if (good_[idx({Frame::k1, fault.line})] == Val3::kX) {
    return backtrace({Frame::k1, fault.line}, init);
  }
  if (good_[idx({Frame::k2, fault.line})] == Val3::kX) {
    return backtrace({Frame::k2, fault.line}, final_v);
  }

  // Propagation: find a frame-2 D-frontier gate (output unknown, some fanin
  // carrying a binary good/faulty difference) and drive an unknown side input
  // non-controlling.
  for (const NodeId id : nl.eval_order()) {
    if (good_[idx({Frame::k2, id})] != Val3::kX) continue;
    const auto fanins = nl.fanins(id);
    bool carries_diff = false;
    for (const NodeId fi : fanins) {
      const Val3 gv = good_[idx({Frame::k2, fi})];
      const Val3 fv = faulty[fi];
      if (gv != Val3::kX && fv != Val3::kX && gv != fv) {
        carries_diff = true;
        break;
      }
    }
    if (!carries_diff) continue;
    const GateType type = nl.type(id);
    for (const NodeId fi : fanins) {
      if (good_[idx({Frame::k2, fi})] != Val3::kX) continue;
      Val3 want = Val3::k0;
      if (has_controlling_value(type)) {
        want = controlling_value(type) ? Val3::k0 : Val3::k1;
      }
      return backtrace({Frame::k2, fi}, want);
    }
  }

  // Fallback: assign any free unknown input (keeps the search complete).
  for (int f = 0; f < 2; ++f) {
    const auto frame = static_cast<Frame>(f);
    for (const NodeId pi : nl.inputs()) {
      if (input_val_[idx({frame, pi})] == Val3::kX) {
        return {{frame, pi}, rng_.chance(1, 2) ? Val3::k1 : Val3::k0};
      }
    }
  }
  for (const NodeId ff : nl.flops()) {
    if (input_val_[idx({Frame::k1, ff})] == Val3::kX) {
      return {{Frame::k1, ff}, rng_.chance(1, 2) ? Val3::k1 : Val3::k0};
    }
  }
  return {{Frame::k1, kNoNode}, Val3::k0};
}

PodemOutcome PodemEngine::solve(std::span<const TransitionFault> goals,
                                bool backtrack_into_earlier) {
  require(!goals.empty(), "PodemEngine::solve", "need at least one goal");
  FBT_OBS_COUNTER_ADD("atpg.podem_solves_started", 1);
  const std::size_t floor = decisions_.size();
  Timer timer;
  PodemOutcome outcome;
  std::size_t decisions_made = 0;
  const auto record_outcome = [&outcome, &decisions_made]() {
    FBT_OBS_COUNTER_ADD("atpg.podem_backtracks", outcome.backtracks);
    FBT_OBS_COUNTER_ADD("atpg.podem_decisions_made", decisions_made);
    if (outcome.status == PodemStatus::kAborted) {
      FBT_OBS_COUNTER_ADD("atpg.podem_solves_aborted", 1);
    }
  };

  std::vector<std::vector<Val3>> faulty(goals.size());
  // Detection is stable under *added* assignments, so a goal detected at
  // decision depth d stays detected until the search backtracks below d;
  // caching this avoids one faulty-circuit simulation per settled goal per
  // iteration.
  constexpr std::size_t kNotDetected = static_cast<std::size_t>(-1);
  std::vector<std::size_t> detected_depth(goals.size(), kNotDetected);
  auto invalidate_below = [&](std::size_t depth) {
    for (std::size_t& d : detected_depth) {
      if (d != kNotDetected && d > depth) d = kNotDetected;
    }
  };

  auto unwind_to_floor = [&]() {
    while (decisions_.size() > floor) {
      input_val_[idx(decisions_.back().input)] = Val3::kX;
      decisions_.pop_back();
    }
  };

  for (;;) {
    if (outcome.backtracks > config_.backtrack_limit ||
        timer.seconds() > config_.time_limit_seconds) {
      unwind_to_floor();
      outcome.status = PodemStatus::kAborted;
      record_outcome();
      return outcome;
    }

    simulate();
    std::size_t pending = goals.size();  // index of first pending goal
    bool impossible = false;
    bool all_detected = true;
    for (std::size_t k = 0; k < goals.size(); ++k) {
      if (detected_depth[k] != kNotDetected) continue;  // cached
      simulate_faulty(goals[k], faulty[k]);
      const GoalState state = goal_state(goals[k], faulty[k]);
      if (state == GoalState::kImpossible) {
        impossible = true;
        all_detected = false;
        break;
      }
      if (state == GoalState::kDetected) {
        detected_depth[k] = decisions_.size();
        continue;
      }
      all_detected = false;
      if (pending == goals.size()) pending = k;
    }

    if (!impossible && all_detected) {
      outcome.status = PodemStatus::kDetected;
      record_outcome();
      return outcome;
    }

    if (impossible || pending == goals.size()) {
      // Backtrack: flip the deepest unflipped decision above the floor.
      bool flipped = false;
      while (decisions_.size() > (backtrack_into_earlier ? 0 : floor)) {
        Decision& d = decisions_.back();
        if (d.flipped) {
          input_val_[idx(d.input)] = Val3::kX;
          decisions_.pop_back();
          continue;
        }
        d.value = not3(d.value);
        d.flipped = true;
        input_val_[idx(d.input)] = d.value;
        ++outcome.backtracks;
        flipped = true;
        invalidate_below(decisions_.size() - 1);
        break;
      }
      if (!flipped) {
        unwind_to_floor();
        outcome.status = PodemStatus::kUndetectable;
        record_outcome();
        return outcome;
      }
      continue;
    }

    // Decide: advance the first pending goal.
    const auto [input, value] = pick_objective(goals[pending], faulty[pending]);
    if (input.node == kNoNode) {
      // No way to advance this goal: treat like a conflict.
      bool flipped = false;
      while (decisions_.size() > (backtrack_into_earlier ? 0 : floor)) {
        Decision& d = decisions_.back();
        if (d.flipped) {
          input_val_[idx(d.input)] = Val3::kX;
          decisions_.pop_back();
          continue;
        }
        d.value = not3(d.value);
        d.flipped = true;
        input_val_[idx(d.input)] = d.value;
        ++outcome.backtracks;
        flipped = true;
        invalidate_below(decisions_.size() - 1);
        break;
      }
      if (!flipped) {
        unwind_to_floor();
        outcome.status = PodemStatus::kUndetectable;
        record_outcome();
        return outcome;
      }
      continue;
    }
    require(input_val_[idx(input)] == Val3::kX, "PodemEngine::solve",
            "internal: objective chose an assigned input");
    ++decisions_made;
    decisions_.push_back({input, value, false});
    input_val_[idx(input)] = value;
  }
}

BroadsideTest PodemEngine::extract_test() {
  simulate();
  BroadsideTest test;
  const Netlist& nl = *netlist_;
  auto fill = [&](Val3 v) -> std::uint8_t {
    if (v == Val3::kX) return rng_.chance(1, 2) ? 1 : 0;
    return v == Val3::k1 ? 1 : 0;
  };
  test.scan_state.reserve(nl.num_flops());
  for (const NodeId ff : nl.flops()) {
    test.scan_state.push_back(fill(input_val_[idx({Frame::k1, ff})]));
  }
  test.v1.reserve(nl.num_inputs());
  test.v2.reserve(nl.num_inputs());
  for (const NodeId pi : nl.inputs()) {
    test.v1.push_back(fill(input_val_[idx({Frame::k1, pi})]));
    test.v2.push_back(fill(input_val_[idx({Frame::k2, pi})]));
  }
  return test;
}

}  // namespace fbt
