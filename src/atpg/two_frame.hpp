// Two-time-frame view of a scan circuit under a broadside test.
//
// Frame 1 is the circuit under <s1, v1>; frame 2 under <s2, v2> with the
// linkage s2 = next-state(frame 1): the frame-2 value of a flip-flop equals
// the frame-1 value of its data input. Assignable inputs of the combined
// model are the frame-1 primary inputs, the frame-2 primary inputs, and the
// frame-1 state variables (the scan-in state s1). Frame-2 state variables are
// NOT free (dissertation §3.2).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace fbt {

/// Frame index of a two-frame literal.
enum class Frame : std::uint8_t { k1 = 0, k2 = 1 };

/// A (frame, node) coordinate in the two-frame model.
struct FrameNode {
  Frame frame = Frame::k1;
  NodeId node = kNoNode;

  bool operator==(const FrameNode&) const = default;
};

/// An assignment q[i] = a in the notation of §3.2.
struct Assignment {
  FrameNode where;
  bool value = false;

  bool operator==(const Assignment&) const = default;
};

/// True when `node` is a free input of the two-frame model in `frame`:
/// primary inputs in both frames, state variables only in frame 1.
inline bool is_free_input(const Netlist& netlist, FrameNode fn) {
  const GateType t = netlist.type(fn.node);
  if (t == GateType::kInput) return true;
  if (t == GateType::kDff) return fn.frame == Frame::k1;
  return false;
}

}  // namespace fbt
