// PODEM-style deterministic broadside test generation over two time frames.
//
// Decisions are made only on the free inputs of the two-frame model (PI1,
// PI2, PPI1); after every decision the engine re-derives all values by
// three-valued simulation plus, per goal fault, a faulty frame-2 simulation
// with the fault site forced to its stuck-at-initial value. A goal fault is
// *detected* when its launch condition holds (binary initial value on the
// site in frame 1) and some observation point has a binary good/faulty
// difference; it is *impossible* when the launch condition is violated or no
// observation point can still differ. The same engine serves:
//
//  * single transition faults (§2.3.1),
//  * the dynamic-compaction heuristic (§2.3.4) -- goals targeted one at a
//    time with backtracking confined to decisions made for the current goal,
//  * the complete branch-and-bound procedure (§2.3.5) -- one goal set, full
//    backtracking across goals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/two_frame.hpp"
#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"
#include "netlist/flat_fanins.hpp"
#include "sim/value.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fbt {

struct PodemConfig {
  std::size_t backtrack_limit = 4000;  ///< per generate / target call
  double time_limit_seconds = 5.0;
  std::uint64_t rng_seed = 1;
};

enum class PodemStatus : std::uint8_t { kDetected, kUndetectable, kAborted };

struct PodemOutcome {
  PodemStatus status = PodemStatus::kAborted;
  std::size_t backtracks = 0;
};

class PodemEngine {
 public:
  PodemEngine(const Netlist& netlist, const PodemConfig& config);

  /// Clears all assignments and goals.
  void reset();

  /// Adds fixed pre-assignments (e.g. stored input necessary assignments,
  /// §2.3.4/§2.3.5). Returns false when they conflict with current values.
  bool preassign(std::span<const Assignment> assignments);

  /// Solves for the simultaneous detection of every fault in `goals` on top
  /// of the current assignment. When `backtrack_into_earlier` is false the
  /// search never flips decisions that existed before this call (heuristic
  /// mode, §2.3.4), and kUndetectable then only means "failed under the
  /// current prefix"; with true it is a complete branch-and-bound (§2.3.5)
  /// and kUndetectable is a proof (relative to the pre-assignments).
  PodemOutcome solve(std::span<const TransitionFault> goals,
                     bool backtrack_into_earlier);

  /// Targets a single fault on top of the current assignment.
  PodemOutcome target(const TransitionFault& fault,
                      bool backtrack_into_earlier) {
    return solve(std::span(&fault, 1), backtrack_into_earlier);
  }

  /// Convenience: fresh single-fault generation with full backtracking.
  PodemOutcome generate(const TransitionFault& fault) {
    reset();
    return target(fault, /*backtrack_into_earlier=*/true);
  }

  /// Extracts a broadside test from the current assignment, filling
  /// unassigned inputs pseudo-randomly. Every goal detected so far remains
  /// detected under any fill (detection requires binary differences only).
  BroadsideTest extract_test();

  /// Current number of decisions on the stack (used by callers to track
  /// which decisions belong to which goal).
  std::size_t decision_depth() const { return decisions_.size(); }

 private:
  struct Decision {
    FrameNode input;
    Val3 value = Val3::kX;
    bool flipped = false;
  };

  enum class GoalState : std::uint8_t { kDetected, kImpossible, kPending };

  std::size_t idx(FrameNode fn) const {
    return static_cast<std::size_t>(fn.frame) * netlist_->size() + fn.node;
  }

  void simulate();
  GoalState goal_state(const TransitionFault& fault,
                       const std::vector<Val3>& faulty) const;
  /// Simulates frame 2 with `fault`'s site forced and returns the values.
  void simulate_faulty(const TransitionFault& fault,
                       std::vector<Val3>& out) const;

  /// Picks (input, value) advancing the goal; kNoNode input when stuck.
  std::pair<FrameNode, Val3> pick_objective(const TransitionFault& fault,
                                            const std::vector<Val3>& faulty);
  std::pair<FrameNode, Val3> backtrace(FrameNode node, Val3 want);

  const Netlist* netlist_;
  FlatFanins flat_;
  PodemConfig config_;
  Pcg32 rng_;

  std::vector<Val3> input_val_;  ///< free-input assignments (2 * size)
  std::vector<Val3> good_;       ///< simulated values (2 * size)
  std::vector<Val3> faulty_scratch_;
  std::vector<Decision> decisions_;
  std::vector<Assignment> fixed_;  ///< preassignments
};

}  // namespace fbt
