// Deterministic broadside test generation for transition path delay faults
// (dissertation Chapter 2).
//
// Five sub-procedures, applied in order of increasing cost:
//   1. deterministic ATPG for single transition faults (tests + proven
//      undetectable transition faults),
//   2. preprocessing: a TPDF is undetectable when a transition fault on its
//      path is undetectable or the merged necessary assignments conflict,
//   3. fault simulation of the transition-fault test set under TPDFs,
//   4. a dynamic-compaction-style heuristic that targets the path's
//      transition faults one after another (failure counters, primary /
//      secondary targets, "used" marking; Fig. 2.2),
//   5. a complete branch-and-bound over all the path's transition faults
//      simultaneously (Fig. 2.3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "atpg/necessary.hpp"
#include "atpg/podem.hpp"
#include "fault/broadside_test.hpp"
#include "paths/path.hpp"

namespace fbt {

enum class TpdfPhase : std::uint8_t {
  kNone,          ///< not resolved
  kPreprocessing, ///< proven undetectable before any search
  kFaultSim,      ///< detected by a transition-fault test
  kHeuristic,     ///< detected by the dynamic-compaction heuristic
  kBranchBound,   ///< resolved by branch-and-bound (detected or undetectable)
};

enum class TpdfStatus : std::uint8_t { kDetected, kUndetectable, kAborted };

struct TpdfFaultReport {
  TpdfStatus status = TpdfStatus::kAborted;
  TpdfPhase phase = TpdfPhase::kNone;
};

struct TpdfEngineConfig {
  // Per-call PODEM budgets (the dissertation's are 1 min for the heuristic
  // and 2 min for branch-and-bound per fault; scaled down here -- aborted
  // counts shrink if these are raised).
  PodemConfig tf_atpg{.backtrack_limit = 256, .time_limit_seconds = 0.05};
  PodemConfig heuristic{.backtrack_limit = 400, .time_limit_seconds = 0.05};
  PodemConfig branch_and_bound{.backtrack_limit = 4000,
                               .time_limit_seconds = 0.4};
  std::size_t heuristic_attempts = 3;  ///< passes of Fig. 2.2 per fault
  std::uint64_t rng_seed = 1;
};

struct TpdfRunReport {
  std::size_t num_faults = 0;
  std::size_t detected = 0;
  std::size_t undetectable = 0;
  std::size_t aborted = 0;
  /// Upper bound on detectable faults after preprocessing (Table 2.3 col 2).
  std::size_t detectable_upper_bound = 0;
  std::size_t detected_fsim = 0;
  std::size_t detected_heuristic = 0;
  std::size_t detected_bnb = 0;
  double seconds_tf_atpg = 0;
  double seconds_preprocessing = 0;
  double seconds_fsim = 0;
  double seconds_heuristic = 0;
  double seconds_bnb = 0;
  std::vector<TpdfFaultReport> per_fault;
  TestSet tests;  ///< transition-fault tests + TPDF tests found
};

class TpdfEngine {
 public:
  TpdfEngine(const Netlist& netlist, const TpdfEngineConfig& config);

  /// Runs the full five-phase procedure over `faults`. May be called
  /// repeatedly with further fault batches: phase 1 (transition-fault ATPG)
  /// runs lazily, only for transition faults on the batch's paths that were
  /// not processed by an earlier call, and its tests accumulate.
  TpdfRunReport run(const std::vector<PathDelayFault>& faults);

 private:
  enum class TfStatus : std::uint8_t {
    kUnknown,
    kHasTest,
    kUndetectable,
    kAborted,
  };

  /// Phase 1: ATPG for the not-yet-processed transition faults named by the
  /// batch's paths; appends to tf_tests_ and updates tf_status_.
  void run_transition_fault_atpg(
      const std::vector<std::vector<TransitionFault>>& per_path,
      TpdfRunReport& report);

  TfStatus& tf_status(const TransitionFault& tf) {
    return tf_status_[2 * tf.line + (tf.rising ? 0 : 1)];
  }
  bool tf_undetectable(const TransitionFault& tf) const {
    return tf_status_[2 * tf.line + (tf.rising ? 0 : 1)] ==
           TfStatus::kUndetectable;
  }

  /// Phase 4 core (Fig. 2.2): one full heuristic attempt cycle for a fault.
  /// Returns true when a test detecting all of `trs` was found (appended to
  /// report.tests).
  bool heuristic_attempts(const std::vector<TransitionFault>& trs,
                          const std::vector<Assignment>& preassign,
                          TpdfRunReport& report);

  const Netlist* netlist_;
  TpdfEngineConfig config_;
  Pcg32 rng_;
  TestSet tf_tests_;
  std::vector<TfStatus> tf_status_;  // 2 per node
  std::unique_ptr<PodemEngine> tf_engine_;
};

}  // namespace fbt
