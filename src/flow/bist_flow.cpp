#include "flow/bist_flow.hpp"

#include <algorithm>

#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "fault/compaction.hpp"
#include "obs/instrument.hpp"
#include "util/require.hpp"
#include "jobs/job_system.hpp"

namespace fbt {

BistExperimentResult run_bist_experiment(const BistExperimentConfig& config) {
  return run_bist_experiment(config, jobs::global_jobs(), ExperimentArtifacts{});
}

BistExperimentResult run_bist_experiment(const BistExperimentConfig& config,
                                         jobs::JobSystem& jobs,
                                         const ExperimentArtifacts& artifacts) {
  // Nested spans open inside the library calls: calibrate (measure_swa_func),
  // construct + grade (FunctionalBistGenerator), reduce (reduce_groups),
  // cost (plan_functional_bist_hardware).
  FBT_OBS_PHASE("bist_experiment");
  const bool unconstrained =
      config.driver_name.empty() || config.driver_name == "buffers";

  // Artifact stage as a task graph: the target load gates everything;
  // driver load, CSR flattening, and fault collapsing then run in parallel,
  // and calibration starts the moment its three inputs exist. A supplied
  // artifact turns its task into a copy (or a no-op for the shared CSR).
  // wait_all() helps run the tasks, so this nests safely inside a task of
  // the same pool (the serving path).
  Netlist target("");
  const jobs::TaskHandle t_target = jobs.submit([&] {
    target = artifacts.target != nullptr ? *artifacts.target
                                         : load_benchmark(config.target_name);
  });
  Netlist driver("");
  const jobs::TaskHandle t_driver = jobs.submit_after({t_target}, [&] {
    if (artifacts.driver != nullptr) {
      driver = *artifacts.driver;
    } else {
      driver = unconstrained ? make_buffers_block(target.num_inputs())
                             : load_benchmark(config.driver_name);
    }
  });
  std::shared_ptr<const FlatFanins> flat = artifacts.flat;
  const jobs::TaskHandle t_flat = jobs.submit_after({t_target}, [&] {
    if (flat == nullptr) flat = std::make_shared<const FlatFanins>(target);
  });
  TransitionFaultList faults;
  const jobs::TaskHandle t_faults = jobs.submit_after({t_target}, [&] {
    faults = artifacts.faults != nullptr
                 ? *artifacts.faults
                 : TransitionFaultList::collapsed(target);
  });
  // Calibrate SWA_func. The TPG is built for the driving block inside
  // measure_swa_func; for the buffers block that reduces to unbiased patterns
  // straight into the target, giving the unconstrained peak (§4.6). A cached
  // calibration (keyed on netlist contents + calibration config) skips the
  // simulation entirely.
  double swa_func = 0.0;
  const jobs::TaskHandle t_cal =
      jobs.submit_after({t_target, t_driver, t_flat}, [&] {
        swa_func = artifacts.swa_func_percent.has_value()
                       ? *artifacts.swa_func_percent
                       : measure_swa_func(target, driver, config.calibration,
                                          flat)
                             .peak_percent;
      });
  jobs.wait_all({t_cal, t_faults});

  FunctionalBistConfig gen = config.generation;
  gen.swa_bound_percent = swa_func;
  gen.bounded = !unconstrained;
  gen.num_threads = config.num_threads;
  gen.speculation_lanes = config.speculation_lanes;
  gen.fault_pack_width = config.fault_pack_width;

  ScanChains scan(target, config.scan);
  BistExperimentResult result{.target = std::move(target),
                              .scan = std::move(scan),
                              .faults = std::move(faults),
                              .detect_count = {},
                              .swa_func = swa_func,
                              .run = {},
                              .detected = 0,
                              .fault_coverage_percent = 0.0,
                              .hw_area = 0.0,
                              .circuit_area_um2 = 0.0,
                              .overhead_percent = 0.0,
                              .nsp = 0,
                              .generation = gen,
                              .rtl = {}};
  result.detect_count.assign(result.faults.size(), 0);

  FunctionalBistGenerator generator(result.target, gen, flat, &jobs);
  result.nsp = generator.tpg().cube().specified_count();
  result.run = generator.run(result.faults, result.detect_count);
  result.seeds_before_reduction = result.run.num_seeds;
  result.sequences_before_reduction = result.run.sequences.size();

  if (config.reduce_sequences && result.run.sequences.size() > 1) {
    // Map each test to its multi-segment sequence and drop sequences that
    // detect nothing new (forward-looking fault simulation, §4.3/[89]).
    // Only whole sequences may be dropped: segments within a sequence share
    // one state trajectory.
    std::vector<std::size_t> group_of;
    group_of.reserve(result.run.tests.size());
    for (std::size_t s = 0; s < result.run.sequences.size(); ++s) {
      std::size_t tests_in_sequence = 0;
      for (const SegmentRecord& seg : result.run.sequences[s].segments) {
        tests_in_sequence += seg.num_tests;
      }
      group_of.insert(group_of.end(), tests_in_sequence, s);
    }
    require(group_of.size() == result.run.tests.size(), "run_bist_experiment",
            "internal: test/sequence bookkeeping mismatch");
    const std::vector<std::size_t> kept =
        reduce_groups(result.target, result.run.tests, result.faults, group_of,
                      result.run.sequences.size(), config.num_threads, &jobs,
                      static_cast<std::uint32_t>(config.fault_pack_width));
    if (kept.size() < result.run.sequences.size()) {
      FunctionalBistResult reduced;
      reduced.newly_detected = result.run.newly_detected;
      reduced.peak_swa = result.run.peak_swa;
      // Attribution records construction history: sequence/test indices keep
      // naming the pre-reduction stream, including sequences the reduction
      // dropped (a dropped sequence's detections are re-covered by kept
      // ones, but it still caught those faults first during construction).
      reduced.first_detect = std::move(result.run.first_detect);
      for (std::size_t t = 0; t < result.run.tests.size(); ++t) {
        if (std::find(kept.begin(), kept.end(), group_of[t]) != kept.end()) {
          reduced.tests.push_back(std::move(result.run.tests[t]));
        }
      }
      for (const std::size_t s : kept) {
        reduced.sequences.push_back(std::move(result.run.sequences[s]));
        for (const SegmentRecord& seg : reduced.sequences.back().segments) {
          reduced.lmax = std::max(reduced.lmax, seg.length);
          ++reduced.num_seeds;
        }
        reduced.nseg_max = std::max(reduced.nseg_max,
                                    reduced.sequences.back().segments.size());
      }
      reduced.num_tests = reduced.tests.size();
      result.run = std::move(reduced);
    }
  }

  result.detected = 0;
  for (const std::uint32_t c : result.detect_count) {
    if (c >= gen.detect_limit) ++result.detected;
  }
  result.fault_coverage_percent =
      result.faults.size() == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.detected) /
                static_cast<double>(result.faults.size());

  const BistHardwarePlan plan =
      plan_functional_bist_hardware(generator.tpg(), result.scan, result.run);
  result.hw_area = bist_area(plan);
  result.circuit_area_um2 = circuit_area(result.target);
  result.overhead_percent =
      100.0 * result.hw_area / result.circuit_area_um2;
  if (config.emit_rtl && !result.run.sequences.empty()) {
    // Opens its own "rtl" phase span; the returned inventory reconciles with
    // `plan` by construction (enforced in tests/rtl/consistency_test.cpp).
    SessionConfig session;
    session.misr_stages = config.rtl_misr_stages;
    session.tpg = gen.tpg;
    result.rtl = emit_bist_rtl(result.target, result.run, result.scan, session);
  }

  // Resource telemetry: footprints of the big owned structures plus the
  // gate/fault denominators for the run report's derived memory analytics.
  FBT_OBS_FOOTPRINT("flow.netlist", result.target.footprint_bytes());
  FBT_OBS_FOOTPRINT("flow.fault_list", result.faults.footprint_bytes());
  FBT_OBS_FOOTPRINT("flow.tests", test_set_footprint_bytes(result.run.tests));
  FBT_OBS_FOOTPRINT("flow.detect_count",
                    result.detect_count.size() * sizeof(std::uint32_t));
  FBT_OBS_GAUGE_SET("flow.num_gates", result.target.num_gates());
  FBT_OBS_GAUGE_SET("flow.num_faults", result.faults.size());

  FBT_OBS_GAUGE_SET("flow.num_threads",
                    jobs::JobSystem::resolve_threads(config.num_threads));
  FBT_OBS_GAUGE_SET("flow.speculation_lanes", config.speculation_lanes);
  FBT_OBS_GAUGE_SET("flow.fault_pack_width", config.fault_pack_width);
  FBT_OBS_GAUGE_SET("flow.num_tests", result.run.num_tests);
  FBT_OBS_GAUGE_SET("flow.num_seeds", result.run.num_seeds);
  FBT_OBS_GAUGE_SET("flow.swa_func_percent", result.swa_func);
  FBT_OBS_GAUGE_SET("flow.fault_coverage_percent",
                    result.fault_coverage_percent);
  FBT_OBS_GAUGE_SET("flow.hw_overhead_percent", result.overhead_percent);
  FBT_OBS_COUNTER_ADD("flow.experiments_run", 1);
  FBT_OBS_COUNTER_ADD("flow.faults_detected", result.detected);
  return result;
}

HoldExperimentResult run_hold_experiment(BistExperimentResult& base,
                                         const HoldSelectionConfig& config,
                                         std::uint64_t rng_seed) {
  HoldExperimentResult out;
  const std::size_t before = base.detected;
  out.hold = select_and_run_hold_sets(base.target, base.faults,
                                      base.detect_count, config, rng_seed);

  std::size_t detected = 0;
  for (const std::uint32_t c : base.detect_count) {
    if (c >= config.commit.detect_limit) ++detected;
  }
  out.detected_total = detected;
  const double total = static_cast<double>(base.faults.size());
  out.final_coverage_percent = total == 0 ? 0.0 : 100.0 * detected / total;
  out.coverage_improvement_percent =
      total == 0 ? 0.0
                 : 100.0 * static_cast<double>(detected - before) / total;

  Tpg tpg(base.target, base.generation.tpg);
  const BistHardwarePlan plan =
      plan_hold_bist_hardware(tpg, base.scan, base.run, out.hold);
  out.hw_area = bist_area(plan);
  out.overhead_percent = 100.0 * out.hw_area / base.circuit_area_um2;
  return out;
}

}  // namespace fbt
