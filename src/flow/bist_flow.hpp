// End-to-end experiment driver for the built-in functional broadside test
// generation flow (dissertation §4.6): load target + driving block, calibrate
// SWA_func from functional input sequences, construct multi-segment primary
// input sequences on-chip, grade transition-fault coverage, and cost the
// hardware. Shared by bench_table4_* and the examples.
#pragma once

#include <optional>
#include <string>

#include "bist/embedded.hpp"
#include "bist/functional_bist.hpp"
#include "bist/hardware_plan.hpp"
#include "bist/state_holding.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan.hpp"
#include "rtl/emit.hpp"

namespace fbt {

struct BistExperimentConfig {
  std::string target_name;
  /// Driving block name; empty selects the unconstrained "buffers" block.
  std::string driver_name;
  SwaCalibrationConfig calibration;
  FunctionalBistConfig generation;  ///< L, R, Q, seeds; swa bound filled in
  ScanConfig scan;
  /// §4.3's seed-set reduction: after construction, drop whole multi-segment
  /// sequences whose tests detect nothing the kept sequences miss
  /// (forward-looking fault simulation over sequence groups).
  bool reduce_sequences = true;
  /// Worker threads for every fault-grading step of the flow (candidate
  /// segments and sequence reduction). 0 = hardware concurrency; results are
  /// bit-identical for any value. Overrides generation.num_threads.
  std::size_t num_threads = 1;
  /// Speculation width W for the candidate-seed search (packed lane-parallel
  /// evaluation, clamped to 64). 1 forces the scalar reference loop; results
  /// are bit-identical for any value. Overrides generation.speculation_lanes.
  std::size_t speculation_lanes = 64;
  /// Emit the on-chip BIST machinery as Verilog after generation. Requires a
  /// scan partition whose chain lengths all divide Lsc -- use
  /// equal_partition_scan_config for `scan` (emit_bist_rtl fails loudly
  /// otherwise).
  bool emit_rtl = false;
  unsigned rtl_misr_stages = 24;
};

struct BistExperimentResult {
  Netlist target;            ///< the circuit under test (owned copy)
  ScanChains scan;           ///< scan-chain partition (Lsc)
  TransitionFaultList faults;
  std::vector<std::uint32_t> detect_count;  ///< per fault after generation
  double swa_func = 0.0;     ///< calibrated bound (percent)
  FunctionalBistResult run;  ///< after sequence reduction (when enabled)
  std::size_t seeds_before_reduction = 0;
  std::size_t sequences_before_reduction = 0;
  std::size_t detected = 0;
  double fault_coverage_percent = 0.0;
  double hw_area = 0.0;
  double circuit_area_um2 = 0.0;
  double overhead_percent = 0.0;
  std::size_t nsp = 0;       ///< specified inputs in the cube (Table 4.2)
  FunctionalBistConfig generation;  ///< the exact config used (bound filled)
  /// Emitted BIST RTL (when config.emit_rtl and the run produced sequences).
  std::optional<EmittedRtl> rtl;
};

/// Runs calibration + constrained (or unconstrained, when driver is
/// "buffers"/empty) built-in generation.
BistExperimentResult run_bist_experiment(const BistExperimentConfig& config);

struct HoldExperimentResult {
  HoldSelectionResult hold;
  std::size_t detected_total = 0;
  double coverage_improvement_percent = 0.0;
  double final_coverage_percent = 0.0;
  double hw_area = 0.0;
  double overhead_percent = 0.0;
};

/// Continues a finished experiment with the state-holding phase (Table 4.4).
HoldExperimentResult run_hold_experiment(BistExperimentResult& base,
                                         const HoldSelectionConfig& config,
                                         std::uint64_t rng_seed);

}  // namespace fbt
