// End-to-end experiment driver for the built-in functional broadside test
// generation flow (dissertation §4.6): load target + driving block, calibrate
// SWA_func from functional input sequences, construct multi-segment primary
// input sequences on-chip, grade transition-fault coverage, and cost the
// hardware. Shared by bench_table4_* and the examples.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "bist/embedded.hpp"
#include "bist/functional_bist.hpp"
#include "bist/hardware_plan.hpp"
#include "bist/state_holding.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan.hpp"
#include "rtl/emit.hpp"

namespace fbt {

struct BistExperimentConfig {
  std::string target_name;
  /// Driving block name; empty selects the unconstrained "buffers" block.
  std::string driver_name;
  SwaCalibrationConfig calibration;
  FunctionalBistConfig generation;  ///< L, R, Q, seeds; swa bound filled in
  ScanConfig scan;
  /// §4.3's seed-set reduction: after construction, drop whole multi-segment
  /// sequences whose tests detect nothing the kept sequences miss
  /// (forward-looking fault simulation over sequence groups).
  bool reduce_sequences = true;
  /// Worker threads for every fault-grading step of the flow (candidate
  /// segments and sequence reduction). 0 = hardware concurrency; results are
  /// bit-identical for any value. Overrides generation.num_threads.
  std::size_t num_threads = 1;
  /// Speculation width W for the candidate-seed search (packed lane-parallel
  /// evaluation, clamped to 64). 1 forces the scalar reference loop; results
  /// are bit-identical for any value. Overrides generation.speculation_lanes.
  std::size_t speculation_lanes = 64;
  /// Fault lanes packed per machine word inside each grading shard (PPSFP,
  /// clamped to [1, 64]); applies to every fault-grading step of the flow.
  /// 1 forces the serial reference engine; results are bit-identical for any
  /// value. Overrides generation.fault_pack_width.
  std::size_t fault_pack_width = 64;
  /// Emit the on-chip BIST machinery as Verilog after generation. Requires a
  /// scan partition whose chain lengths all divide Lsc -- use
  /// equal_partition_scan_config for `scan` (emit_bist_rtl fails loudly
  /// otherwise).
  bool emit_rtl = false;
  unsigned rtl_misr_stages = 24;
};

struct BistExperimentResult {
  Netlist target;            ///< the circuit under test (owned copy)
  ScanChains scan;           ///< scan-chain partition (Lsc)
  TransitionFaultList faults;
  std::vector<std::uint32_t> detect_count;  ///< per fault after generation
  double swa_func = 0.0;     ///< calibrated bound (percent)
  FunctionalBistResult run;  ///< after sequence reduction (when enabled)
  std::size_t seeds_before_reduction = 0;
  std::size_t sequences_before_reduction = 0;
  std::size_t detected = 0;
  double fault_coverage_percent = 0.0;
  double hw_area = 0.0;
  double circuit_area_um2 = 0.0;
  double overhead_percent = 0.0;
  std::size_t nsp = 0;       ///< specified inputs in the cube (Table 4.2)
  FunctionalBistConfig generation;  ///< the exact config used (bound filled)
  /// Emitted BIST RTL (when config.emit_rtl and the run produced sequences).
  std::optional<EmittedRtl> rtl;
};

/// Pre-computed inputs an orchestrator (the serving cache) may hand to
/// run_bist_experiment so the flow skips re-deriving them. Every field is
/// optional; a null/empty field is derived from `config` as usual. Supplied
/// artifacts MUST match what the config would derive (the cache keys them by
/// netlist content + config fields) -- the flow trusts them.
struct ExperimentArtifacts {
  std::shared_ptr<const Netlist> target;
  std::shared_ptr<const Netlist> driver;
  /// Calibrated SWA_func peak (percent); skips measure_swa_func entirely.
  std::optional<double> swa_func_percent;
  /// Collapsed transition-fault list of the target.
  std::shared_ptr<const TransitionFaultList> faults;
  /// Flattened fanin CSR of the target (shared by the internal simulators).
  std::shared_ptr<const FlatFanins> flat;
};

/// Runs calibration + constrained (or unconstrained, when driver is
/// "buffers"/empty) built-in generation. Uses the process-wide job pool.
BistExperimentResult run_bist_experiment(const BistExperimentConfig& config);

/// Same flow as a task graph on `jobs`: target/driver loading, SWA_func
/// calibration, CSR flattening, and fault collapsing run as dependency-
/// ordered tasks, and every fault-grading step multiplexes `jobs` -- many
/// experiments share one pool. `artifacts` short-circuits tasks whose
/// results the caller already holds (cache hits). Results are bit-identical
/// to the single-argument overload for any pool size and any artifacts.
BistExperimentResult run_bist_experiment(const BistExperimentConfig& config,
                                         jobs::JobSystem& jobs,
                                         const ExperimentArtifacts& artifacts);

struct HoldExperimentResult {
  HoldSelectionResult hold;
  std::size_t detected_total = 0;
  double coverage_improvement_percent = 0.0;
  double final_coverage_percent = 0.0;
  double hw_area = 0.0;
  double overhead_percent = 0.0;
};

/// Continues a finished experiment with the state-holding phase (Table 4.4).
HoldExperimentResult run_hold_experiment(BistExperimentResult& base,
                                         const HoldSelectionConfig& config,
                                         std::uint64_t rng_seed);

}  // namespace fbt
