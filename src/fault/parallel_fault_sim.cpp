#include "fault/parallel_fault_sim.hpp"

#include <algorithm>
#include <atomic>

#include "obs/instrument.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fbt {

ParallelBroadsideFaultSim::ParallelBroadsideFaultSim(
    const Netlist& netlist, std::size_t num_threads, jobs::JobSystem* jobs,
    std::uint32_t fault_pack_width, std::shared_ptr<const FlatFanins> flat)
    : netlist_(&netlist),
      jobs_(jobs != nullptr ? jobs : &jobs::global_jobs()) {
  const std::size_t shards = jobs::JobSystem::resolve_threads(num_threads);
  if (fault_pack_width > 1 && flat == nullptr) {
    // One immutable CSR shared by every shard's packed kernel.
    flat = std::make_shared<const FlatFanins>(netlist);
  }
  shard_sims_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shard_sims_.push_back(
        std::make_unique<BroadsideFaultSim>(netlist, fault_pack_width, flat));
  }
}

std::vector<ParallelBroadsideFaultSim::Shard>
ParallelBroadsideFaultSim::make_shards(std::size_t num_faults) const {
  const std::size_t shards = shard_sims_.size();
  std::vector<Shard> out(shards);
  const std::size_t base = num_faults / shards;
  const std::size_t extra = num_faults % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out[s] = {begin, begin + len};
    begin += len;
  }
  return out;
}

std::size_t ParallelBroadsideFaultSim::grade(
    std::span<const BroadsideTest> tests, const TransitionFaultList& faults,
    std::span<std::uint32_t> detect_count, std::uint32_t detect_limit,
    GradeProvenance* provenance) {
  require(detect_count.size() == faults.size(),
          "ParallelBroadsideFaultSim::grade",
          "detect_count size must equal the fault count");
  if (shard_sims_.size() == 1 || faults.size() < 2 * shard_sims_.size()) {
    // Too few faults to amortize the per-shard block replay. Counted so a
    // report showing parallel_shards_graded == 0 is unambiguous: fallbacks
    // fired (expected on tiny fault lists) vs. parallelism never ran.
    FBT_OBS_COUNTER_ADD("fault.serial_grade_fallbacks", 1);
    return shard_sims_[0]->grade(tests, faults, detect_count, detect_limit,
                                 provenance);
  }
  Timer grade_timer;
  FBT_OBS_GAUGE_SET("fault.parallel_threads", shard_sims_.size());
  const std::vector<Shard> shards = make_shards(faults.size());
  std::atomic<std::size_t> newly_complete{0};
  std::vector<GradeProvenance> shard_prov(
      provenance != nullptr ? shards.size() : 0);
  jobs_->parallel_for(shards.size(), [&](std::size_t s) {
    const Shard& shard = shards[s];
    if (shard.begin == shard.end) return;
    const auto& all = faults.faults();
    std::vector<TransitionFault> sub(
        all.begin() + static_cast<std::ptrdiff_t>(shard.begin),
        all.begin() + static_cast<std::ptrdiff_t>(shard.end));
    const TransitionFaultList shard_faults =
        TransitionFaultList::from_faults(std::move(sub));
    // Disjoint subspan per shard: no write contention on detect_count.
    const std::size_t fresh = shard_sims_[s]->grade(
        tests, shard_faults,
        detect_count.subspan(shard.begin, shard.end - shard.begin),
        detect_limit, provenance != nullptr ? &shard_prov[s] : nullptr);
    newly_complete.fetch_add(fresh, std::memory_order_relaxed);
    FBT_OBS_COUNTER_ADD("fault.parallel_shards_graded", 1);
  });
  if (provenance != nullptr) {
    // Each fault is graded by exactly one shard against the same blocks, so
    // rebasing the shard-local fault indices and re-sorting reproduces the
    // serial engine's canonical hit order. The serial walk ends when its
    // last pending fault drops, i.e. after max-over-shards blocks; summing
    // per-block drops over the shards that reached a block matches it.
    provenance->first_hits.clear();
    provenance->blocks.clear();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      for (FirstDetectHit hit : shard_prov[s].first_hits) {
        hit.fault += static_cast<std::uint32_t>(shards[s].begin);
        provenance->first_hits.push_back(hit);
      }
      const auto& blocks = shard_prov[s].blocks;
      if (blocks.size() > provenance->blocks.size()) {
        const std::size_t old = provenance->blocks.size();
        provenance->blocks.resize(blocks.size());
        for (std::size_t b = old; b < blocks.size(); ++b) {
          provenance->blocks[b] = {blocks[b].first_test, blocks[b].num_tests,
                                   0};
        }
      }
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        provenance->blocks[b].newly_at_limit += blocks[b].newly_at_limit;
      }
    }
    std::sort(provenance->first_hits.begin(), provenance->first_hits.end(),
              [](const FirstDetectHit& a, const FirstDetectHit& b) {
                return a.fault < b.fault;
              });
  }
  FBT_OBS_HIST_RECORD("fault.parallel_grade_duration_ms", grade_timer.ms());
  return newly_complete.load(std::memory_order_relaxed);
}

std::vector<std::vector<std::uint64_t>>
ParallelBroadsideFaultSim::detection_matrix(std::span<const BroadsideTest> tests,
                                            const TransitionFaultList& faults) {
  if (shard_sims_.size() == 1 || faults.size() < 2 * shard_sims_.size()) {
    FBT_OBS_COUNTER_ADD("fault.serial_grade_fallbacks", 1);
    return shard_sims_[0]->detection_matrix(tests, faults);
  }
  Timer grade_timer;
  FBT_OBS_GAUGE_SET("fault.parallel_threads", shard_sims_.size());
  const std::vector<Shard> shards = make_shards(faults.size());
  std::vector<std::vector<std::uint64_t>> matrix(faults.size());
  jobs_->parallel_for(shards.size(), [&](std::size_t s) {
    const Shard& shard = shards[s];
    if (shard.begin == shard.end) return;
    const auto& all = faults.faults();
    std::vector<TransitionFault> sub(
        all.begin() + static_cast<std::ptrdiff_t>(shard.begin),
        all.begin() + static_cast<std::ptrdiff_t>(shard.end));
    const TransitionFaultList shard_faults =
        TransitionFaultList::from_faults(std::move(sub));
    auto rows = shard_sims_[s]->detection_matrix(tests, shard_faults);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      matrix[shard.begin + i] = std::move(rows[i]);
    }
    FBT_OBS_COUNTER_ADD("fault.parallel_shards_graded", 1);
  });
  FBT_OBS_HIST_RECORD("fault.parallel_grade_duration_ms", grade_timer.ms());
  return matrix;
}

std::uint64_t ParallelBroadsideFaultSim::footprint_bytes() const {
  std::uint64_t bytes =
      sizeof(*this) +
      shard_sims_.size() * sizeof(std::unique_ptr<BroadsideFaultSim>);
  for (const auto& sim : shard_sims_) {
    bytes += sim->footprint_bytes();
  }
  return bytes;
}

}  // namespace fbt
