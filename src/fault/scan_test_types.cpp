#include "fault/scan_test_types.hpp"

#include "util/require.hpp"

namespace fbt {

BroadsideTest make_skewed_load_test(const Netlist& netlist,
                                    const ScanChains& scan,
                                    std::span<const std::uint8_t> s1,
                                    std::span<const std::uint8_t> scan_in_bits,
                                    std::span<const std::uint8_t> v1,
                                    std::span<const std::uint8_t> v2) {
  require(s1.size() == netlist.num_flops(), "make_skewed_load_test",
          "s1 size mismatch");
  require(scan_in_bits.size() == scan.num_chains(), "make_skewed_load_test",
          "one scan-in bit per chain required");
  BroadsideTest test;
  test.scan_state.assign(s1.begin(), s1.end());
  test.v1.assign(v1.begin(), v1.end());
  test.v2.assign(v2.begin(), v2.end());
  test.state2_override.assign(s1.begin(), s1.end());

  // One shift: within each chain, position i takes position i-1's value and
  // position 0 takes the scan-in bit. Flop order inside ScanChains matches
  // netlist flop order, chains laid out consecutively.
  std::size_t base = 0;
  for (std::size_t c = 0; c < scan.num_chains(); ++c) {
    const std::size_t len = scan.chain(c).size();
    for (std::size_t i = len; i-- > 1;) {
      test.state2_override[base + i] = s1[base + i - 1];
    }
    if (len > 0) test.state2_override[base] = scan_in_bits[c];
    base += len;
  }
  return test;
}

BroadsideTest make_enhanced_scan_test(std::span<const std::uint8_t> s1,
                                      std::span<const std::uint8_t> s2,
                                      std::span<const std::uint8_t> v1,
                                      std::span<const std::uint8_t> v2) {
  require(s1.size() == s2.size(), "make_enhanced_scan_test",
          "state sizes must match");
  BroadsideTest test;
  test.scan_state.assign(s1.begin(), s1.end());
  test.v1.assign(v1.begin(), v1.end());
  test.v2.assign(v2.begin(), v2.end());
  test.state2_override.assign(s2.begin(), s2.end());
  return test;
}

}  // namespace fbt
