// Bit-parallel broadside transition-fault simulator.
//
// Simulates 64 two-pattern tests at a time: frame 1 establishes launch values
// and the captured state s2; frame 2 checks stuck-at-initial-value detection
// via event-driven single-fault propagation to the primary outputs and the
// flip-flop D inputs. Supports fault dropping (n-detect) for test-set grading
// and a full per-test detection matrix for the transition-path-delay-fault
// engine of Chapter 2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"
#include "sim/bitsim.hpp"

namespace fbt {

/// First detection of one fault within a single grade() call: the fault went
/// from zero credit to detected, and `test` is the lowest-index test that
/// caught it.
struct FirstDetectHit {
  std::uint32_t fault = 0;  ///< index into the graded fault list
  std::uint32_t test = 0;   ///< index into the graded test span

  bool operator==(const FirstDetectHit&) const = default;
};

/// Drop statistics for one 64-test grading block.
struct GradeBlockStat {
  std::uint32_t first_test = 0;      ///< index of the block's first test
  std::uint32_t num_tests = 0;       ///< tests in the block (<= 64)
  std::uint32_t newly_at_limit = 0;  ///< faults reaching detect_limit here

  bool operator==(const GradeBlockStat&) const = default;
};

/// Optional provenance from one grade() call. Both vectors are canonical --
/// first_hits sorted by fault index, blocks in test order covering every
/// block any still-active fault was graded against -- so the serial engine
/// and any sharded parallel merge produce bit-identical provenance.
struct GradeProvenance {
  std::vector<FirstDetectHit> first_hits;
  std::vector<GradeBlockStat> blocks;
};

/// Bytes owned by a detection matrix as returned by detection_matrix()
/// (resource telemetry; counts content, not allocator slack).
inline std::uint64_t detection_matrix_footprint_bytes(
    const std::vector<std::vector<std::uint64_t>>& matrix) {
  std::uint64_t bytes =
      sizeof(matrix) + matrix.size() * sizeof(std::vector<std::uint64_t>);
  for (const std::vector<std::uint64_t>& row : matrix) {
    bytes += row.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

class BroadsideFaultSim {
 public:
  explicit BroadsideFaultSim(const Netlist& netlist);

  /// Grades `tests` against `faults` with fault dropping: a fault whose
  /// detection count in `detect_count` reaches `detect_limit` is skipped.
  /// Updates `detect_count` in place and returns the number of faults whose
  /// count first reached `detect_limit` during this call. When `provenance`
  /// is non-null it is overwritten with this call's first-detect hits and
  /// per-block drop stats.
  std::size_t grade(std::span<const BroadsideTest> tests,
                    const TransitionFaultList& faults,
                    std::span<std::uint32_t> detect_count,
                    std::uint32_t detect_limit = 1,
                    GradeProvenance* provenance = nullptr);

  /// Per-test detection bits for every fault (no dropping). Row f holds
  /// ceil(tests/64) words; bit t of word t/64 is 1 when test t detects fault
  /// f. Intended for small test sets (Chapter-2 engine).
  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const BroadsideTest> tests, const TransitionFaultList& faults);

  /// Single-query convenience: does `test` detect `fault`?
  bool detects(const BroadsideTest& test, const TransitionFault& fault);

  /// Bytes owned by the embedded simulator and frame buffers
  /// (resource telemetry).
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) - sizeof(sim_) + sim_.footprint_bytes() +
           (v1_values_.size() + state2_.size()) * sizeof(std::uint64_t);
  }

 private:
  // Loads up to 64 tests into the simulator, evaluates both frames, and
  // leaves frame-1 values in v1_ and frame-2 values in the BitSim.
  void load_block(std::span<const BroadsideTest> tests, std::size_t first,
                  std::size_t count);

  // Detection mask of `fault` over the currently loaded block.
  std::uint64_t fault_mask(const TransitionFault& fault);

  const Netlist* netlist_;
  BitSim sim_;
  std::vector<std::uint64_t> v1_values_;  // frame-1 value words per node
  std::vector<std::uint64_t> state2_;     // captured state words per flop
  std::uint64_t block_mask_ = 0;          // valid-pattern bits of the block
};

}  // namespace fbt
