// Bit-parallel broadside transition-fault simulator.
//
// Simulates 64 two-pattern tests at a time: frame 1 establishes launch values
// and the captured state s2; frame 2 checks stuck-at-initial-value detection
// via event-driven single-fault propagation to the primary outputs and the
// flip-flop D inputs. Supports fault dropping (n-detect) for test-set grading
// and a full per-test detection matrix for the transition-path-delay-fault
// engine of Chapter 2.
//
// Two propagation engines share the good-machine block evaluation:
//  * serial (fault_pack_width == 1, the reference): one fault at a time, 64
//    tests per word (BitSim::fault_propagate);
//  * PPSFP (fault_pack_width > 1): up to `fault_pack_width` faults per word,
//    one test at a time, against the shared fault-free two-frame trace
//    (PackedFaultProp). Detect counts, detection matrices, and first-detect
//    provenance are bit-identical across pack widths.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"
#include "netlist/flat_fanins.hpp"
#include "sim/bitsim.hpp"
#include "sim/packed_faultprop.hpp"

namespace fbt {

/// First detection of one fault within a single grade() call: the fault went
/// from zero credit to detected, and `test` is the lowest-index test that
/// caught it.
struct FirstDetectHit {
  std::uint32_t fault = 0;  ///< index into the graded fault list
  std::uint32_t test = 0;   ///< index into the graded test span

  bool operator==(const FirstDetectHit&) const = default;
};

/// Drop statistics for one 64-test grading block.
struct GradeBlockStat {
  std::uint32_t first_test = 0;      ///< index of the block's first test
  std::uint32_t num_tests = 0;       ///< tests in the block (<= 64)
  std::uint32_t newly_at_limit = 0;  ///< faults reaching detect_limit here

  bool operator==(const GradeBlockStat&) const = default;
};

/// Optional provenance from one grade() call. Both vectors are canonical --
/// first_hits sorted by fault index, blocks in test order covering every
/// block any still-active fault was graded against -- so the serial engine
/// and any sharded parallel merge produce bit-identical provenance.
struct GradeProvenance {
  std::vector<FirstDetectHit> first_hits;
  std::vector<GradeBlockStat> blocks;
};

/// Bytes owned by a detection matrix as returned by detection_matrix()
/// (resource telemetry; counts content, not allocator slack).
inline std::uint64_t detection_matrix_footprint_bytes(
    const std::vector<std::vector<std::uint64_t>>& matrix) {
  std::uint64_t bytes =
      sizeof(matrix) + matrix.size() * sizeof(std::vector<std::uint64_t>);
  for (const std::vector<std::uint64_t>& row : matrix) {
    bytes += row.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

class BroadsideFaultSim {
 public:
  /// `fault_pack_width` > 1 selects the PPSFP engine: the active fault list
  /// is walked in groups of up to `fault_pack_width` (clamped to [1, 64])
  /// bit-lanes propagated together against the shared good-machine trace.
  /// 1 (and 0) keeps the serial reference engine. `flat` optionally shares a
  /// pre-built CSR of `netlist` with the packed engine (nullptr rebuilds
  /// one; ignored when serial).
  explicit BroadsideFaultSim(const Netlist& netlist,
                             std::uint32_t fault_pack_width = 1,
                             std::shared_ptr<const FlatFanins> flat = nullptr);

  /// Resolved pack width (>= 1; > 1 means the PPSFP engine is active).
  std::uint32_t fault_pack_width() const { return pack_width_; }

  /// Grades `tests` against `faults` with fault dropping: a fault whose
  /// detection count in `detect_count` reaches `detect_limit` is skipped.
  /// Updates `detect_count` in place and returns the number of faults whose
  /// count first reached `detect_limit` during this call. When `provenance`
  /// is non-null it is overwritten with this call's first-detect hits and
  /// per-block drop stats.
  std::size_t grade(std::span<const BroadsideTest> tests,
                    const TransitionFaultList& faults,
                    std::span<std::uint32_t> detect_count,
                    std::uint32_t detect_limit = 1,
                    GradeProvenance* provenance = nullptr);

  /// Per-test detection bits for every fault (no dropping). Row f holds
  /// ceil(tests/64) words; bit t of word t/64 is 1 when test t detects fault
  /// f. Intended for small test sets (Chapter-2 engine).
  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const BroadsideTest> tests, const TransitionFaultList& faults);

  /// Single-query convenience: does `test` detect `fault`?
  bool detects(const BroadsideTest& test, const TransitionFault& fault);

  /// Bytes owned by the embedded simulators and frame buffers
  /// (resource telemetry).
  std::uint64_t footprint_bytes() const {
    std::uint64_t bytes =
        sizeof(*this) - sizeof(sim_) + sim_.footprint_bytes() +
        (v1_values_.size() + state2_.size() + pack_scratch_.size() +
         good2_values_.size() + launch_tx_.size() + needy_.size()) *
            sizeof(std::uint64_t) +
        (chunk_sites_.size() + site_internal_.size()) * sizeof(NodeId) +
        (chunk_fault_.size() + chunk_pos_.size() + block_hits_.size()) *
            sizeof(std::uint32_t);
    if (packed_ != nullptr) bytes += packed_->footprint_bytes();
    return bytes;
  }

 private:
  // Loads up to 64 tests into the simulator, evaluates both frames, and
  // leaves frame-1 values in v1_ and frame-2 values in the BitSim.
  void load_block(std::span<const BroadsideTest> tests, std::size_t first,
                  std::size_t count);

  // Detection mask of `fault` over the currently loaded block (serial
  // engine).
  std::uint64_t fault_mask(const TransitionFault& fault);

  // Copies the loaded block's frame-2 fault-free words out of the BitSim and
  // binds them to the packed kernel (PPSFP engine).
  void bind_packed_block();

  // Launch mask of `fault` over the currently loaded block: tests whose
  // fault-free trace makes the line transition the faulted way.
  std::uint64_t launch_mask(const TransitionFault& fault) const {
    const std::uint64_t w1 = v1_values_[fault.line];
    const std::uint64_t w2 = good2_values_[fault.line];
    return block_mask_ & (fault.rising ? (~w1 & w2) : (w1 & ~w2));
  }

  const Netlist* netlist_;
  BitSim sim_;
  std::vector<std::uint64_t> v1_values_;  // frame-1 value words per node
  std::vector<std::uint64_t> state2_;     // captured state words per flop
  std::vector<std::uint64_t> pack_scratch_;  // source-word packing scratch
  std::uint64_t block_mask_ = 0;          // valid-pattern bits of the block

  // PPSFP engine state (empty/null when pack_width_ == 1). Scheduling is
  // test-major: each block transposes the active faults' launch masks into
  // per-test lane words (launch_tx_), and every propagation packs up to
  // pack_width_ still-needy faults of one test into full lane words (fixed
  // fault groups would leave most lanes idle -- a typical test launches only
  // a few percent of any 64-fault group).
  std::uint32_t pack_width_ = 1;
  std::unique_ptr<PackedFaultProp> packed_;
  std::vector<std::uint64_t> good2_values_;  // frame-2 value words per node
  std::vector<std::uint64_t> launch_tx_;  // [t * groups + g]: launch lanes
  std::vector<std::uint64_t> needy_;      // per active-list position: still
                                          // short of the limit this block
  std::vector<NodeId> site_internal_;     // per fault: internal site id
  std::vector<NodeId> chunk_sites_;          // per lane: fault site
  std::vector<std::uint32_t> chunk_fault_;   // per lane: fault index
  std::vector<std::uint32_t> chunk_pos_;     // per lane: active-list position
  std::vector<std::uint32_t> block_hits_;    // per fault: hits this block
};

}  // namespace fbt
