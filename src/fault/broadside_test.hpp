// Broadside (launch-on-capture) two-pattern test (dissertation §1.3).
//
// A broadside test is <s1, v1, s2, v2> where s2 is the circuit's response to
// <s1, v1>; only s1, v1, v2 are free. A *functional* broadside test is one
// whose s1 is a reachable state (§4.1), which the BIST flow guarantees by
// construction (tests are cut out of a functional-mode state trajectory).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

struct BroadsideTest {
  std::vector<std::uint8_t> scan_state;  ///< s1, one value per flop
  std::vector<std::uint8_t> v1;          ///< primary inputs, first pattern
  std::vector<std::uint8_t> v2;          ///< primary inputs, second pattern
  /// When nonempty, the state under the second pattern is this vector instead
  /// of the circuit's response to <s1, v1>. State holding (§4.5) produces
  /// such tests: held state variables make s2 deviate from the broadside
  /// response (that is how unreachable states are introduced).
  std::vector<std::uint8_t> state2_override;
};

using TestSet = std::vector<BroadsideTest>;

/// Computes s2 (the state under the second pattern) for a test.
std::vector<std::uint8_t> second_state(const Netlist& netlist,
                                       const BroadsideTest& test);

/// Bytes owned by a test set: per-test record plus the four value vectors
/// (resource telemetry; counts content, not allocator slack).
inline std::uint64_t test_set_footprint_bytes(const TestSet& tests) {
  std::uint64_t bytes = sizeof(TestSet) + tests.size() * sizeof(BroadsideTest);
  for (const BroadsideTest& t : tests) {
    bytes += t.scan_state.size() + t.v1.size() + t.v2.size() +
             t.state2_override.size();
  }
  return bytes;
}

}  // namespace fbt
