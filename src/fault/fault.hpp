// Transition fault model (dissertation §1.1) and fault-list management.
//
// A transition fault is a slow-to-rise (STR) or slow-to-fall (STF) defect on
// one circuit line. Under a broadside test it is detected when the line holds
// the initial transition value under the first pattern and the corresponding
// stuck-at fault (stuck at the initial value) is detected under the second
// pattern (§1.2-§1.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

struct TransitionFault {
  NodeId line = kNoNode;
  bool rising = true;  ///< true: slow-to-rise (0->1); false: slow-to-fall.

  bool operator==(const TransitionFault&) const = default;
};

/// Human-readable fault name, e.g. "g12/STR".
std::string fault_name(const Netlist& netlist, const TransitionFault& fault);

/// Fault list with structural equivalence collapsing across buffer/inverter
/// chains (a fault on the single fanin of a BUF/NOT with no other fanout is
/// equivalent to the fault on its output, with polarity flipped through NOT).
class TransitionFaultList {
 public:
  /// Full collapsed fault list: two faults per line (primary inputs, gate
  /// outputs, and state variables; constants excluded), collapsed.
  static TransitionFaultList collapsed(const Netlist& netlist);

  /// Uncollapsed list (two faults per eligible line).
  static TransitionFaultList uncollapsed(const Netlist& netlist);

  /// List holding exactly `faults` (caller-specified subset, e.g. the
  /// transition faults along a set of paths).
  static TransitionFaultList from_faults(std::vector<TransitionFault> faults);

  std::size_t size() const { return faults_.size(); }
  const TransitionFault& fault(std::size_t index) const {
    return faults_[index];
  }
  const std::vector<TransitionFault>& faults() const { return faults_; }

  /// Index of a fault within this list, or npos when the fault was collapsed
  /// away or is not eligible.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(const TransitionFault& fault) const;

  /// Bytes owned by the fault records (resource telemetry).
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) + faults_.size() * sizeof(TransitionFault);
  }

 private:
  std::vector<TransitionFault> faults_;
};

}  // namespace fbt
