// Parallel broadside transition-fault grading.
//
// Shards the fault list into contiguous ranges; every shard owns a private
// BroadsideFaultSim (its own BitSim replica) and replays the same 64-test
// blocks over its shard only. Shards are dispatched as tasks on a
// work-stealing JobSystem (the process-wide pool by default), so many
// concurrent experiments multiplex one set of threads. Because detection of
// one fault never depends on another fault's counts, merging the per-shard
// results by shard index reproduces the serial engine bit for bit --
// identical detect_count vectors, identical detection matrices, for any
// shard count and any scheduler interleaving. The serial engine remains the
// reference; one shard short-circuits to it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"
#include "jobs/job_system.hpp"

namespace fbt {

class ParallelBroadsideFaultSim {
 public:
  /// `num_threads` = 0 selects hardware_concurrency (JobSystem's rule); it
  /// names the shard count. Execution multiplexes `jobs` (the process-wide
  /// pool when null); `jobs` must outlive this object. `fault_pack_width`
  /// > 1 switches every shard to the PPSFP engine (threads x pack_width
  /// effective fault parallelism); `flat` optionally shares a pre-built CSR
  /// of `netlist` with the shards (nullptr builds one, once, when packed).
  explicit ParallelBroadsideFaultSim(
      const Netlist& netlist, std::size_t num_threads = 0,
      jobs::JobSystem* jobs = nullptr, std::uint32_t fault_pack_width = 1,
      std::shared_ptr<const FlatFanins> flat = nullptr);

  /// Shard count (>= 1) after resolving the knob.
  std::size_t num_threads() const { return shard_sims_.size(); }

  /// Resolved per-shard fault pack width (>= 1).
  std::uint32_t fault_pack_width() const {
    return shard_sims_[0]->fault_pack_width();
  }

  /// Same contract as BroadsideFaultSim::grade, bit-identical results --
  /// including `provenance`, whose per-shard pieces are merged back into the
  /// canonical order the serial engine produces (first hits sorted by fault
  /// index, per-block drop counts summed across shards).
  std::size_t grade(std::span<const BroadsideTest> tests,
                    const TransitionFaultList& faults,
                    std::span<std::uint32_t> detect_count,
                    std::uint32_t detect_limit = 1,
                    GradeProvenance* provenance = nullptr);

  /// Same contract as BroadsideFaultSim::detection_matrix, bit-identical
  /// rows.
  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const BroadsideTest> tests, const TransitionFaultList& faults);

  /// Bytes owned by the per-worker simulator replicas (resource telemetry).
  std::uint64_t footprint_bytes() const;

 private:
  struct Shard {
    std::size_t begin = 0;  ///< first fault index (inclusive)
    std::size_t end = 0;    ///< last fault index (exclusive)
  };

  /// Contiguous near-equal split of `num_faults` over the workers; shards
  /// past the fault count come back empty.
  std::vector<Shard> make_shards(std::size_t num_faults) const;

  const Netlist* netlist_;
  jobs::JobSystem* jobs_;  ///< not owned; the shared execution substrate
  std::vector<std::unique_ptr<BroadsideFaultSim>> shard_sims_;  // per shard
};

}  // namespace fbt
