// Parallel broadside transition-fault grading.
//
// Shards the fault list into contiguous ranges, one per thread; every worker
// owns a private BroadsideFaultSim (its own BitSim replica) and replays the
// same 64-test blocks over its shard only. Because detection of one fault
// never depends on another fault's counts, merging the per-shard results
// reproduces the serial engine bit for bit: identical detect_count vectors,
// identical detection matrices, for any thread count. The serial engine
// remains the reference; a pool resolved to one thread short-circuits to it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"
#include "util/thread_pool.hpp"

namespace fbt {

class ParallelBroadsideFaultSim {
 public:
  /// `num_threads` = 0 selects hardware_concurrency (ThreadPool's rule).
  explicit ParallelBroadsideFaultSim(const Netlist& netlist,
                                     std::size_t num_threads = 0);

  /// Actual worker count (>= 1) after resolving the knob.
  std::size_t num_threads() const { return pool_.size(); }

  /// Same contract as BroadsideFaultSim::grade, bit-identical results --
  /// including `provenance`, whose per-shard pieces are merged back into the
  /// canonical order the serial engine produces (first hits sorted by fault
  /// index, per-block drop counts summed across shards).
  std::size_t grade(std::span<const BroadsideTest> tests,
                    const TransitionFaultList& faults,
                    std::span<std::uint32_t> detect_count,
                    std::uint32_t detect_limit = 1,
                    GradeProvenance* provenance = nullptr);

  /// Same contract as BroadsideFaultSim::detection_matrix, bit-identical
  /// rows.
  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const BroadsideTest> tests, const TransitionFaultList& faults);

  /// Bytes owned by the per-worker simulator replicas (resource telemetry).
  std::uint64_t footprint_bytes() const;

 private:
  struct Shard {
    std::size_t begin = 0;  ///< first fault index (inclusive)
    std::size_t end = 0;    ///< last fault index (exclusive)
  };

  /// Contiguous near-equal split of `num_faults` over the workers; shards
  /// past the fault count come back empty.
  std::vector<Shard> make_shards(std::size_t num_faults) const;

  const Netlist* netlist_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<BroadsideFaultSim>> shard_sims_;  // per worker
};

}  // namespace fbt
