// The three scan-based two-pattern test types of dissertation §1.3.
//
//  * enhanced scan  -- s1 and s2 are independent (special two-bit scan cells),
//  * skewed load    -- s2 is a one-bit shift of s1 through the scan chains,
//  * broadside      -- s2 is the circuit's response to <s1, v1>.
//
// All three reduce to a BroadsideTest record: enhanced-scan and skewed-load
// tests carry their s2 in state2_override, broadside tests leave it empty.
// This makes the single fault simulator grade all three, which is how the
// coverage comparison of the three styles (bench_scan_types) is produced.
#pragma once

#include <cstdint>
#include <span>

#include "fault/broadside_test.hpp"
#include "netlist/scan.hpp"

namespace fbt {

enum class ScanTestType : std::uint8_t {
  kBroadside,
  kSkewedLoad,
  kEnhancedScan,
};

/// Builds a skewed-load test: s2[chain position 0] = scan_in_bits[chain],
/// s2[position i] = s1[position i-1] within each chain. `scan_in_bits` has
/// one entry per chain (the bit shifted in during the launch shift).
BroadsideTest make_skewed_load_test(const Netlist& netlist,
                                    const ScanChains& scan,
                                    std::span<const std::uint8_t> s1,
                                    std::span<const std::uint8_t> scan_in_bits,
                                    std::span<const std::uint8_t> v1,
                                    std::span<const std::uint8_t> v2);

/// Builds an enhanced-scan test with fully independent states.
BroadsideTest make_enhanced_scan_test(std::span<const std::uint8_t> s1,
                                      std::span<const std::uint8_t> s2,
                                      std::span<const std::uint8_t> v1,
                                      std::span<const std::uint8_t> v2);

}  // namespace fbt
