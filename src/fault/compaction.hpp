// Static test-set compaction by fault simulation (dissertation §4.3's seed
// selection reduction, refs [26][89]).
//
// Two classic passes over an already-generated test set:
//  * reverse-order: simulate tests last-to-first, keeping a test only when it
//    detects a fault no kept test detects;
//  * forward-looking [89]: first compute, for every fault, the earliest test
//    that detects it; a test is essential if it is the earliest detector of
//    some fault; remaining faults are then credited to kept tests greedily.
// Both preserve complete coverage of the original set.
//
// Every pass consumes the detection matrix transposed to per-test fault
// lists. Each entry point exists in two forms: a convenience overload that
// simulates the matrix itself (optionally across `num_threads` workers, 0 =
// hardware concurrency), and an overload taking a precomputed PerTestFaults
// so callers running several passes -- or a flow that already graded the set
// -- pay the fault simulation once.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"
#include "jobs/job_system.hpp"

namespace fbt {

/// per_test[t] lists the indices of the faults test t detects, ascending.
using PerTestFaults = std::vector<std::vector<std::uint32_t>>;

/// Simulates the full detection matrix (no dropping) and transposes it to
/// per-test fault lists. `num_threads` > 1 shards the fault list across a
/// worker pool and `fault_pack_width` > 1 packs faults into bit-lanes inside
/// each shard (PPSFP); the result is bit-identical for any combination.
PerTestFaults detected_by_test(const Netlist& netlist, const TestSet& tests,
                               const TransitionFaultList& faults,
                               std::size_t num_threads = 1,
                               jobs::JobSystem* jobs = nullptr,
                               std::uint32_t fault_pack_width = 1);

/// Indices (into the original set) of the kept tests, ascending.
std::vector<std::size_t> reverse_order_compaction(
    const Netlist& netlist, const TestSet& tests,
    const TransitionFaultList& faults);
std::vector<std::size_t> reverse_order_compaction(const PerTestFaults& per_test,
                                                  std::size_t num_faults);

/// Forward-looking static compaction [89]; usually keeps fewer tests than
/// the reverse-order pass.
std::vector<std::size_t> forward_looking_compaction(
    const Netlist& netlist, const TestSet& tests,
    const TransitionFaultList& faults);
std::vector<std::size_t> forward_looking_compaction(
    const PerTestFaults& per_test, std::size_t num_faults);

/// Drops whole groups (e.g. per-seed segments): group g may be dropped when
/// every fault it detects is also detected by a kept group. `group_of[t]`
/// maps test index to group id (0..num_groups-1). Returns kept group ids,
/// ascending. This is the §4.3 "reduce the number of selected seeds" step.
std::vector<std::size_t> reduce_groups(const Netlist& netlist,
                                       const TestSet& tests,
                                       const TransitionFaultList& faults,
                                       const std::vector<std::size_t>& group_of,
                                       std::size_t num_groups,
                                       std::size_t num_threads = 1,
                                       jobs::JobSystem* jobs = nullptr,
                                       std::uint32_t fault_pack_width = 1);
std::vector<std::size_t> reduce_groups(const PerTestFaults& per_test,
                                       std::size_t num_faults,
                                       const std::vector<std::size_t>& group_of,
                                       std::size_t num_groups);

}  // namespace fbt
