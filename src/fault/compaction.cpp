#include "fault/compaction.hpp"

#include <algorithm>

#include "fault/parallel_fault_sim.hpp"
#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

PerTestFaults detected_by_test(const Netlist& netlist, const TestSet& tests,
                               const TransitionFaultList& faults,
                               std::size_t num_threads, jobs::JobSystem* jobs,
                               std::uint32_t fault_pack_width) {
  ParallelBroadsideFaultSim sim(netlist, num_threads, jobs, fault_pack_width);
  const auto matrix = sim.detection_matrix(tests, faults);
  FBT_OBS_FOOTPRINT("fault.detection_matrix",
                    detection_matrix_footprint_bytes(matrix));
  FBT_OBS_ALLOC_CHARGE(detection_matrix_footprint_bytes(matrix));
  PerTestFaults per_test(tests.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    for (std::size_t w = 0; w < matrix[f].size(); ++w) {
      std::uint64_t bits = matrix[f][w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        per_test[64 * w + static_cast<std::size_t>(b)].push_back(
            static_cast<std::uint32_t>(f));
      }
    }
  }
  return per_test;
}

std::vector<std::size_t> reverse_order_compaction(const PerTestFaults& per_test,
                                                  std::size_t num_faults) {
  std::vector<std::uint8_t> covered(num_faults, 0);
  std::vector<std::size_t> kept;
  for (std::size_t t = per_test.size(); t-- > 0;) {
    bool essential = false;
    for (const std::uint32_t f : per_test[t]) {
      if (!covered[f]) {
        essential = true;
        break;
      }
    }
    if (!essential) continue;
    for (const std::uint32_t f : per_test[t]) covered[f] = 1;
    kept.push_back(t);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

std::vector<std::size_t> reverse_order_compaction(
    const Netlist& netlist, const TestSet& tests,
    const TransitionFaultList& faults) {
  return reverse_order_compaction(detected_by_test(netlist, tests, faults),
                                  faults.size());
}

std::vector<std::size_t> forward_looking_compaction(
    const PerTestFaults& per_test, std::size_t num_faults) {
  // Earliest detector per fault: a test that is the *first* to detect some
  // fault is essential (no earlier test can replace it, and replacing it
  // with a later one cannot shrink the set below this greedy choice).
  constexpr std::uint32_t kNone = ~0u;
  std::vector<std::uint32_t> first_detector(num_faults, kNone);
  for (std::size_t t = 0; t < per_test.size(); ++t) {
    for (const std::uint32_t f : per_test[t]) {
      if (first_detector[f] == kNone) {
        first_detector[f] = static_cast<std::uint32_t>(t);
      }
    }
  }
  std::vector<std::uint8_t> keep(per_test.size(), 0);
  for (std::size_t f = 0; f < num_faults; ++f) {
    if (first_detector[f] != kNone) keep[first_detector[f]] = 1;
  }
  // Reverse sweep with the forward-looking credit: drop kept tests whose
  // faults are all covered by other kept tests.
  std::vector<std::uint32_t> cover_count(num_faults, 0);
  for (std::size_t t = 0; t < per_test.size(); ++t) {
    if (!keep[t]) continue;
    for (const std::uint32_t f : per_test[t]) ++cover_count[f];
  }
  for (std::size_t t = per_test.size(); t-- > 0;) {
    if (!keep[t]) continue;
    bool droppable = true;
    for (const std::uint32_t f : per_test[t]) {
      if (cover_count[f] <= 1) {
        droppable = false;
        break;
      }
    }
    if (!droppable) continue;
    keep[t] = 0;
    for (const std::uint32_t f : per_test[t]) --cover_count[f];
  }
  std::vector<std::size_t> kept;
  for (std::size_t t = 0; t < per_test.size(); ++t) {
    if (keep[t]) kept.push_back(t);
  }
  return kept;
}

std::vector<std::size_t> forward_looking_compaction(
    const Netlist& netlist, const TestSet& tests,
    const TransitionFaultList& faults) {
  return forward_looking_compaction(detected_by_test(netlist, tests, faults),
                                    faults.size());
}

std::vector<std::size_t> reduce_groups(const PerTestFaults& per_test,
                                       std::size_t num_faults,
                                       const std::vector<std::size_t>& group_of,
                                       std::size_t num_groups) {
  require(group_of.size() == per_test.size(), "reduce_groups",
          "group_of must map every test");
  std::vector<std::vector<std::uint32_t>> per_group(num_groups);
  for (std::size_t t = 0; t < per_test.size(); ++t) {
    require(group_of[t] < num_groups, "reduce_groups", "group id out of range");
    auto& bucket = per_group[group_of[t]];
    bucket.insert(bucket.end(), per_test[t].begin(), per_test[t].end());
  }
  for (auto& bucket : per_group) {
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
  }

  // Reverse-order sweep over groups.
  std::vector<std::uint8_t> covered(num_faults, 0);
  std::vector<std::size_t> kept;
  for (std::size_t g = num_groups; g-- > 0;) {
    bool essential = false;
    for (const std::uint32_t f : per_group[g]) {
      if (!covered[f]) {
        essential = true;
        break;
      }
    }
    if (!essential) continue;
    for (const std::uint32_t f : per_group[g]) covered[f] = 1;
    kept.push_back(g);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

std::vector<std::size_t> reduce_groups(const Netlist& netlist,
                                       const TestSet& tests,
                                       const TransitionFaultList& faults,
                                       const std::vector<std::size_t>& group_of,
                                       std::size_t num_groups,
                                       std::size_t num_threads,
                                       jobs::JobSystem* jobs,
                                       std::uint32_t fault_pack_width) {
  FBT_OBS_PHASE("reduce");  // covers the matrix simulation and the sweep
  return reduce_groups(detected_by_test(netlist, tests, faults, num_threads,
                                        jobs, fault_pack_width),
                       faults.size(), group_of, num_groups);
}

}  // namespace fbt
