#include "fault/diagnosis.hpp"

#include <algorithm>

#include "fault/fault_sim.hpp"
#include "util/require.hpp"

namespace fbt {

FaultDictionary::FaultDictionary(const Netlist& netlist, const TestSet& tests,
                                 const TransitionFaultList& faults)
    : num_tests_(tests.size()) {
  BroadsideFaultSim sim(netlist);
  rows_ = sim.detection_matrix(tests, faults);
}

std::vector<std::size_t> FaultDictionary::failing_tests(
    std::size_t fault_index) const {
  require(fault_index < rows_.size(), "FaultDictionary::failing_tests",
          "fault index out of range");
  std::vector<std::size_t> failing;
  for (std::size_t w = 0; w < rows_[fault_index].size(); ++w) {
    std::uint64_t bits = rows_[fault_index][w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      failing.push_back(64 * w + static_cast<std::size_t>(b));
    }
  }
  return failing;
}

std::vector<std::uint8_t> FaultDictionary::observation_for(
    std::size_t fault_index) const {
  std::vector<std::uint8_t> obs(num_tests_, 0);
  for (const std::size_t t : failing_tests(fault_index)) obs[t] = 1;
  return obs;
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    const std::vector<std::uint8_t>& observed, std::size_t top_k) const {
  require(observed.size() == num_tests_, "FaultDictionary::diagnose",
          "observation size must equal the test count");
  // Pack the observation for word-wise comparison.
  const std::size_t words = (num_tests_ + 63) / 64;
  std::vector<std::uint64_t> obs(words, 0);
  for (std::size_t t = 0; t < num_tests_; ++t) {
    if (observed[t]) obs[t / 64] |= 1ULL << (t % 64);
  }

  std::vector<Candidate> candidates(rows_.size());
  for (std::size_t f = 0; f < rows_.size(); ++f) {
    Candidate& c = candidates[f];
    c.fault_index = f;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t predicted = rows_[f][w];
      c.mispredicted_fail += static_cast<std::size_t>(
          __builtin_popcountll(predicted & ~obs[w]));
      c.unexplained_fail += static_cast<std::size_t>(
          __builtin_popcountll(obs[w] & ~predicted));
    }
    c.score = c.mispredicted_fail + c.unexplained_fail;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.fault_index < b.fault_index;
            });
  if (candidates.size() > top_k) candidates.resize(top_k);
  return candidates;
}

}  // namespace fbt
