#include "fault/fault.hpp"

#include "util/require.hpp"

namespace fbt {
namespace {

bool eligible_line(const Netlist& netlist, NodeId id) {
  const GateType t = netlist.type(id);
  return t != GateType::kConst0 && t != GateType::kConst1;
}

std::vector<TransitionFault> all_faults(const Netlist& netlist) {
  std::vector<TransitionFault> faults;
  faults.reserve(2 * netlist.size());
  for (NodeId id = 0; id < netlist.size(); ++id) {
    if (!eligible_line(netlist, id)) continue;
    faults.push_back({id, true});
    faults.push_back({id, false});
  }
  return faults;
}

}  // namespace

std::string fault_name(const Netlist& netlist, const TransitionFault& fault) {
  return std::string(netlist.node_name(fault.line)) +
         (fault.rising ? "/STR" : "/STF");
}

TransitionFaultList TransitionFaultList::uncollapsed(const Netlist& netlist) {
  require(netlist.finalized(), "TransitionFaultList",
          "netlist must be finalized");
  TransitionFaultList list;
  list.faults_ = all_faults(netlist);
  return list;
}

TransitionFaultList TransitionFaultList::collapsed(const Netlist& netlist) {
  require(netlist.finalized(), "TransitionFaultList",
          "netlist must be finalized");
  // A BUF/NOT output fault collapses onto its fanin's fault when the fanin
  // drives nothing else (single fanout): the pair is indistinguishable at
  // every observation point. Representative = the driver (fanin side).
  TransitionFaultList list;
  for (NodeId id = 0; id < netlist.size(); ++id) {
    if (!eligible_line(netlist, id)) continue;
    const Gate& g = netlist.gate(id);
    const bool collapses =
        (g.type == GateType::kBuf || g.type == GateType::kNot) &&
        netlist.fanouts(g.fanins[0]).size() == 1 &&
        eligible_line(netlist, g.fanins[0]) && !netlist.is_output(g.fanins[0]);
    if (collapses) continue;  // represented by the fault on the fanin
    list.faults_.push_back({id, true});
    list.faults_.push_back({id, false});
  }
  return list;
}

TransitionFaultList TransitionFaultList::from_faults(
    std::vector<TransitionFault> faults) {
  TransitionFaultList list;
  list.faults_ = std::move(faults);
  return list;
}

std::size_t TransitionFaultList::index_of(const TransitionFault& fault) const {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (faults_[i] == fault) return i;
  }
  return npos;
}

}  // namespace fbt
