#include "fault/fault_sim.hpp"

#include <algorithm>
#include <cstring>

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fbt {

namespace {

// In-place 64x64 bit-matrix transpose: entry (i, j) -- bit j of word i,
// LSB-first -- swaps with (j, i). (The textbook Hacker's Delight body is
// mirrored here: it transposes about the other diagonal under an LSB-first
// bit convention.) Turns per-fault launch masks (bit t = test) into
// per-test lane words (bit k = fault lane).
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

// LSBs of eight 0/1 bytes gathered into bits 0..7 (byte j -> bit j).
inline std::uint64_t gather8(const std::uint8_t* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return ((x & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
}

// Source-major bit packing of per-test byte vectors: dest[i] bit t =
// ptrs[t][i] for i < n, t < count (bits count..63 zero). A test's 64-source
// run is gathered eight bytes per multiply into one word, and a 64x64
// transpose flips the block test-major -> source-major -- an order of
// magnitude fewer operations than the bit-at-a-time loop it replaces.
void pack_testmajor(const std::uint8_t* const* ptrs, std::size_t count,
                    std::size_t n, std::uint64_t* dest) {
  for (std::size_t i = 0; i < n; i += 64) {
    const std::size_t cols = std::min<std::size_t>(64, n - i);
    std::uint64_t tw[64] = {0};
    for (std::size_t t = 0; t < count; ++t) {
      const std::uint8_t* p = ptrs[t] + i;
      std::uint64_t w = 0;
      std::size_t c = 0;
      for (; c + 8 <= cols; c += 8) w |= gather8(p + c) << c;
      for (; c < cols; ++c) {
        w |= static_cast<std::uint64_t>(p[c] & 1) << c;
      }
      tw[t] = w;
    }
    transpose64(tw);
    for (std::size_t j = 0; j < cols; ++j) dest[i + j] = tw[j];
  }
}

}  // namespace

std::vector<std::uint8_t> second_state(const Netlist& netlist,
                                       const BroadsideTest& test) {
  require(test.scan_state.size() == netlist.num_flops(), "second_state",
          "scan state size mismatch");
  require(test.v1.size() == netlist.num_inputs(), "second_state",
          "v1 size mismatch");
  BitSim sim(netlist);
  for (std::size_t i = 0; i < netlist.num_inputs(); ++i) {
    sim.set_value(netlist.inputs()[i], test.v1[i] ? ~0ULL : 0);
  }
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    sim.set_value(netlist.flops()[i], test.scan_state[i] ? ~0ULL : 0);
  }
  sim.eval();
  std::vector<std::uint8_t> s2(netlist.num_flops());
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    s2[i] = sim.value(netlist.dff_input(netlist.flops()[i])) & 1u;
  }
  return s2;
}

BroadsideFaultSim::BroadsideFaultSim(const Netlist& netlist,
                                     std::uint32_t fault_pack_width,
                                     std::shared_ptr<const FlatFanins> flat)
    : netlist_(&netlist),
      sim_(netlist),
      pack_width_(std::clamp<std::uint32_t>(fault_pack_width, 1, 64)) {
  v1_values_.assign(netlist.size(), 0);
  state2_.assign(netlist.num_flops(), 0);
  if (pack_width_ > 1) {
    packed_ = std::make_unique<PackedFaultProp>(netlist, std::move(flat));
    good2_values_.assign(netlist.size(), 0);
    chunk_sites_.assign(64, 0);
    chunk_fault_.assign(64, 0);
    chunk_pos_.assign(64, 0);
  }
}

void BroadsideFaultSim::load_block(std::span<const BroadsideTest> tests,
                                   std::size_t first, std::size_t count) {
  require(count >= 1 && count <= 64, "BroadsideFaultSim", "bad block size");
  block_mask_ = count == 64 ? ~0ULL : ((1ULL << count) - 1);
  const std::size_t ni = netlist_->num_inputs();
  const std::size_t nf = netlist_->num_flops();
  pack_scratch_.resize(std::max(ni, nf));
  // Bit-packing runs test-major so each test's value vector is read once,
  // sequentially (source-major order would hop across all 64 test objects
  // per source line); see pack_testmajor above.
  const std::uint8_t* ptrs[64];
  // Frame 1: sources are <s1, v1>.
  for (std::size_t t = 0; t < count; ++t) ptrs[t] = tests[first + t].v1.data();
  pack_testmajor(ptrs, count, ni, pack_scratch_.data());
  for (std::size_t i = 0; i < ni; ++i) {
    sim_.set_value(netlist_->inputs()[i], pack_scratch_[i]);
  }
  for (std::size_t t = 0; t < count; ++t) {
    ptrs[t] = tests[first + t].scan_state.data();
  }
  pack_testmajor(ptrs, count, nf, pack_scratch_.data());
  for (std::size_t i = 0; i < nf; ++i) {
    sim_.set_value(netlist_->flops()[i], pack_scratch_[i]);
  }
  FBT_OBS_COUNTER_ADD("fault.blocks_loaded", 1);
  sim_.eval();
  for (NodeId id = 0; id < netlist_->size(); ++id) {
    v1_values_[id] = sim_.value(id);
  }
  sim_.next_state(state2_);

  // State-holding tests override s2 per test (see BroadsideTest).
  for (std::size_t t = 0; t < count; ++t) {
    const auto& ovr = tests[first + t].state2_override;
    if (ovr.empty()) continue;
    require(ovr.size() == netlist_->num_flops(), "BroadsideFaultSim",
            "state2_override size mismatch");
    const std::uint64_t bit = 1ULL << t;
    for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
      if (ovr[i]) {
        state2_[i] |= bit;
      } else {
        state2_[i] &= ~bit;
      }
    }
  }

  // Frame 2: sources are <s2, v2>.
  for (std::size_t t = 0; t < count; ++t) ptrs[t] = tests[first + t].v2.data();
  pack_testmajor(ptrs, count, ni, pack_scratch_.data());
  for (std::size_t i = 0; i < ni; ++i) {
    sim_.set_value(netlist_->inputs()[i], pack_scratch_[i]);
  }
  for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
    sim_.set_value(netlist_->flops()[i], state2_[i]);
  }
  sim_.eval();
}

std::uint64_t BroadsideFaultSim::fault_mask(const TransitionFault& fault) {
  const std::uint64_t w1 = v1_values_[fault.line];
  const std::uint64_t w2 = sim_.value(fault.line);
  // Launch: line holds the initial value under p1 and the final value under
  // p2 (fault-free). STR initial value 0, STF initial value 1.
  const std::uint64_t active =
      block_mask_ & (fault.rising ? (~w1 & w2) : (w1 & ~w2));
  if (active == 0) return 0;
  // Fault effect in frame 2: stuck at the initial value.
  const std::uint64_t forced = fault.rising ? 0 : ~0ULL;
  return active & sim_.fault_propagate(fault.line, forced);
}

void BroadsideFaultSim::bind_packed_block() {
  for (NodeId id = 0; id < netlist_->size(); ++id) {
    good2_values_[id] = sim_.value(id);
  }
  packed_->bind_good_trace(good2_values_);
}

std::size_t BroadsideFaultSim::grade(std::span<const BroadsideTest> tests,
                                     const TransitionFaultList& faults,
                                     std::span<std::uint32_t> detect_count,
                                     std::uint32_t detect_limit,
                                     GradeProvenance* provenance) {
  require(detect_count.size() == faults.size(), "BroadsideFaultSim::grade",
          "detect_count size must equal the fault count");
  require(detect_limit >= 1, "BroadsideFaultSim::grade",
          "detect_limit must be >= 1");
  FBT_OBS_PHASE("grade");
  Timer grade_timer;
  if (provenance != nullptr) {
    provenance->first_hits.clear();
    provenance->blocks.clear();
  }
  // Dense index list of the faults still below the detect limit. A fault
  // that reaches the limit is compacted out, so later blocks touch only
  // pending faults and an exhausted list ends the walk without rescanning
  // the full fault list per block.
  std::vector<std::uint32_t> active;
  active.reserve(faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detect_count[f] < detect_limit) {
      active.push_back(static_cast<std::uint32_t>(f));
    }
  }
  if (pack_width_ > 1) {
    // Translate each fault site into the packed kernel's internal id space
    // once up front; the chunk walk hands propagate_internal() pre-resolved
    // sites instead of paying the lookup per lane per call.
    site_internal_.resize(faults.size());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      site_internal_[f] = packed_->internal_id(faults.fault(f).line);
    }
  }
  std::size_t newly_complete = 0;
  std::size_t tests_loaded = 0;
  std::uint64_t pack_groups = 0;
  std::uint64_t pack_lanes_wasted = 0;
  const std::uint64_t pack_evals_before =
      packed_ != nullptr ? packed_->diff_words_propagated() : 0;
  for (std::size_t first = 0; first < tests.size() && !active.empty();
       first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    load_block(tests, first, count);
    tests_loaded += count;
    std::uint32_t block_newly = 0;
    std::size_t live = 0;
    if (pack_width_ > 1) {
      // PPSFP walk, test-major: transpose the active faults' launch masks
      // into per-test lane words, then pack up to pack_width_ still-needy
      // faults of each test into full lane words (fixed fault groups would
      // leave most lanes idle). Tests run in ascending order with the serial
      // saturation arithmetic, so detect counts and first-detect attribution
      // reproduce the serial engine exactly; see DESIGN.md "PPSFP packed
      // fault grading".
      bind_packed_block();
      block_hits_.assign(faults.size(), 0);
      const std::size_t ngroups = (active.size() + 63) / 64;
      // Every listed fault starts the block short of its limit (grade()
      // compacts saturated faults out of `active`); a lane's needy bit is
      // cleared the moment its credit saturates mid-block, so the chunk
      // walk's AND filters dead lanes without touching the count arrays.
      needy_.assign(ngroups, ~0ULL);
      if ((active.size() & 63) != 0) {
        needy_.back() = (1ULL << (active.size() & 63)) - 1;
      }
      launch_tx_.assign(ngroups * 64, 0);
      for (std::size_t g = 0; g < ngroups; ++g) {
        std::uint64_t ta[64] = {0};
        const std::size_t base = g * 64;
        const std::size_t glanes =
            std::min<std::size_t>(64, active.size() - base);
        for (std::size_t k = 0; k < glanes; ++k) {
          ta[k] = launch_mask(faults.fault(active[base + k]));
        }
        transpose64(ta);
        // Test-major layout: the per-test chunk walk below streams one
        // contiguous row instead of striding across groups.
        for (std::size_t t = 0; t < count; ++t) {
          launch_tx_[t * ngroups + g] = ta[t];
        }
      }
      for (std::size_t t = 0; t < count; ++t) {
        std::size_t lanes = 0;
        // Propagate one packed chunk and credit the detected lanes.
        const auto flush = [&](std::size_t nlanes) {
          ++pack_groups;
          pack_lanes_wasted += pack_width_ - nlanes;
          const std::uint64_t a =
              nlanes == 64 ? ~0ULL : ((1ULL << nlanes) - 1);
          std::uint64_t det = packed_->propagate_internal(
              std::span<const NodeId>(chunk_sites_.data(), nlanes), a,
              static_cast<unsigned>(t));
          while (det != 0) {
            const unsigned k = static_cast<unsigned>(__builtin_ctzll(det));
            det &= det - 1;
            const std::uint32_t f = chunk_fault_[k];
            if (block_hits_[f]++ == 0 && provenance != nullptr &&
                detect_count[f] == 0) {
              provenance->first_hits.push_back(
                  {f, static_cast<std::uint32_t>(first + t)});
            }
            if (detect_count[f] + block_hits_[f] >= detect_limit) {
              const std::uint32_t pos = chunk_pos_[k];
              needy_[pos >> 6] &= ~(1ULL << (pos & 63));
            }
          }
        };
        for (std::size_t g = 0; g < ngroups; ++g) {
          // Lanes whose fault saturated at an earlier test of this block
          // are masked out wholesale; skipping them reproduces the serial
          // engine's min(limit, count + popcount) exactly -- it cannot tell
          // the difference.
          std::uint64_t w = launch_tx_[t * ngroups + g] & needy_[g];
          while (w != 0) {
            const unsigned k = static_cast<unsigned>(__builtin_ctzll(w));
            w &= w - 1;
            const std::uint32_t pos = static_cast<std::uint32_t>(g * 64 + k);
            const std::uint32_t f = active[pos];
            chunk_sites_[lanes] = site_internal_[f];
            chunk_fault_[lanes] = f;
            chunk_pos_[lanes] = pos;
            if (++lanes == pack_width_) {
              flush(lanes);
              lanes = 0;
            }
          }
        }
        if (lanes != 0) flush(lanes);
      }
      for (const std::uint32_t f : active) {
        if (block_hits_[f] != 0) {
          detect_count[f] =
              std::min(detect_limit, detect_count[f] + block_hits_[f]);
          if (detect_count[f] >= detect_limit) {
            ++newly_complete;  // dropped: not carried into the next block
            ++block_newly;
            continue;
          }
        }
        active[live++] = f;
      }
    } else {
      for (const std::uint32_t f : active) {
        const std::uint64_t mask = fault_mask(faults.fault(f));
        if (mask != 0) {
          if (provenance != nullptr && detect_count[f] == 0) {
            provenance->first_hits.push_back(
                {f, static_cast<std::uint32_t>(first) +
                        static_cast<std::uint32_t>(__builtin_ctzll(mask))});
          }
          const auto hits =
              static_cast<std::uint32_t>(__builtin_popcountll(mask));
          detect_count[f] = std::min(detect_limit, detect_count[f] + hits);
          if (detect_count[f] >= detect_limit) {
            ++newly_complete;  // dropped: not carried into the next block
            ++block_newly;
            continue;
          }
        }
        active[live++] = f;
      }
    }
    active.resize(live);
    if (provenance != nullptr) {
      provenance->blocks.push_back({static_cast<std::uint32_t>(first),
                                    static_cast<std::uint32_t>(count),
                                    block_newly});
    }
  }
  if (provenance != nullptr) {
    // Canonical order: the in-loop order is (block, active-list position),
    // which a sharded merge cannot reproduce; fault index can.
    std::sort(provenance->first_hits.begin(), provenance->first_hits.end(),
              [](const FirstDetectHit& a, const FirstDetectHit& b) {
                return a.fault < b.fault;
              });
  }
  // Count only tests actually loaded: the walk exits early once the active
  // list empties, so tests.size() would overcount.
  FBT_OBS_COUNTER_ADD("fault.tests_graded", tests_loaded);
  FBT_OBS_COUNTER_ADD("fault.faults_dropped", newly_complete);
  if (packed_ != nullptr) {
    FBT_OBS_COUNTER_ADD("fault.pack_groups_simulated", pack_groups);
    FBT_OBS_COUNTER_ADD("fault.pack_lanes_wasted", pack_lanes_wasted);
    FBT_OBS_COUNTER_ADD("fault.pack_diff_words_propagated",
                        packed_->diff_words_propagated() - pack_evals_before);
  }
  FBT_OBS_HIST_RECORD("fault.grade_duration_ms", grade_timer.ms());
  return newly_complete;
}

std::vector<std::vector<std::uint64_t>> BroadsideFaultSim::detection_matrix(
    std::span<const BroadsideTest> tests, const TransitionFaultList& faults) {
  const std::size_t words = (tests.size() + 63) / 64;
  std::vector<std::vector<std::uint64_t>> matrix(
      faults.size(), std::vector<std::uint64_t>(words, 0));
  std::uint64_t pack_groups = 0;
  const std::uint64_t pack_evals_before =
      packed_ != nullptr ? packed_->diff_words_propagated() : 0;
  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    load_block(tests, first, count);
    if (pack_width_ > 1) {
      // Test-major PPSFP, as in grade() but with no dropping: every
      // (fault, launching test) pair is propagated and lands in its row bit.
      bind_packed_block();
      if (first == 0) {
        site_internal_.resize(faults.size());
        for (std::size_t f = 0; f < faults.size(); ++f) {
          site_internal_[f] = packed_->internal_id(faults.fault(f).line);
        }
      }
      const std::size_t ngroups = (faults.size() + 63) / 64;
      launch_tx_.assign(ngroups * 64, 0);
      for (std::size_t g = 0; g < ngroups; ++g) {
        std::uint64_t ta[64] = {0};
        const std::size_t base = g * 64;
        const std::size_t glanes =
            std::min<std::size_t>(64, faults.size() - base);
        for (std::size_t k = 0; k < glanes; ++k) {
          ta[k] = launch_mask(faults.fault(base + k));
        }
        transpose64(ta);
        for (std::size_t t = 0; t < count; ++t) {
          launch_tx_[t * ngroups + g] = ta[t];
        }
      }
      for (std::size_t t = 0; t < count; ++t) {
        std::size_t lanes = 0;
        const auto flush = [&](std::size_t nlanes) {
          ++pack_groups;
          const std::uint64_t a =
              nlanes == 64 ? ~0ULL : ((1ULL << nlanes) - 1);
          std::uint64_t det = packed_->propagate_internal(
              std::span<const NodeId>(chunk_sites_.data(), nlanes), a,
              static_cast<unsigned>(t));
          while (det != 0) {
            const unsigned k = static_cast<unsigned>(__builtin_ctzll(det));
            det &= det - 1;
            matrix[chunk_fault_[k]][first / 64] |= 1ULL << t;
          }
        };
        for (std::size_t g = 0; g < ngroups; ++g) {
          std::uint64_t w = launch_tx_[t * ngroups + g];
          while (w != 0) {
            const unsigned k = static_cast<unsigned>(__builtin_ctzll(w));
            w &= w - 1;
            const std::uint32_t f = static_cast<std::uint32_t>(g * 64 + k);
            chunk_sites_[lanes] = site_internal_[f];
            chunk_fault_[lanes] = f;
            if (++lanes == pack_width_) {
              flush(lanes);
              lanes = 0;
            }
          }
        }
        if (lanes != 0) flush(lanes);
      }
    } else {
      for (std::size_t f = 0; f < faults.size(); ++f) {
        matrix[f][first / 64] = fault_mask(faults.fault(f));
      }
    }
  }
  if (packed_ != nullptr) {
    FBT_OBS_COUNTER_ADD("fault.pack_groups_simulated", pack_groups);
    FBT_OBS_COUNTER_ADD("fault.pack_diff_words_propagated",
                        packed_->diff_words_propagated() - pack_evals_before);
  }
  return matrix;
}

bool BroadsideFaultSim::detects(const BroadsideTest& test,
                                const TransitionFault& fault) {
  load_block(std::span(&test, 1), 0, 1);
  if (pack_width_ > 1) {
    bind_packed_block();
    if ((launch_mask(fault) & 1ULL) == 0) return false;
    const NodeId site = fault.line;
    return (packed_->propagate(std::span(&site, 1), 1ULL, 0) & 1ULL) != 0;
  }
  return (fault_mask(fault) & 1ULL) != 0;
}

}  // namespace fbt
