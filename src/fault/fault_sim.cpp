#include "fault/fault_sim.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fbt {

std::vector<std::uint8_t> second_state(const Netlist& netlist,
                                       const BroadsideTest& test) {
  require(test.scan_state.size() == netlist.num_flops(), "second_state",
          "scan state size mismatch");
  require(test.v1.size() == netlist.num_inputs(), "second_state",
          "v1 size mismatch");
  BitSim sim(netlist);
  for (std::size_t i = 0; i < netlist.num_inputs(); ++i) {
    sim.set_value(netlist.inputs()[i], test.v1[i] ? ~0ULL : 0);
  }
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    sim.set_value(netlist.flops()[i], test.scan_state[i] ? ~0ULL : 0);
  }
  sim.eval();
  std::vector<std::uint8_t> s2(netlist.num_flops());
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    s2[i] = sim.value(netlist.dff_input(netlist.flops()[i])) & 1u;
  }
  return s2;
}

BroadsideFaultSim::BroadsideFaultSim(const Netlist& netlist)
    : netlist_(&netlist), sim_(netlist) {
  v1_values_.assign(netlist.size(), 0);
  state2_.assign(netlist.num_flops(), 0);
}

void BroadsideFaultSim::load_block(std::span<const BroadsideTest> tests,
                                   std::size_t first, std::size_t count) {
  require(count >= 1 && count <= 64, "BroadsideFaultSim", "bad block size");
  block_mask_ = count == 64 ? ~0ULL : ((1ULL << count) - 1);
  // Frame 1: sources are <s1, v1>.
  for (std::size_t i = 0; i < netlist_->num_inputs(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t t = 0; t < count; ++t) {
      if (tests[first + t].v1[i]) word |= 1ULL << t;
    }
    sim_.set_value(netlist_->inputs()[i], word);
  }
  for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t t = 0; t < count; ++t) {
      if (tests[first + t].scan_state[i]) word |= 1ULL << t;
    }
    sim_.set_value(netlist_->flops()[i], word);
  }
  FBT_OBS_COUNTER_ADD("fault.blocks_loaded", 1);
  sim_.eval();
  for (NodeId id = 0; id < netlist_->size(); ++id) {
    v1_values_[id] = sim_.value(id);
  }
  sim_.next_state(state2_);

  // State-holding tests override s2 per test (see BroadsideTest).
  for (std::size_t t = 0; t < count; ++t) {
    const auto& ovr = tests[first + t].state2_override;
    if (ovr.empty()) continue;
    require(ovr.size() == netlist_->num_flops(), "BroadsideFaultSim",
            "state2_override size mismatch");
    const std::uint64_t bit = 1ULL << t;
    for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
      if (ovr[i]) {
        state2_[i] |= bit;
      } else {
        state2_[i] &= ~bit;
      }
    }
  }

  // Frame 2: sources are <s2, v2>.
  for (std::size_t i = 0; i < netlist_->num_inputs(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t t = 0; t < count; ++t) {
      if (tests[first + t].v2[i]) word |= 1ULL << t;
    }
    sim_.set_value(netlist_->inputs()[i], word);
  }
  for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
    sim_.set_value(netlist_->flops()[i], state2_[i]);
  }
  sim_.eval();
}

std::uint64_t BroadsideFaultSim::fault_mask(const TransitionFault& fault) {
  const std::uint64_t w1 = v1_values_[fault.line];
  const std::uint64_t w2 = sim_.value(fault.line);
  // Launch: line holds the initial value under p1 and the final value under
  // p2 (fault-free). STR initial value 0, STF initial value 1.
  const std::uint64_t active =
      block_mask_ & (fault.rising ? (~w1 & w2) : (w1 & ~w2));
  if (active == 0) return 0;
  // Fault effect in frame 2: stuck at the initial value.
  const std::uint64_t forced = fault.rising ? 0 : ~0ULL;
  return active & sim_.fault_propagate(fault.line, forced);
}

std::size_t BroadsideFaultSim::grade(std::span<const BroadsideTest> tests,
                                     const TransitionFaultList& faults,
                                     std::span<std::uint32_t> detect_count,
                                     std::uint32_t detect_limit,
                                     GradeProvenance* provenance) {
  require(detect_count.size() == faults.size(), "BroadsideFaultSim::grade",
          "detect_count size must equal the fault count");
  require(detect_limit >= 1, "BroadsideFaultSim::grade",
          "detect_limit must be >= 1");
  FBT_OBS_PHASE("grade");
  Timer grade_timer;
  if (provenance != nullptr) {
    provenance->first_hits.clear();
    provenance->blocks.clear();
  }
  // Dense index list of the faults still below the detect limit. A fault
  // that reaches the limit is compacted out, so later blocks touch only
  // pending faults and an exhausted list ends the walk without rescanning
  // the full fault list per block.
  std::vector<std::uint32_t> active;
  active.reserve(faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detect_count[f] < detect_limit) {
      active.push_back(static_cast<std::uint32_t>(f));
    }
  }
  std::size_t newly_complete = 0;
  for (std::size_t first = 0; first < tests.size() && !active.empty();
       first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    load_block(tests, first, count);
    std::uint32_t block_newly = 0;
    std::size_t live = 0;
    for (const std::uint32_t f : active) {
      const std::uint64_t mask = fault_mask(faults.fault(f));
      if (mask != 0) {
        if (provenance != nullptr && detect_count[f] == 0) {
          provenance->first_hits.push_back(
              {f, static_cast<std::uint32_t>(first) +
                      static_cast<std::uint32_t>(__builtin_ctzll(mask))});
        }
        const auto hits =
            static_cast<std::uint32_t>(__builtin_popcountll(mask));
        detect_count[f] = std::min(detect_limit, detect_count[f] + hits);
        if (detect_count[f] >= detect_limit) {
          ++newly_complete;  // dropped: not carried into the next block
          ++block_newly;
          continue;
        }
      }
      active[live++] = f;
    }
    active.resize(live);
    if (provenance != nullptr) {
      provenance->blocks.push_back({static_cast<std::uint32_t>(first),
                                    static_cast<std::uint32_t>(count),
                                    block_newly});
    }
  }
  if (provenance != nullptr) {
    // Canonical order: the in-loop order is (block, active-list position),
    // which a sharded merge cannot reproduce; fault index can.
    std::sort(provenance->first_hits.begin(), provenance->first_hits.end(),
              [](const FirstDetectHit& a, const FirstDetectHit& b) {
                return a.fault < b.fault;
              });
  }
  FBT_OBS_COUNTER_ADD("fault.tests_graded", tests.size());
  FBT_OBS_COUNTER_ADD("fault.faults_dropped", newly_complete);
  FBT_OBS_HIST_RECORD("fault.grade_duration_ms", grade_timer.ms());
  return newly_complete;
}

std::vector<std::vector<std::uint64_t>> BroadsideFaultSim::detection_matrix(
    std::span<const BroadsideTest> tests, const TransitionFaultList& faults) {
  const std::size_t words = (tests.size() + 63) / 64;
  std::vector<std::vector<std::uint64_t>> matrix(
      faults.size(), std::vector<std::uint64_t>(words, 0));
  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    load_block(tests, first, count);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      matrix[f][first / 64] = fault_mask(faults.fault(f));
    }
  }
  return matrix;
}

bool BroadsideFaultSim::detects(const BroadsideTest& test,
                                const TransitionFault& fault) {
  load_block(std::span(&test, 1), 0, 1);
  return (fault_mask(fault) & 1ULL) != 0;
}

}  // namespace fbt
