// Fault dictionary and diagnosis (§4.1's motivation: "detecting such faults
// can be important for failure diagnosis and process improvement").
//
// The dictionary stores, per modelled transition fault, the set of tests of
// a given test set that detect it (one row of the detection matrix). Given
// the failing-test set observed on a defective part, diagnosis ranks the
// modelled faults by agreement: a candidate is penalized for every predicted
// failure that passed (strong evidence against, under full-observability
// assumptions) and for every observed failure it does not predict.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"

namespace fbt {

class FaultDictionary {
 public:
  /// Builds the dictionary by simulating every fault under every test.
  FaultDictionary(const Netlist& netlist, const TestSet& tests,
                  const TransitionFaultList& faults);

  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_faults() const { return rows_.size(); }

  /// Tests (indices) predicted to fail under fault `f`.
  std::vector<std::size_t> failing_tests(std::size_t fault_index) const;

  /// The observed failing-test set a part with fault `f` would show (used by
  /// tests and the example to synthesize observations).
  std::vector<std::uint8_t> observation_for(std::size_t fault_index) const;

  struct Candidate {
    std::size_t fault_index = 0;
    std::size_t mispredicted_fail = 0;  ///< predicted fail, observed pass
    std::size_t unexplained_fail = 0;   ///< observed fail, not predicted
    std::size_t score = 0;              ///< mispredicted + unexplained
  };

  /// Ranks all faults by ascending score against an observation (one 0/1
  /// entry per test; 1 = failed). Ties broken by fault index.
  std::vector<Candidate> diagnose(const std::vector<std::uint8_t>& observed,
                                  std::size_t top_k = 10) const;

 private:
  std::size_t num_tests_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;  ///< per fault, test bitmask
};

}  // namespace fbt
