// Gate-level builders for the emitted BIST hardware (dissertation §4.4).
//
// Each builder synthesizes one RTL module of the on-chip generation logic as
// a structural fbt::Netlist -- flip-flops plus primitive gates -- so that the
// Verilog writer can emit it and the inventory/consistency checks can count
// its flops and gates directly. The controller FSM, the counters, the seed
// ROM, the apply/hold strobes, and the clock-gating muxes are all expressed
// as explicit gates; there is no behavioral Verilog beyond the shared
// fbt_dff cell model.
//
// All modules are clocked by the single `clk` port the Verilog writer adds;
// "clock gating" is implemented as recirculating muxes on the D inputs
// (synthesis-safe, cycle-equivalent to gating the clock of Figs. 4.2/4.10).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bist/tpg.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan.hpp"

namespace fbt {

/// Everything the controller module needs to know about the test plan. The
/// seed ROM stores the *effective* seeds (masked to the LFSR width, zero
/// replaced by 1 -- Lfsr::seed's semantics).
struct ControllerSpec {
  std::size_t shift_register_size = 0;  ///< SR-init phase length (>= 1)
  std::size_t scan_length = 0;          ///< Lsc (>= 1)
  unsigned q = 1;
  unsigned lfsr_bits = 32;
  /// Per sequence: (effective seed, segment length) per segment.
  std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>> sequences;

  // Counter widths (chosen by the emitter to match the hardware plan).
  unsigned cycle_counter_bits = 1;
  unsigned shift_counter_bits = 1;
  unsigned segment_counter_bits = 1;
  unsigned sequence_counter_bits = 1;
  unsigned srinit_counter_bits = 1;

  // State holding (§4.5): 0 hold sets disables the hold machinery.
  unsigned hold_period_log2 = 0;
  std::size_t num_hold_sets = 0;
  unsigned set_counter_bits = 0;
  /// Per sequence: hold-set index or kNoHoldSet; shorter than sequences
  /// means the remaining sequences run unheld.
  std::vector<std::size_t> hold_set_of_sequence;
};

/// Fibonacci LFSR with parallel seed load (Fig. 4.3). Ports: en, load,
/// s_0..s_{w-1}; output sout = Q[w-2], the value the serial output will show
/// *after* the pending step -- the shift register and the biasing network
/// read the D-side of the TPG so that a flat (single-clock-domain) RTL model
/// matches the behavioral clock-then-read sequence exactly.
Netlist build_lfsr_module(unsigned stages);

/// Serial shift register of the TPG (Fig. 4.8). Ports: en, sin; outputs
/// q_0..q_{size-2} (the last stage feeds nothing downstream).
Netlist build_shiftreg_module(std::size_t size);

/// Input-cube biasing network (Fig. 4.8): per primary input an m-input AND
/// (C(i)=0), OR (C(i)=1), or buffer (X) over the shift register's D-side
/// values d_0..d_{size-1}. Outputs pi_0..pi_{N_PI-1}.
Netlist build_bias_module(const Tpg& tpg);

/// MISR with a front-end fold mux (Fig. 4.4): when sel=1 the primary-output
/// response p_* folds onto the stages, when sel=0 the scan-out bits c_* do.
Netlist build_misr_module(unsigned stages, std::size_t num_pos,
                          std::size_t num_chains);

/// The controller FSM of Fig. 4.2 plus the counters of Fig. 4.6, the seed
/// ROM, and (optionally) the hold strobe/set decoder of Figs. 4.11/4.13, as
/// one-hot synchronous logic. Output ports, in marking order: mode_init,
/// mode_seed, mode_srinit, mode_apply, mode_shift, done, capture, tpg_en,
/// seed_load, ce, scan_en, misr_en, misr_sel, seed_0..seed_{w-1},
/// hold_0..hold_{H-1}.
Netlist build_controller_module(const ControllerSpec& spec);

/// Copy of the CUT with the test access stitched in: new inputs fbt_ce,
/// fbt_scan_en, fbt_scan_in_<ch> and (per hold set) fbt_hold_<k>; new
/// outputs fbt_scan_out_<ch>. Node ids of the original netlist are preserved.
/// The scan path implements the circular shift of Fig. 4.5 with the rotation
/// order the behavioral session observes (last flop first); the hold inputs
/// recirculate the held flops' values (Fig. 4.10's gating, as muxes).
Netlist build_cut_wrapper(const Netlist& cut, const ScanChains& scan,
                          const std::vector<std::vector<std::size_t>>& hold_sets);

}  // namespace fbt
