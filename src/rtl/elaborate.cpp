#include "rtl/elaborate.hpp"

#include <cctype>
#include <map>
#include <optional>

#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

// ---- tokenizer -----------------------------------------------------------

struct Tokenizer {
  const std::string& text;
  std::size_t pos = 0;

  explicit Tokenizer(const std::string& t) : text(t) {}

  void skip_space() {
    while (pos < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text[pos] == '/' && pos + 1 < text.size() &&
                 text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_space();
    return pos >= text.size();
  }

  std::string next() {
    skip_space();
    require(pos < text.size(), "elaborate_verilog", "unexpected end of input");
    const char c = text[pos];
    const auto word_char = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
             ch == '$' || ch == '\'';
    };
    if (word_char(c)) {
      const std::size_t start = pos;
      while (pos < text.size() && word_char(text[pos])) ++pos;
      return text.substr(start, pos - start);
    }
    ++pos;
    return std::string(1, c);
  }

  std::string expect(const char* what) {
    const std::string t = next();
    require(t == what, "elaborate_verilog",
            ("expected '" + std::string(what) + "', got '" + t + "'").c_str());
    return t;
  }
};

// ---- parsed module -------------------------------------------------------

struct PGate {
  GateType type;
  std::string out;
  std::vector<std::string> ins;
};
struct PDff {
  std::string d, q;
};
struct PAssign {
  std::string lhs, rhs;  // rhs: net name, "1'b0", or "1'b1"
};
struct PInst {
  std::string module, name;
  std::vector<std::pair<std::string, std::string>> conns;  // port -> net
};

struct PModule {
  std::string name;
  std::vector<std::string> inputs, outputs, wires;
  std::vector<PGate> gates;
  std::vector<PDff> dffs;
  std::vector<PAssign> assigns;
  std::vector<PInst> insts;
};

std::optional<GateType> primitive_type(const std::string& word) {
  if (word == "buf") return GateType::kBuf;
  if (word == "not") return GateType::kNot;
  if (word == "and") return GateType::kAnd;
  if (word == "nand") return GateType::kNand;
  if (word == "or") return GateType::kOr;
  if (word == "nor") return GateType::kNor;
  if (word == "xor") return GateType::kXor;
  if (word == "xnor") return GateType::kXnor;
  return std::nullopt;
}

void parse_name_list(Tokenizer& tok, std::vector<std::string>& into) {
  for (;;) {
    into.push_back(tok.next());
    const std::string sep = tok.next();
    if (sep == ";") return;
    require(sep == ",", "elaborate_verilog", "expected ',' or ';'");
  }
}

PModule parse_module(Tokenizer& tok) {
  PModule m;
  m.name = tok.next();
  tok.expect("(");
  // Port list: names only (the writer emits non-ANSI headers).
  for (std::string t = tok.next(); t != ")"; t = tok.next()) {
    require(t == "," || t != ";", "elaborate_verilog", "bad port list");
  }
  tok.expect(";");
  for (;;) {
    const std::string word = tok.next();
    if (word == "endmodule") return m;
    if (word == "input") {
      parse_name_list(tok, m.inputs);
    } else if (word == "output") {
      parse_name_list(tok, m.outputs);
    } else if (word == "wire") {
      parse_name_list(tok, m.wires);
    } else if (word == "assign") {
      PAssign a;
      a.lhs = tok.next();
      tok.expect("=");
      a.rhs = tok.next();
      tok.expect(";");
      m.assigns.push_back(std::move(a));
    } else if (const auto prim = primitive_type(word)) {
      tok.next();  // instance name (unused)
      tok.expect("(");
      std::vector<std::string> nets;
      for (;;) {
        nets.push_back(tok.next());
        const std::string sep = tok.next();
        if (sep == ")") break;
        require(sep == ",", "elaborate_verilog", "bad gate connection list");
      }
      tok.expect(";");
      require(nets.size() >= 2, "elaborate_verilog", "gate with no fanin");
      PGate g;
      g.type = *prim;
      g.out = nets[0];
      g.ins.assign(nets.begin() + 1, nets.end());
      m.gates.push_back(std::move(g));
    } else {
      // Module or fbt_dff instance with named connections.
      PInst inst;
      inst.module = word;
      inst.name = tok.next();
      tok.expect("(");
      for (;;) {
        tok.expect(".");
        const std::string port = tok.next();
        tok.expect("(");
        const std::string net = tok.next();
        tok.expect(")");
        inst.conns.emplace_back(port, net);
        const std::string sep = tok.next();
        if (sep == ")") break;
        require(sep == ",", "elaborate_verilog", "bad instance connections");
      }
      tok.expect(";");
      if (inst.module == "fbt_dff") {
        PDff dff;
        for (const auto& [port, net] : inst.conns) {
          if (port == "d") dff.d = net;
          if (port == "q") dff.q = net;
        }
        require(!dff.d.empty() && !dff.q.empty(), "elaborate_verilog",
                "fbt_dff instance missing d/q");
        m.dffs.push_back(std::move(dff));
      } else {
        m.insts.push_back(std::move(inst));
      }
    }
  }
}

void skip_module_body(Tokenizer& tok) {
  while (tok.next() != "endmodule") {
  }
}

// ---- flattening ----------------------------------------------------------

struct Flattener {
  const std::map<std::string, PModule>& modules;

  // Union-find over hierarchical net keys.
  std::unordered_map<std::string, int> key_id;
  std::vector<int> parent;
  std::vector<std::string> key_name;

  struct FlatGate {
    GateType type;
    int out;
    std::vector<int> ins;
  };
  struct FlatDff {
    int d, q;
  };
  std::vector<FlatGate> gates;
  std::vector<FlatDff> dffs;

  explicit Flattener(const std::map<std::string, PModule>& mods)
      : modules(mods) {}

  int key(const std::string& name) {
    const auto [it, inserted] =
        key_id.emplace(name, static_cast<int>(parent.size()));
    if (inserted) {
      parent.push_back(it->second);
      key_name.push_back(name);
    }
    return it->second;
  }

  int find(int a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  }

  void unite(int a, int b) { parent[find(a)] = find(b); }

  void instantiate(const std::string& mod_name, const std::string& prefix,
                   const std::unordered_map<std::string, int>& binds) {
    const auto it = modules.find(mod_name);
    require(it != modules.end(), "elaborate_verilog",
            ("unknown module '" + mod_name + "'").c_str());
    const PModule& m = it->second;
    const auto local = [&](const std::string& net) {
      if (net == "1'b0" || net == "1'b1") {
        // A constant literal in a connection position gets its own node.
        const int id = key(prefix + "$const$" + std::to_string(gates.size()));
        gates.push_back({net == "1'b1" ? GateType::kConst1 : GateType::kConst0,
                         id,
                         {}});
        return id;
      }
      return key(prefix + net);
    };
    for (const auto& [port, bound] : binds) {
      unite(key(prefix + port), bound);
    }
    for (const PAssign& a : m.assigns) {
      if (a.rhs == "1'b0" || a.rhs == "1'b1") {
        gates.push_back(
            {a.rhs == "1'b1" ? GateType::kConst1 : GateType::kConst0,
             local(a.lhs),
             {}});
      } else {
        unite(local(a.lhs), local(a.rhs));
      }
    }
    for (const PGate& g : m.gates) {
      FlatGate fg;
      fg.type = g.type;
      fg.out = local(g.out);
      for (const std::string& in : g.ins) fg.ins.push_back(local(in));
      gates.push_back(std::move(fg));
    }
    for (const PDff& d : m.dffs) {
      dffs.push_back({local(d.d), local(d.q)});
    }
    for (const PInst& inst : m.insts) {
      std::unordered_map<std::string, int> child_binds;
      for (const auto& [port, net] : inst.conns) {
        if (port == "clk") continue;  // the single clock is implicit
        child_binds.emplace(port, local(net));
      }
      instantiate(inst.module, prefix + inst.name + "__", child_binds);
    }
  }
};

}  // namespace

RtlDesign elaborate_verilog(const std::string& text, const std::string& top) {
  std::map<std::string, PModule> modules;
  Tokenizer tok(text);
  while (!tok.eof()) {
    tok.expect("module");
    // Peek the module name to special-case the behavioral fbt_dff cell.
    const std::size_t name_pos = tok.pos;
    const std::string name = tok.next();
    if (name == "fbt_dff") {
      skip_module_body(tok);
      continue;
    }
    tok.pos = name_pos;
    PModule m = parse_module(tok);
    require(modules.emplace(m.name, m).second, "elaborate_verilog",
            ("duplicate module '" + m.name + "'").c_str());
  }
  require(modules.count(top) != 0, "elaborate_verilog",
          ("top module '" + top + "' not found").c_str());

  Flattener flat(modules);
  flat.instantiate(top, "", {});

  // Group keys by their union-find root; pick the shortest (then
  // lexicographically smallest) alias as the canonical node name, which
  // prefers top-level wires over instance-path names.
  std::unordered_map<int, std::vector<int>> members;
  for (int id = 0; id < static_cast<int>(flat.parent.size()); ++id) {
    members[flat.find(id)].push_back(id);
  }
  const int clk_root =
      flat.key_id.count("clk") != 0 ? flat.find(flat.key_id.at("clk")) : -1;

  std::unordered_map<int, std::string> canonical;
  for (const auto& [root, ids] : members) {
    const std::string* best = nullptr;
    for (const int id : ids) {
      const std::string& name = flat.key_name[id];
      if (best == nullptr || name.size() < best->size() ||
          (name.size() == best->size() && name < *best)) {
        best = &name;
      }
    }
    canonical[root] = *best;
  }

  // Identify each root's driver.
  std::unordered_map<int, int> dff_of;        // q root -> dff index
  std::unordered_map<int, std::size_t> gate_of;  // out root -> gate index
  for (std::size_t i = 0; i < flat.dffs.size(); ++i) {
    const int root = flat.find(flat.dffs[i].q);
    require(dff_of.emplace(root, static_cast<int>(i)).second &&
                gate_of.count(root) == 0,
            "elaborate_verilog", "multiply-driven net (flop output)");
  }
  for (std::size_t i = 0; i < flat.gates.size(); ++i) {
    const int root = flat.find(flat.gates[i].out);
    require(gate_of.emplace(root, i).second && dff_of.count(root) == 0,
            "elaborate_verilog", "multiply-driven net (gate output)");
  }

  RtlDesign design{Netlist("flat_" + top), {}};
  std::unordered_map<int, NodeId> node_of;
  for (std::size_t i = 0; i < flat.dffs.size(); ++i) {
    const int root = flat.find(flat.dffs[i].q);
    if (node_of.count(root) == 0) {
      node_of.emplace(root, design.netlist.add_dff(canonical.at(root)));
    }
  }
  // Top-level input ports become primary inputs (the single clock excluded);
  // the emitted BIST top has none, but this lets the elaborator round-trip a
  // bare CUT module written by write_verilog.
  for (const std::string& in : modules.at(top).inputs) {
    if (in == "clk") continue;
    const int root = flat.find(flat.key_id.at(in));
    require(dff_of.count(root) == 0 && gate_of.count(root) == 0,
            "elaborate_verilog", "top-level input is also driven internally");
    if (node_of.count(root) == 0) {
      node_of.emplace(root, design.netlist.add_input(canonical.at(root)));
    }
  }
  // Add gates in dependency order (fixpoint, mirroring the .bench reader).
  std::vector<char> placed(flat.gates.size(), 0);
  std::size_t remaining = flat.gates.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < flat.gates.size(); ++i) {
      if (placed[i]) continue;
      const Flattener::FlatGate& g = flat.gates[i];
      bool ready = true;
      std::vector<NodeId> fanins;
      for (const int in : g.ins) {
        const auto it = node_of.find(flat.find(in));
        if (it == node_of.end()) {
          ready = false;
          break;
        }
        fanins.push_back(it->second);
      }
      if (!ready) continue;
      const int root = flat.find(g.out);
      node_of.emplace(root,
                      design.netlist.add_gate(g.type, canonical.at(root),
                                              std::move(fanins)));
      placed[i] = 1;
      --remaining;
      progress = true;
    }
    require(progress, "elaborate_verilog",
            "combinational cycle or undriven net in the flattened design");
  }
  for (const Flattener::FlatDff& d : flat.dffs) {
    const auto it = node_of.find(flat.find(d.d));
    require(it != node_of.end(), "elaborate_verilog", "undriven flop D input");
    design.netlist.set_dff_input(node_of.at(flat.find(d.q)), it->second);
  }
  // Mark the top module's output ports.
  for (const std::string& out : modules.at(top).outputs) {
    const int root = flat.find(flat.key_id.at(out));
    const NodeId node = node_of.at(root);
    if (!design.netlist.is_output(node)) design.netlist.mark_output(node);
  }
  design.netlist.finalize();

  for (const auto& [name, id] : flat.key_id) {
    const int root = flat.find(id);
    if (root == clk_root) continue;
    const auto it = node_of.find(root);
    if (it != node_of.end()) design.nodes.emplace(name, it->second);
  }
  return design;
}

RtlSim::RtlSim(const RtlDesign& design)
    : design_(&design), values_(design.netlist.size(), 0) {
  settle();
}

void RtlSim::settle() {
  const Netlist& nl = design_->netlist;
  for (NodeId id = 0; id < nl.size(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::kConst0) values_[id] = 0;
    if (t == GateType::kConst1) values_[id] = 1;
  }
  std::vector<std::uint8_t> fanins;
  for (const NodeId id : nl.eval_order()) {
    fanins.clear();
    for (const NodeId f : nl.fanins(id)) fanins.push_back(values_[f]);
    values_[id] = eval_gate2(nl.type(id), fanins);
  }
}

void RtlSim::step() {
  const Netlist& nl = design_->netlist;
  next_state_.resize(nl.num_flops());
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    next_state_[i] = values_[nl.dff_input(nl.flops()[i])];
  }
  for (std::size_t i = 0; i < nl.num_flops(); ++i) {
    values_[nl.flops()[i]] = next_state_[i];
  }
  settle();
}

std::uint8_t RtlSim::value(const std::string& name) const {
  const NodeId id = design_->node(name);
  require(id != kNoNode, "RtlSim::value",
          ("unknown net '" + name + "'").c_str());
  return values_[id];
}

}  // namespace fbt
