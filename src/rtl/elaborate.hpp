// Elaboration of the emitted Verilog back into a cycle-steppable model.
//
// A deliberately small structural-Verilog front end: it parses exactly the
// subset write_verilog_module/emit_bist_rtl produce (module headers,
// input/output/wire declarations, constant and alias assigns, primitive
// gates, fbt_dff instances, and named-port module instances), flattens the
// hierarchy under the chosen top module, and builds a plain fbt::Netlist the
// existing gate evaluator can step. The lockstep checker drives this model
// clock-for-clock against the behavioral BistSession -- so the emitted text
// itself (not the data structures it came from) is what gets verified.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

/// Flattened design: one netlist plus a name table mapping every hierarchical
/// net name (instance path joined with "__") to its node. Nets merged by port
/// connections or alias assigns share a node and keep all their names.
struct RtlDesign {
  Netlist netlist;
  std::unordered_map<std::string, NodeId> nodes;

  /// Node for any alias of a net; kNoNode when the name is unknown.
  NodeId node(const std::string& name) const {
    const auto it = nodes.find(name);
    return it == nodes.end() ? kNoNode : it->second;
  }
};

/// Parses `text` and flattens the hierarchy under module `top`. The fbt_dff
/// cell is treated as the primitive flip-flop (its behavioral body is
/// skipped); the clock network is dropped -- the model is single-clock and
/// steps on demand. Throws (via require) on any construct outside the subset
/// or on multiply-driven / undriven nets.
RtlDesign elaborate_verilog(const std::string& text, const std::string& top);

/// Two-phase simulator over a flattened design: settle() evaluates the
/// combinational logic from the current flop values, step() applies one
/// clock edge (all flops load their D simultaneously) and re-settles.
/// All flops power up at 0, matching the fbt_dff cell model.
class RtlSim {
 public:
  explicit RtlSim(const RtlDesign& design);

  void settle();
  void step();

  std::uint8_t value(NodeId id) const { return values_[id]; }
  std::uint8_t value(const std::string& name) const;

  /// Drives a primary input of the flattened design; call settle() (or let
  /// the next step() do it) to propagate.
  void set_value(NodeId id, std::uint8_t v) { values_[id] = v & 1u; }

 private:
  const RtlDesign* design_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> next_state_;
};

}  // namespace fbt
