#include "rtl/lockstep.hpp"

#include <sstream>

#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

/// SessionObserver that advances the RTL one clock per behavioral cycle and
/// compares the probe nets.
class LockstepObserver : public SessionObserver {
 public:
  LockstepObserver(const RtlDesign& design, const RtlProbes& probes,
                   const LockstepConfig& config, LockstepReport& report)
      : sim_(design), config_(config), report_(&report) {
    const auto resolve = [&design](const std::string& name) {
      const NodeId id = design.node(name);
      require(id != kNoNode, "run_lockstep",
              "probe net '" + name + "' not found in the elaborated design");
      return id;
    };
    for (const std::string& name : probes.mode) mode_.push_back(resolve(name));
    done_ = resolve(probes.done);
    capture_ = resolve(probes.capture);
    for (const std::string& name : probes.pi) pi_.push_back(resolve(name));
    for (const std::string& name : probes.state) {
      state_.push_back(resolve(name));
    }
    for (const std::string& name : probes.misr) misr_.push_back(resolve(name));
  }

  void on_cycle(const SessionCycle& cycle) override {
    ++report_->cycles_checked;
    // Pre-edge: the controller's mode and strobes during this cycle.
    static constexpr BistMode kOrder[5] = {
        BistMode::kCircuitInit, BistMode::kSeedLoad, BistMode::kShiftRegInit,
        BistMode::kApply, BistMode::kCircularShift};
    for (std::size_t m = 0; m < 5; ++m) {
      const bool expect = cycle.mode == kOrder[m];
      check(cycle, sim_.value(mode_[m]) == (expect ? 1 : 0), "mode one-hot",
            m);
    }
    check(cycle, sim_.value(done_) == 0, "done low during session", 0);
    check(cycle, sim_.value(capture_) == (cycle.capture ? 1 : 0),
          "capture strobe", 0);
    if (cycle.mode == BistMode::kApply) {
      for (std::size_t i = 0; i < pi_.size(); ++i) {
        check(cycle, sim_.value(pi_[i]) == cycle.pi[i], "TPG primary input",
              i);
      }
    }
    sim_.step();
    // Post-edge: the captured state and the MISR register.
    if (cycle.mode == BistMode::kApply) {
      for (std::size_t i = 0; i < state_.size(); ++i) {
        check(cycle, sim_.value(state_[i]) == cycle.state[i], "CUT state bit",
              i);
      }
    }
    check(cycle, misr_value() == cycle.misr, "MISR register", 0);
  }

  std::uint32_t misr_value() const {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < misr_.size(); ++i) {
      if (sim_.value(misr_[i])) v |= 1u << i;
    }
    return v;
  }

  std::uint8_t done_value() const { return sim_.value(done_); }

 private:
  void check(const SessionCycle& cycle, bool ok, const char* what,
             std::size_t index) {
    if (ok) return;
    ++report_->mismatches;
    if (report_->details.size() < config_.max_detail) {
      std::ostringstream msg;
      msg << "cycle " << cycle.index << " (" << bist_mode_name(cycle.mode)
          << ", seq " << cycle.sequence << ", seg " << cycle.segment
          << "): " << what << " [" << index << "] diverges";
      report_->details.push_back(msg.str());
    }
  }

  RtlSim sim_;
  LockstepConfig config_;
  LockstepReport* report_;
  std::vector<NodeId> mode_;
  NodeId done_ = kNoNode;
  NodeId capture_ = kNoNode;
  std::vector<NodeId> pi_;
  std::vector<NodeId> state_;
  std::vector<NodeId> misr_;
};

}  // namespace

LockstepReport run_lockstep(const Netlist& cut, const FunctionalBistResult& plan,
                            const ScanChains& scan,
                            const SessionConfig& session,
                            const EmittedRtl& rtl, const RtlDesign& design,
                            const LockstepConfig& config) {
  FBT_OBS_PHASE("rtl");
  LockstepReport report;
  LockstepObserver observer(design, rtl.probes, config, report);
  const SessionReport golden = run_bist_session(
      cut, plan, scan, session, kNoNode, true, &observer);
  report.behavioral_signature = golden.signature;
  report.rtl_signature = observer.misr_value();
  report.done_asserted = observer.done_value() != 0;
  if (!report.done_asserted) {
    report.details.push_back("done not asserted after the final cycle");
    ++report.mismatches;
  }
  if (report.rtl_signature != golden.signature) {
    std::ostringstream msg;
    msg << "final signature: rtl 0x" << std::hex << report.rtl_signature
        << " vs behavioral 0x" << golden.signature;
    report.details.push_back(msg.str());
    ++report.mismatches;
  }
  report.ok = report.mismatches == 0;
  FBT_OBS_COUNTER_ADD("rtl.lockstep_cycles", report.cycles_checked);
  return report;
}

LockstepReport check_bist_rtl(const Netlist& cut,
                              const FunctionalBistResult& plan,
                              const ScanChains& scan,
                              const SessionConfig& session,
                              const LockstepConfig& config) {
  const EmittedRtl rtl = emit_bist_rtl(cut, plan, scan, session);
  const RtlDesign design = elaborate_verilog(rtl.verilog, rtl.top_name);
  return run_lockstep(cut, plan, scan, session, rtl, design, config);
}

}  // namespace fbt
