// RTL emission of the complete BIST machinery (dissertation §4.4).
//
// emit_bist_rtl() turns a CUT plus a generated test plan into synthesizable
// Verilog-2001: the TPG (LFSR, shift register, biasing network), the
// controller FSM with its counters and seed ROM, the MISR, a scan/hold
// wrapper around the CUT, and a top module stitching them together. The
// returned inventory counts the emitted hardware so it can be reconciled
// against the analytic BistHardwarePlan the area model charges -- drift
// between the two is a bug and fails loudly in the consistency tests.
#pragma once

#include <string>
#include <vector>

#include "bist/area_model.hpp"
#include "bist/functional_bist.hpp"
#include "bist/session.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan.hpp"

namespace fbt {

struct RtlEmitOptions {
  std::string top_name = "fbt_bist_top";
};

/// Hardware counted from the emitted module netlists. The first group mirrors
/// BistHardwarePlan field-for-field; the second group is RTL-only machinery
/// the analytic plan does not charge (see DESIGN.md).
struct RtlInventory {
  // Mirrors BistHardwarePlan.
  unsigned lfsr_bits = 0;
  std::size_t bias_gates = 0;
  unsigned bias_gate_inputs = 0;
  unsigned cycle_counter_bits = 0;
  unsigned shift_counter_bits = 0;
  unsigned segment_counter_bits = 0;
  unsigned sequence_counter_bits = 0;
  std::size_t seed_rom_bits = 0;
  bool with_hold = false;
  std::size_t hold_sets = 0;
  unsigned set_counter_bits = 0;
  std::size_t decoder_outputs = 0;

  // RTL-only (not charged by the area model).
  unsigned srinit_counter_bits = 0;  ///< counts the SR fill phase
  std::size_t seed_rom_entries = 0;
  std::size_t shiftreg_flops = 0;  ///< primary-input shift register (§4.6)
  std::size_t misr_flops = 0;      ///< response compactor (§4.6)
  std::size_t fsm_flops = 0;       ///< one-hot mode registers + power-up latch

  // Totals over all emitted modules (wrapper included).
  std::size_t total_flops = 0;
  std::size_t total_gates = 0;
  std::size_t cut_flops = 0;  ///< flops of the wrapped CUT
  std::size_t cut_gates = 0;  ///< combinational gates of the wrapped CUT
};

/// Flattened-net names the lockstep checker probes in the elaborated design.
struct RtlProbes {
  std::vector<std::string> mode;  ///< init, seed, srinit, apply, shift
  std::string done;
  std::string capture;
  std::vector<std::string> pi;     ///< per CUT primary input
  std::vector<std::string> state;  ///< per CUT flop (wrapper-instance nets)
  std::vector<std::string> misr;   ///< per MISR stage, LSB first
};

struct EmittedRtl {
  std::string verilog;  ///< all modules, top, and the fbt_dff cell model
  std::string top_name;
  RtlInventory inventory;
  RtlProbes probes;
};

/// Emits the full BIST RTL for `cut` running `plan` under `session`.
/// Preconditions (checked): the CUT has at least one flop and one input,
/// every scan-chain length divides Lsc (so the circular shift restores the
/// state), and every segment length is a positive multiple of 2^q.
EmittedRtl emit_bist_rtl(const Netlist& cut, const FunctionalBistResult& plan,
                         const ScanChains& scan, const SessionConfig& session,
                         const RtlEmitOptions& opts = {});

/// Field-by-field comparison of the emitted inventory against the analytic
/// hardware plan. Returns human-readable mismatch descriptions (empty means
/// consistent). `allow_wider_sequence_counter` accepts an emitted sequence
/// counter wider than planned -- the emitted controller spans the
/// concatenated base+hold session while plan_hold_bist_hardware sizes the
/// counter for the wider of the two phases (the phases share it on-chip).
std::vector<std::string> reconcile_inventory(
    const RtlInventory& inventory, const BistHardwarePlan& plan,
    bool allow_wider_sequence_counter = false);

}  // namespace fbt
