// Lockstep equivalence check: emitted RTL vs the behavioral BistSession.
//
// The behavioral session (src/bist/session.cpp) is the golden model. The
// emitted Verilog is elaborated into a flat cycle-steppable netlist and both
// are advanced clock-for-clock over the full 2q-cycle session: each cycle the
// controller's mode one-hot and the capture strobe are compared, on apply
// cycles the TPG's primary-input vector and the CUT's post-edge state are
// compared bit-for-bit, and the MISR register is compared every cycle. At the
// end the RTL must assert done and hold the behavioral signature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bist/functional_bist.hpp"
#include "bist/session.hpp"
#include "netlist/scan.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/emit.hpp"

namespace fbt {

struct LockstepConfig {
  std::size_t max_detail = 8;  ///< mismatch descriptions kept verbatim
};

struct LockstepReport {
  bool ok = false;
  std::size_t cycles_checked = 0;
  std::size_t mismatches = 0;
  bool done_asserted = false;
  std::uint32_t behavioral_signature = 0;
  std::uint32_t rtl_signature = 0;
  std::vector<std::string> details;  ///< first few mismatches, for messages
};

/// Runs the behavioral session and the elaborated RTL in lockstep.
LockstepReport run_lockstep(const Netlist& cut, const FunctionalBistResult& plan,
                            const ScanChains& scan,
                            const SessionConfig& session,
                            const EmittedRtl& rtl, const RtlDesign& design,
                            const LockstepConfig& config = {});

/// Convenience: emit, elaborate, and run the lockstep in one call.
LockstepReport check_bist_rtl(const Netlist& cut,
                              const FunctionalBistResult& plan,
                              const ScanChains& scan,
                              const SessionConfig& session,
                              const LockstepConfig& config = {});

}  // namespace fbt
