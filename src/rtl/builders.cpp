#include "rtl/builders.hpp"

#include <string>
#include <unordered_map>

#include "bist/lfsr.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

/// Thin construction helper: fresh unique gate names plus n-ary AND/OR/XOR
/// that degenerate to buffers/constants for small fanin counts.
class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name) : nl_(std::move(name)) {}

  Netlist& netlist() { return nl_; }

  NodeId input(std::string name) { return nl_.add_input(std::move(name)); }
  NodeId dff(std::string name) { return nl_.add_dff(std::move(name)); }

  NodeId gate(GateType type, std::vector<NodeId> fanins) {
    return nl_.add_gate(type, fresh_name(), std::move(fanins));
  }

  NodeId const0() {
    if (const0_ == kNoNode) const0_ = gate(GateType::kConst0, {});
    return const0_;
  }
  NodeId const1() {
    if (const1_ == kNoNode) const1_ = gate(GateType::kConst1, {});
    return const1_;
  }

  NodeId buf(NodeId a) { return gate(GateType::kBuf, {a}); }
  NodeId not_(NodeId a) { return gate(GateType::kNot, {a}); }
  NodeId and2(NodeId a, NodeId b) { return gate(GateType::kAnd, {a, b}); }
  NodeId or2(NodeId a, NodeId b) { return gate(GateType::kOr, {a, b}); }
  NodeId xor2(NodeId a, NodeId b) { return gate(GateType::kXor, {a, b}); }

  NodeId and_n(std::vector<NodeId> fanins) {
    if (fanins.empty()) return const1();
    if (fanins.size() == 1) return buf(fanins[0]);
    return gate(GateType::kAnd, std::move(fanins));
  }
  NodeId or_n(std::vector<NodeId> fanins) {
    if (fanins.empty()) return const0();
    if (fanins.size() == 1) return buf(fanins[0]);
    return gate(GateType::kOr, std::move(fanins));
  }
  NodeId xor_n(std::vector<NodeId> fanins) {
    if (fanins.empty()) return const0();
    if (fanins.size() == 1) return buf(fanins[0]);
    return gate(GateType::kXor, std::move(fanins));
  }

  /// sel ? a : b, with the inverted select supplied so it can be shared.
  NodeId mux(NodeId sel, NodeId not_sel, NodeId a, NodeId b) {
    return or2(and2(sel, a), and2(not_sel, b));
  }

  /// Marks `node` as an output under the given port-friendly net name. The
  /// port is a named buf so internal nets (e.g. a flop called q_0) can share
  /// the stem; a taken name gets an "_out" suffix.
  void output(NodeId node, std::string name) {
    while (nl_.find(name) != kNoNode) name += "_out";
    const NodeId port = nl_.add_gate(GateType::kBuf, std::move(name), {node});
    nl_.mark_output(port);
  }

 private:
  std::string fresh_name() { return "n" + std::to_string(counter_++); }

  Netlist nl_;
  std::size_t counter_ = 0;
  NodeId const0_ = kNoNode;
  NodeId const1_ = kNoNode;
};

/// A register file of `bits` flip-flops with helpers for the derived nets the
/// controller needs: shared per-bit inverters, equality comparators, and the
/// ripple incrementer.
struct CounterNets {
  std::vector<NodeId> q;
  std::vector<NodeId> not_q;  // built lazily
  std::vector<NodeId> inc;    // built lazily

  static CounterNets make(ModuleBuilder& b, const std::string& stem,
                          unsigned bits) {
    CounterNets c;
    for (unsigned i = 0; i < bits; ++i) {
      c.q.push_back(b.dff(stem + "_" + std::to_string(i)));
    }
    c.not_q.assign(bits, kNoNode);
    c.inc.assign(bits, kNoNode);
    return c;
  }

  NodeId inv(ModuleBuilder& b, unsigned i) {
    if (not_q[i] == kNoNode) not_q[i] = b.not_(q[i]);
    return not_q[i];
  }

  /// AND of (q_i or ~q_i) per bit -- true when the counter equals `value`.
  NodeId eq(ModuleBuilder& b, std::uint64_t value) {
    std::vector<NodeId> terms;
    for (unsigned i = 0; i < q.size(); ++i) {
      terms.push_back(((value >> i) & 1) != 0 ? q[i] : inv(b, i));
    }
    return b.and_n(std::move(terms));
  }

  /// Ripple +1 (mod 2^bits): d_i = q_i ^ carry_i, carry_0 = 1.
  void build_inc(ModuleBuilder& b) {
    NodeId carry = kNoNode;  // implicit 1 for bit 0
    for (unsigned i = 0; i < q.size(); ++i) {
      inc[i] = i == 0 ? inv(b, 0) : b.xor2(q[i], carry);
      carry = i == 0 ? q[0] : b.and2(carry, q[i]);
    }
  }
};

}  // namespace

Netlist build_lfsr_module(unsigned stages) {
  require(stages >= 2 && stages <= 32, "build_lfsr_module",
          "stages must be in 2..32");
  ModuleBuilder b("fbt_lfsr");
  const NodeId en = b.input("en");
  const NodeId load = b.input("load");
  std::vector<NodeId> s;
  for (unsigned i = 0; i < stages; ++i) {
    s.push_back(b.input("s_" + std::to_string(i)));
  }
  std::vector<NodeId> q;
  for (unsigned i = 0; i < stages; ++i) {
    q.push_back(b.dff("q_" + std::to_string(i)));
  }
  const std::uint32_t taps = Lfsr::primitive_taps(stages);
  std::vector<NodeId> tap_nets;
  for (unsigned i = 0; i < stages; ++i) {
    if ((taps >> i) & 1u) tap_nets.push_back(q[i]);
  }
  const NodeId fb = b.xor_n(std::move(tap_nets));
  const NodeId not_en = b.not_(en);
  const NodeId not_load = b.not_(load);
  for (unsigned i = 0; i < stages; ++i) {
    const NodeId shifted = i == 0 ? fb : q[i - 1];
    const NodeId run = b.mux(en, not_en, shifted, q[i]);
    b.netlist().set_dff_input(q[i], b.mux(load, not_load, s[i], run));
  }
  // Serial value entering the shift register at the next edge: the stepped
  // LFSR's output Q[w-1]' equals the current Q[w-2].
  b.output(q[stages - 2], "sout");
  b.netlist().finalize();
  return std::move(b.netlist());
}

Netlist build_shiftreg_module(std::size_t size) {
  require(size >= 1, "build_shiftreg_module", "size must be >= 1");
  ModuleBuilder b("fbt_shiftreg");
  const NodeId en = b.input("en");
  const NodeId sin = b.input("sin");
  std::vector<NodeId> q;
  for (std::size_t i = 0; i < size; ++i) {
    q.push_back(b.dff("q_" + std::to_string(i)));
  }
  const NodeId not_en = b.not_(en);
  for (std::size_t i = 0; i < size; ++i) {
    const NodeId in = i == 0 ? sin : q[i - 1];
    b.netlist().set_dff_input(q[i], b.mux(en, not_en, in, q[i]));
  }
  for (std::size_t i = 0; i + 1 < size; ++i) {
    b.output(q[i], "q_" + std::to_string(i));
  }
  b.netlist().finalize();
  return std::move(b.netlist());
}

Netlist build_bias_module(const Tpg& tpg) {
  const std::size_t sr_size = tpg.shift_register_size();
  const std::size_t npi = tpg.cube().values.size();
  require(sr_size >= 1, "build_bias_module", "empty shift register");
  ModuleBuilder b("fbt_bias");
  std::vector<NodeId> d;
  for (std::size_t i = 0; i < sr_size; ++i) {
    d.push_back(b.input("d_" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < npi; ++i) {
    const std::vector<std::uint32_t>& taps = tpg.input_taps(i);
    std::vector<NodeId> ins;
    for (const std::uint32_t t : taps) ins.push_back(d[t]);
    NodeId out = kNoNode;
    switch (tpg.cube().values[i]) {
      case Val3::kX: out = ins[0]; break;
      case Val3::k0: out = b.and_n(std::move(ins)); break;
      case Val3::k1: out = b.or_n(std::move(ins)); break;
    }
    b.output(out, "pi_" + std::to_string(i));
  }
  b.netlist().finalize();
  return std::move(b.netlist());
}

Netlist build_misr_module(unsigned stages, std::size_t num_pos,
                          std::size_t num_chains) {
  require(stages >= 2 && stages <= 32, "build_misr_module",
          "stages must be in 2..32");
  ModuleBuilder b("fbt_misr");
  const NodeId en = b.input("en");
  const NodeId sel = b.input("sel");
  std::vector<NodeId> p, c;
  for (std::size_t j = 0; j < num_pos; ++j) {
    p.push_back(b.input("p_" + std::to_string(j)));
  }
  for (std::size_t j = 0; j < num_chains; ++j) {
    c.push_back(b.input("c_" + std::to_string(j)));
  }
  std::vector<NodeId> q;
  for (unsigned i = 0; i < stages; ++i) {
    q.push_back(b.dff("q_" + std::to_string(i)));
  }
  const std::uint32_t taps = Lfsr::primitive_taps(stages);
  std::vector<NodeId> tap_nets;
  for (unsigned i = 0; i < stages; ++i) {
    if ((taps >> i) & 1u) tap_nets.push_back(q[i]);
  }
  const NodeId fb = b.xor_n(std::move(tap_nets));
  const NodeId not_en = b.not_(en);
  const NodeId not_sel = b.not_(sel);
  for (unsigned i = 0; i < stages; ++i) {
    std::vector<NodeId> po_fold, sc_fold;
    for (std::size_t j = i; j < num_pos; j += stages) po_fold.push_back(p[j]);
    for (std::size_t j = i; j < num_chains; j += stages) {
      sc_fold.push_back(c[j]);
    }
    const NodeId in =
        b.mux(sel, not_sel, b.xor_n(std::move(po_fold)),
              b.xor_n(std::move(sc_fold)));
    const NodeId shifted = i == 0 ? fb : q[i - 1];
    const NodeId next = b.xor2(shifted, in);
    b.netlist().set_dff_input(q[i], b.mux(en, not_en, next, q[i]));
    b.output(q[i], "sig_" + std::to_string(i));
  }
  b.netlist().finalize();
  return std::move(b.netlist());
}

Netlist build_controller_module(const ControllerSpec& spec) {
  require(spec.scan_length >= 1, "build_controller_module", "Lsc must be >= 1");
  require(spec.shift_register_size >= 1, "build_controller_module",
          "shift register must be non-empty");
  require(!spec.sequences.empty(), "build_controller_module",
          "plan has no sequences");
  require(spec.q >= 1, "build_controller_module", "q must be >= 1");
  const std::size_t period = std::size_t{1} << spec.q;
  std::size_t lmax = 0;
  for (const auto& seq : spec.sequences) {
    require(!seq.empty(), "build_controller_module", "empty sequence");
    for (const auto& [seed, len] : seq) {
      require(len >= period && len % period == 0, "build_controller_module",
              "segment lengths must be positive multiples of 2^q");
      lmax = std::max(lmax, len);
    }
  }
  require((std::uint64_t{1} << spec.cycle_counter_bits) > lmax,
          "build_controller_module", "cycle counter too narrow");
  require((std::uint64_t{1} << spec.shift_counter_bits) > spec.scan_length - 1,
          "build_controller_module", "shift counter too narrow");
  require((std::uint64_t{1} << spec.srinit_counter_bits) >
              spec.shift_register_size - 1,
          "build_controller_module", "SR-init counter too narrow");
  require((std::uint64_t{1} << spec.sequence_counter_bits) >=
              spec.sequences.size(),
          "build_controller_module", "sequence counter too narrow");
  const bool with_hold = spec.num_hold_sets > 0;
  if (with_hold) {
    require(spec.hold_period_log2 >= 1, "build_controller_module",
            "hold needs h >= 1");
    require(spec.set_counter_bits >= 1, "build_controller_module",
            "hold needs a set counter");
  }

  ModuleBuilder b("fbt_ctrl");

  // One-hot mode registers plus the power-up latch: all flops come up 0, so
  // eff_init = m_init | ~started makes cycle 0 the first circuit-init cycle.
  const NodeId started = b.dff("started");
  const NodeId m_init = b.dff("m_init");
  const NodeId m_seed = b.dff("m_seed");
  const NodeId m_srinit = b.dff("m_srinit");
  const NodeId m_apply = b.dff("m_apply");
  const NodeId m_shift = b.dff("m_shift");
  const NodeId m_done = b.dff("m_done");

  CounterNets sh = CounterNets::make(b, "sh", spec.shift_counter_bits);
  CounterNets sri = CounterNets::make(b, "sri", spec.srinit_counter_bits);
  CounterNets cyc = CounterNets::make(b, "cyc", spec.cycle_counter_bits);
  CounterNets seg = CounterNets::make(b, "seg", spec.segment_counter_bits);
  CounterNets seqc = CounterNets::make(b, "seqc", spec.sequence_counter_bits);
  sh.build_inc(b);
  sri.build_inc(b);
  cyc.build_inc(b);
  seg.build_inc(b);
  seqc.build_inc(b);

  const NodeId eff_init = b.or2(m_init, b.not_(started));
  const NodeId sh_is_last = sh.eq(b, spec.scan_length - 1);
  const NodeId init_last = b.and2(eff_init, sh_is_last);
  const NodeId sri_last =
      b.and2(m_srinit, sri.eq(b, spec.shift_register_size - 1));
  const NodeId shift_last = b.and2(m_shift, sh_is_last);

  // Apply strobe (Fig. 4.6): the AND of the cycle counter's rightmost q bits
  // is high on the second pattern of each test.
  std::vector<NodeId> cap_terms = {m_apply};
  for (unsigned i = 0; i < spec.q; ++i) cap_terms.push_back(cyc.q[i]);
  const NodeId capture = b.and_n(std::move(cap_terms));

  // Segment-end detection: during the circular shift the cycle counter holds
  // the number of applied cycles, so comparing it against the selected
  // segment's length decides between resuming and advancing.
  std::vector<NodeId> seq_eq(spec.sequences.size());
  for (std::size_t s = 0; s < spec.sequences.size(); ++s) {
    seq_eq[s] = seqc.eq(b, s);
  }
  std::vector<std::vector<NodeId>> sel_sg(spec.sequences.size());
  std::vector<NodeId> fin_terms;
  for (std::size_t s = 0; s < spec.sequences.size(); ++s) {
    for (std::size_t g = 0; g < spec.sequences[s].size(); ++g) {
      const NodeId sel = b.and2(seq_eq[s], seg.eq(b, g));
      sel_sg[s].push_back(sel);
      fin_terms.push_back(b.and2(sel, cyc.eq(b, spec.sequences[s][g].second)));
    }
  }
  const NodeId seg_fin = b.or_n(std::move(fin_terms));
  std::vector<NodeId> last_seg_terms;
  for (std::size_t s = 0; s < spec.sequences.size(); ++s) {
    last_seg_terms.push_back(
        b.and2(seq_eq[s], seg.eq(b, spec.sequences[s].size() - 1)));
  }
  const NodeId last_seg = b.or_n(std::move(last_seg_terms));
  const NodeId last_seq = seqc.eq(b, spec.sequences.size() - 1);

  const NodeId seg_adv = b.and2(shift_last, seg_fin);
  const NodeId resume_apply = b.and2(shift_last, b.not_(seg_fin));
  const NodeId go_seed_next = b.and2(seg_adv, b.not_(last_seg));
  const NodeId go_init_next =
      b.and_n({seg_adv, last_seg, b.not_(last_seq)});
  const NodeId go_done = b.and_n({seg_adv, last_seg, last_seq});

  // Next-state equations.
  b.netlist().set_dff_input(started, b.const1());
  b.netlist().set_dff_input(
      m_init, b.or2(b.and2(eff_init, b.not_(init_last)), go_init_next));
  b.netlist().set_dff_input(m_seed, b.or2(init_last, go_seed_next));
  b.netlist().set_dff_input(
      m_srinit, b.or2(m_seed, b.and2(m_srinit, b.not_(sri_last))));
  b.netlist().set_dff_input(
      m_apply,
      b.or_n({sri_last, b.and2(m_apply, b.not_(capture)), resume_apply}));
  b.netlist().set_dff_input(
      m_shift, b.or2(capture, b.and2(m_shift, b.not_(shift_last))));
  b.netlist().set_dff_input(m_done, b.or2(m_done, go_done));

  // Counter next-state: count while mid-phase, otherwise return to zero
  // (shift/SR-init), hold (cycle counter during the shift), or advance.
  const NodeId sh_run = b.or2(b.and2(eff_init, b.not_(init_last)),
                              b.and2(m_shift, b.not_(shift_last)));
  for (unsigned i = 0; i < sh.q.size(); ++i) {
    b.netlist().set_dff_input(sh.q[i], b.and2(sh_run, sh.inc[i]));
  }
  const NodeId sri_run = b.and2(m_srinit, b.not_(sri_last));
  for (unsigned i = 0; i < sri.q.size(); ++i) {
    b.netlist().set_dff_input(sri.q[i], b.and2(sri_run, sri.inc[i]));
  }
  const NodeId cyc_rst = b.or2(m_seed, eff_init);
  const NodeId cyc_keep = b.not_(b.or2(m_apply, cyc_rst));
  std::vector<NodeId> cyc_d(cyc.q.size());
  for (unsigned i = 0; i < cyc.q.size(); ++i) {
    cyc_d[i] =
        b.or2(b.and2(m_apply, cyc.inc[i]), b.and2(cyc_keep, cyc.q[i]));
    b.netlist().set_dff_input(cyc.q[i], cyc_d[i]);
  }
  const NodeId seg_keep =
      b.not_(b.or_n({go_seed_next, go_init_next, go_done}));
  for (unsigned i = 0; i < seg.q.size(); ++i) {
    b.netlist().set_dff_input(
        seg.q[i], b.or2(b.and2(go_seed_next, seg.inc[i]),
                        b.and2(seg_keep, seg.q[i])));
  }
  const NodeId seq_keep = b.not_(go_init_next);
  std::vector<NodeId> seq_d(seqc.q.size());
  for (unsigned i = 0; i < seqc.q.size(); ++i) {
    seq_d[i] = b.or2(b.and2(go_init_next, seqc.inc[i]),
                     b.and2(seq_keep, seqc.q[i]));
    b.netlist().set_dff_input(seqc.q[i], seq_d[i]);
  }

  // Seed ROM (Table 4.3's N_seeds * N_LFSR bits): an AND-OR select network
  // over the segment-select terms.
  std::vector<NodeId> seed_bits(spec.lfsr_bits);
  for (unsigned bit = 0; bit < spec.lfsr_bits; ++bit) {
    std::vector<NodeId> terms;
    for (std::size_t s = 0; s < spec.sequences.size(); ++s) {
      for (std::size_t g = 0; g < spec.sequences[s].size(); ++g) {
        if ((spec.sequences[s][g].first >> bit) & 1u) {
          terms.push_back(sel_sg[s][g]);
        }
      }
    }
    seed_bits[bit] = b.or_n(std::move(terms));
  }

  // Hold strobe + set decoder (Figs. 4.11, 4.13). The set register follows
  // the sequence counter's D-side so it names the running sequence's set.
  std::vector<NodeId> hold_lines;
  if (with_hold) {
    std::vector<NodeId> strobe_terms = {m_apply};
    for (unsigned i = 0;
         i < std::min<unsigned>(spec.hold_period_log2, cyc.q.size()); ++i) {
      strobe_terms.push_back(cyc.inv(b, i));
    }
    const NodeId hold_strobe = b.and_n(std::move(strobe_terms));

    CounterNets hset = CounterNets::make(b, "hset", spec.set_counter_bits);
    const NodeId hvalid = b.dff("hvalid");
    std::vector<NodeId> seq_d_not(seq_d.size(), kNoNode);
    auto eq_seq_d = [&](std::size_t s) {
      std::vector<NodeId> terms;
      for (unsigned i = 0; i < seq_d.size(); ++i) {
        if ((s >> i) & 1u) {
          terms.push_back(seq_d[i]);
        } else {
          if (seq_d_not[i] == kNoNode) seq_d_not[i] = b.not_(seq_d[i]);
          terms.push_back(seq_d_not[i]);
        }
      }
      return b.and_n(std::move(terms));
    };
    std::vector<NodeId> valid_terms;
    std::vector<std::vector<NodeId>> bit_terms(spec.set_counter_bits);
    for (std::size_t s = 0; s < spec.hold_set_of_sequence.size() &&
                            s < spec.sequences.size();
         ++s) {
      const std::size_t set = spec.hold_set_of_sequence[s];
      if (set == static_cast<std::size_t>(-1)) continue;
      require(set < spec.num_hold_sets, "build_controller_module",
              "hold set index out of range");
      const NodeId sel = eq_seq_d(s);
      valid_terms.push_back(sel);
      for (unsigned i = 0; i < spec.set_counter_bits; ++i) {
        if ((set >> i) & 1u) bit_terms[i].push_back(sel);
      }
    }
    b.netlist().set_dff_input(hvalid, b.or_n(std::move(valid_terms)));
    for (unsigned i = 0; i < spec.set_counter_bits; ++i) {
      b.netlist().set_dff_input(hset.q[i], b.or_n(std::move(bit_terms[i])));
    }
    for (std::size_t k = 0; k < spec.num_hold_sets; ++k) {
      hold_lines.push_back(
          b.and_n({hold_strobe, hvalid, hset.eq(b, k)}));
    }
  }

  // Output ports, in the order documented in builders.hpp.
  b.output(eff_init, "mode_init");
  b.output(m_seed, "mode_seed");
  b.output(m_srinit, "mode_srinit");
  b.output(m_apply, "mode_apply");
  b.output(m_shift, "mode_shift");
  b.output(m_done, "done");
  b.output(capture, "capture");
  b.output(b.or2(m_srinit, m_apply), "tpg_en");
  b.output(m_seed, "seed_load");
  b.output(b.or_n({eff_init, m_apply, m_shift}), "ce");
  b.output(b.or2(eff_init, m_shift), "scan_en");
  b.output(b.or2(capture, m_shift), "misr_en");
  b.output(m_apply, "misr_sel");
  for (unsigned bit = 0; bit < spec.lfsr_bits; ++bit) {
    b.output(seed_bits[bit], "seed_" + std::to_string(bit));
  }
  for (std::size_t k = 0; k < hold_lines.size(); ++k) {
    b.output(hold_lines[k], "hold_" + std::to_string(k));
  }
  b.netlist().finalize();
  return std::move(b.netlist());
}

Netlist build_cut_wrapper(
    const Netlist& cut, const ScanChains& scan,
    const std::vector<std::vector<std::size_t>>& hold_sets) {
  require(cut.finalized(), "build_cut_wrapper", "CUT must be finalized");
  Netlist nl(cut.name() + "_bist_wrap");

  // Mirror the CUT node-for-node; ids are preserved because every original
  // gate's fanins precede it (add_gate enforced that when the CUT was built).
  for (NodeId id = 0; id < cut.size(); ++id) {
    const Gate& g = cut.gate(id);
    NodeId copy = kNoNode;
    switch (g.type) {
      case GateType::kInput: copy = nl.add_input(g.name); break;
      case GateType::kDff: copy = nl.add_dff(g.name); break;
      default: copy = nl.add_gate(g.type, g.name, g.fanins); break;
    }
    require(copy == id, "build_cut_wrapper", "internal: id mapping drift");
  }

  auto fresh_input = [&](std::string name) {
    while (cut.find(name) != kNoNode) name += "_";
    return nl.add_input(std::move(name));
  };
  const NodeId ce = fresh_input("fbt_ce");
  const NodeId scan_en = fresh_input("fbt_scan_en");
  std::vector<NodeId> scan_in;
  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    scan_in.push_back(fresh_input("fbt_scan_in_" + std::to_string(ch)));
  }
  std::vector<NodeId> hold_in;
  for (std::size_t k = 0; k < hold_sets.size(); ++k) {
    hold_in.push_back(fresh_input("fbt_hold_" + std::to_string(k)));
  }

  std::size_t fresh = 0;
  auto gate = [&](GateType type, std::vector<NodeId> fanins) {
    std::string name;
    do {
      name = "fbt_w" + std::to_string(fresh++);
    } while (cut.find(name) != kNoNode);
    return nl.add_gate(type, std::move(name), std::move(fanins));
  };

  const NodeId not_ce = gate(GateType::kNot, {ce});
  const NodeId not_scan_en = gate(GateType::kNot, {scan_en});
  std::vector<NodeId> not_hold;
  for (const NodeId h : hold_in) not_hold.push_back(gate(GateType::kNot, {h}));

  // Per flop: which hold set (if any) covers it, and its chain position.
  std::vector<std::size_t> hold_of(cut.num_flops(),
                                   static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < hold_sets.size(); ++k) {
    for (const std::size_t f : hold_sets[k]) {
      require(f < cut.num_flops(), "build_cut_wrapper",
              "hold set flop index out of range");
      require(hold_of[f] == static_cast<std::size_t>(-1), "build_cut_wrapper",
              "hold sets must be disjoint");
      hold_of[f] = k;
    }
  }
  std::unordered_map<NodeId, std::size_t> flop_pos;
  for (std::size_t i = 0; i < cut.num_flops(); ++i) {
    flop_pos[cut.flops()[i]] = i;
  }

  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    const std::vector<NodeId>& chain = scan.chain(ch);
    const std::size_t n = chain.size();
    for (std::size_t k = 0; k < n; ++k) {
      const NodeId flop = chain[k];
      // Rotation wiring matching the behavioral scan-out order s_{n-1},
      // s_0, .., s_{n-2}: the next-to-last position takes scan-in, the last
      // takes position 0, everything else shifts down one. A single-flop
      // chain takes scan-in directly -- during the circular shift that is its
      // own value (scan_in = scan_out & mode_shift), while circuit init
      // (mode_shift low) flushes it to 0 like any other chain.
      NodeId d_scan = kNoNode;
      if (n == 1) {
        d_scan = scan_in[ch];
      } else if (k == n - 2) {
        d_scan = scan_in[ch];
      } else if (k == n - 1) {
        d_scan = chain[0];
      } else {
        d_scan = chain[k + 1];
      }
      NodeId core = cut.dff_input(flop);
      const std::size_t hset = hold_of[flop_pos.at(flop)];
      if (hset != static_cast<std::size_t>(-1)) {
        core = gate(GateType::kOr,
                    {gate(GateType::kAnd, {hold_in[hset], flop}),
                     gate(GateType::kAnd, {not_hold[hset], core})});
      }
      const NodeId sel =
          gate(GateType::kOr, {gate(GateType::kAnd, {scan_en, d_scan}),
                               gate(GateType::kAnd, {not_scan_en, core})});
      const NodeId d = gate(GateType::kOr,
                            {gate(GateType::kAnd, {ce, sel}),
                             gate(GateType::kAnd, {not_ce, flop})});
      nl.set_dff_input(flop, d);
    }
  }

  for (const NodeId po : cut.outputs()) nl.mark_output(po);
  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    std::string name = "fbt_scan_out_" + std::to_string(ch);
    while (cut.find(name) != kNoNode) name += "_";
    const NodeId out =
        nl.add_gate(GateType::kBuf, std::move(name), {scan.chain(ch).back()});
    nl.mark_output(out);
  }
  nl.finalize();
  return nl;
}

}  // namespace fbt
