#include "rtl/emit.hpp"

#include <algorithm>
#include <sstream>

#include "bist/counters.hpp"
#include "bist/tpg.hpp"
#include "netlist/export.hpp"
#include "obs/instrument.hpp"
#include "rtl/builders.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

/// Named-port instantiation of a module emitted by write_verilog_module:
/// inputs bound by position to `in_wires`, output ports to `out_wires`.
void emit_instance(std::ostream& out, const Netlist& mod,
                   const VerilogNames& names, const std::string& inst,
                   const std::vector<std::string>& in_wires,
                   const std::vector<std::string>& out_wires) {
  require(in_wires.size() == mod.num_inputs() &&
              out_wires.size() == mod.num_outputs(),
          "emit_instance", "port binding count mismatch");
  out << "  " << names.module_name << " " << inst << " (.clk(clk)";
  for (std::size_t i = 0; i < mod.num_inputs(); ++i) {
    out << ", ." << names.net[mod.inputs()[i]] << "(" << in_wires[i] << ")";
  }
  for (std::size_t i = 0; i < mod.num_outputs(); ++i) {
    out << ", ." << names.out_port[i] << "(" << out_wires[i] << ")";
  }
  out << ");\n";
}

std::size_t count_gates(const Netlist& mod, GateType a, GateType b) {
  std::size_t n = 0;
  for (NodeId id = 0; id < mod.size(); ++id) {
    if (mod.type(id) == a || mod.type(id) == b) ++n;
  }
  return n;
}

}  // namespace

EmittedRtl emit_bist_rtl(const Netlist& cut, const FunctionalBistResult& plan,
                         const ScanChains& scan, const SessionConfig& session,
                         const RtlEmitOptions& opts) {
  FBT_OBS_PHASE("rtl");
  require(cut.finalized(), "emit_bist_rtl", "CUT must be finalized");
  require(cut.num_inputs() >= 1, "emit_bist_rtl", "CUT has no primary inputs");
  require(cut.num_flops() >= 1, "emit_bist_rtl", "CUT has no flip-flops");
  require(!plan.sequences.empty(), "emit_bist_rtl", "plan has no sequences");
  require(scan.longest_length() >= 1, "emit_bist_rtl", "empty scan chains");
  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    require(scan.longest_length() % scan.chain(ch).size() == 0,
            "emit_bist_rtl",
            "every chain length must divide Lsc so the circular shift "
            "restores the captured state (use an equal-length partition)");
  }

  const Tpg tpg(cut, session.tpg);
  const unsigned lfsr_bits = session.tpg.lfsr_stages;
  const std::uint32_t seed_mask =
      lfsr_bits == 32 ? 0xffffffffu : ((1u << lfsr_bits) - 1);

  ControllerSpec spec;
  spec.shift_register_size = tpg.shift_register_size();
  spec.scan_length = scan.longest_length();
  spec.q = session.q;
  spec.lfsr_bits = lfsr_bits;
  std::size_t lmax = 0, nseg_max = 0, num_seeds = 0;
  for (const SequenceRecord& seq : plan.sequences) {
    std::vector<std::pair<std::uint32_t, std::size_t>> segs;
    for (const SegmentRecord& seg : seq.segments) {
      std::uint32_t eff = seg.seed & seed_mask;
      if (eff == 0) eff = 1;
      segs.emplace_back(eff, seg.length);
      lmax = std::max(lmax, seg.length);
      ++num_seeds;
    }
    nseg_max = std::max(nseg_max, seq.segments.size());
    spec.sequences.push_back(std::move(segs));
  }
  spec.cycle_counter_bits = bits_for(std::max<std::size_t>(2, lmax));
  spec.shift_counter_bits =
      bits_for(std::max<std::size_t>(2, spec.scan_length));
  spec.segment_counter_bits = bits_for(std::max<std::size_t>(2, nseg_max));
  spec.sequence_counter_bits =
      bits_for(std::max<std::size_t>(2, plan.sequences.size()));
  spec.srinit_counter_bits =
      bits_for(std::max<std::size_t>(2, spec.shift_register_size));
  if (!session.hold_sets.empty()) {
    spec.hold_period_log2 = session.hold_period_log2;
    spec.num_hold_sets = session.hold_sets.size();
    spec.set_counter_bits =
        bits_for(std::max<std::size_t>(2, session.hold_sets.size()));
    spec.hold_set_of_sequence = session.hold_set_of_sequence;
  }

  const Netlist ctrl = build_controller_module(spec);
  const Netlist lfsr = build_lfsr_module(lfsr_bits);
  const Netlist sr = build_shiftreg_module(spec.shift_register_size);
  const Netlist bias = build_bias_module(tpg);
  const Netlist wrap = build_cut_wrapper(cut, scan, session.hold_sets);
  const Netlist misr = build_misr_module(session.misr_stages,
                                         cut.num_outputs(), scan.num_chains());

  const VerilogNames ctrl_names = verilog_names(ctrl);
  const VerilogNames lfsr_names = verilog_names(lfsr);
  const VerilogNames sr_names = verilog_names(sr);
  const VerilogNames bias_names = verilog_names(bias);
  const VerilogNames wrap_names = verilog_names(wrap);
  const VerilogNames misr_names = verilog_names(misr);

  // ---- top module -------------------------------------------------------
  const std::string top_name = legalize_verilog_identifier(opts.top_name);
  std::ostringstream top;
  top << "module " << top_name << " (clk, done, capture";
  for (unsigned i = 0; i < session.misr_stages; ++i) {
    top << ", sig_" << i;
  }
  top << ");\n  input clk;\n  output done;\n  output capture;\n";
  for (unsigned i = 0; i < session.misr_stages; ++i) {
    top << "  output sig_" << i << ";\n";
  }

  // Controller output wires, in the builder's documented marking order.
  std::vector<std::string> ctrl_wires = {
      "mode_init", "mode_seed", "mode_srinit", "mode_apply", "mode_shift",
      "done",      "capture",   "tpg_en",      "seed_load",  "ce",
      "scan_en",   "misr_en",   "misr_sel"};
  for (unsigned bit = 0; bit < lfsr_bits; ++bit) {
    ctrl_wires.push_back("seed_" + std::to_string(bit));
  }
  for (std::size_t k = 0; k < spec.num_hold_sets; ++k) {
    ctrl_wires.push_back("hold_" + std::to_string(k));
  }
  require(ctrl_wires.size() == ctrl.num_outputs(), "emit_bist_rtl",
          "internal: controller port order drifted from the builder");

  std::vector<std::string> wires;  // internal wires (ports excluded)
  for (const std::string& w : ctrl_wires) {
    if (w != "done" && w != "capture") wires.push_back(w);
  }
  wires.push_back("lfsr_sout");
  std::vector<std::string> sr_out_wires;
  for (std::size_t i = 0; i + 1 < spec.shift_register_size; ++i) {
    sr_out_wires.push_back("sr_q_" + std::to_string(i));
    wires.push_back(sr_out_wires.back());
  }
  std::vector<std::string> pi_wires, po_wires, so_wires, si_wires;
  for (std::size_t i = 0; i < cut.num_inputs(); ++i) {
    pi_wires.push_back("pi_" + std::to_string(i));
    wires.push_back(pi_wires.back());
  }
  for (std::size_t i = 0; i < cut.num_outputs(); ++i) {
    po_wires.push_back("po_" + std::to_string(i));
    wires.push_back(po_wires.back());
  }
  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    so_wires.push_back("scan_out_" + std::to_string(ch));
    si_wires.push_back("scan_in_" + std::to_string(ch));
    wires.push_back(so_wires.back());
    wires.push_back(si_wires.back());
  }
  for (const std::string& w : wires) {
    top << "  wire " << w << ";\n";
  }
  top << "\n";

  emit_instance(top, ctrl, ctrl_names, "u_ctrl", {}, ctrl_wires);
  std::vector<std::string> lfsr_in = {"tpg_en", "seed_load"};
  for (unsigned bit = 0; bit < lfsr_bits; ++bit) {
    lfsr_in.push_back("seed_" + std::to_string(bit));
  }
  emit_instance(top, lfsr, lfsr_names, "u_lfsr", lfsr_in, {"lfsr_sout"});
  emit_instance(top, sr, sr_names, "u_sr", {"tpg_en", "lfsr_sout"},
                sr_out_wires);
  // The biasing network reads the TPG's D-side: the serial input plus the
  // shift register shifted down one (see builders.hpp).
  std::vector<std::string> bias_in = {"lfsr_sout"};
  for (std::size_t i = 0; i + 1 < spec.shift_register_size; ++i) {
    bias_in.push_back(sr_out_wires[i]);
  }
  emit_instance(top, bias, bias_names, "u_bias", bias_in, pi_wires);
  std::vector<std::string> wrap_in = pi_wires;
  wrap_in.push_back("ce");
  wrap_in.push_back("scan_en");
  for (const std::string& w : si_wires) wrap_in.push_back(w);
  for (std::size_t k = 0; k < spec.num_hold_sets; ++k) {
    wrap_in.push_back("hold_" + std::to_string(k));
  }
  std::vector<std::string> wrap_out = po_wires;
  for (const std::string& w : so_wires) wrap_out.push_back(w);
  emit_instance(top, wrap, wrap_names, "u_cut", wrap_in, wrap_out);
  std::vector<std::string> misr_in = {"misr_en", "misr_sel"};
  for (const std::string& w : po_wires) misr_in.push_back(w);
  for (const std::string& w : so_wires) misr_in.push_back(w);
  std::vector<std::string> misr_out;
  for (unsigned i = 0; i < session.misr_stages; ++i) {
    misr_out.push_back("sig_" + std::to_string(i));
  }
  emit_instance(top, misr, misr_names, "u_misr", misr_in, misr_out);
  // Close the circular-shift loop; zeros shift in during circuit init.
  for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
    top << "  and g_scan_in_" << ch << " (" << si_wires[ch] << ", "
        << so_wires[ch] << ", mode_shift);\n";
  }
  top << "endmodule\n";

  // ---- assemble ---------------------------------------------------------
  EmittedRtl result;
  result.top_name = top_name;
  result.verilog = write_verilog_module(ctrl) + "\n" +
                   write_verilog_module(lfsr) + "\n" +
                   write_verilog_module(sr) + "\n" +
                   write_verilog_module(bias) + "\n" +
                   write_verilog_module(wrap) + "\n" +
                   write_verilog_module(misr) + "\n" + top.str() + "\n" +
                   fbt_dff_model_verilog();

  RtlInventory& inv = result.inventory;
  inv.lfsr_bits = static_cast<unsigned>(lfsr.num_flops());
  inv.bias_gates = count_gates(bias, GateType::kAnd, GateType::kOr);
  inv.bias_gate_inputs = session.tpg.bias_bits;
  inv.cycle_counter_bits = spec.cycle_counter_bits;
  inv.shift_counter_bits = spec.shift_counter_bits;
  inv.segment_counter_bits = spec.segment_counter_bits;
  inv.sequence_counter_bits = spec.sequence_counter_bits;
  inv.seed_rom_entries = num_seeds;
  inv.seed_rom_bits = num_seeds * lfsr_bits;
  inv.with_hold = spec.num_hold_sets > 0;
  inv.hold_sets = spec.num_hold_sets;
  inv.set_counter_bits = inv.with_hold ? spec.set_counter_bits : 0;
  inv.decoder_outputs = spec.num_hold_sets;
  inv.srinit_counter_bits = spec.srinit_counter_bits;
  inv.shiftreg_flops = sr.num_flops();
  inv.misr_flops = misr.num_flops();
  inv.fsm_flops = 7;  // 6 one-hot mode registers + the power-up latch
  inv.cut_flops = wrap.num_flops();
  inv.cut_gates = wrap.num_gates();
  for (const Netlist* mod : {&ctrl, &lfsr, &sr, &bias, &wrap, &misr}) {
    inv.total_flops += mod->num_flops();
    inv.total_gates += mod->num_gates();
  }
  inv.total_gates += scan.num_chains();  // top-level scan-in gating ANDs

  RtlProbes& probes = result.probes;
  probes.mode = {"mode_init", "mode_seed", "mode_srinit", "mode_apply",
                 "mode_shift"};
  probes.done = "done";
  probes.capture = "capture";
  probes.pi = pi_wires;
  for (std::size_t f = 0; f < wrap.num_flops(); ++f) {
    probes.state.push_back("u_cut__" + wrap_names.net[wrap.flops()[f]]);
  }
  probes.misr = misr_out;
  FBT_OBS_GAUGE_SET("rtl.emitted_total_flops",
                    static_cast<double>(inv.total_flops));
  FBT_OBS_GAUGE_SET("rtl.emitted_total_gates",
                    static_cast<double>(inv.total_gates));
  return result;
}

std::vector<std::string> reconcile_inventory(const RtlInventory& inventory,
                                             const BistHardwarePlan& plan,
                                             bool allow_wider_sequence_counter) {
  std::vector<std::string> issues;
  auto check = [&issues](const char* field, std::uint64_t emitted,
                         std::uint64_t planned) {
    if (emitted != planned) {
      std::ostringstream msg;
      msg << field << ": emitted " << emitted << " vs planned " << planned;
      issues.push_back(msg.str());
    }
  };
  check("lfsr_bits", inventory.lfsr_bits, plan.lfsr_bits);
  check("bias_gates", inventory.bias_gates, plan.bias_gates);
  check("bias_gate_inputs", inventory.bias_gate_inputs, plan.bias_gate_inputs);
  check("cycle_counter_bits", inventory.cycle_counter_bits,
        plan.cycle_counter_bits);
  check("shift_counter_bits", inventory.shift_counter_bits,
        plan.shift_counter_bits);
  check("segment_counter_bits", inventory.segment_counter_bits,
        plan.segment_counter_bits);
  if (allow_wider_sequence_counter) {
    if (inventory.sequence_counter_bits < plan.sequence_counter_bits) {
      std::ostringstream msg;
      msg << "sequence_counter_bits: emitted " << inventory.sequence_counter_bits
          << " narrower than planned " << plan.sequence_counter_bits;
      issues.push_back(msg.str());
    }
  } else {
    check("sequence_counter_bits", inventory.sequence_counter_bits,
          plan.sequence_counter_bits);
  }
  check("seed_rom_bits", inventory.seed_rom_bits, plan.seed_rom_bits);
  check("with_hold", inventory.with_hold ? 1 : 0, plan.with_hold ? 1 : 0);
  check("hold_sets", inventory.hold_sets, plan.hold_sets);
  check("set_counter_bits", inventory.set_counter_bits, plan.set_counter_bits);
  check("decoder_outputs", inventory.decoder_outputs, plan.decoder_outputs);
  return issues;
}

}  // namespace fbt
