// Error-handling primitives shared by all fbtgen libraries.
//
// Invariant violations and bad inputs throw fbt::Error (a std::runtime_error)
// so that callers -- tests, benches, examples -- can report context instead of
// aborting.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace fbt {

/// Exception type thrown by all fbtgen libraries on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws fbt::Error with `message` when `condition` is false.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

/// Throws fbt::Error composed of `context` + ": " + `detail` when false.
inline void require(bool condition, std::string_view context,
                    std::string_view detail) {
  if (!condition) {
    throw Error(std::string(context) + ": " + std::string(detail));
  }
}

}  // namespace fbt
