#include "util/thread_pool.hpp"

#include "util/require.hpp"

namespace fbt {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t resolved = resolve_threads(num_threads);
  workers_.reserve(resolved - 1);
  for (std::size_t i = 0; i + 1 < resolved; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    drain();
    lock.lock();
    if (--busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::drain() {
  for (;;) {
    const std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks_) return;
    try {
      (*task_)(i);
    } catch (...) {
      record_error();
    }
  }
}

void ThreadPool::record_error() {
  std::lock_guard lock(mutex_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // Single-thread pool: no dispatch, no locking.
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    require(task_ == nullptr, "ThreadPool::run", "run() is not reentrant");
    task_ = &task;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain();  // the caller is a worker too
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    task_ = nullptr;
    num_tasks_ = 0;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fbt
