// Wall-clock timing for experiment reporting.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace fbt {

/// Monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  double ms() const { return seconds() * 1000.0; }

  /// Elapsed time formatted as H:MM:SS (matching the dissertation's tables).
  std::string hms() const { return format_hms(seconds()); }

  /// Elapsed time via format_duration (milliseconds below one second).
  std::string pretty() const { return format_duration(seconds()); }

  /// Formats a duration in seconds as H:MM:SS.
  static std::string format_hms(double secs) {
    auto total = static_cast<long long>(secs + 0.5);
    const long long h = total / 3600;
    const long long m = (total % 3600) / 60;
    const long long s = total % 60;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld", h, m, s);
    return buf;
  }

  /// Formats sub-second durations as milliseconds ("412ms") instead of the
  /// truncated "0:00:00"; one second and up falls back to H:MM:SS.
  static std::string format_duration(double secs) {
    if (secs < 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0fms", secs * 1000.0);
      return buf;
    }
    return format_hms(secs);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fbt
