// Plain-text table formatting for reproducing the dissertation's tables.
//
// Every bench binary prints its result as one of these tables so that
// EXPERIMENTS.md can quote bench output verbatim.
#pragma once

#include <string>
#include <vector>

namespace fbt {

/// Column-aligned text table with a title row and a header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with box-drawing-free ASCII alignment.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fbt
