#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace fbt {

void Table::set_header(std::vector<std::string> header) {
  require(rows_.empty(), "Table::set_header: header must precede rows");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "Table::add_row: arity mismatch with header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace fbt
