// Fixed-size worker pool for embarrassingly-parallel loops.
//
// The pool owns `resolve_threads(n) - 1` worker threads; the thread that
// calls run() participates as the remaining worker, so a pool resolved to
// one thread executes everything inline with zero synchronization. run()
// hands out task indices 0..num_tasks-1 through a shared atomic cursor
// (tasks must therefore be independent), blocks until every index has been
// executed, and rethrows the first task exception on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbt {

class ThreadPool {
 public:
  /// `num_threads` = 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count including the caller of run(); always >= 1.
  std::size_t size() const { return workers_.size() + 1; }

  /// Maps the num_threads knob to an actual thread count: 0 becomes
  /// hardware_concurrency() (or 1 when that is unknown).
  static std::size_t resolve_threads(std::size_t requested);

  /// Executes task(i) once for every i in [0, num_tasks), distributed over
  /// the workers and the calling thread. Blocks until all tasks finish.
  /// Not reentrant: run() may not be called from inside a task.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  void drain();
  void record_error();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // current job
  std::size_t num_tasks_ = 0;
  std::atomic<std::size_t> next_task_{0};
  std::size_t busy_workers_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace fbt
