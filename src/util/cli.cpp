#include "util/cli.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace fbt {

Cli::Cli(int argc, const char* const* argv) {
  require(argc >= 1, "Cli: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0', "Cli: flag --" + name,
          "expects an integer, got '" + it->second + "'");
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0', "Cli: flag --" + name,
          "expects a number, got '" + it->second + "'");
  return value;
}

}  // namespace fbt
