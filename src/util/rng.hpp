// Deterministic pseudo-random number generation.
//
// All stochastic procedures in fbtgen (synthetic circuit generation, LFSR seed
// selection, heuristic tie-breaking) draw from Pcg32 so that experiments are
// exactly reproducible across runs and platforms. std::mt19937 is avoided
// because its distribution helpers are not guaranteed to be identical across
// standard library implementations.
#pragma once

#include <cstdint>

#include "util/require.hpp"

namespace fbt {

/// PCG-XSH-RR 64/32 generator (O'Neill 2014). Small, fast, statistically
/// strong enough for workload generation and heuristic randomization.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  /// Uniform 32-bit value.
  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint32_t below(std::uint32_t bound) {
    require(bound != 0, "Pcg32::below: bound must be nonzero");
    // Debiased modulo (Lemire-style threshold rejection).
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {
    require(lo <= hi, "Pcg32::range: lo must be <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability numer/denom.
  bool chance(std::uint32_t numer, std::uint32_t denom) {
    require(denom != 0, "Pcg32::chance: denom must be nonzero");
    return below(denom) < numer;
  }

  /// Uniform double in [0, 1).
  double uniform() { return next() * (1.0 / 4294967296.0); }

  /// Uniform 64-bit value.
  std::uint64_t next64() {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace fbt
