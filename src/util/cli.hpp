// Minimal command-line flag parsing shared by examples and bench binaries.
//
// Syntax: --name=value or --name value; bare --flag sets a boolean true.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fbt {

/// Parses argv into a key/value map plus positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value of --name, or `fallback` when absent. Throws on non-integer.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value of --name, or `fallback` when absent.
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fbt
