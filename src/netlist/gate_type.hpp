// Gate types for the structural netlist model.
//
// The model matches the ISCAS89 .bench vocabulary: primary inputs, D
// flip-flops, and the standard combinational cells. Constants exist so that
// case analysis (STA) and synthetic generation can tie nets off explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fbt {

enum class GateType : std::uint8_t {
  kInput,   ///< Primary input (no fanin).
  kDff,     ///< D flip-flop; node value is the state variable (Q). One fanin: D.
  kBuf,     ///< Buffer, 1 fanin.
  kNot,     ///< Inverter, 1 fanin.
  kAnd,     ///< AND, >= 1 fanins.
  kNand,    ///< NAND, >= 1 fanins.
  kOr,      ///< OR, >= 1 fanins.
  kNor,     ///< NOR, >= 1 fanins.
  kXor,     ///< XOR (odd parity), >= 2 fanins.
  kXnor,    ///< XNOR (even parity), >= 2 fanins.
  kConst0,  ///< Constant 0, no fanin.
  kConst1,  ///< Constant 1, no fanin.
};

/// .bench keyword for a gate type ("INPUT", "DFF", "NAND", ...).
std::string_view gate_type_name(GateType type);

/// Parses a .bench keyword (case-insensitive). Throws fbt::Error on unknown.
GateType gate_type_from_name(std::string_view name);

/// True for AND/NAND/OR/NOR — gates that have a controlling value.
bool has_controlling_value(GateType type);

/// Controlling input value of AND/NAND (0... returns the value that forces the
/// output regardless of other inputs): AND/NAND -> 0, OR/NOR -> 1.
/// Precondition: has_controlling_value(type).
bool controlling_value(GateType type);

/// True when the gate inverts parity from a single sensitized input to the
/// output: NOT, NAND, NOR, XNOR. (For XOR/XNOR this is the polarity seen by
/// one input when all other inputs are held at 0.)
bool inverts(GateType type);

/// True for gates that compute a combinational function (everything except
/// kInput, kDff, kConst0, kConst1).
bool is_combinational(GateType type);

}  // namespace fbt
