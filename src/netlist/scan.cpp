#include "netlist/scan.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

ScanConfig equal_partition_scan_config(std::size_t num_flops,
                                       std::size_t max_chains) {
  require(max_chains >= 1, "equal_partition_scan_config",
          "max_chains must be >= 1");
  if (num_flops == 0) return ScanConfig{1, 1};
  for (std::size_t d = max_chains; d >= 2; --d) {
    if (num_flops % d == 0) return ScanConfig{d, num_flops / d};
  }
  return ScanConfig{1, num_flops};
}

ScanChains::ScanChains(const Netlist& netlist, const ScanConfig& config) {
  require(config.max_chains >= 1, "ScanChains", "max_chains must be >= 1");
  require(config.min_chain_length >= 1, "ScanChains",
          "min_chain_length must be >= 1");
  const std::size_t nff = netlist.num_flops();
  if (nff == 0) return;

  // As many chains as possible subject to: at most max_chains, and each chain
  // at least min_chain_length long (unless there are too few flops for even
  // one such chain, in which case a single short chain is used).
  std::size_t nchains = nff / config.min_chain_length;
  nchains = std::clamp<std::size_t>(nchains, 1, config.max_chains);

  chains_.resize(nchains);
  const std::size_t base = nff / nchains;
  const std::size_t extra = nff % nchains;
  std::size_t next = 0;
  for (std::size_t c = 0; c < nchains; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    for (std::size_t i = 0; i < len; ++i) {
      chains_[c].push_back(netlist.flops()[next++]);
    }
    longest_ = std::max(longest_, len);
  }
  require(next == nff, "ScanChains", "internal: flop partition mismatch");
}

const std::vector<NodeId>& ScanChains::chain(std::size_t index) const {
  require(index < chains_.size(), "ScanChains::chain", "index out of range");
  return chains_[index];
}

}  // namespace fbt
