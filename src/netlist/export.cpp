#include "netlist/export.hpp"

#include <cctype>
#include <sstream>
#include <unordered_set>

#include "util/require.hpp"

namespace fbt {
namespace {

std::string verilog_primitive(GateType type) {
  switch (type) {
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    default: return "";
  }
}

bool is_verilog_reserved(std::string_view s) {
  // Keywords a structural netlist could plausibly collide with, plus "clk"
  // (every emitted module owns that port name).
  static const std::unordered_set<std::string_view> kReserved = {
      "always",   "and",    "assign", "begin",    "buf",     "case",
      "endcase",  "else",   "end",    "endmodule","for",     "if",
      "initial",  "inout",  "input",  "module",   "nand",    "negedge",
      "nor",      "not",    "or",     "output",   "posedge", "reg",
      "wire",     "while",  "xnor",   "xor",      "clk",     "tri",
      "supply0",  "supply1","parameter", "localparam", "integer", "signed",
  };
  return kReserved.count(s) != 0;
}

/// Appends "__n<suffix>" until `name` is absent from `used`, then claims it.
std::string claim_unique(std::string name, std::size_t suffix,
                         std::unordered_set<std::string>& used) {
  if (used.count(name) != 0) {
    const std::string base = name;
    name = base + "__n" + std::to_string(suffix);
    while (used.count(name) != 0) name += "_";
  }
  used.insert(name);
  return name;
}

}  // namespace

std::string legalize_verilog_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == '$';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) ||
      out.front() == '$') {
    out.insert(0, "n_");
  }
  if (is_verilog_reserved(out)) out.insert(0, "id_");
  return out;
}

VerilogNames verilog_names(const Netlist& netlist) {
  VerilogNames names;
  names.module_name = legalize_verilog_identifier(netlist.name());
  std::unordered_set<std::string> used;
  names.net.reserve(netlist.size());
  for (NodeId id = 0; id < netlist.size(); ++id) {
    names.net.push_back(
        claim_unique(legalize_verilog_identifier(netlist.gate(id).name), id,
                     used));
  }
  names.out_port.reserve(netlist.num_outputs());
  for (std::size_t i = 0; i < netlist.num_outputs(); ++i) {
    names.out_port.push_back(
        claim_unique(names.net[netlist.outputs()[i]] + "_po", i, used));
  }
  return names;
}

std::string write_verilog_module(const Netlist& netlist) {
  require(netlist.finalized(), "write_verilog", "netlist must be finalized");
  const VerilogNames names = verilog_names(netlist);
  std::ostringstream out;
  out << "module " << names.module_name << " (clk";
  for (const NodeId pi : netlist.inputs()) {
    out << ", " << names.net[pi];
  }
  for (const std::string& port : names.out_port) {
    out << ", " << port;
  }
  out << ");\n  input clk;\n";
  for (const NodeId pi : netlist.inputs()) {
    out << "  input " << names.net[pi] << ";\n";
  }
  for (const std::string& port : names.out_port) {
    out << "  output " << port << ";\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    if (netlist.type(id) == GateType::kInput) continue;
    out << "  wire " << names.net[id] << ";\n";
  }
  out << "\n";
  for (std::size_t i = 0; i < netlist.num_outputs(); ++i) {
    out << "  assign " << names.out_port[i] << " = "
        << names.net[netlist.outputs()[i]] << ";\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kDff:
        out << "  fbt_dff dff_" << names.net[id] << " (.clk(clk), .d("
            << names.net[netlist.dff_input(id)] << "), .q(" << names.net[id]
            << "));\n";
        break;
      case GateType::kConst0:
        out << "  assign " << names.net[id] << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        out << "  assign " << names.net[id] << " = 1'b1;\n";
        break;
      default: {
        out << "  " << verilog_primitive(g.type) << " g_" << names.net[id]
            << " (" << names.net[id];
        for (const NodeId f : g.fanins) {
          out << ", " << names.net[f];
        }
        out << ");\n";
        break;
      }
    }
  }
  out << "endmodule\n";
  return out.str();
}

std::string fbt_dff_model_verilog() {
  return
      "module fbt_dff (input clk, input d, output reg q);\n"
      "  initial q = 1'b0;\n"
      "  always @(posedge clk) q <= d;\n"
      "endmodule\n";
}

std::string write_verilog(const Netlist& netlist) {
  return write_verilog_module(netlist) + "\n" + fbt_dff_model_verilog();
}

std::string write_dot(const Netlist& netlist) {
  require(netlist.finalized(), "write_dot", "netlist must be finalized");
  std::ostringstream out;
  out << "digraph \"" << netlist.name() << "\" {\n  rankdir=LR;\n";
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    const char* shape = "ellipse";
    if (g.type == GateType::kInput) shape = "diamond";
    if (g.type == GateType::kDff) shape = "box";
    out << "  n" << id << " [label=\"" << g.name << "\\n"
        << gate_type_name(g.type) << "\", shape=" << shape;
    if (netlist.is_output(id)) out << ", peripheries=2";
    out << "];\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    for (const NodeId f : netlist.gate(id).fanins) {
      out << "  n" << f << " -> n" << id;
      if (netlist.type(id) == GateType::kDff) out << " [style=dashed]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace fbt
