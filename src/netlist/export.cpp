#include "netlist/export.hpp"

#include <sstream>

#include "util/require.hpp"

namespace fbt {
namespace {

std::string verilog_primitive(GateType type) {
  switch (type) {
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kNand: return "nand";
    case GateType::kOr: return "or";
    case GateType::kNor: return "nor";
    case GateType::kXor: return "xor";
    case GateType::kXnor: return "xnor";
    default: return "";
  }
}

}  // namespace

std::string write_verilog(const Netlist& netlist) {
  require(netlist.finalized(), "write_verilog", "netlist must be finalized");
  std::ostringstream out;
  out << "module " << netlist.name() << " (clk";
  for (const NodeId pi : netlist.inputs()) {
    out << ", " << netlist.gate(pi).name;
  }
  for (const NodeId po : netlist.outputs()) {
    out << ", " << netlist.gate(po).name << "_po";
  }
  out << ");\n  input clk;\n";
  for (const NodeId pi : netlist.inputs()) {
    out << "  input " << netlist.gate(pi).name << ";\n";
  }
  for (const NodeId po : netlist.outputs()) {
    out << "  output " << netlist.gate(po).name << "_po;\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    if (netlist.type(id) == GateType::kInput) continue;
    out << "  wire " << netlist.gate(id).name << ";\n";
  }
  out << "\n";
  for (const NodeId po : netlist.outputs()) {
    out << "  assign " << netlist.gate(po).name << "_po = "
        << netlist.gate(po).name << ";\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kDff:
        out << "  fbt_dff dff_" << g.name << " (.clk(clk), .d("
            << netlist.gate(netlist.dff_input(id)).name << "), .q(" << g.name
            << "));\n";
        break;
      case GateType::kConst0:
        out << "  assign " << g.name << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        out << "  assign " << g.name << " = 1'b1;\n";
        break;
      default: {
        out << "  " << verilog_primitive(g.type) << " g_" << g.name << " ("
            << g.name;
        for (const NodeId f : g.fanins) {
          out << ", " << netlist.gate(f).name;
        }
        out << ");\n";
        break;
      }
    }
  }
  out << "endmodule\n\n"
      << "module fbt_dff (input clk, input d, output reg q);\n"
      << "  initial q = 1'b0;\n"
      << "  always @(posedge clk) q <= d;\n"
      << "endmodule\n";
  return out.str();
}

std::string write_dot(const Netlist& netlist) {
  require(netlist.finalized(), "write_dot", "netlist must be finalized");
  std::ostringstream out;
  out << "digraph \"" << netlist.name() << "\" {\n  rankdir=LR;\n";
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    const char* shape = "ellipse";
    if (g.type == GateType::kInput) shape = "diamond";
    if (g.type == GateType::kDff) shape = "box";
    out << "  n" << id << " [label=\"" << g.name << "\\n"
        << gate_type_name(g.type) << "\", shape=" << shape;
    if (netlist.is_output(id)) out << ", peripheries=2";
    out << "];\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    for (const NodeId f : netlist.gate(id).fanins) {
      out << "  n" << f << " -> n" << id;
      if (netlist.type(id) == GateType::kDff) out << " [style=dashed]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace fbt
