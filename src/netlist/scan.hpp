// Scan-chain configuration model (dissertation §1.3, Fig. 1.8).
//
// fbtgen simulates scan structurally rather than by netlist rewriting: state
// variables are directly loadable/observable in the simulators, and this
// model supplies the chain partition needed for test-time accounting (shift
// cycles, circular-shift length Lsc) and for the BIST controller's shift
// counter sizing.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

/// Policy for stitching flip-flops into scan chains.
struct ScanConfig {
  /// Upper bound on the number of chains (the dissertation assumes <= 10).
  std::size_t max_chains = 10;
  /// Minimum chain length before a second chain is opened (>= 100 in §4.6).
  std::size_t min_chain_length = 100;
};

/// A ScanConfig that makes ScanChains cut exactly equal-length chains: the
/// largest divisor d <= max_chains of `num_flops` chains of num_flops/d flops
/// each. Equal chains are required by the RTL emission layer -- the circular
/// shift restores the state only when every chain's length divides Lsc.
ScanConfig equal_partition_scan_config(std::size_t num_flops,
                                       std::size_t max_chains = 10);

/// A partition of the circuit's flip-flops into scan chains of approximately
/// equal length, in flip-flop declaration order.
class ScanChains {
 public:
  /// Stitches `netlist`'s flops per `config`. A circuit with no flops yields
  /// zero chains.
  ScanChains(const Netlist& netlist, const ScanConfig& config);

  std::size_t num_chains() const { return chains_.size(); }
  const std::vector<NodeId>& chain(std::size_t index) const;

  /// Length of the longest chain (Lsc in Tables 4.3/4.4). Zero when there are
  /// no flip-flops.
  std::size_t longest_length() const { return longest_; }

  /// Cycles needed to load a full state serially (== longest_length()).
  std::size_t shift_cycles() const { return longest_; }

 private:
  std::vector<std::vector<NodeId>> chains_;
  std::size_t longest_ = 0;
};

}  // namespace fbt
