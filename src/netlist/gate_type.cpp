#include "netlist/gate_type.hpp"

#include <algorithm>
#include <cctype>

#include "util/require.hpp"

namespace fbt {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kDff: return "DFF";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
  }
  return "?";
}

GateType gate_type_from_name(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "INPUT") return GateType::kInput;
  if (upper == "DFF") return GateType::kDff;
  if (upper == "BUF" || upper == "BUFF") return GateType::kBuf;
  if (upper == "NOT" || upper == "INV") return GateType::kNot;
  if (upper == "AND") return GateType::kAnd;
  if (upper == "NAND") return GateType::kNand;
  if (upper == "OR") return GateType::kOr;
  if (upper == "NOR") return GateType::kNor;
  if (upper == "XOR") return GateType::kXor;
  if (upper == "XNOR") return GateType::kXnor;
  if (upper == "CONST0") return GateType::kConst0;
  if (upper == "CONST1") return GateType::kConst1;
  throw Error("gate_type_from_name: unknown gate type '" + upper + "'");
}

bool has_controlling_value(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
      return true;
    default:
      return false;
  }
}

bool controlling_value(GateType type) {
  require(has_controlling_value(type),
          "controlling_value: gate type has no controlling value");
  return type == GateType::kOr || type == GateType::kNor;
}

bool inverts(GateType type) {
  switch (type) {
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

bool is_combinational(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kDff:
    case GateType::kConst0:
    case GateType::kConst1:
      return false;
    default:
      return true;
  }
}

}  // namespace fbt
