// Netlist exporters: structural Verilog and Graphviz DOT.
//
// The dissertation's tool chain moves netlists between formats (appendix A's
// "format convertor"); these exporters let fbtgen circuits be inspected with
// standard EDA/graph tooling, and the RTL emission layer (src/rtl) reuses the
// Verilog writer to produce the on-chip BIST hardware modules. The .bench
// reader remains the ingest path; Verilog re-ingest is handled by the src/rtl
// elaborator.
//
// Net names arriving from .bench sources may be illegal Verilog identifiers
// (brackets, dots, leading digits) or collide with keywords; the writer
// legalizes every identifier and dedupes collisions introduced by mangling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

/// Mangles one name into a legal Verilog-2001 simple identifier: every
/// character outside [A-Za-z0-9_$] becomes '_', a leading digit/'$' gets an
/// "n_" prefix, and keywords (plus the reserved port name "clk") get an "id_"
/// prefix. Deterministic and idempotent on already-legal non-reserved names.
std::string legalize_verilog_identifier(std::string_view name);

/// The legalized, collision-free identifiers the Verilog writer uses for one
/// netlist: per-node net names, per-output port names (net name + "_po",
/// deduped against everything else), and the module name.
struct VerilogNames {
  std::string module_name;
  std::vector<std::string> net;       ///< indexed by NodeId
  std::vector<std::string> out_port;  ///< indexed by output position
};

VerilogNames verilog_names(const Netlist& netlist);

/// Structural Verilog-2001: one module, wire-per-net, primitive gate
/// instances, and DFF instances of a behavioural `fbt_dff` cell. Does NOT
/// include the fbt_dff model itself (see fbt_dff_model_verilog) so that
/// multi-module files define it exactly once.
std::string write_verilog_module(const Netlist& netlist);

/// The behavioural `fbt_dff` cell model (posedge D flop, initial q = 0).
std::string fbt_dff_model_verilog();

/// Single-module convenience: write_verilog_module plus the fbt_dff model
/// appended once.
std::string write_verilog(const Netlist& netlist);

/// Graphviz DOT digraph (inputs as diamonds, flops as boxes, gates as
/// ellipses; primary outputs double-circled).
std::string write_dot(const Netlist& netlist);

}  // namespace fbt
