// Netlist exporters: structural Verilog and Graphviz DOT.
//
// The dissertation's tool chain moves netlists between formats (appendix A's
// "format convertor"); these exporters let fbtgen circuits be inspected with
// standard EDA/graph tooling. Both are write-only views (the .bench reader
// remains the ingest path).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace fbt {

/// Structural Verilog-2001: one module, wire-per-net, primitive gate
/// instances, and DFF instances of a behavioural `fbt_dff` cell appended to
/// the output.
std::string write_verilog(const Netlist& netlist);

/// Graphviz DOT digraph (inputs as diamonds, flops as boxes, gates as
/// ellipses; primary outputs double-circled).
std::string write_dot(const Netlist& netlist);

}  // namespace fbt
