// Flattened fanin arrays for hot simulation loops.
//
// The simulators evaluate every gate every cycle; building a temporary
// fanin-value vector per gate dominates their run time. FlatFanins lays the
// eval-order gates out contiguously (gate id, type, fanin span) so inner
// loops touch two flat arrays only.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

class FlatFanins {
 public:
  explicit FlatFanins(const Netlist& netlist) {
    const auto& order = netlist.eval_order();
    entries_.reserve(order.size());
    for (const NodeId id : order) {
      const Gate& g = netlist.gate(id);
      entries_.push_back({id, g.type,
                          static_cast<std::uint32_t>(fanins_.size()),
                          static_cast<std::uint32_t>(g.fanins.size())});
      fanins_.insert(fanins_.end(), g.fanins.begin(), g.fanins.end());
    }
    for (NodeId id = 0; id < netlist.size(); ++id) {
      if (netlist.type(id) == GateType::kConst0) const0_.push_back(id);
      if (netlist.type(id) == GateType::kConst1) const1_.push_back(id);
    }
  }

  struct Entry {
    NodeId node;
    GateType type;
    std::uint32_t first;  ///< index into fanin_ids()
    std::uint32_t count;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  const NodeId* fanin_ids() const { return fanins_.data(); }
  const std::vector<NodeId>& const0_nodes() const { return const0_; }
  const std::vector<NodeId>& const1_nodes() const { return const1_; }

  /// Bytes held by the CSR arrays (resource telemetry; counts content, not
  /// allocator slack, so the value is deterministic for a given netlist).
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) + entries_.size() * sizeof(Entry) +
           (fanins_.size() + const0_.size() + const1_.size()) * sizeof(NodeId);
  }

 private:
  std::vector<Entry> entries_;
  std::vector<NodeId> fanins_;
  std::vector<NodeId> const0_;
  std::vector<NodeId> const1_;
};

}  // namespace fbt
