// Flattened fanin view for hot simulation loops.
//
// The simulators evaluate every gate every cycle; the eval-order CSR they
// walk (gate id, type, fanin span, contiguous fanin ids) is built once by
// Netlist::finalize() and owned by the netlist. FlatFanins is a thin view
// over those arrays: copying or caching one costs a few pointers, not a
// duplicate of the circuit. A view constructed from a shared_ptr keeps the
// owning netlist alive (the serving cache evicts netlists and CSR views
// independently); the reference constructor relies on the caller keeping the
// netlist alive, which every simulator in the tree already does.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "netlist/netlist.hpp"

namespace fbt {

class FlatFanins {
 public:
  using Entry = EvalEntry;

  explicit FlatFanins(const Netlist& netlist)
      : entries_(netlist.eval_entries()),
        fanins_(netlist.eval_fanin_ids()),
        const0_(netlist.const0_nodes()),
        const1_(netlist.const1_nodes()) {}

  /// Shares ownership of the netlist so the view can outlive the caller's
  /// reference (serving-cache path).
  explicit FlatFanins(std::shared_ptr<const Netlist> netlist)
      : FlatFanins(*netlist) {
    owner_ = std::move(netlist);
  }

  std::span<const Entry> entries() const { return entries_; }
  const NodeId* fanin_ids() const { return fanins_; }
  std::span<const NodeId> const0_nodes() const { return const0_; }
  std::span<const NodeId> const1_nodes() const { return const1_; }

  /// Bytes held by this view itself. The CSR content is owned by the netlist
  /// and accounted in Netlist::footprint_bytes() exactly once.
  std::uint64_t footprint_bytes() const { return sizeof(*this); }

 private:
  std::span<const Entry> entries_;
  const NodeId* fanins_;
  std::span<const NodeId> const0_;
  std::span<const NodeId> const1_;
  std::shared_ptr<const Netlist> owner_;
};

}  // namespace fbt
