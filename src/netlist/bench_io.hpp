// ISCAS89 .bench format reader and writer.
//
// Grammar (one statement per line, '#' starts a comment):
//   INPUT(name)
//   OUTPUT(name)
//   name = TYPE(arg1, arg2, ...)
// where TYPE is DFF, BUF/BUFF, NOT/INV, AND, NAND, OR, NOR, XOR, XNOR.
// References may be forward; OUTPUT may name any net.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace fbt {

/// Parses .bench text into a finalized Netlist. Throws fbt::Error with the
/// offending line number on malformed input.
Netlist parse_bench(std::string_view text, std::string circuit_name);

/// Reads a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Serializes a netlist to .bench text (round-trips through parse_bench).
std::string write_bench(const Netlist& netlist);

}  // namespace fbt
