// Structural gate-level netlist.
//
// A Netlist is a DAG of gates plus D flip-flops. Flip-flop *outputs* are the
// present-state variables (pseudo primary inputs, PPIs); flip-flop *data
// inputs* are the next-state functions (pseudo primary outputs, PPOs). The
// combinational core is everything between {primary inputs, flip-flop outputs,
// constants} and {primary outputs, flip-flop data inputs}.
//
// Construction is two-phase: build with add_* / set_dff_input / mark_output,
// then call finalize() once. finalize() validates the structure and builds the
// derived views (fanouts, topological evaluation order, levels) that the
// simulators, ATPG, and STA consume.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace fbt {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// One node of the netlist: a primary input, flip-flop, constant, or gate.
struct Gate {
  GateType type = GateType::kBuf;
  std::string name;
  std::vector<NodeId> fanins;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- construction ------------------------------------------------------

  /// Adds a primary input. Returns its node id.
  NodeId add_input(std::string name);

  /// Adds a D flip-flop with an unconnected data input (connect it later with
  /// set_dff_input). Returns the node id of the flip-flop output (Q).
  NodeId add_dff(std::string name);

  /// Connects the data input of flip-flop `dff` to node `d`.
  void set_dff_input(NodeId dff, NodeId d);

  /// Adds a combinational gate or constant. Returns its node id.
  NodeId add_gate(GateType type, std::string name, std::vector<NodeId> fanins);

  /// Marks `node` as a primary output. A node may be marked at most once.
  void mark_output(NodeId node);

  /// Validates the netlist and builds derived structures. Must be called
  /// exactly once, after which the netlist is immutable.
  void finalize();

  // ---- structure ---------------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(NodeId id) const { return gates_[id]; }
  GateType type(NodeId id) const { return gates_[id].type; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& flops() const { return flops_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_flops() const { return flops_.size(); }

  /// Data input (D) node of flip-flop `dff`.
  NodeId dff_input(NodeId dff) const;

  /// Node id by name; kNoNode when absent.
  NodeId find(const std::string& name) const;

  bool is_output(NodeId id) const { return output_flag_[id] != 0; }

  // ---- derived views (available after finalize) ---------------------------

  bool finalized() const { return finalized_; }

  /// Combinational gates in topological (fanin-before-fanout) order. Sources
  /// (inputs, flip-flops, constants) are not included.
  const std::vector<NodeId>& eval_order() const;

  /// Fanout node ids of `id` (gates that list `id` as a fanin, including
  /// flip-flops whose D input is `id`).
  const std::vector<NodeId>& fanouts(NodeId id) const;

  /// Logic level: 0 for sources, 1 + max(fanin levels) for gates.
  unsigned level(NodeId id) const;
  unsigned max_level() const { return max_level_; }

  /// Number of circuit lines used for switching-activity percentages. Every
  /// node is one line (the dissertation counts gate outputs, inputs, and
  /// state variables).
  std::size_t num_lines() const { return gates_.size(); }

  /// Count of combinational gates (excludes inputs, flops, constants).
  std::size_t num_gates() const { return eval_order_.size(); }

  /// Approximate bytes owned by this netlist: gate records, names, fanin and
  /// fanout adjacency, derived order/level arrays, and the name index
  /// (resource telemetry). Counts content, not allocator slack, so the value
  /// is deterministic for a given circuit.
  std::uint64_t footprint_bytes() const;

 private:
  void check_mutable() const;
  NodeId add_node(Gate gate);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> flops_;
  std::vector<std::uint8_t> output_flag_;
  std::unordered_map<std::string, NodeId> by_name_;

  bool finalized_ = false;
  std::vector<NodeId> eval_order_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<unsigned> levels_;
  unsigned max_level_ = 0;
};

}  // namespace fbt
