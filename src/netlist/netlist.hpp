// Structural gate-level netlist on arena-backed structure-of-arrays storage.
//
// A Netlist is a DAG of gates plus D flip-flops. Flip-flop *outputs* are the
// present-state variables (pseudo primary inputs, PPIs); flip-flop *data
// inputs* are the next-state functions (pseudo primary outputs, PPOs). The
// combinational core is everything between {primary inputs, flip-flop outputs,
// constants} and {primary outputs, flip-flop data inputs}.
//
// Storage layout (see DESIGN.md "Arena netlist core"): there is no per-gate
// record. Each node is a row across flat columns -- a type byte, an
// offset/length span into one shared name arena, and a fanin span in a CSR
// built directly at add_gate time. Derived views (fanout CSR, topological
// evaluation order, levels, and the eval-order fanin CSR the simulators walk)
// are flat arrays built in a single counting-sort + Kahn pass at finalize().
// Name lookup goes through an open-addressing index of node ids (no
// unordered_map, no per-key heap nodes, heterogeneous string_view lookup).
//
// Construction is two-phase: build with add_* / set_dff_input / mark_output,
// then call finalize() once. finalize() validates the structure and builds the
// derived views that the simulators, ATPG, and STA consume.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/gate_type.hpp"

namespace fbt {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Read-only view of one node, assembled from the SoA columns on demand.
/// Cheap to copy; `name` and `fanins` point into the netlist's arenas and
/// stay valid for the netlist's lifetime.
struct Gate {
  GateType type = GateType::kBuf;
  std::string_view name;
  std::span<const NodeId> fanins;
};

/// One eval-order gate of the flattened simulation CSR: gate id, type, and
/// the span [first, first + count) into eval_fanin_ids(). Built at finalize()
/// and shared by every FlatFanins view (16 bytes, cache-line friendly).
struct EvalEntry {
  NodeId node;
  GateType type;
  std::uint32_t first;  ///< index into Netlist::eval_fanin_ids()
  std::uint32_t count;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- construction ------------------------------------------------------

  /// Adds a primary input. Returns its node id.
  NodeId add_input(std::string_view name);

  /// Adds a D flip-flop with an unconnected data input (connect it later with
  /// set_dff_input). Returns the node id of the flip-flop output (Q).
  NodeId add_dff(std::string_view name);

  /// Connects the data input of flip-flop `dff` to node `d`.
  void set_dff_input(NodeId dff, NodeId d);

  /// Adds a combinational gate or constant. Returns its node id. The fanin
  /// span is copied into the netlist's CSR; the name into its arena.
  NodeId add_gate(GateType type, std::string_view name,
                  std::span<const NodeId> fanins);
  NodeId add_gate(GateType type, std::string_view name,
                  std::initializer_list<NodeId> fanins) {
    return add_gate(type, name,
                    std::span<const NodeId>(fanins.begin(), fanins.size()));
  }

  /// Marks `node` as a primary output. A node may be marked at most once.
  void mark_output(NodeId node);

  /// Validates the netlist and builds derived structures. Must be called
  /// exactly once, after which the netlist is immutable.
  void finalize();

  // ---- structure ---------------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t size() const { return types_.size(); }
  GateType type(NodeId id) const { return types_[id]; }

  /// Name of node `id` as a view into the shared name arena.
  std::string_view node_name(NodeId id) const {
    return {name_arena_.data() + name_off_[id],
            name_off_[id + 1] - name_off_[id]};
  }

  /// Fanin node ids of `id` as a view into the fanin CSR.
  std::span<const NodeId> fanins(NodeId id) const {
    return {fanin_ids_.data() + fanin_off_[id],
            fanin_off_[id + 1] - fanin_off_[id]};
  }

  /// Assembled per-node view (type, name, fanins).
  Gate gate(NodeId id) const { return {types_[id], node_name(id), fanins(id)}; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& flops() const { return flops_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_flops() const { return flops_.size(); }

  /// Data input (D) node of flip-flop `dff`.
  NodeId dff_input(NodeId dff) const;

  /// Node id by name; kNoNode when absent. Heterogeneous: accepts any
  /// string-ish argument without constructing a temporary std::string.
  NodeId find(std::string_view name) const;

  bool is_output(NodeId id) const { return output_flag_[id] != 0; }

  // ---- derived views (available after finalize) ---------------------------

  bool finalized() const { return finalized_; }

  /// Combinational gates in topological (fanin-before-fanout) order. Sources
  /// (inputs, flip-flops, constants) are not included.
  const std::vector<NodeId>& eval_order() const;

  /// Fanout node ids of `id` (gates that list `id` as a fanin, including
  /// flip-flops whose D input is `id`), as a view into the fanout CSR.
  std::span<const NodeId> fanouts(NodeId id) const;

  /// Logic level: 0 for sources, 1 + max(fanin levels) for gates.
  unsigned level(NodeId id) const;
  unsigned max_level() const { return max_level_; }

  /// Eval-order simulation CSR: one EvalEntry per combinational gate in
  /// eval_order() order, fanins laid out contiguously in eval_fanin_ids().
  /// FlatFanins is a thin view over exactly these arrays.
  std::span<const EvalEntry> eval_entries() const;
  const NodeId* eval_fanin_ids() const { return eval_fanins_.data(); }
  std::span<const NodeId> const0_nodes() const { return const0_nodes_; }
  std::span<const NodeId> const1_nodes() const { return const1_nodes_; }

  /// Number of circuit lines used for switching-activity percentages. Every
  /// node is one line (the dissertation counts gate outputs, inputs, and
  /// state variables).
  std::size_t num_lines() const { return types_.size(); }

  /// Count of combinational gates (excludes inputs, flops, constants).
  std::size_t num_gates() const { return eval_order_.size(); }

  /// Exact content bytes of the arena/SoA layout: type and flag columns, the
  /// name arena and offsets, fanin/fanout/eval CSRs, order/level arrays, and
  /// the open-addressing name index (resource telemetry). Counts content, not
  /// allocator slack, so the value is deterministic for a given circuit.
  std::uint64_t footprint_bytes() const;

  /// Bytes of the construction-side arenas alone (name arena + offsets +
  /// fanin CSR + type/flag columns + name index) -- what parse/generate
  /// allocates before finalize() adds the derived views. Published as the
  /// `netlist.arena_bytes` gauge.
  std::uint64_t arena_bytes() const;

 private:
  void check_mutable() const;
  NodeId add_node(GateType type, std::string_view name,
                  std::span<const NodeId> fanins);
  void index_insert(NodeId id);
  void index_grow();

  std::string name_;

  // Per-node SoA columns. name_off_/fanin_off_ hold size()+1 offsets, so the
  // spans of node i are [off[i], off[i+1]).
  std::vector<GateType> types_;
  std::vector<std::uint8_t> output_flag_;
  std::vector<std::uint32_t> name_off_{0};
  std::vector<char> name_arena_;
  std::vector<std::uint32_t> fanin_off_{0};
  std::vector<NodeId> fanin_ids_;

  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> flops_;

  // Open-addressing name index: power-of-two slot array of node ids
  // (kNoNode = empty), linear probing, grown at ~0.7 load. Keys live in the
  // name arena; the index stores ids only.
  std::vector<NodeId> index_slots_;
  std::size_t index_used_ = 0;

  bool finalized_ = false;
  std::vector<NodeId> eval_order_;
  std::vector<std::uint32_t> fanout_off_;
  std::vector<NodeId> fanout_ids_;
  std::vector<unsigned> levels_;
  unsigned max_level_ = 0;

  // Absorbed eval-order CSR (what FlatFanins used to own per instance).
  std::vector<EvalEntry> eval_entries_;
  std::vector<NodeId> eval_fanins_;
  std::vector<NodeId> const0_nodes_;
  std::vector<NodeId> const1_nodes_;
};

}  // namespace fbt
