#include "netlist/netlist.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fbt {
namespace {

std::uint64_t hash_name(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void Netlist::check_mutable() const {
  require(!finalized_, "Netlist", "cannot modify a finalized netlist");
}

void Netlist::index_grow() {
  const std::size_t slots = index_slots_.empty() ? 64 : index_slots_.size() * 2;
  index_slots_.assign(slots, kNoNode);
  const std::size_t mask = slots - 1;
  for (NodeId id = 0; id < types_.size(); ++id) {
    std::size_t h = hash_name(node_name(id)) & mask;
    while (index_slots_[h] != kNoNode) h = (h + 1) & mask;
    index_slots_[h] = id;
  }
}

void Netlist::index_insert(NodeId id) {
  // Grow at ~0.7 load so probe chains stay short; rehash walks the name
  // arena once, which is O(nodes) amortized over geometric doubling.
  if ((index_used_ + 1) * 10 >= index_slots_.size() * 7) index_grow();
  const std::size_t mask = index_slots_.size() - 1;
  std::size_t h = hash_name(node_name(id)) & mask;
  while (index_slots_[h] != kNoNode) h = (h + 1) & mask;
  index_slots_[h] = id;
  ++index_used_;
}

NodeId Netlist::find(std::string_view name) const {
  if (index_slots_.empty()) return kNoNode;
  const std::size_t mask = index_slots_.size() - 1;
  std::size_t h = hash_name(name) & mask;
  while (true) {
    const NodeId slot = index_slots_[h];
    if (slot == kNoNode) return kNoNode;
    if (node_name(slot) == name) return slot;
    h = (h + 1) & mask;
  }
}

NodeId Netlist::add_node(GateType type, std::string_view name,
                         std::span<const NodeId> fanins) {
  check_mutable();
  require(!name.empty(), "Netlist::add_node", "node name must be nonempty");
  require(find(name) == kNoNode, "Netlist::add_node",
          "duplicate node name '" + std::string(name) + "'");
  const auto id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  output_flag_.push_back(0);
  name_arena_.insert(name_arena_.end(), name.begin(), name.end());
  name_off_.push_back(static_cast<std::uint32_t>(name_arena_.size()));
  fanin_ids_.insert(fanin_ids_.end(), fanins.begin(), fanins.end());
  fanin_off_.push_back(static_cast<std::uint32_t>(fanin_ids_.size()));
  index_insert(id);
  return id;
}

NodeId Netlist::add_input(std::string_view name) {
  const NodeId id = add_node(GateType::kInput, name, {});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_dff(std::string_view name) {
  const NodeId placeholder[1] = {kNoNode};
  const NodeId id = add_node(GateType::kDff, name, placeholder);
  flops_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NodeId dff, NodeId d) {
  check_mutable();
  require(dff < types_.size() && types_[dff] == GateType::kDff,
          "Netlist::set_dff_input", "node is not a flip-flop");
  require(d < types_.size(), "Netlist::set_dff_input", "invalid data input");
  fanin_ids_[fanin_off_[dff]] = d;
}

NodeId Netlist::add_gate(GateType type, std::string_view name,
                         std::span<const NodeId> fanins) {
  require(type != GateType::kInput && type != GateType::kDff,
          "Netlist::add_gate", "use add_input/add_dff for sources");
  for (const NodeId f : fanins) {
    require(f < types_.size(), "Netlist::add_gate",
            "fanin id out of range in gate '" + std::string(name) + "'");
  }
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
      require(fanins.size() == 1, "Netlist::add_gate",
              "BUF/NOT require exactly 1 fanin ('" + std::string(name) + "')");
      break;
    case GateType::kConst0:
    case GateType::kConst1:
      require(fanins.empty(), "Netlist::add_gate",
              "constants take no fanins ('" + std::string(name) + "')");
      break;
    default:
      require(!fanins.empty(), "Netlist::add_gate",
              "gate requires at least 1 fanin ('" + std::string(name) + "')");
      break;
  }
  return add_node(type, name, fanins);
}

void Netlist::mark_output(NodeId node) {
  check_mutable();
  require(node < types_.size(), "Netlist::mark_output", "invalid node id");
  require(output_flag_[node] == 0, "Netlist::mark_output",
          "node '" + std::string(node_name(node)) +
              "' already marked as output");
  output_flag_[node] = 1;
  outputs_.push_back(node);
}

void Netlist::finalize() {
  check_mutable();
  const Timer timer;
  const auto n = static_cast<NodeId>(types_.size());

  // Every flip-flop must have a connected data input.
  for (const NodeId ff : flops_) {
    require(fanin_ids_[fanin_off_[ff]] != kNoNode, "Netlist::finalize",
            "flip-flop '" + std::string(node_name(ff)) +
                "' has no data input");
  }

  // Fanout CSR by counting sort: count per-driver edges, prefix-sum into
  // offsets, then fill in (node id, fanin position) order -- which reproduces
  // the append order the per-node fanout vectors used to have (ascending
  // consumer id, duplicates preserved).
  fanout_off_.assign(n + 1, 0);
  for (const NodeId f : fanin_ids_) ++fanout_off_[f + 1];
  for (NodeId id = 0; id < n; ++id) fanout_off_[id + 1] += fanout_off_[id];
  fanout_ids_.resize(fanin_ids_.size());
  std::vector<std::uint32_t> cursor(fanout_off_.begin(), fanout_off_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    for (std::uint32_t k = fanin_off_[id]; k < fanin_off_[id + 1]; ++k) {
      fanout_ids_[cursor[fanin_ids_[k]]++] = id;
    }
  }

  // Kahn topological sort over combinational gates. Sources (inputs, flops,
  // constants) have level 0; the edge from a gate into a flip-flop's D pin
  // does not constrain the flip-flop (its value is a state variable).
  levels_.assign(n, 0);
  std::vector<unsigned> pending(n, 0);
  std::vector<NodeId> ready;
  std::size_t comb = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (is_combinational(types_[id])) {
      pending[id] = fanin_off_[id + 1] - fanin_off_[id];
      ++comb;
    } else {
      ready.push_back(id);  // source
    }
  }
  eval_order_.clear();
  eval_order_.reserve(comb);
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId id = ready[head++];
    if (is_combinational(types_[id])) {
      eval_order_.push_back(id);
      unsigned lvl = 0;
      for (std::uint32_t k = fanin_off_[id]; k < fanin_off_[id + 1]; ++k) {
        lvl = std::max(lvl, levels_[fanin_ids_[k]] + 1);
      }
      levels_[id] = lvl;
      max_level_ = std::max(max_level_, lvl);
    }
    for (std::uint32_t k = fanout_off_[id]; k < fanout_off_[id + 1]; ++k) {
      const NodeId out = fanout_ids_[k];
      if (!is_combinational(types_[out])) continue;  // flop D pins
      if (--pending[out] == 0) ready.push_back(out);
    }
  }
  require(eval_order_.size() == comb, "Netlist::finalize",
          "combinational cycle detected in '" + name_ + "'");

  // Eval-order simulation CSR (the arrays every FlatFanins view points at).
  eval_entries_.clear();
  eval_entries_.reserve(comb);
  eval_fanins_.clear();
  eval_fanins_.reserve(fanin_ids_.size());
  for (const NodeId id : eval_order_) {
    eval_entries_.push_back({id, types_[id],
                             static_cast<std::uint32_t>(eval_fanins_.size()),
                             fanin_off_[id + 1] - fanin_off_[id]});
    for (std::uint32_t k = fanin_off_[id]; k < fanin_off_[id + 1]; ++k) {
      eval_fanins_.push_back(fanin_ids_[k]);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (types_[id] == GateType::kConst0) const0_nodes_.push_back(id);
    if (types_[id] == GateType::kConst1) const1_nodes_.push_back(id);
  }

  finalized_ = true;
  FBT_OBS_GAUGE_SET("netlist.finalize_duration_ms", timer.ms());
  FBT_OBS_GAUGE_SET("netlist.arena_bytes", arena_bytes());
}

NodeId Netlist::dff_input(NodeId dff) const {
  require(dff < types_.size() && types_[dff] == GateType::kDff,
          "Netlist::dff_input", "node is not a flip-flop");
  return fanin_ids_[fanin_off_[dff]];
}

const std::vector<NodeId>& Netlist::eval_order() const {
  require(finalized_, "Netlist::eval_order", "netlist not finalized");
  return eval_order_;
}

std::span<const NodeId> Netlist::fanouts(NodeId id) const {
  require(finalized_, "Netlist::fanouts", "netlist not finalized");
  return {fanout_ids_.data() + fanout_off_[id],
          fanout_off_[id + 1] - fanout_off_[id]};
}

unsigned Netlist::level(NodeId id) const {
  require(finalized_, "Netlist::level", "netlist not finalized");
  return levels_[id];
}

std::span<const EvalEntry> Netlist::eval_entries() const {
  require(finalized_, "Netlist::eval_entries", "netlist not finalized");
  return eval_entries_;
}

std::uint64_t Netlist::arena_bytes() const {
  return types_.size() * sizeof(GateType) + output_flag_.size() +
         name_off_.size() * sizeof(std::uint32_t) + name_arena_.size() +
         fanin_off_.size() * sizeof(std::uint32_t) +
         fanin_ids_.size() * sizeof(NodeId) +
         index_slots_.size() * sizeof(NodeId);
}

std::uint64_t Netlist::footprint_bytes() const {
  std::uint64_t bytes = sizeof(*this) + name_.size() + arena_bytes();
  bytes += (inputs_.size() + outputs_.size() + flops_.size()) * sizeof(NodeId);
  bytes += eval_order_.size() * sizeof(NodeId);
  bytes += fanout_off_.size() * sizeof(std::uint32_t);
  bytes += fanout_ids_.size() * sizeof(NodeId);
  bytes += levels_.size() * sizeof(unsigned);
  bytes += eval_entries_.size() * sizeof(EvalEntry);
  bytes += (eval_fanins_.size() + const0_nodes_.size() + const1_nodes_.size()) *
           sizeof(NodeId);
  return bytes;
}

}  // namespace fbt
