#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

void Netlist::check_mutable() const {
  require(!finalized_, "Netlist", "cannot modify a finalized netlist");
}

NodeId Netlist::add_node(Gate gate) {
  check_mutable();
  require(!gate.name.empty(), "Netlist::add_node", "node name must be nonempty");
  require(by_name_.find(gate.name) == by_name_.end(), "Netlist::add_node",
          "duplicate node name '" + gate.name + "'");
  const auto id = static_cast<NodeId>(gates_.size());
  by_name_.emplace(gate.name, id);
  gates_.push_back(std::move(gate));
  output_flag_.push_back(0);
  return id;
}

NodeId Netlist::add_input(std::string name) {
  const NodeId id = add_node({GateType::kInput, std::move(name), {}});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_dff(std::string name) {
  const NodeId id = add_node({GateType::kDff, std::move(name), {kNoNode}});
  flops_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NodeId dff, NodeId d) {
  check_mutable();
  require(dff < gates_.size() && gates_[dff].type == GateType::kDff,
          "Netlist::set_dff_input", "node is not a flip-flop");
  require(d < gates_.size(), "Netlist::set_dff_input", "invalid data input");
  gates_[dff].fanins[0] = d;
}

NodeId Netlist::add_gate(GateType type, std::string name,
                         std::vector<NodeId> fanins) {
  require(type != GateType::kInput && type != GateType::kDff,
          "Netlist::add_gate", "use add_input/add_dff for sources");
  for (const NodeId f : fanins) {
    require(f < gates_.size(), "Netlist::add_gate",
            "fanin id out of range in gate '" + name + "'");
  }
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
      require(fanins.size() == 1, "Netlist::add_gate",
              "BUF/NOT require exactly 1 fanin ('" + name + "')");
      break;
    case GateType::kConst0:
    case GateType::kConst1:
      require(fanins.empty(), "Netlist::add_gate",
              "constants take no fanins ('" + name + "')");
      break;
    default:
      require(!fanins.empty(), "Netlist::add_gate",
              "gate requires at least 1 fanin ('" + name + "')");
      break;
  }
  return add_node({type, std::move(name), std::move(fanins)});
}

void Netlist::mark_output(NodeId node) {
  check_mutable();
  require(node < gates_.size(), "Netlist::mark_output", "invalid node id");
  require(output_flag_[node] == 0, "Netlist::mark_output",
          "node '" + gates_[node].name + "' already marked as output");
  output_flag_[node] = 1;
  outputs_.push_back(node);
}

void Netlist::finalize() {
  check_mutable();

  // Every flip-flop must have a connected data input.
  for (const NodeId ff : flops_) {
    require(gates_[ff].fanins[0] != kNoNode, "Netlist::finalize",
            "flip-flop '" + gates_[ff].name + "' has no data input");
  }

  // Build fanouts.
  fanouts_.assign(gates_.size(), {});
  for (NodeId id = 0; id < gates_.size(); ++id) {
    for (const NodeId f : gates_[id].fanins) {
      fanouts_[f].push_back(id);
    }
  }

  // Kahn topological sort over combinational gates. Sources (inputs, flops,
  // constants) have level 0; the edge from a gate into a flip-flop's D pin
  // does not constrain the flip-flop (its value is a state variable).
  levels_.assign(gates_.size(), 0);
  std::vector<unsigned> pending(gates_.size(), 0);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < gates_.size(); ++id) {
    if (is_combinational(gates_[id].type)) {
      pending[id] = static_cast<unsigned>(gates_[id].fanins.size());
    } else {
      ready.push_back(id);  // source
    }
  }
  eval_order_.clear();
  eval_order_.reserve(gates_.size());
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId id = ready[head++];
    if (is_combinational(gates_[id].type)) {
      eval_order_.push_back(id);
      unsigned lvl = 0;
      for (const NodeId f : gates_[id].fanins) {
        lvl = std::max(lvl, levels_[f] + 1);
      }
      levels_[id] = lvl;
      max_level_ = std::max(max_level_, lvl);
    }
    for (const NodeId out : fanouts_[id]) {
      if (!is_combinational(gates_[out].type)) continue;  // flop D pins
      if (--pending[out] == 0) ready.push_back(out);
    }
  }

  std::size_t comb = 0;
  for (const auto& g : gates_) {
    if (is_combinational(g.type)) ++comb;
  }
  require(eval_order_.size() == comb, "Netlist::finalize",
          "combinational cycle detected in '" + name_ + "'");

  finalized_ = true;
}

NodeId Netlist::dff_input(NodeId dff) const {
  require(dff < gates_.size() && gates_[dff].type == GateType::kDff,
          "Netlist::dff_input", "node is not a flip-flop");
  return gates_[dff].fanins[0];
}

NodeId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

const std::vector<NodeId>& Netlist::eval_order() const {
  require(finalized_, "Netlist::eval_order", "netlist not finalized");
  return eval_order_;
}

const std::vector<NodeId>& Netlist::fanouts(NodeId id) const {
  require(finalized_, "Netlist::fanouts", "netlist not finalized");
  return fanouts_[id];
}

unsigned Netlist::level(NodeId id) const {
  require(finalized_, "Netlist::level", "netlist not finalized");
  return levels_[id];
}

std::uint64_t Netlist::footprint_bytes() const {
  std::uint64_t bytes = sizeof(*this);
  bytes += gates_.size() * sizeof(Gate);
  for (const Gate& g : gates_) {
    bytes += g.name.size() + g.fanins.size() * sizeof(NodeId);
  }
  bytes += (inputs_.size() + outputs_.size() + flops_.size() +
            eval_order_.size()) *
           sizeof(NodeId);
  bytes += output_flag_.size() * sizeof(std::uint8_t);
  bytes += levels_.size() * sizeof(unsigned);
  bytes += fanouts_.size() * sizeof(std::vector<NodeId>);
  for (const std::vector<NodeId>& f : fanouts_) {
    bytes += f.size() * sizeof(NodeId);
  }
  // Name index: per-node hash bucket entry plus the key copy. Modeled as two
  // pointers of chaining overhead per node -- close enough for telemetry and
  // independent of the library's exact bucket-growth policy.
  for (const auto& [name, id] : by_name_) {
    bytes += name.size() + sizeof(NodeId) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace fbt
