#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/require.hpp"

namespace fbt {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

struct Statement {
  enum Kind { kInput, kOutput, kGate } kind;
  std::string name;               // target net
  std::string type;               // for kGate
  std::vector<std::string> args;  // for kGate
  int line;
};

// Parses "TYPE(a, b, c)" after the '=' of a gate statement.
void parse_call(const std::string& rhs, Statement& st, int line) {
  const auto open = rhs.find('(');
  const auto close = rhs.rfind(')');
  require(open != std::string::npos && close != std::string::npos &&
              close > open,
          "parse_bench", "malformed gate call at line " + std::to_string(line));
  st.type = trim(rhs.substr(0, open));
  const std::string args = rhs.substr(open + 1, close - open - 1);
  std::string cur;
  for (const char c : args) {
    if (c == ',') {
      st.args.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) st.args.push_back(last);
  for (const auto& a : st.args) {
    require(!a.empty(), "parse_bench",
            "empty argument at line " + std::to_string(line));
  }
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string circuit_name) {
  std::vector<Statement> statements;
  {
    std::istringstream in{std::string(text)};
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.erase(hash);
      const std::string s = trim(raw);
      if (s.empty()) continue;

      const auto eq = s.find('=');
      if (eq == std::string::npos) {
        // INPUT(x) or OUTPUT(x)
        const auto open = s.find('(');
        const auto close = s.rfind(')');
        require(open != std::string::npos && close != std::string::npos &&
                    close > open,
                "parse_bench",
                "malformed statement at line " + std::to_string(line));
        const std::string keyword = trim(s.substr(0, open));
        const std::string net = trim(s.substr(open + 1, close - open - 1));
        require(!net.empty(), "parse_bench",
                "empty net name at line " + std::to_string(line));
        Statement st;
        st.name = net;
        st.line = line;
        if (keyword == "INPUT") {
          st.kind = Statement::kInput;
        } else if (keyword == "OUTPUT") {
          st.kind = Statement::kOutput;
        } else {
          throw Error("parse_bench: unknown keyword '" + keyword +
                      "' at line " + std::to_string(line));
        }
        statements.push_back(std::move(st));
      } else {
        Statement st;
        st.kind = Statement::kGate;
        st.name = trim(s.substr(0, eq));
        st.line = line;
        require(!st.name.empty(), "parse_bench",
                "empty target net at line " + std::to_string(line));
        parse_call(trim(s.substr(eq + 1)), st, line);
        statements.push_back(std::move(st));
      }
    }
  }

  // Pass 1: create all nodes so that forward references resolve.
  Netlist netlist(std::move(circuit_name));
  std::unordered_map<std::string, NodeId> ids;
  std::vector<const Statement*> gate_statements;
  for (const auto& st : statements) {
    switch (st.kind) {
      case Statement::kInput:
        require(ids.find(st.name) == ids.end(), "parse_bench",
                "duplicate definition of '" + st.name + "' at line " +
                    std::to_string(st.line));
        ids[st.name] = netlist.add_input(st.name);
        break;
      case Statement::kGate: {
        require(ids.find(st.name) == ids.end(), "parse_bench",
                "duplicate definition of '" + st.name + "' at line " +
                    std::to_string(st.line));
        const GateType type = gate_type_from_name(st.type);
        if (type == GateType::kDff) {
          require(st.args.size() == 1, "parse_bench",
                  "DFF takes exactly 1 argument at line " +
                      std::to_string(st.line));
          ids[st.name] = netlist.add_dff(st.name);
        } else {
          ids[st.name] = kNoNode;  // placeholder; created in pass 2
        }
        gate_statements.push_back(&st);
        break;
      }
      case Statement::kOutput:
        break;
    }
  }

  // Pass 2: create combinational gates in dependency order. Because gates may
  // reference nets defined later in the file, iterate until fixpoint.
  auto resolved = [&](const std::string& net) {
    const auto it = ids.find(net);
    return it != ids.end() && it->second != kNoNode;
  };
  std::vector<const Statement*> worklist = gate_statements;
  while (!worklist.empty()) {
    std::vector<const Statement*> next;
    bool progress = false;
    for (const Statement* st : worklist) {
      const GateType type = gate_type_from_name(st->type);
      if (type == GateType::kDff) {
        progress = true;  // created in pass 1; D connected after the loop
        continue;
      }
      bool all_resolved = true;
      for (const auto& a : st->args) {
        require(ids.find(a) != ids.end(), "parse_bench",
                "undefined net '" + a + "' at line " + std::to_string(st->line));
        if (!resolved(a)) {
          all_resolved = false;
          break;
        }
      }
      if (!all_resolved) {
        next.push_back(st);
        continue;
      }
      std::vector<NodeId> fanins;
      fanins.reserve(st->args.size());
      for (const auto& a : st->args) fanins.push_back(ids[a]);
      ids[st->name] = netlist.add_gate(type, st->name, std::move(fanins));
      progress = true;
    }
    require(progress, "parse_bench",
            "combinational cycle or unresolved nets in gate definitions");
    worklist = std::move(next);
  }

  // Connect flip-flop data inputs.
  for (const Statement* st : gate_statements) {
    if (gate_type_from_name(st->type) != GateType::kDff) continue;
    const auto d = ids.find(st->args[0]);
    require(d != ids.end() && d->second != kNoNode, "parse_bench",
            "undefined DFF data net '" + st->args[0] + "' at line " +
                std::to_string(st->line));
    netlist.set_dff_input(ids[st->name], d->second);
  }

  // Mark outputs.
  for (const auto& st : statements) {
    if (st.kind != Statement::kOutput) continue;
    const auto it = ids.find(st.name);
    require(it != ids.end() && it->second != kNoNode, "parse_bench",
            "OUTPUT names undefined net '" + st.name + "' at line " +
                std::to_string(st.line));
    netlist.mark_output(it->second);
  }

  netlist.finalize();
  return netlist;
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "read_bench_file", "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Derive the circuit name from the file name, dropping directory and .bench.
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const auto dot = name.rfind(".bench");
  if (dot != std::string::npos) name.erase(dot);
  return parse_bench(buffer.str(), name);
}

std::string write_bench(const Netlist& netlist) {
  std::ostringstream out;
  out << "# " << netlist.name() << "\n";
  for (const NodeId id : netlist.inputs()) {
    out << "INPUT(" << netlist.gate(id).name << ")\n";
  }
  for (const NodeId id : netlist.outputs()) {
    out << "OUTPUT(" << netlist.gate(id).name << ")\n";
  }
  for (const NodeId ff : netlist.flops()) {
    out << netlist.gate(ff).name << " = DFF("
        << netlist.gate(netlist.dff_input(ff)).name << ")\n";
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    if (!is_combinational(g.type) &&
        !(g.type == GateType::kConst0 || g.type == GateType::kConst1)) {
      continue;
    }
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      out << g.name << " = " << gate_type_name(g.type) << "()\n";
      continue;
    }
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << netlist.gate(g.fanins[i]).name;
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace fbt
