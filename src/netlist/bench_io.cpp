#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <string_view>
#include <vector>

#include "util/require.hpp"

namespace fbt {
namespace {

// The parser is a single streaming pass over the input text: every token is
// a std::string_view into the caller's buffer, so no per-line or per-name
// std::string is ever materialized. Statements that cannot be resolved
// immediately (forward references) are deferred into a compact POD table
// (views + a flat argument CSR) and replayed to fixpoint; for topologically
// ordered files -- synthetic emissions and most real benches -- the deferred
// table stays empty and parsing is one pass.

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string line_str(int line) { return std::to_string(line); }

/// One deferred gate statement: target name, type, argument span into the
/// flat `args` table, and the source line for diagnostics.
struct GateStmt {
  std::string_view name;
  GateType type;
  std::uint32_t first_arg;
  std::uint32_t nargs;
  int line;
};

/// Splits "TYPE(a, b, c)" into the type keyword and trimmed argument views,
/// appending the arguments to `args`.
GateType parse_call(std::string_view rhs, std::vector<std::string_view>& args,
                    int line) {
  const auto open = rhs.find('(');
  const auto close = rhs.rfind(')');
  require(open != std::string_view::npos && close != std::string_view::npos &&
              close > open,
          "parse_bench", "malformed gate call at line " + line_str(line));
  const GateType type = gate_type_from_name(trim(rhs.substr(0, open)));
  std::string_view body = rhs.substr(open + 1, close - open - 1);
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view arg = trim(body.substr(0, comma));
    if (comma == std::string_view::npos) {
      if (!arg.empty()) args.push_back(arg);
      break;
    }
    require(!arg.empty(), "parse_bench",
            "empty argument at line " + line_str(line));
    args.push_back(arg);
    body = body.substr(comma + 1);
  }
  return type;
}

}  // namespace

Netlist parse_bench(std::string_view text, std::string circuit_name) {
  Netlist netlist(std::move(circuit_name));

  std::vector<GateStmt> comb;                 // deferred combinational gates
  std::vector<GateStmt> dffs;                 // D hookups after the scan
  std::vector<std::string_view> args;         // flat argument CSR
  std::vector<std::pair<std::string_view, int>> output_stmts;
  std::vector<NodeId> fanins;                 // scratch, reused per gate

  // Resolves `net` to a created node, kNoNode while still pending.
  const auto resolved = [&](std::string_view net) {
    return netlist.find(net);
  };

  // Streaming scan. Inputs and flip-flops are created immediately, in file
  // order; combinational gates are deferred to the fixpoint below. Both
  // choices reproduce the node-id assignment of the old two-phase parser
  // exactly (sources first in file order, then gates in dependency order),
  // which everything downstream -- fault lists, matrices, cache keys --
  // relies on staying put.
  std::size_t pos = 0;
  int line = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view s = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line;
    const auto hash = s.find('#');
    if (hash != std::string_view::npos) s = s.substr(0, hash);
    s = trim(s);
    if (s.empty()) continue;

    const auto eq = s.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto open = s.find('(');
      const auto close = s.rfind(')');
      require(open != std::string_view::npos &&
                  close != std::string_view::npos && close > open,
              "parse_bench", "malformed statement at line " + line_str(line));
      const std::string_view keyword = trim(s.substr(0, open));
      const std::string_view net = trim(s.substr(open + 1, close - open - 1));
      require(!net.empty(), "parse_bench",
              "empty net name at line " + line_str(line));
      if (keyword == "INPUT") {
        require(resolved(net) == kNoNode, "parse_bench",
                "duplicate definition of '" + std::string(net) + "' at line " +
                    line_str(line));
        netlist.add_input(net);
      } else if (keyword == "OUTPUT") {
        output_stmts.emplace_back(net, line);
      } else {
        throw Error("parse_bench: unknown keyword '" + std::string(keyword) +
                    "' at line " + line_str(line));
      }
      continue;
    }

    GateStmt st;
    st.name = trim(s.substr(0, eq));
    st.line = line;
    require(!st.name.empty(), "parse_bench",
            "empty target net at line " + line_str(line));
    st.first_arg = static_cast<std::uint32_t>(args.size());
    st.type = parse_call(trim(s.substr(eq + 1)), args, line);
    st.nargs = static_cast<std::uint32_t>(args.size()) - st.first_arg;
    require(resolved(st.name) == kNoNode, "parse_bench",
            "duplicate definition of '" + std::string(st.name) + "' at line " +
                line_str(line));
    if (st.type == GateType::kDff) {
      require(st.nargs == 1, "parse_bench",
              "DFF takes exactly 1 argument at line " + line_str(line));
      netlist.add_dff(st.name);
      dffs.push_back(st);
      continue;
    }
    comb.push_back(st);
  }

  // Sorted view of the deferred target names: duplicate detection (equal
  // neighbors) and the undefined-net check below (binary search) without a
  // hash map or key copies.
  std::vector<std::string_view> targets;
  targets.reserve(comb.size());
  for (const GateStmt& st : comb) targets.push_back(st.name);
  std::sort(targets.begin(), targets.end());
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (targets[i - 1] != targets[i]) continue;
    bool seen = false;
    for (const GateStmt& st : comb) {
      if (st.name != targets[i]) continue;
      require(!seen, "parse_bench",
              "duplicate definition of '" + std::string(st.name) +
                  "' at line " + line_str(st.line));
      seen = true;
    }
  }

  // Fixpoint over the deferred combinational gates: every sweep walks the
  // remaining statements in file order and creates the ones whose arguments
  // all resolve -- the same creation order (and therefore the same node ids)
  // as the old statement-table parser.
  std::vector<std::uint32_t> worklist(comb.size());
  for (std::uint32_t i = 0; i < comb.size(); ++i) worklist[i] = i;
  bool first_sweep = true;
  while (!worklist.empty()) {
    std::vector<std::uint32_t> next;
    bool progress = false;
    for (const std::uint32_t wi : worklist) {
      const GateStmt& st = comb[wi];
      bool all_resolved = true;
      fanins.clear();
      for (std::uint32_t k = 0; k < st.nargs; ++k) {
        const std::string_view a = args[st.first_arg + k];
        const NodeId f = resolved(a);
        if (f == kNoNode) {
          if (first_sweep) {
            // A net that is neither created nor a pending target is
            // undefined; report it now, like the eager parser did.
            require(std::binary_search(targets.begin(), targets.end(), a),
                    "parse_bench",
                    "undefined net '" + std::string(a) + "' at line " +
                        line_str(st.line));
          }
          all_resolved = false;
          break;
        }
        fanins.push_back(f);
      }
      if (!all_resolved) {
        next.push_back(wi);
        continue;
      }
      netlist.add_gate(st.type, st.name, fanins);
      progress = true;
    }
    require(progress, "parse_bench",
            "combinational cycle or unresolved nets in gate definitions");
    worklist = std::move(next);
    first_sweep = false;
  }

  // Connect flip-flop data inputs.
  for (const GateStmt& st : dffs) {
    const NodeId d = resolved(args[st.first_arg]);
    require(d != kNoNode, "parse_bench",
            "undefined DFF data net '" + std::string(args[st.first_arg]) +
                "' at line " + line_str(st.line));
    netlist.set_dff_input(netlist.find(st.name), d);
  }

  // Mark outputs.
  for (const auto& [net, at] : output_stmts) {
    const NodeId id = resolved(net);
    require(id != kNoNode, "parse_bench",
            "OUTPUT names undefined net '" + std::string(net) + "' at line " +
                line_str(at));
    netlist.mark_output(id);
  }

  netlist.finalize();
  return netlist;
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "read_bench_file", "cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::string text(size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(size));
  require(in.good() || in.eof(), "read_bench_file",
          "read failed for '" + path + "'");
  // Derive the circuit name from the file name, dropping directory and .bench.
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const auto dot = name.rfind(".bench");
  if (dot != std::string::npos) name.erase(dot);
  return parse_bench(text, name);
}

std::string write_bench(const Netlist& netlist) {
  std::string out;
  // ~16 bytes per statement plus names; one reservation avoids the quadratic
  // reallocation churn ostringstream paid at million-gate sizes.
  out.reserve(64 + netlist.size() * 24);
  const auto append = [&out](std::string_view s) { out.append(s); };
  append("# ");
  append(netlist.name());
  append("\n");
  for (const NodeId id : netlist.inputs()) {
    append("INPUT(");
    append(netlist.node_name(id));
    append(")\n");
  }
  for (const NodeId id : netlist.outputs()) {
    append("OUTPUT(");
    append(netlist.node_name(id));
    append(")\n");
  }
  for (const NodeId ff : netlist.flops()) {
    append(netlist.node_name(ff));
    append(" = DFF(");
    append(netlist.node_name(netlist.dff_input(ff)));
    append(")\n");
  }
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const GateType t = netlist.type(id);
    const bool is_const = t == GateType::kConst0 || t == GateType::kConst1;
    if (!is_combinational(t) && !is_const) continue;
    append(netlist.node_name(id));
    append(" = ");
    append(gate_type_name(t));
    append("(");
    const auto fanins = netlist.fanins(id);
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      if (i) append(", ");
      append(netlist.node_name(fanins[i]));
    }
    append(")\n");
  }
  return out;
}

}  // namespace fbt
