#include "obs/report_tools.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace fbt::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Value of a named entry in a top-level "gauges"/"counters" object; 0 when
/// the section or entry is missing so old-schema baselines stay diffable.
double metric_value(const JsonValue& report, const char* section,
                    const std::string& name) {
  const JsonValue* sec = report.find(section);
  if (sec == nullptr) return 0.0;
  const JsonValue* entry = sec->find(name);
  return entry == nullptr ? 0.0 : entry->as_number();
}

/// Scalar from the top-level "memory" section; 0 when the section or entry
/// is missing (schema v2 reports have no memory section and cannot regress).
double memory_value(const JsonValue& report, const std::string& name) {
  const JsonValue* mem = report.find("memory");
  if (mem == nullptr) return 0.0;
  const JsonValue* entry = mem->find(name);
  return entry == nullptr ? 0.0 : entry->as_number();
}

/// Summed total_ms across top-level phases (children are already included
/// in their parent's total).
double total_walltime_ms(const JsonValue& report) {
  const JsonValue* phases = report.find("phases");
  if (phases == nullptr || !phases->is_array()) return 0.0;
  double total = 0.0;
  for (const JsonValue& p : phases->array) {
    if (const JsonValue* ms = p.find("total_ms")) total += ms->as_number();
  }
  return total;
}

void append_metric_deltas(const JsonValue& baseline, const JsonValue& current,
                          const char* section, std::ostringstream& out) {
  const JsonValue* base_sec = baseline.find(section);
  const JsonValue* cur_sec = current.find(section);
  if (cur_sec == nullptr || !cur_sec->is_object()) return;
  for (const auto& [name, value] : cur_sec->object) {
    if (!value.is_number()) continue;
    const double before =
        base_sec != nullptr && base_sec->find(name) != nullptr
            ? base_sec->find(name)->as_number()
            : 0.0;
    if (before == value.number) continue;
    out << "  " << section << "." << name << ": " << num(before) << " -> "
        << num(value.number) << "\n";
  }
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Two-column name/value table from a JSON object of scalars.
void html_kv_table(const JsonValue* obj, std::ostringstream& out) {
  out << "<table><tr><th>name</th><th>value</th></tr>\n";
  if (obj != nullptr && obj->is_object()) {
    for (const auto& [name, value] : obj->object) {
      out << "<tr><td>" << html_escape(name) << "</td><td>";
      if (value.is_number()) {
        out << num(value.number);
      } else if (value.is_string()) {
        out << html_escape(value.string);
      }
      out << "</td></tr>\n";
    }
  }
  out << "</table>\n";
}

/// The coverage convergence curve as an inline SVG polyline; nothing when
/// fewer than two points exist.
void html_convergence_svg(const JsonValue& report, std::ostringstream& out) {
  const JsonValue* analytics = report.find("analytics");
  const JsonValue* curve =
      analytics != nullptr ? analytics->find("convergence") : nullptr;
  if (curve == nullptr || !curve->is_array() || curve->array.size() < 2) {
    out << "<p class=\"dim\">no convergence data</p>\n";
    return;
  }
  double max_tests = 1.0;
  double max_detected = 1.0;
  for (const JsonValue& p : curve->array) {
    if (const JsonValue* t = p.find("tests")) {
      max_tests = std::max(max_tests, t->as_number());
    }
    if (const JsonValue* d = p.find("detected")) {
      max_detected = std::max(max_detected, d->as_number());
    }
  }
  const double w = 640.0;
  const double h = 240.0;
  const double pad = 32.0;
  out << "<svg viewBox=\"0 0 " << num(w) << " " << num(h)
      << "\" class=\"curve\">\n";
  out << "<rect x=\"" << num(pad) << "\" y=\"8\" width=\"" << num(w - pad - 8)
      << "\" height=\"" << num(h - pad - 8)
      << "\" fill=\"none\" stroke=\"#ccc\"/>\n";
  out << "<polyline fill=\"none\" stroke=\"#0a6\" stroke-width=\"2\" "
         "points=\"";
  for (const JsonValue& p : curve->array) {
    const double t = p.find("tests") != nullptr
                         ? p.find("tests")->as_number()
                         : 0.0;
    const double d = p.find("detected") != nullptr
                         ? p.find("detected")->as_number()
                         : 0.0;
    const double x = pad + (t / max_tests) * (w - pad - 8);
    const double y = (h - pad) - (d / max_detected) * (h - pad - 16);
    out << num(x) << "," << num(y) << " ";
  }
  out << "\"/>\n";
  out << "<text x=\"" << num(w / 2) << "\" y=\"" << num(h - 6)
      << "\" text-anchor=\"middle\" class=\"axis\">tests applied (max "
      << num(max_tests) << ")</text>\n";
  out << "<text x=\"12\" y=\"" << num(h / 2)
      << "\" text-anchor=\"middle\" class=\"axis\" transform=\"rotate(-90 12 "
      << num(h / 2) << ")\">faults detected (max " << num(max_detected)
      << ")</text>\n";
  out << "</svg>\n";
}

void html_segment_yield(const JsonValue& report, std::ostringstream& out) {
  const JsonValue* analytics = report.find("analytics");
  const JsonValue* rows =
      analytics != nullptr ? analytics->find("segment_yield") : nullptr;
  if (rows == nullptr || !rows->is_array() || rows->array.empty()) {
    out << "<p class=\"dim\">no segment yield data</p>\n";
    return;
  }
  static const char* kCols[] = {"sequence", "segment",        "seed",
                                "tests",    "newly_detected", "peak_swa"};
  out << "<table><tr>";
  for (const char* c : kCols) out << "<th>" << c << "</th>";
  out << "</tr>\n";
  for (const JsonValue& row : rows->array) {
    out << "<tr>";
    for (const char* c : kCols) {
      const JsonValue* v = row.find(c);
      out << "<td>" << (v != nullptr ? num(v->as_number()) : "") << "</td>";
    }
    out << "</tr>\n";
  }
  out << "</table>\n";
}

std::string bytes_human(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

/// One horizontal bar row: label, value text, and a width-proportional bar.
void html_bar_row(const std::string& label, double value, double max_value,
                  std::ostringstream& out) {
  const double pct =
      max_value > 0.0 ? std::min(100.0, 100.0 * std::abs(value) / max_value)
                      : 0.0;
  out << "<tr><td>" << html_escape(label) << "</td><td>" << bytes_human(value)
      << "</td><td class=\"barcell\"><div class=\"bar\" style=\"width:"
      << num(pct) << "%\"></div></td></tr>\n";
}

/// Memory panel: RSS/allocation scalars, structure footprints as bars, and
/// per-top-level-phase RSS deltas as bars. Schema v2 reports have no
/// "memory" section; the panel degrades to a note so old reports render.
void html_memory_panel(const JsonValue& report, std::ostringstream& out) {
  const JsonValue* mem = report.find("memory");
  if (mem == nullptr || !mem->is_object()) {
    out << "<p class=\"dim\">no memory data (schema v2 report)</p>\n";
    return;
  }
  out << "<table><tr><th>name</th><th>value</th></tr>\n";
  static const char* kScalars[] = {"peak_rss_bytes",   "current_rss_bytes",
                                   "allocated_bytes",  "allocation_count",
                                   "bytes_per_gate",   "bytes_per_fault"};
  for (const char* name : kScalars) {
    const JsonValue* v = mem->find(name);
    if (v == nullptr || !v->is_number()) continue;
    out << "<tr><td>" << name << "</td><td>" << num(v->number);
    if (std::string(name).find("bytes") != std::string::npos &&
        std::string(name) != "bytes_per_gate" &&
        std::string(name) != "bytes_per_fault") {
      out << " (" << bytes_human(v->number) << ")";
    }
    out << "</td></tr>\n";
  }
  out << "</table>\n";

  const JsonValue* footprints = mem->find("footprints");
  if (footprints != nullptr && footprints->is_object() &&
      !footprints->object.empty()) {
    double max_bytes = 0.0;
    for (const auto& [name, value] : footprints->object) {
      if (value.is_number()) max_bytes = std::max(max_bytes, value.number);
    }
    out << "<h3>Structure footprints</h3>\n<table>"
           "<tr><th>structure</th><th>bytes</th><th></th></tr>\n";
    for (const auto& [name, value] : footprints->object) {
      if (value.is_number()) html_bar_row(name, value.number, max_bytes, out);
    }
    out << "</table>\n";
  }

  // Netlist arena telemetry: the finalize-time / arena-size gauge pair
  // published by Netlist::finalize(), plus the per-scale-point copies a
  // bench_scale sweep records (scale.gN.netlist_arena_bytes /
  // scale.gN.netlist_finalize_ms). Reports without the gauges (tools that
  // never finalize a netlist) skip the section.
  const JsonValue* gauges = report.find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [name, value] : gauges->object) {
      if (!value.is_number()) continue;
      const bool arena_pair = name == "netlist.arena_bytes" ||
                              name == "netlist.finalize_duration_ms";
      const bool scale_pair =
          name.rfind("scale.", 0) == 0 &&
          (name.find(".netlist_arena_bytes") != std::string::npos ||
           name.find(".netlist_finalize_ms") != std::string::npos ||
           name.find(".parse_ms") != std::string::npos);
      if (arena_pair || scale_pair) rows.emplace_back(name, value.number);
    }
    if (!rows.empty()) {
      out << "<h3>Netlist arena</h3>\n<table>"
             "<tr><th>gauge</th><th>value</th></tr>\n";
      for (const auto& [name, value] : rows) {
        out << "<tr><td>" << html_escape(name) << "</td><td>" << num(value);
        if (name.find("bytes") != std::string::npos) {
          out << " (" << bytes_human(value) << ")";
        }
        out << "</td></tr>\n";
      }
      out << "</table>\n";
    }
  }

  const JsonValue* phases = report.find("phases");
  if (phases != nullptr && phases->is_array() && !phases->array.empty()) {
    double max_delta = 0.0;
    for (const JsonValue& p : phases->array) {
      if (const JsonValue* d = p.find("rss_delta_bytes")) {
        max_delta = std::max(max_delta, std::abs(d->as_number()));
      }
    }
    if (max_delta > 0.0) {
      out << "<h3>Per-phase RSS delta</h3>\n<table>"
             "<tr><th>phase</th><th>delta</th><th></th></tr>\n";
      for (const JsonValue& p : phases->array) {
        const JsonValue* d = p.find("rss_delta_bytes");
        if (d == nullptr) continue;
        const std::string name = p.find("name") != nullptr
                                     ? p.find("name")->as_string("")
                                     : "";
        html_bar_row(name, d->as_number(), max_delta, out);
      }
      out << "</table>\n";
    }
  }
}

void html_phases(const JsonValue* phases, int depth, std::ostringstream& out) {
  if (phases == nullptr || !phases->is_array()) return;
  for (const JsonValue& p : phases->array) {
    out << "<tr><td>";
    for (int i = 0; i < depth; ++i) out << "&nbsp;&nbsp;";
    out << html_escape(p.find("name") != nullptr
                           ? p.find("name")->as_string("")
                           : "");
    out << "</td><td>"
        << num(p.find("count") != nullptr ? p.find("count")->as_number() : 0)
        << "</td><td>"
        << num(p.find("total_ms") != nullptr ? p.find("total_ms")->as_number()
                                             : 0)
        << "</td><td>"
        << num(p.find("self_ms") != nullptr ? p.find("self_ms")->as_number()
                                            : 0)
        << "</td></tr>\n";
    html_phases(p.find("children"), depth + 1, out);
  }
}

/// One histogram-summary row (count/mean/p50/p99) from the "histograms"
/// section; skipped when absent. A clamped p99 is marked with "+" (the true
/// tail exceeded the last bucket).
void html_histogram_row(const JsonValue* histograms, const std::string& name,
                        std::ostringstream& out) {
  const JsonValue* h =
      histograms != nullptr ? histograms->find(name) : nullptr;
  if (h == nullptr || !h->is_object()) return;
  const JsonValue* clamped = h->find("p99_clamped");
  const bool is_clamped = clamped != nullptr &&
                          clamped->kind == JsonValue::Kind::kBool &&
                          clamped->boolean;
  out << "<tr><td>" << html_escape(name) << "</td><td>"
      << num(h->find("count") != nullptr ? h->find("count")->as_number() : 0)
      << "</td><td>"
      << num(h->find("mean") != nullptr ? h->find("mean")->as_number() : 0)
      << "</td><td>"
      << num(h->find("p50") != nullptr ? h->find("p50")->as_number() : 0)
      << "</td><td>"
      << num(h->find("p99") != nullptr ? h->find("p99")->as_number() : 0)
      << (is_clamped ? "+" : "") << "</td></tr>\n";
}

/// Scheduler panel: the schema-v4 "jobs" utilization section plus the
/// jobs.run_ms / jobs.steal_latency_ms histogram summaries. Reports
/// predating v4 (or with no scheduler activity) degrade to a note.
void html_scheduler_panel(const JsonValue& report, std::ostringstream& out) {
  const JsonValue* jobs = report.find("jobs");
  if (jobs == nullptr || !jobs->is_object()) {
    out << "<p class=\"dim\">no scheduler data (pre-v4 report)</p>\n";
    return;
  }
  bool any_nonzero = false;
  for (const auto& [name, value] : jobs->object) {
    any_nonzero |= value.is_number() && value.number != 0.0;
  }
  if (!any_nonzero) {
    out << "<p class=\"dim\">no scheduler activity in this run</p>\n";
    return;
  }
  html_kv_table(jobs, out);
  const JsonValue* histograms = report.find("histograms");
  std::ostringstream rows;
  html_histogram_row(histograms, "jobs.run_ms", rows);
  html_histogram_row(histograms, "jobs.steal_latency_ms", rows);
  if (!rows.str().empty()) {
    out << "<h3>Job timing (ms)</h3>\n<table><tr><th>histogram</th>"
           "<th>count</th><th>mean</th><th>p50</th><th>p99</th></tr>\n"
        << rows.str() << "</table>\n";
  }
}

/// Request-latency panel: the serve.request_* histogram summaries -- totals
/// keyed cold vs warm plus the queue/cache/compute/render decomposition.
/// Reports with no serve traffic degrade to a note.
void html_request_latency_panel(const JsonValue& report,
                                std::ostringstream& out) {
  static const char* kNames[] = {
      "serve.request_total_cold_ms", "serve.request_total_warm_ms",
      "serve.request_queue_ms",      "serve.request_cache_ms",
      "serve.request_compute_ms",    "serve.request_render_ms"};
  const JsonValue* histograms = report.find("histograms");
  bool any_samples = false;
  for (const char* name : kNames) {
    const JsonValue* h =
        histograms != nullptr ? histograms->find(name) : nullptr;
    const JsonValue* count = h != nullptr ? h->find("count") : nullptr;
    any_samples |= count != nullptr && count->as_number() > 0.0;
  }
  if (!any_samples) {
    out << "<p class=\"dim\">no request latency data in this run</p>\n";
    return;
  }
  out << "<table><tr><th>histogram</th><th>count</th><th>mean</th>"
         "<th>p50</th><th>p99</th></tr>\n";
  for (const char* name : kNames) {
    html_histogram_row(histograms, name, out);
  }
  out << "</table>\n"
         "<p class=\"dim\">p99 marked + when clamped to the last bucket "
         "(true tail is larger)</p>\n";
}

}  // namespace

/// Serving panel: every serve.* / jobs.* counter and gauge, so a daemon or
/// bench_serve report shows request volume, cache effectiveness, and steal
/// traffic at a glance. Reports with no serving activity (batch tools, or a
/// v3 report predating the serving layer) degrade to a note.
void html_serving_panel(const JsonValue& report, std::ostringstream& out) {
  std::vector<std::pair<std::string, double>> rows;
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* sec = report.find(section);
    if (sec == nullptr || !sec->is_object()) continue;
    for (const auto& [name, value] : sec->object) {
      if (!value.is_number()) continue;
      if (name.rfind("serve.", 0) != 0 && name.rfind("jobs.", 0) != 0) {
        continue;
      }
      rows.emplace_back(name, value.number);
    }
  }
  bool any_nonzero = false;
  for (const auto& [name, value] : rows) any_nonzero |= value != 0.0;
  if (rows.empty() || !any_nonzero) {
    out << "<p class=\"dim\">no serving activity in this run</p>\n";
    return;
  }
  out << "<table><tr><th>metric</th><th>value</th></tr>\n";
  for (const auto& [name, value] : rows) {
    out << "<tr><td>" << html_escape(name) << "</td><td>" << num(value)
        << "</td></tr>\n";
  }
  out << "</table>\n";
}

DiffResult diff_run_reports(const JsonValue& baseline, const JsonValue& current,
                            const DiffThresholds& thresholds) {
  DiffResult result;
  std::ostringstream summary;

  const double cov_before =
      metric_value(baseline, "gauges", "flow.fault_coverage_percent");
  const double cov_after =
      metric_value(current, "gauges", "flow.fault_coverage_percent");
  const double cov_drop = cov_before - cov_after;
  summary << "coverage: " << num(cov_before) << "% -> " << num(cov_after)
          << "%\n";
  if (thresholds.max_coverage_drop >= 0.0 &&
      cov_drop > thresholds.max_coverage_drop) {
    result.violations.push_back(
        "fault coverage dropped " + num(cov_drop) + " points (" +
        num(cov_before) + "% -> " + num(cov_after) + "%), allowed " +
        num(thresholds.max_coverage_drop));
  }

  const double tests_before = metric_value(baseline, "gauges", "flow.num_tests");
  const double tests_after = metric_value(current, "gauges", "flow.num_tests");
  summary << "tests: " << num(tests_before) << " -> " << num(tests_after)
          << "\n";
  if (thresholds.max_tests_increase_percent >= 0.0 && tests_before > 0.0) {
    const double increase =
        (tests_after - tests_before) / tests_before * 100.0;
    if (increase > thresholds.max_tests_increase_percent) {
      result.violations.push_back(
          "test count grew " + num(increase) + "% (" + num(tests_before) +
          " -> " + num(tests_after) + "), allowed " +
          num(thresholds.max_tests_increase_percent) + "%");
    }
  }

  const double wall_before = total_walltime_ms(baseline);
  const double wall_after = total_walltime_ms(current);
  summary << "walltime_ms: " << num(wall_before) << " -> " << num(wall_after)
          << "\n";
  if (thresholds.max_walltime_increase_percent >= 0.0 && wall_before > 0.0) {
    const double increase = (wall_after - wall_before) / wall_before * 100.0;
    if (increase > thresholds.max_walltime_increase_percent) {
      result.violations.push_back(
          "walltime grew " + num(increase) + "% (" + num(wall_before) +
          "ms -> " + num(wall_after) + "ms), allowed " +
          num(thresholds.max_walltime_increase_percent) + "%");
    }
  }

  const double rss_before = memory_value(baseline, "peak_rss_bytes");
  const double rss_after = memory_value(current, "peak_rss_bytes");
  summary << "peak_rss_bytes: " << num(rss_before) << " -> " << num(rss_after)
          << "\n";
  if (thresholds.max_peak_rss_increase_percent >= 0.0 && rss_before > 0.0) {
    const double increase = (rss_after - rss_before) / rss_before * 100.0;
    if (increase > thresholds.max_peak_rss_increase_percent) {
      result.violations.push_back(
          "peak RSS grew " + num(increase) + "% (" + num(rss_before) +
          " -> " + num(rss_after) + " bytes), allowed " +
          num(thresholds.max_peak_rss_increase_percent) + "%");
    }
  }

  const double bpg_before = memory_value(baseline, "bytes_per_gate");
  const double bpg_after = memory_value(current, "bytes_per_gate");
  summary << "bytes_per_gate: " << num(bpg_before) << " -> " << num(bpg_after)
          << "\n";
  if (thresholds.max_bytes_per_gate_increase_percent >= 0.0 &&
      bpg_before > 0.0) {
    const double increase = (bpg_after - bpg_before) / bpg_before * 100.0;
    if (increase > thresholds.max_bytes_per_gate_increase_percent) {
      result.violations.push_back(
          "bytes per gate grew " + num(increase) + "% (" + num(bpg_before) +
          " -> " + num(bpg_after) + "), allowed " +
          num(thresholds.max_bytes_per_gate_increase_percent) + "%");
    }
  }

  const double warm_speedup =
      metric_value(current, "gauges", "serve.warm_speedup");
  if (thresholds.min_warm_speedup >= 0.0) {
    summary << "warm_speedup: "
            << num(metric_value(baseline, "gauges", "serve.warm_speedup"))
            << " -> " << num(warm_speedup) << "\n";
    if (warm_speedup < thresholds.min_warm_speedup) {
      result.violations.push_back(
          "serve warm speedup " + num(warm_speedup) + "x below required " +
          num(thresholds.min_warm_speedup) + "x");
    }
  }

  const double pack_speedup =
      metric_value(current, "gauges", "fault.pack_speedup_64");
  if (thresholds.min_pack_speedup >= 0.0) {
    summary << "pack_speedup_64: "
            << num(metric_value(baseline, "gauges", "fault.pack_speedup_64"))
            << " -> " << num(pack_speedup) << "\n";
    if (pack_speedup < thresholds.min_pack_speedup) {
      result.violations.push_back(
          "PPSFP pack-64 grade speedup " + num(pack_speedup) +
          "x below required " + num(thresholds.min_pack_speedup) + "x");
    }
  }

  if (thresholds.max_obs_overhead_pct >= 0.0) {
    // Instrumentation-overhead gate: baseline is the FBT_OBS=OFF
    // bench_obs_overhead report, current the ON report; both publish the
    // min-of-N flow walltime as the obs.flow_run_ms gauge.
    const double off_ms = metric_value(baseline, "gauges", "obs.flow_run_ms");
    const double on_ms = metric_value(current, "gauges", "obs.flow_run_ms");
    summary << "obs_flow_run_ms: " << num(off_ms) << " -> " << num(on_ms)
            << "\n";
    if (off_ms > 0.0) {
      const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
      if (overhead_pct > thresholds.max_obs_overhead_pct) {
        result.violations.push_back(
            "observability overhead " + num(overhead_pct) + "% (" +
            num(off_ms) + "ms off -> " + num(on_ms) + "ms on), allowed " +
            num(thresholds.max_obs_overhead_pct) + "%");
      }
    }
  }

  summary << "changed metrics:\n";
  append_metric_deltas(baseline, current, "gauges", summary);
  append_metric_deltas(baseline, current, "counters", summary);

  result.regression = !result.violations.empty();
  result.summary_text = summary.str();
  return result;
}

std::string render_html_dashboard(const JsonValue& report,
                                  const std::string& journal_ndjson) {
  std::ostringstream out;
  const std::string tool =
      report.find("tool") != nullptr ? report.find("tool")->as_string("?") : "?";
  const std::string sha = report.find("git_sha") != nullptr
                              ? report.find("git_sha")->as_string("?")
                              : "?";
  const std::string stamp = report.find("timestamp_utc") != nullptr
                                ? report.find("timestamp_utc")->as_string("?")
                                : "?";

  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      << "<title>fbt run report: " << html_escape(tool) << "</title>\n"
      << "<style>\n"
         "body { font: 14px/1.45 system-ui, sans-serif; margin: 24px; "
         "color: #222; max-width: 960px; }\n"
         "h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; "
         "border-bottom: 1px solid #ddd; padding-bottom: 4px; }\n"
         "h3 { font-size: 14px; margin: 14px 0 4px; }\n"
         ".barcell { min-width: 220px; }\n"
         ".bar { background: #0a6; height: 10px; border-radius: 2px; }\n"
         "table { border-collapse: collapse; margin: 8px 0; }\n"
         "th, td { border: 1px solid #ddd; padding: 3px 10px; "
         "text-align: left; font-variant-numeric: tabular-nums; }\n"
         "th { background: #f5f5f5; }\n"
         ".dim { color: #888; }\n"
         ".curve { width: 100%; max-width: 640px; }\n"
         ".axis { font-size: 11px; fill: #666; }\n"
         "pre { background: #f8f8f8; border: 1px solid #eee; padding: 8px; "
         "overflow-x: auto; font-size: 12px; }\n"
         "</style></head><body>\n";

  out << "<h1>" << html_escape(tool) << "</h1>\n";
  out << "<p class=\"dim\">git " << html_escape(sha) << " &middot; "
      << html_escape(stamp) << "</p>\n";

  out << "<h2>Configuration</h2>\n";
  html_kv_table(report.find("config"), out);

  out << "<h2>Coverage convergence</h2>\n";
  html_convergence_svg(report, out);

  out << "<h2>Segment yield</h2>\n";
  html_segment_yield(report, out);

  out << "<h2>Speculation</h2>\n";
  const JsonValue* analytics = report.find("analytics");
  html_kv_table(analytics != nullptr ? analytics->find("speculation") : nullptr,
                out);

  out << "<h2>Serving</h2>\n";
  html_serving_panel(report, out);

  out << "<h2>Request latency</h2>\n";
  html_request_latency_panel(report, out);

  out << "<h2>Scheduler</h2>\n";
  html_scheduler_panel(report, out);

  out << "<h2>Memory</h2>\n";
  html_memory_panel(report, out);

  out << "<h2>Gauges</h2>\n";
  html_kv_table(report.find("gauges"), out);

  out << "<h2>Counters</h2>\n";
  html_kv_table(report.find("counters"), out);

  out << "<h2>Phases</h2>\n";
  out << "<table><tr><th>phase</th><th>count</th><th>total_ms</th>"
         "<th>self_ms</th></tr>\n";
  html_phases(report.find("phases"), 0, out);
  out << "</table>\n";

  out << "<h2>Event journal</h2>\n";
  if (journal_ndjson.empty()) {
    out << "<p class=\"dim\">no journal attached</p>\n";
  } else {
    // Cap the inline dump so a long run cannot produce a 100 MB page; the
    // tail carries the commit/finish events, which matter most.
    constexpr std::size_t kMaxLines = 500;
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(journal_ndjson);
    std::size_t total = 0;
    while (std::getline(in, line)) {
      ++total;
      lines.push_back(line);
      if (lines.size() > kMaxLines) lines.erase(lines.begin());
    }
    if (total > kMaxLines) {
      out << "<p class=\"dim\">showing last " << kMaxLines << " of " << total
          << " events</p>\n";
    }
    out << "<pre>";
    for (const std::string& l : lines) out << html_escape(l) << "\n";
    out << "</pre>\n";
  }

  out << "</body></html>\n";
  return out.str();
}

}  // namespace fbt::obs
