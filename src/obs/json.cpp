#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fbt::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(
    const std::vector<std::string>& path) const {
  const JsonValue* cur = this;
  for (const std::string& key : path) {
    cur = cur->find(key);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

namespace {

/// Recursive-descent parser over the raw text. Position-based so error
/// messages can name the byte offset.
class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "JSON parse error at byte %zu: %s", pos_,
                  what);
    error_ = buf;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.kind = JsonValue::Kind::kString;
                return parse_string(out.string);
      case 't':
        if (text_.compare(pos_, 4, "true") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (text_.compare(pos_, 5, "false") != 0) return fail("bad literal");
        pos_ += 5;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected :");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected , or }");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected , or ]");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("bad escape");
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("bad \\u escape");
            char hex[5] = {text_[pos_ + 1], text_[pos_ + 2], text_[pos_ + 3],
                           text_[pos_ + 4], '\0'};
            char* end = nullptr;
            const long code = std::strtol(hex, &end, 16);
            if (end != hex + 4) return fail("bad \\u escape");
            // Reports only escape control characters; anything wider than
            // ASCII decodes to '?' rather than UTF-8.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  out = JsonValue{};
  error.clear();
  return Parser(text, error).parse(out);
}

}  // namespace fbt::obs
