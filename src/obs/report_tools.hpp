// Post-processing of run reports for humans and for CI: regression diffing
// of two BENCH_*.json documents with configurable thresholds (the CI gate),
// and rendering a report + its event journal into a self-contained HTML
// dashboard. Consumed by tools/fbt_report; pure functions over parsed JSON
// so tests can drive them without touching the filesystem.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fbt::obs {

/// What counts as a regression when diffing baseline -> current. Negative
/// threshold disables that check.
struct DiffThresholds {
  /// Max allowed drop in gauge flow.fault_coverage_percent (absolute
  /// percentage points).
  double max_coverage_drop = 0.5;
  /// Max allowed increase in gauge flow.num_tests, in percent of baseline.
  double max_tests_increase_percent = 20.0;
  /// Max allowed increase in summed top-level phase total_ms, in percent of
  /// baseline. Disabled by default: wall time is machine-dependent, so CI
  /// gates only the deterministic quantities unless explicitly asked.
  double max_walltime_increase_percent = -1.0;
  /// Max allowed increase in memory.peak_rss_bytes, in percent of baseline.
  /// Disabled by default: RSS depends on the allocator and the machine.
  double max_peak_rss_increase_percent = -1.0;
  /// Max allowed increase in memory.bytes_per_gate, in percent of baseline.
  /// Disabled by default; bytes_per_gate is derived from deterministic
  /// content-byte footprints, so a tight gate (~10%) is safe to opt into.
  double max_bytes_per_gate_increase_percent = -1.0;
  /// Minimum required value of the current report's serve.warm_speedup
  /// gauge (cold latency / warm latency from bench_serve). Disabled by
  /// default; the serve CI job gates it at 10.
  double min_warm_speedup = -1.0;
  /// Minimum required value of the current report's fault.pack_speedup_64
  /// gauge (serial grade walltime / pack-width-64 grade walltime from
  /// bench_ppsfp). Disabled by default; the ppsfp CI job gates it at 4.
  double min_pack_speedup = -1.0;
  /// Max allowed increase of the obs.flow_run_ms gauge (min-of-N flow
  /// walltime from bench_obs_overhead), in percent of baseline. Diff an
  /// FBT_OBS=OFF report (baseline) against the ON report (current) to gate
  /// the cost of instrumentation; the CI obs_overhead job uses 2. Disabled
  /// by default.
  double max_obs_overhead_pct = -1.0;
};

struct DiffResult {
  bool regression = false;
  /// One line per violated threshold, empty when regression == false.
  std::vector<std::string> violations;
  /// Human-readable delta summary (always filled): the gated quantities
  /// first, then every counter/gauge whose value changed.
  std::string summary_text;
};

/// Compares two parsed run reports. Never throws; missing fields are treated
/// as 0 (a baseline without coverage gauges simply cannot regress).
DiffResult diff_run_reports(const JsonValue& baseline, const JsonValue& current,
                            const DiffThresholds& thresholds);

/// Renders a parsed run report (plus the raw NDJSON journal text, may be
/// empty) into a single self-contained HTML page: config/gauge/counter
/// tables, the convergence curve as an inline SVG, the segment-yield and
/// speculation tables, phase timings, and a capped tail of the journal.
std::string render_html_dashboard(const JsonValue& report,
                                  const std::string& journal_ndjson);

}  // namespace fbt::obs
