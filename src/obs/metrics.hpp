// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms for the BIST flow's hot paths (gate evaluations, LFSR cycles,
// PODEM backtracks, faults dropped, ...).
//
// Design constraints:
//  * lock-cheap on the hot path -- updates are relaxed atomic ops on
//    thread-striped slots (Counter), or plain adds batched through
//    LocalCounter for per-cycle call sites; the registry mutex is taken only
//    on first lookup of a name (call sites cache the returned reference, see
//    obs/instrument.hpp);
//  * references returned by the registry stay valid for the process lifetime
//    (reset() zeroes values but never removes instruments);
//  * zero-cost when disabled -- the FBT_OBS_* macros in obs/instrument.hpp
//    compile to no-ops when the build sets FBT_OBS_ENABLED=0. The classes
//    here stay available in both builds so tools and tests can use them
//    directly.
//
// Naming convention for instrument names: `layer.noun_verb`, e.g.
// `sim.seqsim_gates_evaluated`, `bist.lfsr_cycles`, `atpg.podem_backtracks`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fbt::obs {

/// Monotonically increasing event count.
///
/// Striped to keep the hot path cheap under concurrency: the calibration
/// workers all bump the same sim counters once per simulated cycle, and a
/// single shared atomic turns that into a cache-line ping-pong (~40 ns per
/// add measured on a 4-worker flow_smoke run -- the dominant term in
/// bench_obs_overhead). Each thread is assigned one of kStripes cache-line
/// sized slots at first use and only ever RMWs its own line; value() sums
/// the stripes. Totals stay exact, adds stay relaxed and lock-free; with
/// more threads than stripes some threads share a slot and merely degrade
/// toward the old behaviour.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    stripes_[stripe_index()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (Stripe& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };

  /// Round-robin stripe assignment, one slot per thread, shared by every
  /// Counter (thread T always writes stripe index(T), whichever counter).
  static std::size_t stripe_index() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return index;
  }

  Stripe stripes_[kStripes];
};

/// Last-written instantaneous value (coverage percent, bound, ...).
/// Cache-line-aligned so two gauges updated by different threads never
/// false-share (gauges are set at phase granularity, so unlike Counter they
/// need no striping).
class alignas(64) Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one overflow
/// bucket counts the rest. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double sample);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// Default bounds for latencies in milliseconds.
  static std::vector<double> latency_ms_bounds();

  /// Log-scale (1-2-5 per decade) latency bounds spanning 1 µs .. 10 s in
  /// milliseconds, for quantities with a wide dynamic range (warm cache hits
  /// are microseconds, cold experiment runs are seconds).
  static std::vector<double> log_latency_ms_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Single-owner deferred counter for per-cycle hot paths (simulator steps,
/// LFSR clocks): accumulates into a plain member and forwards to the shared
/// Counter in batches, so the steady-state cost is one non-atomic add
/// instead of an atomic RMW per event. Flushes when the pending batch
/// reaches kBatch and at destruction; owners are experiment-scoped objects
/// (sims, TPGs, MISRs), so totals are exact by the time a report is
/// rendered -- only mid-run snapshots can lag by under one batch. Copies
/// and moves inherit the target but start with an empty batch, so pending
/// counts flush exactly once, from the original.
class LocalCounter {
 public:
  explicit LocalCounter(std::string_view name);
  LocalCounter(const LocalCounter& other) noexcept
      : counter_(other.counter_) {}
  LocalCounter& operator=(const LocalCounter& other) noexcept {
    if (this != &other) {
      flush();
      counter_ = other.counter_;
    }
    return *this;
  }
  ~LocalCounter() { flush(); }

  void add(std::uint64_t delta = 1) {
    pending_ += delta;
    if (pending_ >= kBatch) flush();
  }
  void flush() {
    if (pending_ != 0) {
      counter_->add(pending_);
      pending_ = 0;
    }
  }

 private:
  static constexpr std::uint64_t kBatch = 4096;

  Counter* counter_;
  std::uint64_t pending_ = 0;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owns every instrument. Lookup registers on first use and always returns
/// the same object for a given name thereafter.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers with `bounds` on first use; later calls (with any bounds)
  /// return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  Histogram& histogram(std::string_view name) {
    return histogram(name, Histogram::latency_ms_bounds());
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value. Instruments are never removed, so
  /// references cached by call sites stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry used by the FBT_OBS_* instrumentation macros.
MetricsRegistry& registry();

/// Pre-registers the core domain counters and gauges so run reports always
/// carry them (zero-valued when the corresponding code path never ran).
void register_core_counters();

/// Mean of a histogram's samples; 0 when it holds no samples (never NaN --
/// summary values feed straight into JSON).
double histogram_mean(const HistogramSample& h);

/// Approximate quantile (q in [0, 1]) from the bucket counts: linear
/// interpolation inside the bucket holding the target rank, the lower edge
/// of the first bucket taken as 0. 0 when the histogram holds no samples.
///
/// Overflow caveat: when the target rank lands in the overflow bucket the
/// true quantile is unknown (the histogram only knows "> last bound"); the
/// returned value is CLAMPED to the last finite bound and is therefore a
/// lower bound, not an estimate. `clamped`, when non-null, is set to true
/// exactly in that case so consumers (run reports, the serve stats line)
/// can flag an optimistic p99 on long-tail latency histograms instead of
/// silently under-reporting it.
double histogram_quantile(const HistogramSample& h, double q,
                          bool* clamped = nullptr);

}  // namespace fbt::obs
