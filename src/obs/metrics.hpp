// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms for the BIST flow's hot paths (gate evaluations, LFSR cycles,
// PODEM backtracks, faults dropped, ...).
//
// Design constraints:
//  * lock-cheap on the hot path -- updates are single relaxed atomic ops; the
//    registry mutex is taken only on first lookup of a name (call sites cache
//    the returned reference, see obs/instrument.hpp);
//  * references returned by the registry stay valid for the process lifetime
//    (reset() zeroes values but never removes instruments);
//  * zero-cost when disabled -- the FBT_OBS_* macros in obs/instrument.hpp
//    compile to no-ops when the build sets FBT_OBS_ENABLED=0. The classes
//    here stay available in both builds so tools and tests can use them
//    directly.
//
// Naming convention for instrument names: `layer.noun_verb`, e.g.
// `sim.seqsim_gates_evaluated`, `bist.lfsr_cycles`, `atpg.podem_backtracks`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fbt::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (coverage percent, bound, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one overflow
/// bucket counts the rest. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double sample);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// Default bounds for latencies in milliseconds.
  static std::vector<double> latency_ms_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owns every instrument. Lookup registers on first use and always returns
/// the same object for a given name thereafter.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers with `bounds` on first use; later calls (with any bounds)
  /// return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  Histogram& histogram(std::string_view name) {
    return histogram(name, Histogram::latency_ms_bounds());
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value. Instruments are never removed, so
  /// references cached by call sites stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry used by the FBT_OBS_* instrumentation macros.
MetricsRegistry& registry();

/// Pre-registers the core domain counters and gauges so run reports always
/// carry them (zero-valued when the corresponding code path never ran).
void register_core_counters();

/// Mean of a histogram's samples; 0 when it holds no samples (never NaN --
/// summary values feed straight into JSON).
double histogram_mean(const HistogramSample& h);

/// Approximate quantile (q in [0, 1]) from the bucket counts: linear
/// interpolation inside the bucket holding the target rank, the lower edge
/// of the first bucket taken as 0, overflow samples pinned to the last
/// finite bound. 0 when the histogram holds no samples.
double histogram_quantile(const HistogramSample& h, double q);

}  // namespace fbt::obs
