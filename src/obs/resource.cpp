#include "obs/resource.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/phase.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define FBT_HAS_GETRUSAGE 1
#else
#define FBT_HAS_GETRUSAGE 0
#endif

namespace fbt::obs {

namespace {

/// Reads one "Vm...: <kB> kB" line from /proc/self/status. Returns 0 when
/// the file or the field is absent (non-Linux).
std::uint64_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      kb = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// Resident pages from /proc/self/statm (second field); much cheaper than
/// scanning /proc/self/status, which matters for the throttled sampler.
std::uint64_t statm_resident_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (fields != 2) return 0;
#if FBT_HAS_GETRUSAGE
  const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return resident * 4096ull;
#endif
}

std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t kb = proc_status_kb("VmHWM"); kb > 0) {
    return kb * 1024;
  }
#if FBT_HAS_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_bytes() {
  if (const std::uint64_t bytes = statm_resident_bytes(); bytes > 0) {
    return bytes;
  }
  if (const std::uint64_t kb = proc_status_kb("VmRSS"); kb > 0) {
    return kb * 1024;
  }
  return 0;
}

std::uint64_t sampled_rss_bytes() {
  constexpr std::uint64_t kResampleUs = 1000;
  static std::atomic<std::uint64_t> cached{0};
  static std::atomic<std::uint64_t> last_sample_us{0};
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  const auto now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
  std::uint64_t last = last_sample_us.load(std::memory_order_relaxed);
  if (cached.load(std::memory_order_relaxed) == 0 ||
      now_us - last >= kResampleUs) {
    // One thread wins the re-read; losers return the (still fresh) cache.
    if (last_sample_us.compare_exchange_strong(last, now_us,
                                               std::memory_order_relaxed)) {
      cached.store(current_rss_bytes(), std::memory_order_relaxed);
    }
  }
  return cached.load(std::memory_order_relaxed);
}

void charge_allocation(std::uint64_t bytes, std::uint64_t count) {
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_alloc_count.fetch_add(count, std::memory_order_relaxed);
  detail::charge_open_phase(bytes, count);
}

AllocationTotals allocation_totals() {
  return {g_alloc_bytes.load(std::memory_order_relaxed),
          g_alloc_count.load(std::memory_order_relaxed)};
}

void reset_allocation_totals() {
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);
}

void FootprintRegistry::record(std::string_view name, std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(std::string(name), bytes);
  } else {
    it->second = bytes;
  }
}

std::vector<FootprintSample> FootprintRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<FootprintSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, bytes] : entries_) out.push_back({name, bytes});
  return out;
}

std::uint64_t FootprintRegistry::total_bytes() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, bytes] : entries_) total += bytes;
  return total;
}

void FootprintRegistry::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

FootprintRegistry& footprints() {
  static FootprintRegistry instance;
  return instance;
}

MemoryReport collect_memory_report() {
  MemoryReport report;
  report.peak_rss_bytes = peak_rss_bytes();
  report.current_rss_bytes = current_rss_bytes();
  const AllocationTotals totals = allocation_totals();
  report.allocated_bytes = totals.bytes;
  report.allocation_count = totals.count;
  report.footprints = footprints().snapshot();
  return report;
}

}  // namespace fbt::obs
