// Machine-readable run reports: one JSON document per tool run carrying the
// build identity (git SHA), the tool's configuration, the phase-trace
// summary, a snapshot of every registered metric, and analytics derived from
// the event journal. Bench harnesses write these as BENCH_<name>.json so the
// perf trajectory is diffable across PRs (`tools/fbt_report diff` gates CI
// on them).
//
// Schema (version 4) -- keys are emitted in this fixed order, metric and
// config keys sorted by name, so reports diff cleanly:
//
//   {
//     "schema_version": 4,
//     "tool": "bench_table4_1",
//     "git_sha": "abc1234",
//     "timestamp_utc": "2026-08-05T12:00:00Z",
//     "config": {"target": "spi", ...},
//     "phases": [{"name": "calibrate", "count": 1, "total_ms": 12.345,
//                 "self_ms": 12.345, "rss_delta_bytes": 262144,
//                 "alloc_bytes": 106496, "alloc_count": 2,
//                 "children": [...]}, ...],
//     "counters": {"bist.lfsr_cycles": 4096, ...},
//     "gauges": {"flow.fault_coverage_percent": 91.2, ...},
//     "histograms": {"fault.grade_duration_ms":
//        {"count": 7, "sum": 3.5, "mean": 0.5, "p50": 0.4, "p90": 1.2,
//         "p99": 1.9, "p99_clamped": false,
//         "buckets": [{"le": 0.1, "count": 3}, ..., {"le": "inf", "count": 0}]}},
//     "analytics": {
//       "convergence": [{"tests": 64, "detected": 321}, ...],
//       "segment_yield": [{"sequence": 0, "segment": 0, "seed": 123,
//                          "tests": 100, "newly_detected": 42,
//                          "peak_swa": 12.5}, ...],
//       "speculation": {"batches": 1, "lanes_evaluated": 64, "hits": 3,
//                       "wasted": 10}},
//     "jobs": {"workers": 4, "submitted": 100, "executed": 100, "steals": 7,
//              "busy_ms": 120.000, "idle_ms": 280.000, "utilization": 0.3},
//     "memory": {
//       "peak_rss_bytes": 104857600,
//       "current_rss_bytes": 94371840,
//       "allocated_bytes": 1048576,
//       "allocation_count": 12,
//       "footprints": {"fault_list": 106496, "netlist": 5242880, ...},
//       "bytes_per_gate": 123.4,
//       "bytes_per_fault": 56.7}
//   }
//
// Version history: v1 (PR 1) had neither "analytics" nor the histogram
// mean/p50/p90 summary values; v2 (PR 5) added them; v3 adds the "memory"
// section and the per-phase rss_delta_bytes / alloc_bytes / alloc_count
// fields; v4 (scheduler telemetry) adds the "jobs" utilization section and
// the histogram p99 / p99_clamped summary values (p99_clamped is true when
// the rank landed in the overflow bucket, so the reported p99 is only a
// lower bound -- see obs::histogram_quantile). Consumers must tolerate a
// missing "memory" or "jobs" section (v2/v3 reports remain renderable and
// diffable; absent quantities diff as 0). Histogram summaries are guarded: a
// histogram with no samples renders mean/p50/p90/p99 as 0, never NaN.
// bytes_per_gate / bytes_per_fault divide the footprint total by the
// flow.num_gates / flow.num_faults gauges (0 when the gauge is unset).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/resource.hpp"

namespace fbt::obs {

/// Scheduler utilization for the "jobs" section (schema v4): lifetime totals
/// of the process-wide jobs.* metrics, with busy/idle derived against the
/// wall time since the trace epoch. All zeros when no JobSystem ran (or
/// under FBT_OBS=OFF, where busy-time accounting compiles away).
struct JobsSummary {
  std::uint64_t workers = 0;
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  double busy_ms = 0.0;
  double idle_ms = 0.0;      ///< workers * elapsed - busy, floored at 0
  double utilization = 0.0;  ///< busy / (workers * elapsed), in [0, 1]
};

/// Everything that goes into one report. Fields are plain data so tests can
/// build a fixed instance and pin the rendered bytes.
struct RunReportData {
  int schema_version = 4;
  std::string tool;
  std::string git_sha;
  std::string timestamp_utc;
  std::map<std::string, std::string> config;
  std::vector<PhaseSummary> phases;
  MetricsSnapshot metrics;
  RunAnalytics analytics;
  JobsSummary jobs;
  MemoryReport memory;
};

/// Fills a report from the process-wide state: git SHA baked in at build
/// time (or "unknown"), current UTC time, the global phase trace, and a
/// metrics snapshot (core counters pre-registered so they always appear).
RunReportData collect_run_report(
    const std::string& tool,
    const std::map<std::string, std::string>& config);

/// Deterministic JSON rendering of `data` (no global state consulted).
std::string render_run_report(const RunReportData& data);

/// Renders and writes to `path`. Returns false (and prints to stderr) on
/// I/O failure.
bool write_run_report(const std::string& path, const RunReportData& data);

/// Convenience for bench harnesses: collects a report for tool
/// "bench_<name>" and writes BENCH_<name>.json into $FBT_BENCH_DIR (default:
/// current directory). Prints the path written.
bool write_bench_report(const std::string& name,
                        const std::map<std::string, std::string>& config);

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
std::string json_escape(const std::string& s);

}  // namespace fbt::obs
