#include "obs/run_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>

#include "obs/event_journal.hpp"
#include "obs/instrument.hpp"

#ifndef FBT_GIT_SHA
#define FBT_GIT_SHA "unknown"
#endif

namespace fbt::obs {

namespace {

std::string fmt(const char* format, ...) {
  char buf[160];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

/// Compact float rendering: up to 6 significant digits, no trailing zeros
/// ("12.345", "0.1", "4096").
std::string json_number(double v) {
  std::string s = fmt("%.6g", v);
  return s;
}

std::string ms_number(double ms) { return fmt("%.3f", ms); }

void render_phase(const PhaseSummary& p, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out += pad + "{\"name\": \"" + json_escape(p.name) + "\", \"count\": " +
         fmt("%" PRIu64, p.count) + ", \"total_ms\": " + ms_number(p.total_ms) +
         ", \"self_ms\": " + ms_number(p.self_ms) +
         ", \"rss_delta_bytes\": " + fmt("%" PRId64, p.rss_delta_bytes) +
         ", \"alloc_bytes\": " + fmt("%" PRIu64, p.alloc_bytes) +
         ", \"alloc_count\": " + fmt("%" PRIu64, p.alloc_count) +
         ", \"children\": [";
  for (std::size_t i = 0; i < p.children.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    render_phase(p.children[i], indent + 2, out);
  }
  if (!p.children.empty()) out += "\n" + pad;
  out += "]}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

RunReportData collect_run_report(
    const std::string& tool,
    const std::map<std::string, std::string>& config) {
  register_core_counters();
  RunReportData data;
  data.tool = tool;
  data.git_sha = FBT_GIT_SHA;
  char stamp[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  data.timestamp_utc = stamp;
  data.config = config;
  data.phases = PhaseTrace::instance().summarize();
  data.metrics = registry().snapshot();
  data.analytics = derive_analytics(journal().events(), data.metrics);
  // "jobs" utilization (schema v4) from the pre-registered scheduler
  // metrics; elapsed is wall time since the trace epoch, which a JobSystem
  // constructor establishes before any task runs.
  for (const CounterSample& c : data.metrics.counters) {
    if (c.name == "jobs.submitted") data.jobs.submitted = c.value;
    if (c.name == "jobs.executed") data.jobs.executed = c.value;
    if (c.name == "jobs.steals") data.jobs.steals = c.value;
    if (c.name == "jobs.busy_us") {
      data.jobs.busy_ms = static_cast<double>(c.value) / 1000.0;
    }
  }
  for (const GaugeSample& g : data.metrics.gauges) {
    if (g.name == "jobs.workers" && g.value > 0.0) {
      data.jobs.workers = static_cast<std::uint64_t>(g.value);
    }
  }
  if (data.jobs.workers > 0) {
    const double elapsed_ms =
        static_cast<double>(detail::trace_now_us()) / 1000.0;
    const double capacity_ms =
        elapsed_ms * static_cast<double>(data.jobs.workers);
    if (capacity_ms > 0.0) {
      data.jobs.idle_ms = std::max(0.0, capacity_ms - data.jobs.busy_ms);
      data.jobs.utilization = std::min(1.0, data.jobs.busy_ms / capacity_ms);
    }
  }
  FBT_OBS_FOOTPRINT("obs.journal", journal().footprint_bytes());
  FBT_OBS_FOOTPRINT("obs.phase_trace", PhaseTrace::instance().footprint_bytes());
  data.memory = collect_memory_report();
  // Derived structure analytics: footprint bytes per gate / per collapsed
  // fault, when the flow published the denominators.
  std::uint64_t footprint_total = 0;
  for (const FootprintSample& f : data.memory.footprints) {
    footprint_total += f.bytes;
  }
  for (const GaugeSample& g : data.metrics.gauges) {
    if (g.name == "flow.num_gates" && g.value > 0.0) {
      data.memory.bytes_per_gate =
          static_cast<double>(footprint_total) / g.value;
    }
    if (g.name == "flow.num_faults" && g.value > 0.0) {
      data.memory.bytes_per_fault =
          static_cast<double>(footprint_total) / g.value;
    }
  }
  return data;
}

std::string render_run_report(const RunReportData& data) {
  std::string out = "{\n";
  out += fmt("  \"schema_version\": %d,\n", data.schema_version);
  out += "  \"tool\": \"" + json_escape(data.tool) + "\",\n";
  out += "  \"git_sha\": \"" + json_escape(data.git_sha) + "\",\n";
  out += "  \"timestamp_utc\": \"" + json_escape(data.timestamp_utc) + "\",\n";

  out += "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : data.config) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"phases\": [";
  for (std::size_t i = 0; i < data.phases.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    render_phase(data.phases[i], 4, out);
  }
  out += data.phases.empty() ? "],\n" : "\n  ],\n";

  out += "  \"counters\": {";
  first = true;
  for (const CounterSample& c : data.metrics.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(c.name) + "\": " + fmt("%" PRIu64, c.value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const GaugeSample& g : data.metrics.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(g.name) + "\": " + json_number(g.value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSample& h : data.metrics.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    bool p99_clamped = false;
    const double p99 = histogram_quantile(h, 0.99, &p99_clamped);
    out += "    \"" + json_escape(h.name) + "\": {\"count\": " +
           fmt("%" PRIu64, h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"mean\": " + json_number(histogram_mean(h)) +
           ", \"p50\": " + json_number(histogram_quantile(h, 0.5)) +
           ", \"p90\": " + json_number(histogram_quantile(h, 0.9)) +
           ", \"p99\": " + json_number(p99) +
           ", \"p99_clamped\": " + (p99_clamped ? "true" : "false") +
           ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? json_number(h.bounds[i]) : "\"inf\"";
      out += fmt(", \"count\": %" PRIu64 "}", h.bucket_counts[i]);
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"analytics\": {\n";
  out += "    \"convergence\": [";
  for (std::size_t i = 0; i < data.analytics.convergence.size(); ++i) {
    const ConvergencePoint& p = data.analytics.convergence[i];
    if (i > 0) out += ", ";
    out += fmt("{\"tests\": %" PRIu64 ", \"detected\": %" PRIu64 "}", p.tests,
               p.detected);
  }
  out += "],\n";
  out += "    \"segment_yield\": [";
  for (std::size_t i = 0; i < data.analytics.segment_yield.size(); ++i) {
    const SegmentYieldRow& r = data.analytics.segment_yield[i];
    out += i == 0 ? "\n" : ",\n";
    out += fmt("      {\"sequence\": %" PRIu64 ", \"segment\": %" PRIu64
               ", \"seed\": %" PRIu64 ", \"tests\": %" PRIu64
               ", \"newly_detected\": %" PRIu64 ", \"peak_swa\": ",
               r.sequence, r.segment, r.seed, r.tests, r.newly_detected);
    out += json_number(r.peak_swa) + "}";
  }
  out += data.analytics.segment_yield.empty() ? "],\n" : "\n    ],\n";
  const SpeculationSummary& sp = data.analytics.speculation;
  out += fmt("    \"speculation\": {\"batches\": %" PRIu64
             ", \"lanes_evaluated\": %" PRIu64 ", \"hits\": %" PRIu64
             ", \"wasted\": %" PRIu64 "}\n",
             sp.batches, sp.lanes_evaluated, sp.hits, sp.wasted);
  out += "  },\n";

  const JobsSummary& jobs = data.jobs;
  out += fmt("  \"jobs\": {\"workers\": %" PRIu64 ", \"submitted\": %" PRIu64
             ", \"executed\": %" PRIu64 ", \"steals\": %" PRIu64,
             jobs.workers, jobs.submitted, jobs.executed, jobs.steals);
  out += ", \"busy_ms\": " + ms_number(jobs.busy_ms) +
         ", \"idle_ms\": " + ms_number(jobs.idle_ms) +
         ", \"utilization\": " + json_number(jobs.utilization) + "},\n";

  const MemoryReport& mem = data.memory;
  out += "  \"memory\": {\n";
  out += fmt("    \"peak_rss_bytes\": %" PRIu64 ",\n", mem.peak_rss_bytes);
  out += fmt("    \"current_rss_bytes\": %" PRIu64 ",\n",
             mem.current_rss_bytes);
  out += fmt("    \"allocated_bytes\": %" PRIu64 ",\n", mem.allocated_bytes);
  out += fmt("    \"allocation_count\": %" PRIu64 ",\n", mem.allocation_count);
  out += "    \"footprints\": {";
  first = true;
  for (const FootprintSample& f : mem.footprints) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      \"" + json_escape(f.name) + "\": " +
           fmt("%" PRIu64, f.bytes);
  }
  out += first ? "},\n" : "\n    },\n";
  out += "    \"bytes_per_gate\": " + json_number(mem.bytes_per_gate) + ",\n";
  out += "    \"bytes_per_fault\": " + json_number(mem.bytes_per_fault) + "\n";
  out += "  }\n";

  out += "}\n";
  return out;
}

bool write_run_report(const std::string& path, const RunReportData& data) {
  const std::string body = render_run_report(data);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

namespace {

/// The fixed collection directory every bench also copies its artifacts to,
/// so CI can upload one directory instead of hunting per-bench working dirs.
/// Compile-time default is <source>/bench/out (see src/obs/CMakeLists.txt);
/// the FBT_BENCH_OUT_DIR environment variable overrides it, and setting it
/// to the empty string disables the copy entirely.
std::string bench_out_dir() {
  if (const char* env = std::getenv("FBT_BENCH_OUT_DIR"); env != nullptr) {
    return env;
  }
#ifdef FBT_BENCH_OUT_DIR
  return FBT_BENCH_OUT_DIR;
#else
  return {};
#endif
}

/// Best-effort write of `body` into `dir`/`filename`, creating `dir` first.
/// Bench artifacts must never fail the bench itself, so errors only warn.
void write_to_out_dir(const std::string& dir, const std::string& filename,
                      const std::string& body) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return;
  }
  if (std::fwrite(body.data(), 1, body.size(), f) != body.size()) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  }
  std::fclose(f);
  std::printf("[obs] wrote %s\n", path.c_str());
}

}  // namespace

bool write_bench_report(const std::string& name,
                        const std::map<std::string, std::string>& config) {
  const char* dir = std::getenv("FBT_BENCH_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? std::string(dir) : ".";
  path += "/BENCH_" + name + ".json";
  const RunReportData data = collect_run_report("bench_" + name, config);
  if (!write_run_report(path, data)) return false;
  std::printf("[obs] wrote %s\n", path.c_str());

  const std::string out_dir = bench_out_dir();
  if (!out_dir.empty()) {
    write_to_out_dir(out_dir, "BENCH_" + name + ".json",
                     render_run_report(data));
  }
  if (journal().size() > 0) {
    const std::string ndjson = journal().ndjson();
    std::string journal_path =
        dir != nullptr && dir[0] != '\0' ? std::string(dir) : ".";
    journal_path += "/JOURNAL_" + name + ".ndjson";
    std::FILE* jf = std::fopen(journal_path.c_str(), "w");
    if (jf != nullptr) {
      std::fwrite(ndjson.data(), 1, ndjson.size(), jf);
      std::fclose(jf);
      std::printf("[obs] wrote %s\n", journal_path.c_str());
    }
    if (!out_dir.empty()) {
      write_to_out_dir(out_dir, "JOURNAL_" + name + ".ndjson", ndjson);
    }
  }
  return true;
}

}  // namespace fbt::obs
