#include "obs/phase.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/resource.hpp"

namespace fbt::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            trace_epoch())
          .count());
}

// Per-thread stack of open spans. Nodes live in the stack by value until the
// span closes; a closing span either becomes a child of the span below it or
// a root of the process-wide trace.
struct OpenSpan {
  PhaseNode node;
};

thread_local std::vector<OpenSpan> open_spans;

// Context adopted from another thread via TraceContextScope; consulted only
// when the local open-span stack is empty.
thread_local TraceContext adopted_context;

// Small sequential id per thread, assigned on the thread's first span. The
// main thread of a typical run gets 1, workers 2..N; ids are never reused
// within a process.
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Span and flow-arrow ids share one process-wide sequence starting at 1, so
// a parent's span_id is always smaller than any of its children's (spans
// open after their parents) and 0 stays the "no parent" sentinel.
std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next_id{1};
  return next_id.fetch_add(1, std::memory_order_relaxed);
}

void render_tree(const std::vector<PhaseSummary>& nodes, std::size_t depth,
                 std::string& out) {
  for (const PhaseSummary& n : nodes) {
    char buf[160];
    std::string label(2 * depth, ' ');
    label += n.name;
    if (n.count > 1) {
      std::snprintf(buf, sizeof(buf), " x%" PRIu64, n.count);
      label += buf;
    }
    if (label.size() < 32) label.resize(32, ' ');
    if (n.children.empty()) {
      std::snprintf(buf, sizeof(buf), "%s %10.3f ms\n", label.c_str(),
                    n.total_ms);
    } else {
      std::snprintf(buf, sizeof(buf), "%s %10.3f ms  (self %.3f ms)\n",
                    label.c_str(), n.total_ms, n.self_ms);
    }
    out += buf;
    render_tree(n.children, depth + 1, out);
  }
}

void render_events(const PhaseNode& node, bool& first, std::string& out) {
  char buf[288];
  out += first ? "\n" : ",\n";
  first = false;
  out += "  {\"name\": \"";
  for (const char c : node.name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  std::snprintf(buf, sizeof(buf),
                "\", \"ph\": \"X\", \"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                ", \"pid\": 1, \"tid\": %" PRIu32
                ", \"args\": {\"span_id\": %" PRIu64
                ", \"parent_span_id\": %" PRIu64
                ", \"rss_open_bytes\": %" PRIu64
                ", \"rss_close_bytes\": %" PRIu64
                ", \"alloc_bytes\": %" PRIu64 "}}",
                node.start_us, node.dur_us, node.tid, node.span_id,
                node.parent_span_id, node.rss_open_bytes,
                node.rss_close_bytes, node.alloc_bytes);
  out += buf;
  for (const PhaseNode& child : node.children) {
    render_events(child, first, out);
  }
}

void render_flow(const FlowArrow& arrow, bool& first, std::string& out) {
  char buf[192];
  // "s" marks the submit site, "f" with bp:"e" binds the arrowhead to the
  // enclosing slice at the execution site. Chrome requires a "cat" on flow
  // events.
  std::snprintf(buf, sizeof(buf),
                "%s  {\"name\": \"job\", \"cat\": \"jobs\", \"ph\": \"s\", "
                "\"id\": %" PRIu64 ", \"ts\": %" PRIu64
                ", \"pid\": 1, \"tid\": %" PRIu32 "},\n",
                first ? "\n" : ",\n", arrow.id, arrow.src_ts_us,
                arrow.src_tid);
  first = false;
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  {\"name\": \"job\", \"cat\": \"jobs\", \"ph\": \"f\", "
                "\"bp\": \"e\", \"id\": %" PRIu64 ", \"ts\": %" PRIu64
                ", \"pid\": 1, \"tid\": %" PRIu32 "}",
                arrow.id, arrow.dst_ts_us, arrow.dst_tid);
  out += buf;
}

/// Depth-first search for the span with `id`; nullptr when absent.
PhaseNode* find_span(PhaseNode& node, std::uint64_t id) {
  if (node.span_id == id) return &node;
  for (PhaseNode& c : node.children) {
    if (PhaseNode* found = find_span(c, id)) return found;
  }
  return nullptr;
}

}  // namespace

double PhaseNode::self_ms() const {
  std::uint64_t child_us = 0;
  for (const PhaseNode& c : children) child_us += c.dur_us;
  return static_cast<double>(dur_us > child_us ? dur_us - child_us : 0) /
         1000.0;
}

TraceContext current_trace_context() {
  if (!open_spans.empty()) {
    const PhaseNode& top = open_spans.back().node;
    return {top.span_id, top.parent_span_id};
  }
  return adopted_context;
}

TraceContextScope::TraceContextScope(TraceContext ctx)
    : saved_(adopted_context) {
  adopted_context = ctx;
}

TraceContextScope::~TraceContextScope() { adopted_context = saved_; }

PhaseTrace& PhaseTrace::instance() {
  static PhaseTrace trace;
  return trace;
}

void PhaseTrace::add_root(PhaseNode node) {
  std::lock_guard lock(mutex_);
  roots_.push_back(std::move(node));
}

void PhaseTrace::add_flow(const FlowArrow& arrow) {
  std::lock_guard lock(mutex_);
  flows_.push_back(arrow);
}

std::vector<PhaseNode> PhaseTrace::roots() const {
  std::lock_guard lock(mutex_);
  return roots_;
}

std::vector<FlowArrow> PhaseTrace::flows() const {
  std::lock_guard lock(mutex_);
  return flows_;
}

std::vector<PhaseNode> PhaseTrace::stitched_roots() const {
  return stitch_phase_roots(roots());
}

void PhaseTrace::clear() {
  std::lock_guard lock(mutex_);
  roots_.clear();
  flows_.clear();
}

namespace {

std::uint64_t node_footprint(const PhaseNode& node) {
  std::uint64_t bytes = sizeof(PhaseNode) + node.name.size();
  for (const PhaseNode& c : node.children) bytes += node_footprint(c);
  return bytes;
}

}  // namespace

std::uint64_t PhaseTrace::footprint_bytes() const {
  std::lock_guard lock(mutex_);
  std::uint64_t bytes = 0;
  for (const PhaseNode& n : roots_) bytes += node_footprint(n);
  bytes += flows_.size() * sizeof(FlowArrow);
  return bytes;
}

std::vector<PhaseNode> stitch_phase_roots(std::vector<PhaseNode> roots) {
  // Each pass moves one detached root under its parent, then restarts (the
  // erase invalidates positions). A root whose parent is itself a detached
  // root still resolves: the move searches every other root's subtree, and
  // a later pass moves the parent with the child already attached. Bounded:
  // every pass removes one root or terminates the loop.
  bool moved = true;
  while (moved) {
    moved = false;
    for (std::size_t i = 0; i < roots.size() && !moved; ++i) {
      const std::uint64_t want = roots[i].parent_span_id;
      if (want == 0) continue;
      bool resolvable = false;
      for (std::size_t j = 0; j < roots.size() && !resolvable; ++j) {
        resolvable = j != i && find_span(roots[j], want) != nullptr;
      }
      if (!resolvable) continue;
      PhaseNode node = std::move(roots[i]);
      roots.erase(roots.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t j = 0; j < roots.size(); ++j) {
        if (PhaseNode* parent = find_span(roots[j], want)) {
          // Insert among the children in start order so summaries and
          // renders are deterministic regardless of completion order.
          auto pos = std::find_if(
              parent->children.begin(), parent->children.end(),
              [&node](const PhaseNode& c) {
                return c.start_us > node.start_us ||
                       (c.start_us == node.start_us &&
                        c.span_id > node.span_id);
              });
          parent->children.insert(pos, std::move(node));
          break;
        }
      }
      moved = true;
    }
  }
  return roots;
}

std::vector<PhaseSummary> summarize_phases(
    const std::vector<PhaseNode>& nodes) {
  std::vector<PhaseSummary> out;
  // Merge same-name siblings in first-seen order; hot loops open hundreds of
  // identically named spans and the human view wants one aggregated line.
  std::vector<std::vector<PhaseNode>> grouped_children;
  for (const PhaseNode& n : nodes) {
    std::size_t slot = out.size();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].name == n.name) {
        slot = i;
        break;
      }
    }
    if (slot == out.size()) {
      out.push_back({n.name, 0, 0.0, 0.0, 0, 0, 0, {}});
      grouped_children.emplace_back();
    }
    out[slot].count += 1;
    out[slot].total_ms += n.total_ms();
    out[slot].self_ms += n.self_ms();
    out[slot].rss_delta_bytes += n.rss_delta_bytes();
    out[slot].alloc_bytes += n.alloc_bytes;
    out[slot].alloc_count += n.alloc_count;
    for (const PhaseNode& c : n.children) {
      grouped_children[slot].push_back(c);
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].children = summarize_phases(grouped_children[i]);
  }
  return out;
}

std::vector<PhaseSummary> PhaseTrace::summarize() const {
  return summarize_phases(stitched_roots());
}

std::string PhaseTrace::tree_string() const {
  std::string out;
  render_tree(summarize(), 0, out);
  return out;
}

std::string PhaseTrace::chrome_trace_json() const {
  std::vector<PhaseNode> nodes;
  std::vector<FlowArrow> arrows;
  {
    std::lock_guard lock(mutex_);
    nodes = roots_;
    arrows = flows_;
  }
  std::string out = "[";
  bool first = true;
  for (const PhaseNode& n : nodes) render_events(n, first, out);
  for (const FlowArrow& a : arrows) render_flow(a, first, out);
  out += first ? "]" : "\n]";
  out += "\n";
  return out;
}

PhaseSpan::PhaseSpan(std::string name) {
  OpenSpan span;
  span.node.name = std::move(name);
  span.node.tid = this_thread_tid();
  span.node.span_id = next_span_id();
  span.node.parent_span_id = open_spans.empty()
                                 ? adopted_context.span_id
                                 : open_spans.back().node.span_id;
  span.node.rss_open_bytes = sampled_rss_bytes();
  span.node.start_us = now_us();
  open_spans.push_back(std::move(span));
}

PhaseSpan::~PhaseSpan() {
  if (open_spans.empty()) return;  // defensive; cannot happen with RAII use
  PhaseNode node = std::move(open_spans.back().node);
  open_spans.pop_back();
  node.dur_us = now_us() - node.start_us;
  node.rss_close_bytes = sampled_rss_bytes();
  if (open_spans.empty()) {
    // Roots with a nonzero parent_span_id are *detached*: the logical
    // parent is open on another thread. stitch_phase_roots() re-attaches
    // them once both have completed.
    PhaseTrace::instance().add_root(std::move(node));
  } else {
    open_spans.back().node.children.push_back(std::move(node));
  }
}

namespace detail {

bool charge_open_phase(std::uint64_t bytes, std::uint64_t count) {
  if (open_spans.empty()) return false;
  PhaseNode& node = open_spans.back().node;
  node.alloc_bytes += bytes;
  node.alloc_count += count;
  return true;
}

std::uint64_t trace_now_us() { return now_us(); }

std::uint32_t trace_thread_tid() { return this_thread_tid(); }

std::uint64_t next_flow_id() { return next_span_id(); }

}  // namespace detail

}  // namespace fbt::obs
