#include "obs/event_journal.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/run_report.hpp"  // json_escape

namespace fbt::obs {

namespace {

void append_value(const EventValue& v, std::string& out) {
  char buf[48];
  switch (v.kind) {
    case EventValue::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, v.u);
      out += buf;
      break;
    case EventValue::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, v.i);
      out += buf;
      break;
    case EventValue::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", v.d);
      out += buf;
      break;
    case EventValue::Kind::kString:
      out += '"';
      out += json_escape(v.s);
      out += '"';
      break;
  }
}

}  // namespace

std::string render_event_line(const JournalEvent& event) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, event.seq);
  std::string out = "{\"seq\": ";
  out += buf;
  out += ", \"type\": \"" + json_escape(event.type) + "\"";
  for (const auto& [key, value] : event.fields) {
    out += ", \"" + json_escape(key) + "\": ";
    append_value(value, out);
  }
  out += "}";
  return out;
}

void EventJournal::emit(
    std::string_view type,
    std::initializer_list<std::pair<std::string_view, EventValue>> fields) {
  JournalEvent event;
  event.type = std::string(type);
  event.fields.reserve(fields.size());
  for (const auto& [key, value] : fields) {
    event.fields.emplace_back(std::string(key), value);
  }
  std::lock_guard lock(mutex_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<JournalEvent> EventJournal::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t EventJournal::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::string EventJournal::ndjson() const {
  const std::vector<JournalEvent> copy = events();
  std::string out;
  for (const JournalEvent& event : copy) {
    out += render_event_line(event);
    out += '\n';
  }
  return out;
}

bool EventJournal::write_ndjson(const std::string& path) const {
  const std::string body = ndjson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

void EventJournal::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  next_seq_ = 0;
}

std::uint64_t EventJournal::footprint_bytes() const {
  std::lock_guard lock(mutex_);
  std::uint64_t bytes = 0;
  for (const JournalEvent& e : events_) {
    bytes += sizeof(JournalEvent) + e.type.size();
    for (const auto& [name, value] : e.fields) {
      bytes += sizeof(name) + sizeof(value) + name.size() + value.s.size();
    }
  }
  return bytes;
}

EventJournal& journal() {
  static EventJournal instance;
  return instance;
}

}  // namespace fbt::obs
