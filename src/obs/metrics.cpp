#include "obs/metrics.hpp"

#include <algorithm>

namespace fbt::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::record(double sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::latency_ms_bounds() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
          5000, 10000};
}

std::vector<double> Histogram::log_latency_ms_bounds() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1,
          2,     5,     10,    20,   50,   100,  200, 500, 1000, 2000,
          5000,  10000};
}

LocalCounter::LocalCounter(std::string_view name)
    : counter_(&registry().counter(name)) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

void register_core_counters() {
  // The run-report acceptance set: these appear in every report even when
  // the corresponding phase never ran in this process.
  MetricsRegistry& reg = registry();
  reg.counter("sim.seqsim_gates_evaluated");
  reg.counter("sim.bitsim_gates_evaluated");
  reg.counter("bist.lfsr_cycles");
  reg.counter("bist.tests_extracted");
  reg.counter("atpg.podem_backtracks");
  reg.counter("fault.faults_dropped");
  reg.counter("flow.faults_detected");
  // Speculative seed search (PR 4) and parallel grading (PR 3): registered
  // here so the scalar/serial configurations still report them as zeros
  // instead of omitting them.
  reg.counter("bist.speculated_lanes");
  reg.counter("bist.speculation_hits");
  reg.counter("bist.speculation_wasted");
  reg.counter("bist.speculation_batches");
  reg.counter("fault.parallel_shards_graded");
  // Disambiguates parallel_shards_graded == 0: the serial short-circuit
  // fired (few faults or one thread), vs. parallelism never engaged at all.
  reg.counter("fault.serial_grade_fallbacks");
  reg.gauge("fault.parallel_threads");
  // PPSFP packed fault grading: pack-efficiency counters, registered so
  // serial configurations (pack width 1) still report them as zeros.
  reg.counter("fault.pack_groups_simulated");
  reg.counter("fault.pack_lanes_wasted");
  reg.counter("fault.pack_diff_words_propagated");
  // Serving layer (fbt_serve daemon + work-stealing job system): registered
  // so batch runs report them as zeros and dashboards can always render the
  // Serving panel from a uniform metric set.
  reg.counter("serve.requests_total");
  reg.counter("serve.cache_hits");
  reg.counter("serve.cache_misses");
  reg.counter("serve.cache_evictions");
  reg.counter("jobs.submitted");
  reg.counter("jobs.executed");
  reg.counter("jobs.steals");
  // Scheduler telemetry (trace propagation + utilization, PR 10): worker
  // busy time feeds the run report's "jobs" section; the histograms use
  // log-scale bounds because job run times span microseconds to seconds.
  reg.counter("jobs.busy_us");
  reg.gauge("jobs.workers");
  reg.gauge("jobs.queue_depth");
  reg.histogram("jobs.run_ms", Histogram::log_latency_ms_bounds());
  reg.histogram("jobs.steal_latency_ms", Histogram::log_latency_ms_bounds());
  // Per-request serve latency, decomposed into segments and keyed cold
  // (experiment-cache miss) vs warm (hit). Pre-registered so the stats
  // response and dashboards always see the full set, zero-valued when the
  // daemon never ran.
  reg.histogram("serve.request_queue_ms", Histogram::log_latency_ms_bounds());
  reg.histogram("serve.request_cache_ms", Histogram::log_latency_ms_bounds());
  reg.histogram("serve.request_compute_ms",
                Histogram::log_latency_ms_bounds());
  reg.histogram("serve.request_render_ms", Histogram::log_latency_ms_bounds());
  reg.histogram("serve.request_total_cold_ms",
                Histogram::log_latency_ms_bounds());
  reg.histogram("serve.request_total_warm_ms",
                Histogram::log_latency_ms_bounds());
  reg.gauge("flow.num_threads");
  reg.gauge("flow.speculation_lanes");
  reg.gauge("flow.fault_pack_width");
  reg.gauge("flow.fault_coverage_percent");
  reg.gauge("flow.num_tests");
  reg.gauge("flow.num_seeds");
  // Denominators for the memory section's bytes-per-gate / bytes-per-fault
  // analytics (resource telemetry, schema v3).
  reg.gauge("flow.num_gates");
  reg.gauge("flow.num_faults");
}

double histogram_mean(const HistogramSample& h) {
  if (h.count == 0) return 0.0;
  return h.sum / static_cast<double>(h.count);
}

double histogram_quantile(const HistogramSample& h, double q, bool* clamped) {
  if (clamped != nullptr) *clamped = false;
  if (h.count == 0 || h.bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket =
        i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
    if (in_bucket == 0) continue;
    const double lo = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= h.bounds.size()) {
      // Overflow bucket: the true quantile exceeds every finite bound.
      // Return the clamp explicitly (see the header) rather than guessing.
      if (clamped != nullptr) *clamped = true;
      return h.bounds.back();
    }
    const double lower = i == 0 ? 0.0 : h.bounds[i - 1];
    const double upper = h.bounds[i];
    const double frac = (rank - lo) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
  }
  return h.bounds.back();
}

}  // namespace fbt::obs
