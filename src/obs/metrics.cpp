#include "obs/metrics.hpp"

#include <algorithm>

namespace fbt::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::record(double sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::latency_ms_bounds() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
          5000, 10000};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

void register_core_counters() {
  // The run-report acceptance set: these appear in every report even when
  // the corresponding phase never ran in this process.
  MetricsRegistry& reg = registry();
  reg.counter("sim.seqsim_gates_evaluated");
  reg.counter("sim.bitsim_gates_evaluated");
  reg.counter("bist.lfsr_cycles");
  reg.counter("bist.tests_extracted");
  reg.counter("atpg.podem_backtracks");
  reg.counter("fault.faults_dropped");
  reg.counter("flow.faults_detected");
}

}  // namespace fbt::obs
