// Minimal JSON reader for the report tooling (fbt_report render/diff). The
// writer side of the repo emits JSON by hand (run_report.cpp) with a fixed
// key order; this is the matching reader: a small DOM that preserves object
// key order and parses everything the run-report schema can produce. It is
// not a general-purpose JSON library -- no streaming, no \uXXXX surrogate
// pairs (escapes decode to '?' outside ASCII), numbers held as double.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fbt::obs {

/// One parsed JSON value. Objects keep their keys in document order so a
/// rendered diff reads in the same order as the report itself.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Dotted-path lookup through nested objects ("gauges.flow.num_tests"
  /// would NOT work since metric names contain dots -- use find() twice for
  /// those; this is for fixed schema paths like "speculation").
  const JsonValue* find_path(const std::vector<std::string>& path) const;

  /// number when kNumber, `fallback` otherwise.
  double as_number(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  const std::string& as_string(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }
};

/// Parses `text` into `out`. Returns true on success; on failure returns
/// false and fills `error` with a message carrying the byte offset.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

}  // namespace fbt::obs
