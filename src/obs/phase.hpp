// Scoped phase tracing: RAII spans that nest (calibrate -> construct ->
// grade -> reduce -> cost), record wall time with child attribution, and
// render both a human-readable tree and Chrome `trace_event` JSON
// (chrome://tracing / https://ui.perfetto.dev).
//
// Spans nest per thread; a span closed on a thread with no enclosing span
// becomes a root in the process-wide trace. Hot loops may open many spans
// with the same name -- the renderers aggregate same-name siblings.
//
// Cross-worker propagation: every span carries a process-unique span_id and
// the span_id of its logical parent. On one thread, parenthood follows the
// open-span stack as before. Across threads, a submitter captures
// current_trace_context() and the executing thread re-enters it with a
// TraceContextScope: spans opened there with an empty local stack adopt the
// captured span as their parent. Such spans are recorded as *detached*
// roots; summarize() re-attaches them under their parent span (stitching),
// so the phase tree shows the real task graph even when the JobSystem
// steals work between workers. The Chrome export keeps one complete event
// per span (args carry span_id/parent_span_id) plus flow arrows
// ("ph":"s"/"f") from each submit site to the execution site.
//
// Thread safety: the open-span stack and the adopted context are
// thread_local, the completed-span sink (PhaseTrace::instance()) is
// mutex-guarded, and every span records the small sequential id of the
// thread that opened it (assigned on that thread's first span). The Chrome
// trace emits that id as "tid", so spans completed concurrently by worker
// threads land on separate per-worker tracks instead of interleaving.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fbt::obs {

/// One completed span. Times are microseconds relative to the trace epoch
/// (first use of the trace in this process). RSS is sampled (throttled, see
/// obs/resource.hpp) when the span opens and closes; allocation charges land
/// on the span that was innermost when charge_allocation ran.
struct PhaseNode {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 1;  ///< sequential id of the opening thread (from 1)
  std::uint64_t span_id = 0;         ///< process-unique, assigned at open
  std::uint64_t parent_span_id = 0;  ///< 0 = root (no logical parent)
  std::uint64_t rss_open_bytes = 0;   ///< sampled RSS when the span opened
  std::uint64_t rss_close_bytes = 0;  ///< sampled RSS when the span closed
  std::uint64_t alloc_bytes = 0;  ///< bytes charged while innermost
  std::uint64_t alloc_count = 0;  ///< charges while innermost
  std::vector<PhaseNode> children;

  double total_ms() const { return static_cast<double>(dur_us) / 1000.0; }
  /// Wall time not attributed to any child span.
  double self_ms() const;
  /// RSS growth (possibly negative) across the span.
  std::int64_t rss_delta_bytes() const {
    return static_cast<std::int64_t>(rss_close_bytes) -
           static_cast<std::int64_t>(rss_open_bytes);
  }
};

/// Copyable handle to a position in the span tree: the innermost open span
/// (span_id) and its parent. Capture with current_trace_context() at a task's
/// submit site; re-enter with TraceContextScope on the thread that executes
/// it. A zero span_id means "no enclosing span" and propagating it is a
/// no-op, so the scheduler can capture unconditionally.
struct TraceContext {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

/// The context of the innermost open span on this thread; falls back to the
/// context adopted via TraceContextScope (so a task that submits subtasks
/// outside any local span still chains them to its own submitter), and to
/// {0, 0} when neither exists.
TraceContext current_trace_context();

/// RAII adoption of a captured TraceContext: while alive, spans opened on
/// this thread with an empty open-span stack record ctx.span_id as their
/// parent_span_id (and are stitched under it by summarize()). Scopes nest;
/// destruction restores the previous adopted context. Spans opened inside a
/// local enclosing span are unaffected -- the local stack wins.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// One submit-site -> execution-site edge for the Chrome flow arrows
/// ("ph":"s" at the source, "ph":"f" at the destination, paired by id).
struct FlowArrow {
  std::uint64_t id = 0;
  std::uint64_t src_ts_us = 0;
  std::uint32_t src_tid = 0;
  std::uint64_t dst_ts_us = 0;
  std::uint32_t dst_tid = 0;
};

/// Same-name siblings merged: `total_ms`, `rss_delta_bytes`, and the
/// allocation charges sum over `count` spans. Allocation charges are "self"
/// quantities: a child's charges are not included in its parent's.
struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  std::int64_t rss_delta_bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::vector<PhaseSummary> children;
};

/// Process-wide collection of completed root spans.
class PhaseTrace {
 public:
  static PhaseTrace& instance();

  /// Copy of the completed root spans, in completion order. Raw: detached
  /// roots (cross-thread children) are NOT re-attached here; see
  /// stitched_roots().
  std::vector<PhaseNode> roots() const;

  /// roots() with every detached root re-attached under the node whose
  /// span_id matches its parent_span_id (see stitch_phase_roots).
  std::vector<PhaseNode> stitched_roots() const;

  /// Stitched roots with same-name siblings aggregated, recursively
  /// (first-seen order). This is the shape rendered by tree_string() and the
  /// run report.
  std::vector<PhaseSummary> summarize() const;

  /// Indented human-readable tree of summarize().
  std::string tree_string() const;

  /// Chrome trace_event JSON array: one complete ("ph":"X") event per
  /// recorded span (not aggregated; args carry span_id/parent_span_id) plus
  /// one "s"/"f" flow-arrow pair per recorded submit->execute edge. Load in
  /// chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;

  /// Records one submit->execute flow arrow (called by the JobSystem).
  void add_flow(const FlowArrow& arrow);

  /// Copy of the recorded flow arrows, in recording order.
  std::vector<FlowArrow> flows() const;

  /// Drops all completed spans and flow arrows (open spans are unaffected
  /// and will record into the cleared trace when they close).
  void clear();

  /// Approximate heap bytes held by the completed spans and flow arrows
  /// (the trace buffer's own footprint, reported into the run report's
  /// memory section).
  std::uint64_t footprint_bytes() const;

 private:
  friend class PhaseSpan;
  void add_root(PhaseNode node);

  mutable std::mutex mutex_;
  std::vector<PhaseNode> roots_;
  std::vector<FlowArrow> flows_;
};

/// Aggregates same-name siblings recursively; exposed for tests.
std::vector<PhaseSummary> summarize_phases(const std::vector<PhaseNode>& nodes);

/// Re-attaches detached roots: every root whose parent_span_id matches a
/// span anywhere else in the forest moves under that span, inserted among
/// its children in start_us order. Parents always open before their
/// children (span ids are assigned in open order), so stitching cannot form
/// cycles; a root whose parent was never recorded (e.g. the trace was
/// cleared in between) stays a root. Exposed for tests.
std::vector<PhaseNode> stitch_phase_roots(std::vector<PhaseNode> roots);

/// RAII phase span. Construction opens the span (nested under the innermost
/// open span on this thread, else under the adopted TraceContext);
/// destruction records it. Prefer the FBT_OBS_PHASE macro in instrumented
/// library code so the span compiles away when observability is disabled.
class PhaseSpan {
 public:
  explicit PhaseSpan(std::string name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
};

namespace detail {

/// Adds an allocation charge to the innermost open span on this thread.
/// Returns false when no span is open (the process totals in obs/resource
/// still record the charge). Called by charge_allocation; not a public API.
bool charge_open_phase(std::uint64_t bytes, std::uint64_t count);

/// Microseconds since the trace epoch (the clock spans and flow arrows use).
std::uint64_t trace_now_us();

/// The small sequential trace id of the calling thread (same id spans
/// record as `tid`), assigned on first use.
std::uint32_t trace_thread_tid();

/// A fresh process-unique id for a flow arrow (shares the span-id space).
std::uint64_t next_flow_id();

}  // namespace detail

}  // namespace fbt::obs
