// Scoped phase tracing: RAII spans that nest (calibrate -> construct ->
// grade -> reduce -> cost), record wall time with child attribution, and
// render both a human-readable tree and Chrome `trace_event` JSON
// (chrome://tracing / https://ui.perfetto.dev).
//
// Spans nest per thread; a span closed on a thread with no enclosing span
// becomes a root in the process-wide trace. Hot loops may open many spans
// with the same name -- the renderers aggregate same-name siblings.
//
// Thread safety: the open-span stack is thread_local, the completed-span
// sink (PhaseTrace::instance()) is mutex-guarded, and every span records the
// small sequential id of the thread that opened it (assigned on that
// thread's first span). The Chrome trace emits that id as "tid", so spans
// completed concurrently by worker threads -- e.g. the parallel fault
// grader's per-shard "grade" spans -- land on separate tracks instead of
// interleaving on one.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fbt::obs {

/// One completed span. Times are microseconds relative to the trace epoch
/// (first use of the trace in this process). RSS is sampled (throttled, see
/// obs/resource.hpp) when the span opens and closes; allocation charges land
/// on the span that was innermost when charge_allocation ran.
struct PhaseNode {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 1;  ///< sequential id of the opening thread (from 1)
  std::uint64_t rss_open_bytes = 0;   ///< sampled RSS when the span opened
  std::uint64_t rss_close_bytes = 0;  ///< sampled RSS when the span closed
  std::uint64_t alloc_bytes = 0;  ///< bytes charged while innermost
  std::uint64_t alloc_count = 0;  ///< charges while innermost
  std::vector<PhaseNode> children;

  double total_ms() const { return static_cast<double>(dur_us) / 1000.0; }
  /// Wall time not attributed to any child span.
  double self_ms() const;
  /// RSS growth (possibly negative) across the span.
  std::int64_t rss_delta_bytes() const {
    return static_cast<std::int64_t>(rss_close_bytes) -
           static_cast<std::int64_t>(rss_open_bytes);
  }
};

/// Same-name siblings merged: `total_ms`, `rss_delta_bytes`, and the
/// allocation charges sum over `count` spans. Allocation charges are "self"
/// quantities: a child's charges are not included in its parent's.
struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  std::int64_t rss_delta_bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::vector<PhaseSummary> children;
};

/// Process-wide collection of completed root spans.
class PhaseTrace {
 public:
  static PhaseTrace& instance();

  /// Copy of the completed root spans, in completion order.
  std::vector<PhaseNode> roots() const;

  /// Roots with same-name siblings aggregated, recursively (first-seen
  /// order). This is the shape rendered by tree_string() and the run report.
  std::vector<PhaseSummary> summarize() const;

  /// Indented human-readable tree of summarize().
  std::string tree_string() const;

  /// Chrome trace_event JSON array of complete ("ph":"X") events, one per
  /// recorded span (not aggregated). Load in chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;

  /// Drops all completed spans (open spans are unaffected and will record
  /// into the cleared trace when they close).
  void clear();

  /// Approximate heap bytes held by the completed spans (the trace buffer's
  /// own footprint, reported into the run report's memory section).
  std::uint64_t footprint_bytes() const;

 private:
  friend class PhaseSpan;
  void add_root(PhaseNode node);

  mutable std::mutex mutex_;
  std::vector<PhaseNode> roots_;
};

/// Aggregates same-name siblings recursively; exposed for tests.
std::vector<PhaseSummary> summarize_phases(const std::vector<PhaseNode>& nodes);

/// RAII phase span. Construction opens the span (nested under the innermost
/// open span on this thread); destruction records it. Prefer the
/// FBT_OBS_PHASE macro in instrumented library code so the span compiles
/// away when observability is disabled.
class PhaseSpan {
 public:
  explicit PhaseSpan(std::string name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
};

namespace detail {

/// Adds an allocation charge to the innermost open span on this thread.
/// Returns false when no span is open (the process totals in obs/resource
/// still record the charge). Called by charge_allocation; not a public API.
bool charge_open_phase(std::uint64_t bytes, std::uint64_t count);

}  // namespace detail

}  // namespace fbt::obs
