// Resource telemetry: process RSS sampling, allocation accounting charged to
// the innermost open phase, and a registry of explicit structure footprints.
//
// Three facilities, all safe to call from any thread:
//
//  * RSS sampling -- peak_rss_bytes() / current_rss_bytes() read the kernel's
//    view of the process (/proc/self/status VmHWM / statm on Linux, getrusage
//    elsewhere; 0 when no source exists). sampled_rss_bytes() is the throttled
//    variant PhaseSpan uses: it re-reads the kernel at most once per
//    millisecond and returns a cached value otherwise, so hot loops that open
//    thousands of spans do not syscall per span.
//
//  * Allocation accounting -- charge_allocation(bytes) adds to process-wide
//    byte/count totals *and* to the innermost open phase span on the calling
//    thread (obs/phase.hpp), so the phase tree shows which phase paid for
//    which structures. Charges are explicit (call sites know what they built);
//    nothing hooks operator new.
//
//  * Footprint registry -- footprints().record("fault_list", bytes) keeps the
//    latest self-reported byte footprint of each big owned structure (netlist
//    + FlatFanins CSR, collapsed fault list, detect matrices, packed-sim lane
//    state, journal/trace buffers). Snapshots land in the run report's
//    "memory" section next to the RSS numbers they should explain.
//
// Instrumented code uses the FBT_OBS_ALLOC_CHARGE / FBT_OBS_FOOTPRINT macros
// in obs/instrument.hpp, which compile to no-ops under FBT_OBS=OFF exactly
// like the metric macros. The functions here stay available in both builds so
// tools and tests can use them directly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fbt::obs {

/// Peak resident set size of this process in bytes (high-water mark).
/// 0 when the platform exposes no source.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes. 0 when unavailable.
std::uint64_t current_rss_bytes();

/// Throttled current_rss_bytes(): re-reads the kernel at most once per
/// millisecond, returning the cached value in between. Monotone only as the
/// kernel is (RSS can shrink); cheap enough for span open/close.
std::uint64_t sampled_rss_bytes();

/// Process-wide explicit-allocation totals (see charge_allocation).
struct AllocationTotals {
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

/// Charges `bytes` (as `count` allocations) to the process totals and to the
/// innermost open phase span on this thread, when one is open.
void charge_allocation(std::uint64_t bytes, std::uint64_t count = 1);

AllocationTotals allocation_totals();

/// Zeroes the process totals (tests and fresh tool runs).
void reset_allocation_totals();

/// One named structure footprint, e.g. {"fault_list", 106496}.
struct FootprintSample {
  std::string name;
  std::uint64_t bytes = 0;
};

/// Latest self-reported byte footprint per structure name. record()
/// overwrites: a structure that grows reports again and replaces its entry.
class FootprintRegistry {
 public:
  void record(std::string_view name, std::uint64_t bytes);

  /// Copy of every entry, sorted by name (stable report rendering).
  std::vector<FootprintSample> snapshot() const;

  /// Sum over all entries.
  std::uint64_t total_bytes() const;

  /// Drops every entry (tests and fresh tool runs).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> entries_;
};

/// The process-wide registry used by the FBT_OBS_FOOTPRINT macro.
FootprintRegistry& footprints();

/// The run report's "memory" section (schema v3). bytes_per_gate /
/// bytes_per_fault are derived by collect_run_report from the footprint
/// total and the flow.num_gates / flow.num_faults gauges; 0 when the
/// denominator is unset.
struct MemoryReport {
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t current_rss_bytes = 0;
  std::uint64_t allocated_bytes = 0;
  std::uint64_t allocation_count = 0;
  std::vector<FootprintSample> footprints;
  double bytes_per_gate = 0.0;
  double bytes_per_fault = 0.0;
};

/// Fills a MemoryReport from the process-wide state (sampler, allocation
/// totals, footprint registry). The derived per-gate/per-fault ratios are
/// left 0; collect_run_report fills them from the metrics snapshot.
MemoryReport collect_memory_report();

}  // namespace fbt::obs
