// Derived run analytics: pure functions of the event journal and a metrics
// snapshot that turn raw provenance events into the summaries a human (or
// the fbt_report dashboard) actually reads -- the coverage-over-tests
// convergence curve, the per-segment yield table, and the speculation
// efficiency totals. Rendered into every run report under the "analytics"
// key (schema version 2).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"

namespace fbt::obs {

/// Cumulative detected-fault count after `tests` applied tests (one point
/// per 64-test grading block of an accepted segment, downsampled).
struct ConvergencePoint {
  std::uint64_t tests = 0;
  std::uint64_t detected = 0;

  bool operator==(const ConvergencePoint&) const = default;
};

/// One accepted segment: what it cost and what it caught.
struct SegmentYieldRow {
  std::uint64_t sequence = 0;
  std::uint64_t segment = 0;
  std::uint64_t seed = 0;
  std::uint64_t tests = 0;
  std::uint64_t newly_detected = 0;
  double peak_swa = 0.0;

  bool operator==(const SegmentYieldRow&) const = default;
};

/// Packed candidate-seed search efficiency (zeros when the scalar path ran).
struct SpeculationSummary {
  std::uint64_t batches = 0;
  std::uint64_t lanes_evaluated = 0;
  std::uint64_t hits = 0;
  std::uint64_t wasted = 0;

  bool operator==(const SpeculationSummary&) const = default;
};

struct RunAnalytics {
  std::vector<ConvergencePoint> convergence;
  std::vector<SegmentYieldRow> segment_yield;
  SpeculationSummary speculation;
};

/// Derives analytics from journal events ("grade_block" -> convergence,
/// "seed_accepted" -> yield rows) and the speculation counters in `metrics`.
/// The convergence curve is downsampled to at most `max_convergence_points`
/// (always keeping the final point). Deterministic.
RunAnalytics derive_analytics(const std::vector<JournalEvent>& events,
                              const MetricsSnapshot& metrics,
                              std::size_t max_convergence_points = 128);

}  // namespace fbt::obs
