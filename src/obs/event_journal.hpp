// Structured event journal: an append-only, process-wide log of typed
// events emitted by the BIST flow (seed tried/accepted/rejected, per-block
// grading progress, session milestones). Events render as NDJSON -- one JSON
// object per line -- so a journal is streamable, greppable, and diffable.
//
// Design constraints, matching the metrics registry:
//  * cheap on the emitting path -- one mutex-guarded vector push per event;
//    events are emitted at segment/block granularity, never per gate;
//  * deterministic -- library code emits events only from the construction
//    loop's single-threaded control flow (worker threads fill provenance
//    structs that are merged deterministically first), so the journal is
//    bit-identical across num_threads and speculation_lanes for the
//    deterministic event subset (see DESIGN.md "Provenance & convergence");
//  * compiled out -- the FBT_OBS_EVENT macro in obs/instrument.hpp is a
//    no-op when the build sets FBT_OBS_ENABLED=0. The classes here stay
//    available in both builds so tools and tests can use them directly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace fbt::obs {

/// One event payload value: unsigned integer, double, or string. Implicit
/// constructors let call sites write `{{"seed", seed}, {"swa", 12.5}}`.
struct EventValue {
  enum class Kind { kUint, kInt, kDouble, kString };

  template <typename T, std::enable_if_t<std::is_integral_v<T> &&
                                             !std::is_signed_v<T>,
                                         int> = 0>
  EventValue(T v) : kind(Kind::kUint), u(static_cast<std::uint64_t>(v)) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>,
                             int> = 0>
  EventValue(T v) : kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  EventValue(T v) : kind(Kind::kDouble), d(static_cast<double>(v)) {}
  EventValue(const char* v) : kind(Kind::kString), s(v) {}
  EventValue(std::string v) : kind(Kind::kString), s(std::move(v)) {}

  Kind kind = Kind::kUint;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
};

/// One recorded event: a sequence number (assigned at emit, dense from 0), a
/// type tag, and the payload fields in emission order.
struct JournalEvent {
  std::uint64_t seq = 0;
  std::string type;
  std::vector<std::pair<std::string, EventValue>> fields;
};

/// Renders one event as a single-line JSON object:
///   {"seq": 3, "type": "seed_accepted", "seed": 123, "tests": 100}
/// Field order is emission order; "seq" and "type" always lead.
std::string render_event_line(const JournalEvent& event);

/// Append-only event sink. clear() is for tests and fresh tool runs.
class EventJournal {
 public:
  void emit(std::string_view type,
            std::initializer_list<std::pair<std::string_view, EventValue>>
                fields);

  /// Copy of every recorded event, in emission order.
  std::vector<JournalEvent> events() const;

  std::size_t size() const;

  /// Whole journal as NDJSON (one render_event_line per event, each
  /// newline-terminated). Empty string when no events were emitted.
  std::string ndjson() const;

  /// Writes ndjson() to `path`. Returns false (and prints to stderr) on I/O
  /// failure.
  bool write_ndjson(const std::string& path) const;

  /// Drops all events and restarts the sequence numbering at 0.
  void clear();

  /// Approximate heap bytes held by the recorded events (the journal
  /// buffer's own footprint, reported into the run report's memory section).
  std::uint64_t footprint_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::vector<JournalEvent> events_;
  std::uint64_t next_seq_ = 0;
};

/// The process-wide journal used by the FBT_OBS_EVENT macro.
EventJournal& journal();

}  // namespace fbt::obs
