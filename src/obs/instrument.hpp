// Instrumentation entry points for hot paths. Each macro caches the
// registry lookup in a function-local static, so the steady-state cost of a
// counter update is one relaxed atomic add. When the build disables
// observability (cmake -DFBT_OBS=OFF, which defines FBT_OBS_ENABLED=0) every
// macro expands to a no-op that evaluates none of its arguments.
//
// Metric names must be string literals following `layer.noun_verb`
// (e.g. "sim.seqsim_gates_evaluated"); see DESIGN.md "Observability".
#pragma once

#ifndef FBT_OBS_ENABLED
#define FBT_OBS_ENABLED 1
#endif

#if FBT_OBS_ENABLED

#include <cstdint>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/resource.hpp"

#define FBT_OBS_CONCAT_IMPL(a, b) a##b
#define FBT_OBS_CONCAT(a, b) FBT_OBS_CONCAT_IMPL(a, b)

/// Adds `delta` to the named counter.
#define FBT_OBS_COUNTER_ADD(name, delta)                             \
  do {                                                               \
    static ::fbt::obs::Counter& fbt_obs_counter_ =                   \
        ::fbt::obs::registry().counter(name);                        \
    fbt_obs_counter_.add(static_cast<std::uint64_t>(delta));         \
  } while (0)

/// Sets the named gauge to `value`.
#define FBT_OBS_GAUGE_SET(name, value)                               \
  do {                                                               \
    static ::fbt::obs::Gauge& fbt_obs_gauge_ =                       \
        ::fbt::obs::registry().gauge(name);                          \
    fbt_obs_gauge_.set(static_cast<double>(value));                  \
  } while (0)

/// Records `sample` into the named histogram (default latency-ms buckets).
#define FBT_OBS_HIST_RECORD(name, sample)                            \
  do {                                                               \
    static ::fbt::obs::Histogram& fbt_obs_hist_ =                    \
        ::fbt::obs::registry().histogram(name);                      \
    fbt_obs_hist_.record(static_cast<double>(sample));               \
  } while (0)

/// Records `sample` into the named histogram with explicit bucket bounds
/// (used on first registration only), e.g.
/// FBT_OBS_HIST_RECORD_WITH("bist.faults_dropped_per_segment", n,
///                          {1, 2, 5, 10, 20, 50, 100}).
#define FBT_OBS_HIST_RECORD_WITH(name, sample, ...)                  \
  do {                                                               \
    static ::fbt::obs::Histogram& fbt_obs_hist_ =                    \
        ::fbt::obs::registry().histogram(name,                       \
                                         std::vector<double> __VA_ARGS__); \
    fbt_obs_hist_.record(static_cast<double>(sample));               \
  } while (0)

/// Records `sample` into the named histogram with the log-scale 1 µs..10 s
/// latency bounds (see Histogram::log_latency_ms_bounds) -- for quantities
/// with a wide dynamic range such as job run times and per-request serve
/// latencies.
#define FBT_OBS_HIST_RECORD_LOG(name, sample)                         \
  do {                                                                \
    static ::fbt::obs::Histogram& fbt_obs_hist_ =                     \
        ::fbt::obs::registry().histogram(                             \
            name, ::fbt::obs::Histogram::log_latency_ms_bounds());    \
    fbt_obs_hist_.record(static_cast<double>(sample));                \
  } while (0)

/// Opens a phase span covering the rest of the enclosing scope.
#define FBT_OBS_PHASE(name) \
  ::fbt::obs::PhaseSpan FBT_OBS_CONCAT(fbt_obs_phase_, __LINE__)(name)

/// Charges `bytes` (one allocation) to the process allocation totals and the
/// innermost open phase on this thread (see obs/resource.hpp). Call after
/// building a large owned structure, passing its footprint.
#define FBT_OBS_ALLOC_CHARGE(bytes) \
  ::fbt::obs::charge_allocation(static_cast<std::uint64_t>(bytes))

/// Records the current byte footprint of a named owned structure into the
/// process-wide footprint registry (overwrites the previous value), e.g.
/// FBT_OBS_FOOTPRINT("fault_list", faults.footprint_bytes()).
#define FBT_OBS_FOOTPRINT(name, bytes) \
  ::fbt::obs::footprints().record((name), static_cast<std::uint64_t>(bytes))

/// Appends a typed event to the process-wide journal, e.g.
/// FBT_OBS_EVENT("seed_accepted", {{"seed", seed}, {"tests", n}}).
/// Variadic because the brace-enclosed field list contains commas the
/// preprocessor would otherwise split on.
#define FBT_OBS_EVENT(type, ...) \
  ::fbt::obs::journal().emit((type), __VA_ARGS__)

#else  // !FBT_OBS_ENABLED

// sizeof keeps the arguments syntactically checked without evaluating them.
#define FBT_OBS_COUNTER_ADD(name, delta) \
  do { (void)sizeof(name); (void)sizeof(delta); } while (0)
#define FBT_OBS_GAUGE_SET(name, value) \
  do { (void)sizeof(name); (void)sizeof(value); } while (0)
#define FBT_OBS_HIST_RECORD(name, sample) \
  do { (void)sizeof(name); (void)sizeof(sample); } while (0)
#define FBT_OBS_HIST_RECORD_WITH(name, sample, ...) \
  do { (void)sizeof(name); (void)sizeof(sample); } while (0)
#define FBT_OBS_HIST_RECORD_LOG(name, sample) \
  do { (void)sizeof(name); (void)sizeof(sample); } while (0)
#define FBT_OBS_PHASE(name) do { (void)sizeof(name); } while (0)
#define FBT_OBS_ALLOC_CHARGE(bytes) \
  do { (void)sizeof(bytes); } while (0)
#define FBT_OBS_FOOTPRINT(name, bytes) \
  do { (void)sizeof(name); (void)sizeof(bytes); } while (0)
// The field list's braces defeat the sizeof trick, so the arguments are
// discarded outright (still unevaluated, but not syntax-checked).
#define FBT_OBS_EVENT(...) do { } while (0)

#endif  // FBT_OBS_ENABLED
