#include "obs/analytics.hpp"

#include <utility>

namespace fbt::obs {

namespace {

/// Numeric field lookup; returns `fallback` when absent or non-numeric.
std::uint64_t field_uint(const JournalEvent& e, const char* key,
                         std::uint64_t fallback = 0) {
  for (const auto& [k, v] : e.fields) {
    if (k != key) continue;
    switch (v.kind) {
      case EventValue::Kind::kUint: return v.u;
      case EventValue::Kind::kInt:
        return v.i < 0 ? fallback : static_cast<std::uint64_t>(v.i);
      case EventValue::Kind::kDouble:
        return v.d < 0 ? fallback : static_cast<std::uint64_t>(v.d);
      case EventValue::Kind::kString: return fallback;
    }
  }
  return fallback;
}

double field_double(const JournalEvent& e, const char* key,
                    double fallback = 0.0) {
  for (const auto& [k, v] : e.fields) {
    if (k != key) continue;
    switch (v.kind) {
      case EventValue::Kind::kUint: return static_cast<double>(v.u);
      case EventValue::Kind::kInt: return static_cast<double>(v.i);
      case EventValue::Kind::kDouble: return v.d;
      case EventValue::Kind::kString: return fallback;
    }
  }
  return fallback;
}

std::uint64_t counter_value(const MetricsSnapshot& metrics, const char* name) {
  for (const CounterSample& c : metrics.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace

RunAnalytics derive_analytics(const std::vector<JournalEvent>& events,
                              const MetricsSnapshot& metrics,
                              std::size_t max_convergence_points) {
  RunAnalytics out;
  for (const JournalEvent& e : events) {
    if (e.type == "grade_block") {
      out.convergence.push_back(
          {field_uint(e, "tests_applied"), field_uint(e, "detected")});
    } else if (e.type == "seed_accepted") {
      out.segment_yield.push_back({field_uint(e, "sequence"),
                                   field_uint(e, "segment"),
                                   field_uint(e, "seed"),
                                   field_uint(e, "tests"),
                                   field_uint(e, "newly_detected"),
                                   field_double(e, "peak_swa")});
    }
  }

  if (max_convergence_points >= 2 &&
      out.convergence.size() > max_convergence_points) {
    std::vector<ConvergencePoint> sampled;
    sampled.reserve(max_convergence_points);
    const std::size_t n = out.convergence.size();
    for (std::size_t i = 0; i < max_convergence_points; ++i) {
      // Even spacing with both endpoints; the final point keeps the curve's
      // terminal coverage exact.
      const std::size_t idx = i * (n - 1) / (max_convergence_points - 1);
      if (sampled.empty() || sampled.back() != out.convergence[idx]) {
        sampled.push_back(out.convergence[idx]);
      }
    }
    out.convergence = std::move(sampled);
  }

  out.speculation.batches = counter_value(metrics, "bist.speculation_batches");
  out.speculation.lanes_evaluated =
      counter_value(metrics, "bist.speculated_lanes");
  out.speculation.hits = counter_value(metrics, "bist.speculation_hits");
  out.speculation.wasted = counter_value(metrics, "bist.speculation_wasted");
  return out;
}

}  // namespace fbt::obs
