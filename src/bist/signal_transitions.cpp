#include "bist/signal_transitions.hpp"

#include "util/require.hpp"

namespace fbt {

TransitionPattern make_transition_pattern(
    const std::vector<std::uint8_t>& prev_values,
    const std::vector<std::uint8_t>& values) {
  require(prev_values.size() == values.size(), "make_transition_pattern",
          "value vectors must have equal size");
  TransitionPattern pattern(values.size());
  for (std::size_t line = 0; line < values.size(); ++line) {
    if (values[line] != prev_values[line]) {
      pattern.mark(static_cast<NodeId>(line), values[line] != 0);
    }
  }
  return pattern;
}

bool TransitionPatternStore::record(TransitionPattern pattern) {
  if (patterns_.size() >= cap_) return false;
  for (const TransitionPattern& existing : patterns_) {
    if (pattern.subset_of(existing)) return false;  // already covered
  }
  patterns_.push_back(std::move(pattern));
  return true;
}

bool TransitionPatternStore::admits(const TransitionPattern& pattern) const {
  for (const TransitionPattern& existing : patterns_) {
    if (pattern.subset_of(existing)) return true;
  }
  return false;
}

}  // namespace fbt
