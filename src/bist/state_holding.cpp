#include "bist/state_holding.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

struct TreeNode {
  std::vector<std::size_t> set;  ///< flop indices
  std::size_t det = 0;
  /// After the bottom-up pass: the non-overlapping partition this node
  /// contributes (either {set} or the concatenation of its children's
  /// partitions, with empty subsets removed).
  std::vector<std::vector<std::size_t>> partition;
};

/// Measures Det(set): number of residual faults detected by a cheap
/// construction run holding `set`. Works on a scratch copy of detect_count.
std::size_t measure_det(const Netlist& netlist,
                        const TransitionFaultList& faults,
                        const std::vector<std::uint32_t>& baseline,
                        const FunctionalBistConfig& eval_cfg,
                        unsigned h, const std::vector<std::size_t>& set,
                        std::uint64_t rng_seed) {
  if (set.empty()) return 0;
  FunctionalBistConfig cfg = eval_cfg;
  cfg.hold_period_log2 = h;
  cfg.hold_set = set;
  cfg.rng_seed = rng_seed;
  std::vector<std::uint32_t> scratch = baseline;
  FunctionalBistGenerator generator(netlist, cfg);
  const FunctionalBistResult result = generator.run(faults, scratch);
  return result.newly_detected;
}

}  // namespace

HoldSelectionResult select_and_run_hold_sets(
    const Netlist& netlist, const TransitionFaultList& faults,
    std::vector<std::uint32_t>& detect_count, const HoldSelectionConfig& config,
    std::uint64_t rng_seed) {
  require(config.hold_period_log2 >= 1, "select_and_run_hold_sets",
          "h must be >= 1");
  require(detect_count.size() == faults.size(), "select_and_run_hold_sets",
          "detect_count size must equal the fault count");

  HoldSelectionResult out;
  const std::size_t nff = netlist.num_flops();
  if (nff == 0) return out;

  Pcg32 rng(rng_seed, 0x14057b7ef767814fULL);

  // Build the full binary tree of height H by random halving (Fig. 4.12).
  // Level l has 2^l nodes; node (l, j) has children (l+1, 2j) and (l+1, 2j+1).
  const unsigned height = config.tree_height;
  std::vector<std::vector<TreeNode>> tree(height + 1);
  tree[0].resize(1);
  tree[0][0].set.resize(nff);
  for (std::size_t i = 0; i < nff; ++i) tree[0][0].set[i] = i;
  for (unsigned l = 0; l < height; ++l) {
    tree[l + 1].resize(std::size_t{2} << l);
    for (std::size_t j = 0; j < tree[l].size(); ++j) {
      std::vector<std::size_t> shuffled = tree[l][j].set;
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1],
                  shuffled[rng.below(static_cast<std::uint32_t>(i))]);
      }
      const std::size_t half = shuffled.size() / 2;
      tree[l + 1][2 * j].set.assign(shuffled.begin(), shuffled.begin() + half);
      tree[l + 1][2 * j + 1].set.assign(shuffled.begin() + half,
                                        shuffled.end());
      std::sort(tree[l + 1][2 * j].set.begin(), tree[l + 1][2 * j].set.end());
      std::sort(tree[l + 1][2 * j + 1].set.begin(),
                tree[l + 1][2 * j + 1].set.end());
    }
  }

  // Det for every node, measured against the residual fault set.
  const std::vector<std::uint32_t> baseline = detect_count;
  for (unsigned l = 0; l <= height; ++l) {
    for (std::size_t j = 0; j < tree[l].size(); ++j) {
      tree[l][j].det =
          measure_det(netlist, faults, baseline, config.eval,
                      config.hold_period_log2, tree[l][j].set, rng.next64());
    }
  }

  // Bottom-up partition decision: split a node when holding its halves
  // separately detects at least as much as holding it whole.
  for (std::size_t j = 0; j < tree[height].size(); ++j) {
    TreeNode& leaf = tree[height][j];
    if (leaf.det > 0 && !leaf.set.empty()) leaf.partition = {leaf.set};
  }
  for (unsigned l = height; l-- > 0;) {
    for (std::size_t j = 0; j < tree[l].size(); ++j) {
      TreeNode& node = tree[l][j];
      const TreeNode& left = tree[l + 1][2 * j];
      const TreeNode& right = tree[l + 1][2 * j + 1];
      const std::size_t child_best = std::max(left.det, right.det);
      if (node.det <= child_best) {
        node.partition = left.partition;
        node.partition.insert(node.partition.end(), right.partition.begin(),
                              right.partition.end());
        node.det = child_best;
      } else if (node.det > 0 && !node.set.empty()) {
        node.partition = {node.set};
      }
    }
  }

  // Final selection: commit each candidate subset whose full construction run
  // detects additional residual faults, accumulating detection credit.
  for (const auto& subset : tree[0][0].partition) {
    FunctionalBistConfig cfg = config.commit;
    cfg.hold_period_log2 = config.hold_period_log2;
    cfg.hold_set = subset;
    cfg.rng_seed = rng.next64();
    std::vector<std::uint32_t> trial = detect_count;
    FunctionalBistGenerator generator(netlist, cfg);
    FunctionalBistResult result = generator.run(faults, trial);
    if (result.newly_detected == 0) continue;
    detect_count = std::move(trial);
    out.total_held_flops += subset.size();
    out.num_sequences += result.sequences.size();
    out.nseg_max = std::max(out.nseg_max, result.nseg_max);
    out.lmax = std::max(out.lmax, result.lmax);
    out.num_seeds += result.num_seeds;
    out.num_tests += result.num_tests;
    out.peak_swa = std::max(out.peak_swa, result.peak_swa);
    out.newly_detected += result.newly_detected;
    out.selected.push_back({subset, std::move(result)});
  }
  return out;
}

}  // namespace fbt
