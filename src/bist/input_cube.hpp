// Primary input cube C (dissertation §4.3, repeated-synchronization
// avoidance [88]).
//
// For each primary input i, assign 0 (then 1) with every other input and all
// present-state variables unknown, and count how many next-state variables
// become specified. The input value that synchronizes *fewer* state variables
// is the one that should appear more often in the pseudo-random sequence,
// because the more-synchronizing value would repeatedly force the same state
// values and prevent faults from being detected. C(i) = that value, or X when
// both values synchronize equally.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/value.hpp"

namespace fbt {

/// One entry per primary input (index-aligned with netlist.inputs()).
struct InputCube {
  std::vector<Val3> values;

  /// N_SP: number of inputs with a specified (non-X) cube value (Table 4.2).
  std::size_t specified_count() const;
};

/// Computes the cube by three-valued simulation (one frame per input value).
InputCube compute_input_cube(const Netlist& netlist);

}  // namespace fbt
