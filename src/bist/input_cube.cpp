#include "bist/input_cube.hpp"

#include "sim/cubesim.hpp"

namespace fbt {

std::size_t InputCube::specified_count() const {
  std::size_t count = 0;
  for (const Val3 v : values) {
    if (v != Val3::kX) ++count;
  }
  return count;
}

InputCube compute_input_cube(const Netlist& netlist) {
  InputCube cube;
  cube.values.assign(netlist.num_inputs(), Val3::kX);
  CubeSim sim(netlist);
  for (std::size_t i = 0; i < netlist.num_inputs(); ++i) {
    std::size_t synchronized[2];
    for (int v = 0; v <= 1; ++v) {
      sim.clear();
      sim.set_value(netlist.inputs()[i], v == 0 ? Val3::k0 : Val3::k1);
      sim.eval();
      synchronized[v] = sim.specified_next_state_count();
    }
    if (synchronized[0] < synchronized[1]) {
      cube.values[i] = Val3::k0;  // 0 synchronizes fewer: favour 0
    } else if (synchronized[1] < synchronized[0]) {
      cube.values[i] = Val3::k1;
    }
  }
  return cube;
}

}  // namespace fbt
