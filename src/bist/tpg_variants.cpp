#include "bist/tpg_variants.hpp"

#include "bist/input_cube.hpp"
#include "util/require.hpp"

namespace fbt {

WeightedTpg::WeightedTpg(const Netlist& netlist, unsigned lfsr_stages,
                         std::size_t num_sets, std::uint64_t seed)
    : lfsr_(lfsr_stages) {
  require(num_sets >= 1, "WeightedTpg", "need at least one weight set");
  const std::size_t npi = netlist.num_inputs();
  const InputCube cube = compute_input_cube(netlist);
  Pcg32 rng(seed, 0x7f4a7c15ca01fd3bULL);

  weights_.resize(num_sets, std::vector<std::uint8_t>(npi, 4));  // 4/8 = 1/2
  for (std::size_t s = 1; s < num_sets; ++s) {
    for (std::size_t i = 0; i < npi; ++i) {
      if (cube.values[i] == Val3::k0) {
        weights_[s][i] = 1;  // strongly favour 0
      } else if (cube.values[i] == Val3::k1) {
        weights_[s][i] = 7;  // strongly favour 1
      } else {
        // Random extreme or balanced, varying across sets.
        static constexpr std::uint8_t kChoices[] = {1, 2, 4, 6, 7};
        weights_[s][i] = kChoices[rng.below(5)];
      }
    }
  }
}

bool WeightedTpg::lfsr_bit() {
  lfsr_.step();
  return lfsr_.output();
}

void WeightedTpg::reseed(std::uint32_t seed) {
  lfsr_.seed(seed);
  active_set_ = reseed_count_++ % weights_.size();
}

std::vector<std::uint8_t> WeightedTpg::next_vector() {
  const auto& w = weights_[active_set_];
  std::vector<std::uint8_t> vec(w.size(), 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    // Realize probability w/8 from three LFSR bits: value 1 iff the 3-bit
    // number formed is < w (an AND/OR tree in hardware).
    unsigned three = 0;
    for (int b = 0; b < 3; ++b) three = (three << 1) | (lfsr_bit() ? 1 : 0);
    vec[i] = three < w[i] ? 1 : 0;
  }
  return vec;
}

BitFlippingTpg::BitFlippingTpg(const Netlist& netlist, unsigned lfsr_stages,
                               std::uint64_t seed)
    : lfsr_(lfsr_stages), num_inputs_(netlist.num_inputs()) {
  Pcg32 rng(seed, 0x452821e638d01377ULL);
  flip_mask_.resize(num_inputs_);
  for (auto& mask : flip_mask_) {
    // Sparse flips: each input inverts on ~2 of every 16 cycles.
    mask = static_cast<std::uint16_t>(rng.next() & rng.next());
  }
}

void BitFlippingTpg::reseed(std::uint32_t seed) {
  lfsr_.seed(seed);
  cycle_ = 0;
}

std::vector<std::uint8_t> BitFlippingTpg::next_vector() {
  std::vector<std::uint8_t> vec(num_inputs_, 0);
  const unsigned phase = cycle_ % 16;
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    lfsr_.step();
    const bool flip = (flip_mask_[i] >> phase) & 1u;
    vec[i] = (lfsr_.output() != flip) ? 1 : 0;
  }
  ++cycle_;
  return vec;
}

}  // namespace fbt
