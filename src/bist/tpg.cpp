#include "bist/tpg.hpp"

#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

Tpg::Tpg(const Netlist& netlist, const TpgConfig& config)
    : netlist_(&netlist),
      config_(config),
      cube_(compute_input_cube(netlist)),
      lfsr_(config.lfsr_stages) {
  require(config.bias_bits >= 2, "Tpg", "bias_bits (m) must be >= 2");
  const std::size_t npi = netlist.num_inputs();
  const std::size_t nsp = cube_.specified_count();
  const std::size_t size = config.bias_bits * nsp + (npi - nsp);
  shift_register_.assign(size, 0);

  taps_.resize(npi);
  std::uint32_t next_bit = 0;
  for (std::size_t i = 0; i < npi; ++i) {
    const std::size_t count = cube_.values[i] == Val3::kX ? 1 : config.bias_bits;
    for (std::size_t k = 0; k < count; ++k) {
      taps_[i].push_back(next_bit++);
    }
  }
  require(next_bit == size, "Tpg", "internal: tap allocation mismatch");
}

void Tpg::clock_shift_register() {
#if FBT_OBS_ENABLED
  lfsr_cycles_.add(1);
#endif
  lfsr_.step();
  const std::uint8_t in = lfsr_.output() ? 1 : 0;
  for (std::size_t k = shift_register_.size(); k > 1; --k) {
    shift_register_[k - 1] = shift_register_[k - 2];
  }
  shift_register_[0] = in;
}

void Tpg::reseed(std::uint32_t seed) {
  lfsr_.seed(seed);
  for (std::size_t k = 0; k < shift_register_.size(); ++k) {
    clock_shift_register();
  }
}

std::vector<std::uint8_t> Tpg::next_vector() {
  std::vector<std::uint8_t> vec(netlist_->num_inputs(), 0);
  next_vector_into(vec);
  return vec;
}

void Tpg::next_vector_into(std::span<std::uint8_t> vec) {
  require(vec.size() == netlist_->num_inputs(), "Tpg::next_vector_into",
          "vector size must equal the input count");
#if FBT_OBS_ENABLED
  vectors_generated_.add(1);
#endif
  clock_shift_register();
  for (std::size_t i = 0; i < vec.size(); ++i) {
    const Val3 c = cube_.values[i];
    if (c == Val3::kX) {
      vec[i] = shift_register_[taps_[i][0]];
    } else if (c == Val3::k0) {
      // m-input AND: 0 with probability 1 - 1/2^m.
      std::uint8_t acc = 1;
      for (const std::uint32_t t : taps_[i]) acc &= shift_register_[t];
      vec[i] = acc;
    } else {
      // m-input OR: 1 with probability 1 - 1/2^m.
      std::uint8_t acc = 0;
      for (const std::uint32_t t : taps_[i]) acc |= shift_register_[t];
      vec[i] = acc;
    }
  }
}

}  // namespace fbt
