// Assembles the BIST hardware inventory for the area model from a generation
// result (dissertation §4.4, §4.5.2, Tables 4.3/4.4).
#pragma once

#include "bist/area_model.hpp"
#include "bist/functional_bist.hpp"
#include "bist/state_holding.hpp"
#include "bist/tpg.hpp"
#include "netlist/scan.hpp"

namespace fbt {

/// Plan for functional-broadside-only generation (Table 4.3). Counter widths
/// are sized for the run's actual L_max, Lsc, N_segmax, and N_multi.
BistHardwarePlan plan_functional_bist_hardware(const Tpg& tpg,
                                               const ScanChains& scan,
                                               const FunctionalBistResult& run);

/// Plan including the state-holding phase (Table 4.4): adds the clock-gating
/// cells, set counter, and decoder, and resizes counters/seed ROM for the
/// union of both phases.
BistHardwarePlan plan_hold_bist_hardware(const Tpg& tpg, const ScanChains& scan,
                                         const FunctionalBistResult& base_run,
                                         const HoldSelectionResult& hold_run);

}  // namespace fbt
