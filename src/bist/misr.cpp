#include "bist/misr.hpp"

#include <bit>

#include "bist/lfsr.hpp"
#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

Misr::Misr(unsigned stages)
    : stages_(stages),
      taps_(Lfsr::primitive_taps(stages)),
      mask_(stages == 32 ? 0xffffffffu : ((1u << stages) - 1)) {}

void Misr::absorb(std::span<const std::uint8_t> response) {
#if FBT_OBS_ENABLED
  cycles_absorbed_.add(1);
#endif
  std::uint32_t incoming = 0;
  for (std::size_t i = 0; i < response.size(); ++i) {
    if (response[i]) incoming ^= 1u << (i % stages_);
  }
  const auto feedback =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = (((state_ << 1) | feedback) ^ incoming) & mask_;
}

}  // namespace fbt
