// Built-in generation of functional broadside tests (dissertation §4.3-§4.5;
// the target paper's method plus its constrained and state-holding
// extensions).
//
// The circuit is initialized into the reachable all-0 state. The on-chip TPG
// applies pseudo-random primary-input sequences in functional mode; every two
// consecutive clock cycles define a functional broadside test
// t(i) = <s(i), p(i), s(i+1), p(i+1)> (q = 1). Primary-input constraints are
// honoured by bounding every cycle's switching activity with SWA_func and
// cutting each sequence into multi-segment form (Fig. 4.9): a new LFSR seed
// is loaded whenever the bound would be violated, with the circuit's state
// held across the reseed so the next segment continues the same trajectory.
// Optional state holding (§4.5) gates the clocks of a chosen set of state
// variables every 2^h cycles, steering the circuit into unreachable states to
// recover coverage lost to the functional restriction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bist/signal_transitions.hpp"
#include "bist/tpg.hpp"
#include "fault/broadside_test.hpp"
#include "fault/fault.hpp"
#include "jobs/job_system.hpp"
#include "netlist/flat_fanins.hpp"
#include "netlist/netlist.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {

struct SegmentRecord {
  std::uint32_t seed = 0;    ///< LFSR seed that generated the segment
  std::size_t length = 0;    ///< applied cycles (even)
  std::size_t num_tests = 0; ///< length / 2
  std::size_t newly_detected = 0;  ///< faults this segment's tests retired
  double peak_swa = 0.0;     ///< peak SWA % over the segment's cycles
};

/// One multi-segment primary input sequence P_multi (§4.4).
struct SequenceRecord {
  std::vector<SegmentRecord> segments;
};

struct FunctionalBistConfig {
  TpgConfig tpg;
  std::size_t segment_length = 2000;      ///< L (must be even)
  std::size_t max_segment_failures = 3;   ///< R: consecutive failed seeds
  std::size_t max_sequence_failures = 5;  ///< Q: consecutive failed sequences
  /// SWA_func as a percentage of circuit lines. Ignored when bounded=false
  /// (the unconstrained "buffers" configuration of Table 4.3).
  double swa_bound_percent = 100.0;
  bool bounded = true;
  /// Optional signal-transition-pattern bound (§5.1, ref [90]): when set
  /// (and bounded), a cycle is admissible only if its pattern of signal
  /// transitions is a subset of a functionally observed one -- strictly
  /// stronger than the SWA bound. Not owned; must outlive the generator.
  const class TransitionPatternStore* pattern_store = nullptr;
  std::uint64_t rng_seed = 1;
  std::uint32_t detect_limit = 1;  ///< n-detect threshold for "new" faults
  /// Worker threads for candidate-segment fault grading (0 = hardware
  /// concurrency). Results are bit-identical for any value; 1 keeps the
  /// serial reference engine.
  std::size_t num_threads = 1;
  /// Speculation width W of the candidate-seed search: the packed engine
  /// pre-draws W seeds and evaluates all W candidate trajectories in one
  /// bit-parallel pass (clamped to 64; lanes are walked strictly in seed
  /// order, so results are bit-identical to the scalar search for any value).
  /// 1 keeps the scalar reference loop; state-holding and pattern-store
  /// configurations fall back to scalar automatically.
  std::size_t speculation_lanes = 64;
  /// Fault lanes packed per machine word inside each grading shard (PPSFP;
  /// clamped to [1, 64]). Detect counts, detection matrices, and first-detect
  /// attribution are bit-identical for any width; 1 keeps the serial
  /// reference engine.
  std::size_t fault_pack_width = 64;

  /// State holding (§4.5): when hold_period_log2 = h >= 1, the flops listed
  /// in hold_set keep their values on every transition out of a cycle whose
  /// within-segment index is divisible by 2^h. Empty hold_set disables it.
  unsigned hold_period_log2 = 0;
  std::vector<std::size_t> hold_set;
};

/// One evaluated candidate segment: the usable (SWA-clean, even-length)
/// prefix length, its extracted broadside tests, and the peak SWA over the
/// prefix. Produced by the scalar reference loop and, bit-identically, by the
/// packed speculation engine.
struct CandidateSegment {
  std::size_t usable_cycles = 0;
  TestSet tests;
  double peak_swa = 0.0;
};

/// Provenance of one fault's first detection during run(): which committed
/// segment (and which applied test within the construction stream) first
/// caught it. Faults that entered run() already detected, or were never
/// detected, keep the -1 sentinels. Test indices refer to the construction
/// order of the applied stream, before any sequence reduction.
struct FaultFirstDetect {
  std::int32_t sequence = -1;  ///< committed-sequence index
  std::int32_t segment = -1;   ///< segment index within that sequence
  std::int64_t test = -1;      ///< applied-test index at construction time
  std::uint32_t seed = 0;      ///< LFSR seed of the detecting segment

  bool operator==(const FaultFirstDetect&) const = default;
};

struct FunctionalBistResult {
  std::vector<SequenceRecord> sequences;
  TestSet tests;               ///< all applied tests, in application order
  std::size_t num_seeds = 0;   ///< total segments (one seed per segment)
  std::size_t num_tests = 0;
  std::size_t nseg_max = 0;    ///< N_segmax: most segments in one sequence
  std::size_t lmax = 0;        ///< L_max: longest segment
  double peak_swa = 0.0;       ///< peak SWA % over all applied cycles
  std::size_t newly_detected = 0;
  /// One entry per fault: first-detect attribution. Bit-identical across
  /// num_threads and speculation_lanes (the search itself is).
  std::vector<FaultFirstDetect> first_detect;
};

class PackedCandidateEngine;

class FunctionalBistGenerator {
 public:
  FunctionalBistGenerator(const Netlist& netlist,
                          const FunctionalBistConfig& config);

  /// Serving-path constructor: shares a pre-built FlatFanins CSR of
  /// `netlist` with the internal simulator (nullptr rebuilds one) and runs
  /// fault grading on `jobs` (nullptr selects the process-wide pool).
  FunctionalBistGenerator(const Netlist& netlist,
                          const FunctionalBistConfig& config,
                          std::shared_ptr<const FlatFanins> flat,
                          jobs::JobSystem* jobs);
  ~FunctionalBistGenerator();

  const Tpg& tpg() const { return tpg_; }

  /// Whether the packed speculation engine is active (speculation_lanes >= 2
  /// and neither state holding nor a pattern store forces the scalar path).
  bool speculating() const { return engine_ != nullptr; }

  /// Runs the construction procedure. `detect_count` (one entry per fault in
  /// `faults`) carries detection credit in and out: faults already at the
  /// detect limit are not chased, and detections by committed segments are
  /// added. Returns the committed sequences/tests and statistics.
  FunctionalBistResult run(const TransitionFaultList& faults,
                           std::vector<std::uint32_t>& detect_count);

  /// Scalar reference evaluation of one candidate segment from the
  /// simulator's current state; the simulator is left positioned at the end
  /// of the usable prefix. Public for the packed engine's equivalence tests
  /// and the seed-search benchmark.
  CandidateSegment evaluate_candidate(class SeqSim& sim, std::uint32_t seed);

 private:
  /// Replays an accepted speculated segment on the scalar simulator to
  /// position it at the end of the usable prefix (no bound checks: the
  /// packed pass already proved the prefix clean).
  void advance_segment(class SeqSim& sim, std::uint32_t seed,
                       std::size_t cycles);

  const Netlist* netlist_;
  FunctionalBistConfig config_;
  std::shared_ptr<const FlatFanins> flat_;  ///< shared CSR; may be null
  jobs::JobSystem* jobs_ = nullptr;         ///< grading substrate; may be null
  Tpg tpg_;
  Pcg32 rng_;
  std::vector<std::uint8_t> hold_mask_;  ///< per flop; empty when no holding
  std::unique_ptr<PackedCandidateEngine> engine_;  ///< null => scalar search
  std::vector<std::uint32_t> seed_queue_;  ///< pre-drawn seeds, front = next

  // Scratch reused across candidate evaluations (heap-churn control).
  std::vector<std::uint8_t> pending_v1_;  ///< v1 of the open test
  std::vector<std::uint8_t> vec_scratch_;
  std::vector<std::uint8_t> launch_state_;
  std::vector<std::uint8_t> mid_state_;
  std::vector<double> swa_trace_;
  SeqSim::Snapshot even_snap_;    ///< rolling even-boundary snapshot pool
  SeqSim::Snapshot before_snap_;  ///< pre-candidate snapshot pool
};

}  // namespace fbt
