// Speculative, bit-packed candidate-seed evaluation for the segment
// construction loop (dissertation §4.4).
//
// The scalar search tries LFSR seeds one at a time: simulate up to L
// functional cycles, bound every cycle's SWA, grade the extracted tests, and
// rewind the whole trajectory on failure. Because every *failed* candidate
// restores the same simulator snapshot, all candidates between two
// acceptances start from one identical state -- so a batch of W seeds can be
// evaluated in a single bit-parallel pass (lane k of every packed word =
// candidate seed k) and walked strictly in seed order afterwards. An
// acceptance advances the state and invalidates the untried lanes (their
// seeds stay queued; only the speculative simulation work is discarded),
// which is exactly why failure-only speculation reproduces the serial search
// bit for bit.
//
// The engine produces, per lane: the violation-trimmed usable prefix length,
// the extracted broadside tests, and the peak SWA -- everything the
// construction loop needs to grade and commit a candidate without touching
// the scalar simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/functional_bist.hpp"
#include "bist/packed_tpg.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed_seqsim.hpp"
#include "sim/seqsim.hpp"

namespace fbt {

class PackedCandidateEngine {
 public:
  /// `tpg` must be the generator's TPG (shared taps/cube); `config` supplies
  /// L and the SWA bound. `lanes` is clamped to [1, 64].
  PackedCandidateEngine(const Netlist& netlist, const Tpg& tpg,
                        const FunctionalBistConfig& config, std::size_t lanes);

  /// Whether the packed engine can reproduce the scalar search for `config`
  /// (no state holding, no signal-transition-pattern store).
  static bool supports(const FunctionalBistConfig& config);

  std::size_t lanes() const { return lanes_; }

  /// Evaluates one candidate segment per seed (up to lanes()) from `sim`'s
  /// current state in a single packed pass. Previously speculated but
  /// untaken lanes are discarded (counted as wasted).
  void speculate(const SeqSim& sim, std::span<const std::uint32_t> seeds);

  /// True while speculated lanes remain to be taken.
  bool has_pending() const { return cursor_ < batch_seeds_.size(); }

  /// True when the next pending lane was speculated from exactly `sim`'s
  /// current logical state (same flop state; same settled values when a
  /// previous cycle exists), i.e. taking it reproduces the scalar search.
  bool pending_matches(const SeqSim& sim) const;

  std::uint32_t pending_seed() const { return batch_seeds_[cursor_]; }

  /// Extracts the next pending lane's candidate and advances the cursor.
  CandidateSegment take_pending();

  /// Discards the remaining pending lanes (their evaluation, not their
  /// seeds), recording them as wasted speculation.
  void invalidate();

  /// Content bytes of the packed lane state: the packed simulator plus the
  /// flat batch arrays (PI words, launch states, toggle counts) and the base
  /// snapshot. Deterministic sizeof-based accounting, no allocator slack.
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) - sizeof(packed_sim_) + packed_sim_.footprint_bytes() +
           (base_state_.size() + base_values_.size() +
            base_prev_values_.size() + violated_.size()) *
               sizeof(std::uint8_t) +
           (batch_seeds_.size() + toggles_.size()) * sizeof(std::uint32_t) +
           (pi_words_.size() + launch_words_.size()) * sizeof(std::uint64_t) +
           usable_.size() * sizeof(std::size_t);
  }

 private:
  const Netlist* netlist_;
  FunctionalBistConfig config_;
  PackedTpg packed_tpg_;
  PackedSeqSim packed_sim_;
  std::size_t lanes_;

  // Base state of the current batch.
  bool base_have_prev_ = false;
  std::vector<std::uint8_t> base_state_;
  std::vector<std::uint8_t> base_values_;
  std::vector<std::uint8_t> base_prev_values_;

  // Batch results. Rows are flat: pi_words_ has num_inputs words per cycle,
  // launch_words_ has num_flops words per even cycle, toggle counts one
  // 64-entry row per cycle.
  std::vector<std::uint32_t> batch_seeds_;
  std::size_t cursor_ = 0;
  std::vector<std::uint64_t> pi_words_;
  std::vector<std::uint64_t> launch_words_;
  std::vector<std::uint32_t> toggles_;
  std::vector<std::size_t> usable_;
  std::vector<std::uint8_t> violated_;
};

}  // namespace fbt
