#include "bist/lfsr.hpp"

#include <bit>

#include "util/require.hpp"

namespace fbt {

std::uint32_t Lfsr::primitive_taps(unsigned stages) {
  // Xilinx XAPP052 table of taps for maximal-length LFSRs; entry k lists the
  // stages (1-based) whose XOR feeds stage 1.
  static constexpr std::uint8_t kTaps[33][4] = {
      {0, 0, 0, 0},      // 0 (unused)
      {0, 0, 0, 0},      // 1 (unused)
      {2, 1, 0, 0},      // 2
      {3, 2, 0, 0},      // 3
      {4, 3, 0, 0},      // 4
      {5, 3, 0, 0},      // 5
      {6, 5, 0, 0},      // 6
      {7, 6, 0, 0},      // 7
      {8, 6, 5, 4},      // 8
      {9, 5, 0, 0},      // 9
      {10, 7, 0, 0},     // 10
      {11, 9, 0, 0},     // 11
      {12, 6, 4, 1},     // 12
      {13, 4, 3, 1},     // 13
      {14, 5, 3, 1},     // 14
      {15, 14, 0, 0},    // 15
      {16, 15, 13, 4},   // 16
      {17, 14, 0, 0},    // 17
      {18, 11, 0, 0},    // 18
      {19, 6, 2, 1},     // 19
      {20, 17, 0, 0},    // 20
      {21, 19, 0, 0},    // 21
      {22, 21, 0, 0},    // 22
      {23, 18, 0, 0},    // 23
      {24, 23, 22, 17},  // 24
      {25, 22, 0, 0},    // 25
      {26, 6, 2, 1},     // 26
      {27, 5, 2, 1},     // 27
      {28, 25, 0, 0},    // 28
      {29, 27, 0, 0},    // 29
      {30, 6, 4, 1},     // 30
      {31, 28, 0, 0},    // 31
      {32, 22, 2, 1},    // 32
  };
  require(stages >= 2 && stages <= 32, "Lfsr",
          "supported stage counts are 2..32");
  std::uint32_t mask = 0;
  for (const std::uint8_t tap : kTaps[stages]) {
    if (tap != 0) mask |= 1u << (tap - 1);
  }
  return mask;
}

Lfsr::Lfsr(unsigned stages)
    : stages_(stages),
      taps_(primitive_taps(stages)),
      mask_(stages == 32 ? 0xffffffffu : ((1u << stages) - 1)) {}

void Lfsr::seed(std::uint32_t value) {
  state_ = value & mask_;
  if (state_ == 0) state_ = 1;
}

std::uint32_t Lfsr::step() {
  const auto feedback =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | feedback) & mask_;
  return state_;
}

}  // namespace fbt
