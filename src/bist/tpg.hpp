// On-chip test pattern generator (dissertation §4.3, Fig. 4.8).
//
// A fixed-width LFSR drives a shift register; primary inputs are tapped off
// the shift register. An input i with a specified cube value C(i) is driven by
// an m-input AND (C(i)=0) or OR (C(i)=1) over m distinct shift-register bits,
// biasing its value toward C(i) with probability 1 - 1/2^m; an unspecified
// input is driven by a single bit. The shift-register size is
// m*N_SP + (N_PI - N_SP). After (re)seeding, the shift register is clocked
// full before pattern generation begins.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/input_cube.hpp"
#include "bist/lfsr.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"

namespace fbt {

struct TpgConfig {
  unsigned lfsr_stages = 32;  ///< N_LFSR (§4.6 uses 32)
  unsigned bias_bits = 3;     ///< m (§4.6 uses 3, giving 7/8 bias)
};

class Tpg {
 public:
  /// Builds the TPG for a circuit: computes the input cube and allocates
  /// shift-register taps.
  Tpg(const Netlist& netlist, const TpgConfig& config);

  const InputCube& cube() const { return cube_; }
  const TpgConfig& config() const { return config_; }

  /// Shift register length m*N_SP + (N_PI - N_SP).
  std::size_t shift_register_size() const { return shift_register_.size(); }

  /// Shift-register tap positions of primary input `i` (m of them when the
  /// cube specifies the input, one otherwise). Exposed for the RTL emitter,
  /// which wires the biasing gates off the same taps.
  const std::vector<std::uint32_t>& input_taps(std::size_t i) const {
    return taps_[i];
  }

  /// Number of inserted biasing gates (one m-input AND/OR per specified
  /// input) -- reported as N_SP in Table 4.2 and charged by the area model.
  std::size_t bias_gate_count() const { return cube_.specified_count(); }

  /// Loads an LFSR seed and clocks the shift register full (initialization
  /// cycles are part of test time but generate no patterns).
  void reseed(std::uint32_t seed);

  /// Advances one clock and returns the primary-input vector for this cycle.
  std::vector<std::uint8_t> next_vector();

  /// Advances one clock and writes the primary-input vector into `vec`
  /// (size must equal the input count). Allocation-free variant for the
  /// per-cycle construction loop.
  void next_vector_into(std::span<std::uint8_t> vec);

 private:
  void clock_shift_register();

  const Netlist* netlist_;
  TpgConfig config_;
  InputCube cube_;
  Lfsr lfsr_;
  std::vector<std::uint8_t> shift_register_;
  /// Per input: indices of its shift-register taps (m of them when biased,
  /// one otherwise).
  std::vector<std::vector<std::uint32_t>> taps_;
  // Batched per-clock counters (one TPG clock per simulated cycle; an
  // atomic RMW each would dominate on small circuits).
  obs::LocalCounter lfsr_cycles_{"bist.lfsr_cycles"};
  obs::LocalCounter vectors_generated_{"bist.tpg_vectors_generated"};
};

}  // namespace fbt
