#include "bist/controller.hpp"

#include <vector>

namespace fbt {

std::string_view bist_mode_name(BistMode mode) {
  switch (mode) {
    case BistMode::kIdle: return "idle";
    case BistMode::kSeedLoad: return "seed-load";
    case BistMode::kShiftRegInit: return "sr-init";
    case BistMode::kCircuitInit: return "circuit-init";
    case BistMode::kApply: return "apply";
    case BistMode::kCircularShift: return "circular-shift";
    case BistMode::kDone: return "done";
  }
  return "?";
}

BistController::BistController(BistControllerPlan plan)
    : plan_(std::move(plan)) {
  require(plan_.q >= 1, "BistController", "q must be >= 1");
  for (const auto& seq : plan_.sequences) {
    require(!seq.empty(), "BistController", "empty sequence in plan");
    for (const std::size_t len : seq) {
      require(len >= 1, "BistController", "empty segment in plan");
    }
  }
  if (plan_.sequences.empty()) {
    mode_ = BistMode::kDone;
  } else {
    enter(BistMode::kCircuitInit);
  }
}

ClockEnables BistController::enables() const {
  switch (mode_) {
    case BistMode::kSeedLoad:
    case BistMode::kShiftRegInit:
      // Circuit clock gated; only the TPG runs (§4.4: "the state of the
      // circuit is held [while] a new LFSR seed can be loaded").
      return {.tpg = true, .circuit = false, .misr = false};
    case BistMode::kCircuitInit:
      return {.tpg = false, .circuit = true, .misr = false};
    case BistMode::kApply:
      return {.tpg = true, .circuit = true, .misr = true};
    case BistMode::kCircularShift:
      return {.tpg = false, .circuit = true, .misr = true};
    default:
      return {};
  }
}

bool BistController::at_capture() const {
  if (mode_ != BistMode::kApply) return false;
  const std::size_t period = std::size_t{1} << plan_.q;
  return (apply_cycle_ % period) == period - 1;
}

void BistController::enter(BistMode mode) {
  mode_ = mode;
  switch (mode) {
    case BistMode::kSeedLoad:
      mode_cycles_left_ = 1;
      break;
    case BistMode::kShiftRegInit:
      mode_cycles_left_ = plan_.shift_register_size;
      break;
    case BistMode::kCircuitInit:
    case BistMode::kCircularShift:
      mode_cycles_left_ = plan_.scan_length;
      break;
    case BistMode::kApply:
      apply_cycle_ = 0;
      break;
    default:
      mode_cycles_left_ = 0;
      break;
  }
  if (mode != BistMode::kApply && mode != BistMode::kDone &&
      mode != BistMode::kIdle && mode_cycles_left_ == 0) {
    advance();  // zero-length phase (e.g. Lsc == 0 or SR size 0): skip it
  }
}

void BistController::advance() {
  switch (mode_) {
    case BistMode::kCircuitInit:
      enter(BistMode::kSeedLoad);
      break;
    case BistMode::kSeedLoad:
      enter(BistMode::kShiftRegInit);
      break;
    case BistMode::kShiftRegInit:
      enter(BistMode::kApply);
      break;
    case BistMode::kApply:
    case BistMode::kCircularShift: {
      // End of a segment: next segment (reseed), next sequence
      // (re-initialize), or done.
      if (segment_ + 1 < plan_.sequences[sequence_].size()) {
        ++segment_;
        enter(BistMode::kSeedLoad);
      } else if (sequence_ + 1 < plan_.sequences.size()) {
        ++sequence_;
        segment_ = 0;
        enter(BistMode::kCircuitInit);
      } else {
        mode_ = BistMode::kDone;
      }
      break;
    }
    default:
      break;
  }
}

BistMode BistController::tick() {
  const BistMode executed = mode_;
  if (mode_ == BistMode::kDone || mode_ == BistMode::kIdle) return executed;
  ++total_cycles_;

  if (mode_ == BistMode::kApply) {
    const bool captured = at_capture();
    ++apply_cycle_;
    const bool segment_done =
        apply_cycle_ >= plan_.sequences[sequence_][segment_];
    if (captured && plan_.scan_length > 0) {
      // The capture's circular shift runs next; resuming or advancing after
      // it depends on whether the segment is finished.
      enter(BistMode::kCircularShift);
      if (segment_done) apply_cycle_ = plan_.sequences[sequence_][segment_];
      return executed;
    }
    if (segment_done) advance();
    return executed;
  }

  --mode_cycles_left_;
  if (mode_cycles_left_ == 0) {
    if (mode_ == BistMode::kCircularShift &&
        apply_cycle_ < plan_.sequences[sequence_][segment_]) {
      mode_ = BistMode::kApply;  // resume the segment where it paused
    } else {
      advance();
    }
  }
  return executed;
}

}  // namespace fbt
