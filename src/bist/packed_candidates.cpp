#include "bist/packed_candidates.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

namespace {

/// SWA(i) as a percentage of circuit lines -- textually mirrors
/// SeqSim::step so the packed and scalar paths compare identical doubles
/// against the bound.
inline double swa_percent(std::size_t toggled, std::size_t lines) {
  return lines == 0 ? 0.0
                    : 100.0 * toggled / static_cast<double>(lines);
}

}  // namespace

PackedCandidateEngine::PackedCandidateEngine(const Netlist& netlist,
                                             const Tpg& tpg,
                                             const FunctionalBistConfig& config,
                                             std::size_t lanes)
    : netlist_(&netlist),
      config_(config),
      packed_tpg_(tpg),
      packed_sim_(netlist),
      lanes_(std::clamp<std::size_t>(lanes, 1, PackedSeqSim::kLanes)) {
  require(supports(config), "PackedCandidateEngine",
          "config requires the scalar path (state holding or pattern store)");
  const std::size_t L = config.segment_length;
  pi_words_.resize(L * netlist.num_inputs());
  launch_words_.resize((L / 2) * netlist.num_flops());
  toggles_.resize(L * PackedSeqSim::kLanes);
}

bool PackedCandidateEngine::supports(const FunctionalBistConfig& config) {
  // State holding changes the flop update per cycle; the pattern-store bound
  // needs the full per-lane line values of every cycle. Both stay scalar.
  if (!config.hold_set.empty()) return false;
  if (config.bounded && config.pattern_store != nullptr) return false;
  return true;
}

void PackedCandidateEngine::speculate(const SeqSim& sim,
                                      std::span<const std::uint32_t> seeds) {
  FBT_OBS_PHASE("construct.speculate");
  invalidate();

  const std::size_t n = std::min(seeds.size(), lanes_);
  require(n >= 1, "PackedCandidateEngine::speculate", "no seeds given");
  batch_seeds_.assign(seeds.begin(), seeds.begin() + n);
  cursor_ = 0;

  base_have_prev_ = sim.have_prev();
  base_state_ = sim.state();
  if (base_have_prev_) {
    base_values_ = sim.values();
    base_prev_values_ = sim.prev_values();
  }

  packed_tpg_.reseed(batch_seeds_);
  packed_sim_.load_broadcast(base_state_, sim.values(), sim.prev_values(),
                             base_have_prev_);

  const std::size_t L = config_.segment_length;
  const std::size_t num_inputs = netlist_->num_inputs();
  const std::size_t num_flops = netlist_->num_flops();
  const std::size_t lines = netlist_->num_lines();
  usable_.assign(n, L);
  violated_.assign(n, 0);
  std::uint64_t active = n == 64 ? ~0ULL : ((1ULL << n) - 1);

  for (std::size_t c = 0; c < L && active != 0; ++c) {
    if (c % 2 == 0) {
      // Launch state s(c) of the test pair (c, c+1), all lanes at once.
      const std::span<const std::uint64_t> state = packed_sim_.state_words();
      std::copy(state.begin(), state.end(),
                launch_words_.begin() + (c / 2) * num_flops);
    }
    const std::span<std::uint64_t> pi(pi_words_.data() + c * num_inputs,
                                      num_inputs);
    const std::span<std::uint32_t> counts(
        toggles_.data() + c * PackedSeqSim::kLanes, PackedSeqSim::kLanes);
    packed_tpg_.next_vectors(pi);
    packed_sim_.step(pi, counts);
    if (config_.bounded) {
      std::uint64_t scan = active;
      while (scan != 0) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(scan));
        scan &= scan - 1;
        const std::uint32_t toggled = counts[k];
        if (toggled > 0 &&
            swa_percent(toggled, lines) > config_.swa_bound_percent) {
          usable_[k] = c & ~std::size_t{1};
          violated_[k] = 1;
          active &= ~(1ULL << k);
        }
      }
    }
  }

  FBT_OBS_COUNTER_ADD("bist.speculated_lanes", n);
  FBT_OBS_COUNTER_ADD("bist.speculation_batches", 1);
  FBT_OBS_FOOTPRINT("bist.packed_lanes", footprint_bytes());
}

bool PackedCandidateEngine::pending_matches(const SeqSim& sim) const {
  if (!has_pending()) return false;
  if (sim.have_prev() != base_have_prev_) return false;
  if (sim.state() != base_state_) return false;
  // When no previous settled cycle exists, the line values are overwritten
  // before they are ever read, so only the flop state defines the dynamics.
  if (!base_have_prev_) return true;
  return sim.values() == base_values_ && sim.prev_values() == base_prev_values_;
}

CandidateSegment PackedCandidateEngine::take_pending() {
  require(has_pending(), "PackedCandidateEngine::take_pending",
          "no speculated lane pending");
  const std::size_t k = cursor_++;
  FBT_OBS_COUNTER_ADD("bist.segments_built", 1);
  FBT_OBS_COUNTER_ADD("bist.speculation_hits", 1);
  if (violated_[k]) FBT_OBS_COUNTER_ADD("bist.swa_violations", 1);

  CandidateSegment result;
  const std::size_t usable = usable_[k];
  if (usable < 2) return result;
  result.usable_cycles = usable;

  const std::size_t num_inputs = netlist_->num_inputs();
  const std::size_t num_flops = netlist_->num_flops();
  const std::uint64_t lane = 1ULL << k;
  result.tests.resize(usable / 2);
  for (std::size_t t = 0; t < usable / 2; ++t) {
    BroadsideTest& test = result.tests[t];
    const std::uint64_t* launch = launch_words_.data() + t * num_flops;
    test.scan_state.resize(num_flops);
    for (std::size_t f = 0; f < num_flops; ++f) {
      test.scan_state[f] = (launch[f] & lane) ? 1 : 0;
    }
    const std::uint64_t* v1 = pi_words_.data() + (2 * t) * num_inputs;
    const std::uint64_t* v2 = pi_words_.data() + (2 * t + 1) * num_inputs;
    test.v1.resize(num_inputs);
    test.v2.resize(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      test.v1[i] = (v1[i] & lane) ? 1 : 0;
      test.v2[i] = (v2[i] & lane) ? 1 : 0;
    }
  }
  FBT_OBS_COUNTER_ADD("bist.tests_extracted", result.tests.size());

  const std::size_t lines = netlist_->num_lines();
  for (std::size_t c = 0; c < usable; ++c) {
    const std::uint32_t toggled = toggles_[c * PackedSeqSim::kLanes + k];
    result.peak_swa = std::max(result.peak_swa, swa_percent(toggled, lines));
  }
  return result;
}

void PackedCandidateEngine::invalidate() {
  if (cursor_ < batch_seeds_.size()) {
    FBT_OBS_COUNTER_ADD("bist.speculation_wasted",
                        batch_seeds_.size() - cursor_);
  }
  batch_seeds_.clear();
  cursor_ = 0;
}

}  // namespace fbt
