// BIST controller finite state machine (dissertation §4.4 / Fig. 4.2).
//
// "The clocks for the TPG logic, the counters and the circuit are gated and
// controlled by a finite state machine, so that the TPG logic and the
// counters can operate simultaneously or not with the circuit under
// different operation modes such as seed loading, shift register
// initialization, circuit initialization, primary input sequence
// application, and circular shifting."
//
// This is that FSM as a cycle-steppable model. Clock gating is exposed as
// boolean enables per clock domain; the session and the unit tests drive it
// and check the mode sequencing and per-mode cycle counts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/require.hpp"

namespace fbt {

enum class BistMode : std::uint8_t {
  kIdle,
  kSeedLoad,       ///< 1 cycle: parallel-load the LFSR seed
  kShiftRegInit,   ///< shift-register-size cycles: fill the SR from the LFSR
  kCircuitInit,    ///< Lsc cycles: shift in the reachable initial state
  kApply,          ///< functional application of the current segment
  kCircularShift,  ///< Lsc cycles: capture s(i+2) into the MISR and restore
  kDone,
};

std::string_view bist_mode_name(BistMode mode);

/// Per-cycle clock enables derived from the mode (Fig. 4.2's gating).
struct ClockEnables {
  bool tpg = false;      ///< LFSR + shift register clock
  bool circuit = false;  ///< functional clock of the CUT
  bool misr = false;     ///< response compactor clock
};

struct BistControllerPlan {
  std::size_t shift_register_size = 0;
  std::size_t scan_length = 0;  ///< Lsc (0 for a flop-less block)
  /// Segment lengths per sequence, e.g. {{768, 400}, {768}}.
  std::vector<std::vector<std::size_t>> sequences;
  unsigned q = 1;  ///< tests applied every 2^q cycles
};

class BistController {
 public:
  explicit BistController(BistControllerPlan plan);

  BistMode mode() const { return mode_; }
  ClockEnables enables() const;

  /// Advances one controller cycle. Returns the mode that was just executed.
  BistMode tick();

  bool done() const { return mode_ == BistMode::kDone; }
  std::size_t total_cycles() const { return total_cycles_; }
  std::size_t sequence_index() const { return sequence_; }
  std::size_t segment_index() const { return segment_; }

  /// Within-segment clock-cycle index of the next apply cycle (the value the
  /// hardware's cycle counter shows while that cycle executes). The hold
  /// strobe of Fig. 4.11 is decoded from this counter's low-order bits.
  std::size_t apply_cycle() const { return apply_cycle_; }

  /// True on apply cycles where the capture edge lands (the second pattern
  /// of a test): the following cycles run the circular shift.
  bool at_capture() const;

 private:
  void enter(BistMode mode);
  void advance();

  BistControllerPlan plan_;
  BistMode mode_ = BistMode::kIdle;
  std::size_t sequence_ = 0;
  std::size_t segment_ = 0;
  std::size_t mode_cycles_left_ = 0;
  std::size_t apply_cycle_ = 0;  ///< within-segment clock cycle counter
  std::size_t total_cycles_ = 0;
};

}  // namespace fbt
