// Alternative pseudo-random TPG architectures surveyed in §4.2
// (refs [82]-[87]): weighted random pattern generation with multiple weight
// sets, and bit-flipping on top of a plain LFSR. They share the PatternSource
// interface with the paper's cube-biased Tpg so the generation flow and the
// ablation bench can swap them in.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bist/lfsr.hpp"
#include "bist/tpg.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace fbt {

/// Common interface of on-chip pattern generators.
class PatternSource {
 public:
  virtual ~PatternSource() = default;
  virtual void reseed(std::uint32_t seed) = 0;
  virtual std::vector<std::uint8_t> next_vector() = 0;
};

/// Adapter: the paper's cube-biased TPG as a PatternSource.
class CubeTpgSource final : public PatternSource {
 public:
  CubeTpgSource(const Netlist& netlist, const TpgConfig& config)
      : tpg_(netlist, config) {}
  void reseed(std::uint32_t seed) override { tpg_.reseed(seed); }
  std::vector<std::uint8_t> next_vector() override {
    return tpg_.next_vector();
  }
  const Tpg& tpg() const { return tpg_; }

 private:
  Tpg tpg_;
};

/// Weighted random pattern generation [84]-[87]: each input i has a
/// probability weight from a small discrete set {1/8, 1/4, 1/2, 3/4, 7/8},
/// realized on-chip by AND/OR trees over LFSR bits. Multiple weight sets are
/// cycled (a new set per reseed) to cover faults that need different biases.
class WeightedTpg final : public PatternSource {
 public:
  /// Derives `num_sets` weight sets from the circuit: set 0 is balanced
  /// (all 1/2); later sets bias toward the input cube's values and random
  /// extremes (deterministic in `seed`).
  WeightedTpg(const Netlist& netlist, unsigned lfsr_stages,
              std::size_t num_sets, std::uint64_t seed);

  void reseed(std::uint32_t seed) override;
  std::vector<std::uint8_t> next_vector() override;

  std::size_t num_sets() const { return weights_.size(); }
  /// Weight (eighths of probability-of-1, 1..7) of input i in set s.
  unsigned weight(std::size_t set, std::size_t input) const {
    return weights_[set][input];
  }
  std::size_t active_set() const { return active_set_; }

 private:
  Lfsr lfsr_;
  std::vector<std::vector<std::uint8_t>> weights_;  // eighths, per set
  std::size_t active_set_ = 0;
  std::size_t reseed_count_ = 0;

  bool lfsr_bit();
};

/// Bit-flipping TPG [83]: a plain LFSR-driven pattern with a small
/// deterministic flip function that inverts selected bits on selected
/// cycles, breaking the linear correlation structure of the LFSR.
class BitFlippingTpg final : public PatternSource {
 public:
  BitFlippingTpg(const Netlist& netlist, unsigned lfsr_stages,
                 std::uint64_t seed);

  void reseed(std::uint32_t seed) override;
  std::vector<std::uint8_t> next_vector() override;

 private:
  Lfsr lfsr_;
  std::size_t num_inputs_;
  std::uint32_t cycle_ = 0;
  /// flip_mask_[input]: cycles (mod 16) on which this input's bit inverts.
  std::vector<std::uint16_t> flip_mask_;
};

}  // namespace fbt
