#include "bist/aliasing.hpp"

#include <cmath>
#include <vector>

#include "bist/misr.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fbt {

double misr_theoretical_aliasing(unsigned stages) {
  return std::ldexp(1.0, -static_cast<int>(stages));
}

double misr_empirical_aliasing(unsigned stages, std::size_t width,
                               std::size_t cycles, std::size_t trials,
                               std::uint64_t seed) {
  require(width >= 1 && cycles >= 1 && trials >= 1, "misr_empirical_aliasing",
          "width, cycles, and trials must be positive");
  Pcg32 rng(seed, 0x9b60933458e17d7dULL);

  // Golden stream.
  std::vector<std::vector<std::uint8_t>> golden(cycles);
  for (auto& row : golden) {
    row.resize(width);
    for (auto& bit : row) bit = rng.chance(1, 2);
  }
  Misr gold(stages);
  for (const auto& row : golden) gold.absorb(row);

  std::size_t aliased = 0;
  std::vector<std::uint8_t> row(width);
  for (std::size_t t = 0; t < trials; ++t) {
    Misr m(stages);
    // Sparse random errors (~6% of bits flip); force one flip on the last
    // cycle if none occurred so "no error" never counts as aliasing.
    Pcg32 errors(seed ^ (0x1000 + t), 0x3c6ef372fe94f82bULL);
    bool injected = false;
    for (std::size_t c = 0; c < cycles; ++c) {
      for (std::size_t i = 0; i < width; ++i) {
        const bool flip = errors.chance(1, 16);
        injected |= flip;
        row[i] = golden[c][i] ^ (flip ? 1 : 0);
      }
      if (c + 1 == cycles && !injected) row[0] ^= 1;
      m.absorb(row);
    }
    if (m.signature() == gold.signature()) ++aliased;
  }
  return static_cast<double>(aliased) / static_cast<double>(trials);
}

}  // namespace fbt
