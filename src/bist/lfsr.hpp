// n-stage linear feedback shift register (dissertation §4.2, Fig. 4.3).
//
// Fibonacci configuration: stages Q1..Qn shift right each clock; the new Q1
// is the XOR of the tapped stages. With a primitive characteristic polynomial
// the register cycles through all 2^n - 1 nonzero states, so its states serve
// as pseudo-random test vectors.
#pragma once

#include <cstdint>

namespace fbt {

class Lfsr {
 public:
  /// Constructs a maximal-period LFSR with 2 <= stages <= 32, using a
  /// primitive polynomial from the standard (Xilinx XAPP052) table.
  explicit Lfsr(unsigned stages);

  unsigned stages() const { return stages_; }

  /// Loads a seed. The all-zero state is the lockup state of a XOR-feedback
  /// LFSR; a zero seed (mod 2^stages) is replaced by 1.
  void seed(std::uint32_t value);

  /// Current state, Q1 in bit 0.
  std::uint32_t state() const { return state_; }

  /// Output bit observed by downstream logic (the last stage, Qn).
  bool output() const { return ((state_ >> (stages_ - 1)) & 1u) != 0; }

  /// Advances one clock. Returns the new state.
  std::uint32_t step();

  /// Tap mask of the primitive polynomial used for `stages` (bit i set means
  /// stage i+1 feeds the XOR). Exposed for tests and the MISR.
  static std::uint32_t primitive_taps(unsigned stages);

 private:
  unsigned stages_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_ = 1;
};

}  // namespace fbt
