// Cycle-accurate on-chip test session (dissertation §4.2-§4.3, Figs. 4.2,
// 4.5, 4.6).
//
// Replays a generated FunctionalBistResult the way the hardware applies it:
// seed load, shift-register initialization, circuit initialization into the
// reachable state, functional application of the primary input sequence with
// the apply strobe every 2q cycles, MISR capture of the primary-output
// response y(i+1) and of the final state s(i+2) via circular shift, and the
// segment/sequence bookkeeping counters. Produces the golden signature and
// total tester-cycle count; running the same session on a faulty circuit
// (fault injected via a wrapper netlist or simulator) yields a differing
// signature with high probability.
#pragma once

#include <cstdint>

#include "bist/counters.hpp"
#include "bist/functional_bist.hpp"
#include "bist/misr.hpp"
#include "netlist/scan.hpp"

namespace fbt {

struct SessionConfig {
  unsigned misr_stages = 24;
  unsigned q = 1;  ///< apply strobe period 2^q (the dissertation uses q = 1)
  TpgConfig tpg;
};

struct SessionReport {
  std::uint32_t signature = 0;
  std::size_t total_cycles = 0;        ///< functional + shift + init cycles
  std::size_t functional_cycles = 0;   ///< cycles spent applying sequences
  std::size_t shift_cycles = 0;        ///< circular-shift / unload cycles
  std::size_t tests_applied = 0;
};

/// Runs the session on the (fault-free) netlist. `faulty_line`/`faulty_rising`
/// optionally inject one transition fault as a permanent slow line modelled as
/// stuck-at-initial-value during every second pattern, matching the fault
/// simulator's detection semantics; pass kNoNode for a fault-free run.
SessionReport run_bist_session(const Netlist& netlist,
                               const FunctionalBistResult& plan,
                               const ScanChains& scan,
                               const SessionConfig& config,
                               NodeId faulty_line = kNoNode,
                               bool faulty_rising = true);

}  // namespace fbt
