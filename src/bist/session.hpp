// Cycle-accurate on-chip test session (dissertation §4.2-§4.3, Figs. 4.2,
// 4.5, 4.6).
//
// Replays a generated FunctionalBistResult the way the hardware applies it:
// seed load, shift-register initialization, circuit initialization into the
// reachable state, functional application of the primary input sequence with
// the apply strobe every 2q cycles, MISR capture of the primary-output
// response y(i+1) and of the final state s(i+2) via circular shift, and the
// segment/sequence bookkeeping counters. Produces the golden signature and
// total tester-cycle count; running the same session on a faulty circuit
// (fault injected via a wrapper netlist or simulator) yields a differing
// signature with high probability.
//
// The optional state-holding configuration (§4.5, Figs. 4.10-4.13) gates the
// clocks of the active hold set's state variables on every transition out of
// an apply cycle whose within-segment index is divisible by 2^h, matching the
// FunctionalBistGenerator's hold rule. Each multi-segment sequence names the
// hold set it runs under (or none); the hardware's set counter and decoder
// route the shared hold-enable to that set.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "bist/controller.hpp"
#include "bist/counters.hpp"
#include "bist/functional_bist.hpp"
#include "bist/misr.hpp"
#include "netlist/scan.hpp"

namespace fbt {

/// Sentinel for a sequence that runs without a hold set.
inline constexpr std::size_t kNoHoldSet =
    std::numeric_limits<std::size_t>::max();

struct SessionConfig {
  unsigned misr_stages = 24;
  unsigned q = 1;  ///< apply strobe period 2^q (the dissertation uses q = 1)
  TpgConfig tpg;

  /// State holding: h >= 1 enables the hold strobe every 2^h apply cycles.
  unsigned hold_period_log2 = 0;
  /// The committed hold sets (flop indices), in decoder order.
  std::vector<std::vector<std::size_t>> hold_sets;
  /// Per sequence of the replayed plan: index into hold_sets, or kNoHoldSet.
  /// Sequences beyond this vector's size run without holding.
  std::vector<std::size_t> hold_set_of_sequence;
};

struct SessionReport {
  std::uint32_t signature = 0;
  std::size_t total_cycles = 0;        ///< functional + shift + init cycles
  std::size_t functional_cycles = 0;   ///< cycles spent applying sequences
  std::size_t shift_cycles = 0;        ///< circular-shift / unload cycles
  std::size_t tests_applied = 0;
};

/// One executed controller cycle, as seen by a SessionObserver. Spans are
/// valid only for the duration of the callback.
struct SessionCycle {
  std::size_t index = 0;  ///< 0-based tester cycle number
  BistMode mode = BistMode::kIdle;
  bool capture = false;  ///< apply cycle whose edge captures into the MISR
  std::size_t sequence = 0;
  std::size_t segment = 0;
  /// Within-segment apply-cycle index (the hardware cycle counter's value
  /// during this cycle). Valid on kApply cycles.
  std::size_t apply_cycle = 0;
  /// TPG primary-input vector applied this cycle (empty unless kApply).
  std::span<const std::uint8_t> pi;
  /// State after this cycle's clock edge (empty unless kApply).
  std::span<const std::uint8_t> state;
  /// MISR signature after this cycle's clock edge.
  std::uint32_t misr = 0;
};

/// Per-cycle probe into the session, used by the RTL lockstep checker.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void on_cycle(const SessionCycle& cycle) = 0;
};

/// Runs the session on the (fault-free) netlist. `faulty_line`/`faulty_rising`
/// optionally inject one transition fault as a permanent slow line modelled as
/// stuck-at-initial-value during every second pattern, matching the fault
/// simulator's detection semantics; pass kNoNode for a fault-free run.
/// `observer`, when non-null, is called once per executed tester cycle.
SessionReport run_bist_session(const Netlist& netlist,
                               const FunctionalBistResult& plan,
                               const ScanChains& scan,
                               const SessionConfig& config,
                               NodeId faulty_line = kNoNode,
                               bool faulty_rising = true,
                               SessionObserver* observer = nullptr);

}  // namespace fbt
