#include "bist/embedded.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "sim/seqsim.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fbt {

namespace {

FunctionalProfile run_calibration(
    const Netlist& target, const Netlist& driver,
    const SwaCalibrationConfig& config, TransitionPatternStore* store,
    std::shared_ptr<const FlatFanins> target_flat = nullptr) {
  require(driver.num_outputs() >= target.num_inputs(), "measure_swa_func",
          "driving block has fewer outputs than the target has inputs");
  require(config.num_sequences >= 1 && config.sequence_length >= 2,
          "measure_swa_func", "need at least one sequence of length >= 2");
  FBT_OBS_PHASE("calibrate");

  Tpg tpg(driver, config.tpg);
  SeqSim driver_sim(driver);
  SeqSim target_sim = target_flat != nullptr
                          ? SeqSim(target, std::move(target_flat))
                          : SeqSim(target);
  Pcg32 rng(config.rng_seed, 0x6a09e667f3bcc909ULL);

  FunctionalProfile profile;
  std::vector<std::uint8_t> target_pi(target.num_inputs(), 0);
  for (std::size_t s = 0; s < config.num_sequences; ++s) {
    tpg.reseed(rng.next() | 1u);
    driver_sim.load_reset_state();
    target_sim.load_reset_state();
    for (std::size_t c = 0; c < config.sequence_length; ++c) {
      const auto driver_pi = tpg.next_vector();
      driver_sim.step(driver_pi);
      for (std::size_t i = 0; i < target_pi.size(); ++i) {
        target_pi[i] = driver_sim.value(driver.outputs()[i]);
      }
      const SeqStep step = target_sim.step(target_pi);
      // SWA(0) of each sequence is undefined (the simulator reports 0 there).
      profile.peak_percent =
          std::max(profile.peak_percent, step.switching_percent);
      if (store != nullptr && step.toggled_lines > 0) {
        store->record(make_transition_pattern(target_sim.prev_values(),
                                              target_sim.values()));
      }
    }
  }
  return profile;
}

}  // namespace

SwaCalibration measure_swa_func(
    const Netlist& target, const Netlist& driver,
    const SwaCalibrationConfig& config,
    std::shared_ptr<const FlatFanins> target_flat) {
  return {run_calibration(target, driver, config, nullptr,
                          std::move(target_flat))
              .peak_percent};
}

FunctionalProfile measure_functional_profile(const Netlist& target,
                                             const Netlist& driver,
                                             const SwaCalibrationConfig& config,
                                             std::size_t max_patterns) {
  FunctionalProfile profile;
  profile.patterns = TransitionPatternStore(max_patterns);
  const FunctionalProfile measured =
      run_calibration(target, driver, config, &profile.patterns);
  profile.peak_percent = measured.peak_percent;
  return profile;
}

}  // namespace fbt
