// Gate-equivalent area model (stand-in for Design Compiler + a 0.18 um
// generic library; see DESIGN.md, Substitutions #4).
//
// Per the dissertation's accounting (§4.6): the MISR and the primary-input
// shift register are NOT charged (primary inputs of an embedded block are
// already driven by reusable registers); the biasing gates, LFSR, counters,
// controller, seed storage, and -- when state holding is used -- the clock
// gating cells, set counter, and decoder ARE charged.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace fbt {

/// Inventory of the on-chip test-generation hardware for one configuration.
struct BistHardwarePlan {
  unsigned lfsr_bits = 32;
  std::size_t bias_gates = 0;   ///< one m-input AND/OR per specified input
  unsigned bias_gate_inputs = 3;

  unsigned cycle_counter_bits = 1;
  unsigned shift_counter_bits = 1;
  unsigned segment_counter_bits = 1;
  unsigned sequence_counter_bits = 1;

  std::size_t seed_rom_bits = 0;  ///< N_seeds * lfsr_bits

  bool with_hold = false;
  std::size_t hold_sets = 0;      ///< N_h clock-gating cells
  unsigned set_counter_bits = 0;
  std::size_t decoder_outputs = 0;
};

/// Area (um^2) of the BIST hardware described by `plan`.
double bist_area(const BistHardwarePlan& plan);

/// Area (um^2) of the circuit itself (scan flops + combinational gates),
/// used as the denominator of the overhead percentage.
double circuit_area(const Netlist& netlist);

}  // namespace fbt
