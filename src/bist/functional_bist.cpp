#include "bist/functional_bist.hpp"

#include <algorithm>

#include "bist/packed_candidates.hpp"
#include "fault/parallel_fault_sim.hpp"
#include "obs/instrument.hpp"
#include "sim/seqsim.hpp"
#include "util/require.hpp"

namespace fbt {

FunctionalBistGenerator::FunctionalBistGenerator(
    const Netlist& netlist, const FunctionalBistConfig& config)
    : FunctionalBistGenerator(netlist, config, nullptr, nullptr) {}

FunctionalBistGenerator::FunctionalBistGenerator(
    const Netlist& netlist, const FunctionalBistConfig& config,
    std::shared_ptr<const FlatFanins> flat, jobs::JobSystem* jobs)
    : netlist_(&netlist),
      config_(config),
      flat_(std::move(flat)),
      jobs_(jobs),
      tpg_(netlist, config.tpg),
      rng_(config.rng_seed, 0xb5ad4eceda1ce2a9ULL) {
  require(config.segment_length >= 2 && config.segment_length % 2 == 0,
          "FunctionalBistGenerator", "segment length L must be even and >= 2");
  require(config.max_segment_failures >= 1 && config.max_sequence_failures >= 1,
          "FunctionalBistGenerator", "R and Q must be >= 1");
  require(config.speculation_lanes >= 1, "FunctionalBistGenerator",
          "speculation_lanes (W) must be >= 1");
  if (!config.hold_set.empty()) {
    require(config.hold_period_log2 >= 1, "FunctionalBistGenerator",
            "hold_period_log2 (h) must be >= 1 when a hold set is given");
    hold_mask_.assign(netlist.num_flops(), 0);
    for (const std::size_t flop : config.hold_set) {
      require(flop < netlist.num_flops(), "FunctionalBistGenerator",
              "hold set flop index out of range");
      hold_mask_[flop] = 1;
    }
  }
  if (config.speculation_lanes >= 2 &&
      PackedCandidateEngine::supports(config)) {
    engine_ = std::make_unique<PackedCandidateEngine>(
        netlist, tpg_, config, config.speculation_lanes);
  }
  vec_scratch_.resize(netlist.num_inputs());
}

FunctionalBistGenerator::~FunctionalBistGenerator() = default;

CandidateSegment FunctionalBistGenerator::evaluate_candidate(
    SeqSim& sim, std::uint32_t seed) {
  const std::size_t L = config_.segment_length;
  const bool holding = !hold_mask_.empty();
  const std::size_t hold_period =
      holding ? (std::size_t{1} << config_.hold_period_log2) : 0;

  // Single pass with a rolling snapshot: simulate up to L cycles, extracting
  // tests as we go. SWA(c) is the activity of the transition *into*
  // within-segment cycle c; a violation at cycle c means only p(0..c-1) is
  // usable, trimmed to the last even length so the segment ends on a test
  // boundary (§4.4). The trim point (c rounded down to even) is always the
  // last even-cycle boundary, so one snapshot there suffices to rewind.
  tpg_.reseed(seed);
  CandidateSegment result;
  swa_trace_.clear();  // per within-segment cycle
  swa_trace_.reserve(L);
  sim.snapshot_into(even_snap_);  // state at last even cycle
  std::size_t usable = L;

  for (std::size_t c = 0; c < L; ++c) {
    const bool even = (c % 2 == 0);
    if (even) {
      sim.snapshot_into(even_snap_);
      launch_state_ = sim.state();  // s(k) of the pending test
    }
    tpg_.next_vector_into(vec_scratch_);
    std::span<const std::uint8_t> held;
    if (holding && c % hold_period == 0) held = hold_mask_;
    const SeqStep step = sim.step(vec_scratch_, held);
    bool violation = config_.bounded && step.toggled_lines > 0 &&
                     step.switching_percent > config_.swa_bound_percent;
    if (!violation && config_.bounded && config_.pattern_store != nullptr &&
        step.toggled_lines > 0) {
      // §5.1 admissibility: the cycle's signal-transition pattern must be a
      // subset of a functionally observed one.
      violation = !config_.pattern_store->admits(
          make_transition_pattern(sim.prev_values(), sim.values()));
    }
    if (violation) {
      FBT_OBS_COUNTER_ADD("bist.swa_violations", 1);
      usable = c & ~std::size_t{1};  // j = c-1, rounded down to even
      // Rewind to the end of the usable prefix and drop trimmed tests.
      sim.restore(even_snap_);
      break;
    }
    swa_trace_.push_back(step.switching_percent);
    if (even) {
      mid_state_ = sim.state();  // s(k+1): after the (possibly held) update
      pending_v1_ = vec_scratch_;
    } else {
      BroadsideTest test;
      test.scan_state = launch_state_;
      test.v1 = std::move(pending_v1_);
      test.v2 = vec_scratch_;
      if (holding) test.state2_override = mid_state_;
      result.tests.push_back(std::move(test));
    }
  }

  FBT_OBS_COUNTER_ADD("bist.segments_built", 1);
  result.usable_cycles = usable;
  if (usable < 2) {
    // Ensure the simulator is back at the segment start (usable == 0 means
    // the violation hit on the first transition).
    result.tests.clear();
    result.usable_cycles = 0;
    return result;
  }
  result.tests.resize(usable / 2);
  FBT_OBS_COUNTER_ADD("bist.tests_extracted", result.tests.size());
  // Applied cycles are 0 .. usable-1; the settling of cycle `usable` happens
  // under the next segment's first vector and is measured there.
  for (std::size_t c = 0; c < std::min(usable, swa_trace_.size()); ++c) {
    result.peak_swa = std::max(result.peak_swa, swa_trace_[c]);
  }
  return result;
}

void FunctionalBistGenerator::advance_segment(SeqSim& sim, std::uint32_t seed,
                                              std::size_t cycles) {
  tpg_.reseed(seed);
  for (std::size_t c = 0; c < cycles; ++c) {
    tpg_.next_vector_into(vec_scratch_);
    sim.step(vec_scratch_);
  }
}

FunctionalBistResult FunctionalBistGenerator::run(
    const TransitionFaultList& faults,
    std::vector<std::uint32_t>& detect_count) {
  require(detect_count.size() == faults.size(), "FunctionalBistGenerator::run",
          "detect_count size must equal the fault count");
  FBT_OBS_PHASE("construct");

  FunctionalBistResult result;
  result.first_detect.assign(faults.size(), FaultFirstDetect{});
  ParallelBroadsideFaultSim fsim(
      *netlist_, config_.num_threads, jobs_,
      static_cast<std::uint32_t>(config_.fault_pack_width), flat_);
  SeqSim sim = flat_ != nullptr ? SeqSim(*netlist_, flat_) : SeqSim(*netlist_);

  // Provenance bookkeeping: applied-test stream position and the running
  // detected-fault count (faults at the detect limit), both advanced only by
  // accepted segments so the journal is identical across thread counts and
  // speculation widths.
  std::size_t applied_tests = 0;
  std::size_t cumulative_detected = 0;
  for (const std::uint32_t c : detect_count) {
    if (c >= config_.detect_limit) ++cumulative_detected;
  }
  FBT_OBS_EVENT("construct_started",
                {{"faults", faults.size()},
                 {"initially_detected", cumulative_detected},
                 {"detect_limit", config_.detect_limit},
                 {"segment_length", config_.segment_length}});

  std::size_t sequence_failures = 0;
  while (sequence_failures < config_.max_sequence_failures) {
    // Attempt to construct one multi-segment primary input sequence, starting
    // from the reachable initial state (all-0).
    sim.load_reset_state();
    SequenceRecord sequence;
    TestSet sequence_tests;
    double sequence_peak = 0.0;
    std::size_t segment_failures = 0;
    std::vector<std::uint32_t> committed = detect_count;

    while (segment_failures < config_.max_segment_failures) {
      std::uint32_t seed = 0;
      CandidateSegment candidate;
      bool took_from_batch = false;
      bool fresh_batch = false;
      if (engine_ != nullptr && engine_->pending_matches(sim)) {
        // Walk the current speculated batch strictly in seed order. Failed
        // candidates leave the simulator untouched, so the remaining lanes
        // stay valid; any state change (acceptance, or a sequence restart
        // from a different state) makes pending_matches reject the batch.
        seed = engine_->pending_seed();
        require(!seed_queue_.empty() && seed_queue_.front() == seed,
                "FunctionalBistGenerator::run",
                "internal: speculation batch out of sync with the seed queue");
        seed_queue_.erase(seed_queue_.begin());
        candidate = engine_->take_pending();
        took_from_batch = true;
      } else if (engine_ != nullptr && segment_failures > 0) {
        // A failure just restored this exact state, so more consecutive
        // failures are likely: evaluate a whole batch of pre-drawn seeds in
        // one packed pass. (A packed pass costs about the same regardless of
        // how many lanes end up consumed, so speculating right after an
        // acceptance -- when the next candidate usually succeeds -- would
        // mostly waste the batch; the first attempt stays scalar instead.)
        while (seed_queue_.size() < engine_->lanes()) {
          seed_queue_.push_back(static_cast<std::uint32_t>(rng_.next() | 1u));
        }
        engine_->speculate(sim, seed_queue_);
        seed = engine_->pending_seed();
        seed_queue_.erase(seed_queue_.begin());
        candidate = engine_->take_pending();
        took_from_batch = true;
        fresh_batch = true;
      } else {
        // Scalar reference evaluation. With the engine active the seeds still
        // come from the shared pre-draw queue so the stream order is
        // identical whichever path evaluates a given candidate.
        if (engine_ != nullptr) {
          if (seed_queue_.empty()) {
            seed_queue_.push_back(static_cast<std::uint32_t>(rng_.next() | 1u));
          }
          seed = seed_queue_.front();
          seed_queue_.erase(seed_queue_.begin());
        } else {
          seed = static_cast<std::uint32_t>(rng_.next() | 1u);
        }
        sim.snapshot_into(before_snap_);
        candidate = evaluate_candidate(sim, seed);
      }
      if (fresh_batch) {
        FBT_OBS_EVENT("speculation_batch",
                      {{"sequence", result.sequences.size()},
                       {"lanes", engine_->lanes()}});
      }
      FBT_OBS_EVENT("seed_tried",
                    {{"sequence", result.sequences.size()},
                     {"segment", sequence.segments.size()},
                     {"seed", seed},
                     {"source", took_from_batch ? "packed" : "scalar"},
                     {"usable_cycles", candidate.usable_cycles},
                     {"tests", candidate.tests.size()},
                     {"peak_swa", candidate.peak_swa}});
      bool accepted = false;
      if (!candidate.tests.empty()) {
        std::vector<std::uint32_t> trial = committed;
        GradeProvenance prov;
        const std::size_t fresh = fsim.grade(candidate.tests, faults, trial,
                                             config_.detect_limit, &prov);
        if (fresh > 0) {
          // One accepted segment contributes one 2q-cycle test window per
          // extracted test; `fresh` is the faults this window set retired.
          FBT_OBS_HIST_RECORD_WITH("bist.faults_dropped_per_segment", fresh,
                                   {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
          FBT_OBS_HIST_RECORD_WITH(
              "bist.segment_peak_swa_percent", candidate.peak_swa,
              {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
          committed = std::move(trial);
          result.newly_detected += fresh;
          accepted = true;
          // First-detect attribution: `trial` started from `committed`, so
          // prov.first_hits are exactly the faults this segment caught first
          // (an accepted segment is always committed -- a sequence with one
          // accepted segment is never discarded).
          const auto seq_idx = static_cast<std::int32_t>(
              result.sequences.size());
          const auto seg_idx = static_cast<std::int32_t>(
              sequence.segments.size());
          for (const FirstDetectHit& hit : prov.first_hits) {
            result.first_detect[hit.fault] = {
                seq_idx, seg_idx,
                static_cast<std::int64_t>(applied_tests + hit.test), seed};
          }
          for (const GradeBlockStat& block : prov.blocks) {
            cumulative_detected += block.newly_at_limit;
            FBT_OBS_EVENT(
                "grade_block",
                {{"tests_applied",
                  applied_tests + block.first_test + block.num_tests},
                 {"newly_detected", block.newly_at_limit},
                 {"detected", cumulative_detected}});
          }
          FBT_OBS_EVENT("seed_accepted",
                        {{"sequence", result.sequences.size()},
                         {"segment", sequence.segments.size()},
                         {"seed", seed},
                         {"tests", candidate.tests.size()},
                         {"usable_cycles", candidate.usable_cycles},
                         {"newly_detected", fresh},
                         {"peak_swa", candidate.peak_swa}});
          applied_tests += candidate.tests.size();
          sequence.segments.push_back({seed, candidate.usable_cycles,
                                       candidate.tests.size(), fresh,
                                       candidate.peak_swa});
          sequence_peak = std::max(sequence_peak, candidate.peak_swa);
          for (auto& t : candidate.tests) {
            sequence_tests.push_back(std::move(t));
          }
        }
      }
      if (!accepted) {
        FBT_OBS_EVENT(
            "seed_rejected",
            {{"sequence", result.sequences.size()},
             {"segment", sequence.segments.size()},
             {"seed", seed},
             {"reason", candidate.tests.empty() ? "empty_candidate"
                                                : "no_new_detections"},
             {"usable_cycles", candidate.usable_cycles}});
      }
      if (accepted) {
        FBT_OBS_COUNTER_ADD("bist.segments_accepted", 1);
        segment_failures = 0;
        if (took_from_batch) {
          // Position the scalar simulator at the end of the accepted prefix;
          // the untried speculated lanes are stale now (the trajectory
          // continues from a new state) and are discarded.
          advance_segment(sim, seed, candidate.usable_cycles);
        }
        // After a scalar evaluation the simulator already sits at the end of
        // the usable prefix; any stale batch is dead either way.
        if (engine_ != nullptr) engine_->invalidate();
      } else {
        // A batch candidate never touched the simulator; a scalar evaluation
        // left it at the end of the rejected prefix and must be rewound.
        if (!took_from_batch) sim.restore(before_snap_);
        ++segment_failures;
      }
    }

    if (sequence.segments.empty()) {
      ++sequence_failures;  // P_seg(0) could not be selected
      FBT_OBS_EVENT("sequence_failed",
                    {{"consecutive_failures", sequence_failures}});
      continue;
    }
    sequence_failures = 0;
    FBT_OBS_COUNTER_ADD("bist.sequences_built", 1);
    FBT_OBS_EVENT("sequence_committed",
                  {{"sequence", result.sequences.size()},
                   {"segments", sequence.segments.size()},
                   {"tests", sequence_tests.size()},
                   {"detected", cumulative_detected},
                   {"peak_swa", sequence_peak}});
    detect_count = committed;
    result.nseg_max = std::max(result.nseg_max, sequence.segments.size());
    for (const auto& seg : sequence.segments) {
      result.lmax = std::max(result.lmax, seg.length);
      ++result.num_seeds;
    }
    result.peak_swa = std::max(result.peak_swa, sequence_peak);
    for (auto& t : sequence_tests) result.tests.push_back(std::move(t));
    result.sequences.push_back(std::move(sequence));
  }

  result.num_tests = result.tests.size();
  FBT_OBS_EVENT("construct_finished",
                {{"sequences", result.sequences.size()},
                 {"tests", result.num_tests},
                 {"seeds", result.num_seeds},
                 {"detected", cumulative_detected},
                 {"faults", faults.size()}});
  return result;
}

}  // namespace fbt
