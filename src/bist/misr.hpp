// Multiple-input signature register (dissertation §4.2, Fig. 4.4).
//
// An LFSR whose stage inputs are additionally XORed with the circuit response
// bits D1..Dn each clock; the final state is the response signature. Responses
// wider than the register are folded onto the stages modulo the width (a
// standard space-compaction front end).
#pragma once

#include <cstdint>
#include <span>

#include "obs/metrics.hpp"

namespace fbt {

class Misr {
 public:
  /// Constructs an n-stage MISR, 2 <= stages <= 32, with the same primitive
  /// feedback polynomial as Lfsr.
  explicit Misr(unsigned stages);

  unsigned stages() const { return stages_; }

  /// Resets the signature to zero.
  void reset() { state_ = 0; }

  std::uint32_t signature() const { return state_; }

  /// Absorbs one clock's worth of response bits (0/1 values). Bits beyond
  /// `stages` fold onto stage (i mod stages).
  void absorb(std::span<const std::uint8_t> response);

 private:
  unsigned stages_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_ = 0;
  // Batched per-clock counter (absorb runs once per simulated cycle).
  obs::LocalCounter cycles_absorbed_{"bist.misr_cycles_absorbed"};
};

}  // namespace fbt
