// Patterns of signal transitions (dissertation §5.1, ref [90]).
//
// A state-transition's *pattern of signal-transitions* (PST) is the set of
// lines that switch during it, each tagged with its direction. Bounding
// on-chip generation by "the cycle's PST must be a subset of some PST seen
// during functional operation" is strictly stronger than the switching-
// activity bound: it limits the count AND restricts the switching to signal
// transitions that actually occur functionally, so slow paths that are never
// exercised functionally cannot be sensitized either (the over-testing mode
// SWA alone cannot exclude).
//
// Representation: a bitset of 2 bits per line (rising / falling), plus a
// 64-bit folded signature for O(1) superset prefiltering.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

/// The PST of one clock cycle.
class TransitionPattern {
 public:
  explicit TransitionPattern(std::size_t num_lines)
      : words_((2 * num_lines + 63) / 64, 0) {}

  /// Marks line `line` as switching in direction `rising`.
  void mark(NodeId line, bool rising) {
    const std::size_t bit = 2 * line + (rising ? 0 : 1);
    words_[bit / 64] |= 1ULL << (bit % 64);
    signature_ |= 1ULL << (bit % 64);
    ++count_;
  }

  /// True when this pattern is a subset of `other`.
  bool subset_of(const TransitionPattern& other) const {
    if (count_ > other.count_) return false;
    if ((signature_ & ~other.signature_) != 0) return false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  std::size_t switching_lines() const { return count_; }
  std::uint64_t signature() const { return signature_; }
  bool operator==(const TransitionPattern& other) const {
    return words_ == other.words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t signature_ = 0;  ///< fold of set bit positions mod 64
  std::size_t count_ = 0;
};

/// Builds the PST between two settled line-value vectors.
TransitionPattern make_transition_pattern(
    const std::vector<std::uint8_t>& prev_values,
    const std::vector<std::uint8_t>& values);

/// Collection of the PSTs observed during functional operation. Deduplicated
/// and capped; the subset query is prefiltered by popcount and signature.
class TransitionPatternStore {
 public:
  explicit TransitionPatternStore(std::size_t max_patterns = 4096)
      : cap_(max_patterns) {}

  /// Records a functional PST. Duplicates and patterns subsumed by an
  /// existing superset are dropped; returns whether it was stored.
  bool record(TransitionPattern pattern);

  /// True when `pattern` is a subset of some recorded pattern (the §5.1
  /// admissibility condition for an on-chip state-transition).
  bool admits(const TransitionPattern& pattern) const;

  std::size_t size() const { return patterns_.size(); }
  bool saturated() const { return patterns_.size() >= cap_; }

 private:
  std::size_t cap_;
  std::vector<TransitionPattern> patterns_;
};

}  // namespace fbt
