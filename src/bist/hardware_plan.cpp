#include "bist/hardware_plan.hpp"

#include <algorithm>

#include "bist/counters.hpp"
#include "obs/instrument.hpp"

namespace fbt {
namespace {

BistHardwarePlan base_plan(const Tpg& tpg, const ScanChains& scan,
                           std::size_t lmax, std::size_t nseg_max,
                           std::size_t num_sequences, std::size_t num_seeds) {
  BistHardwarePlan plan;
  plan.lfsr_bits = tpg.config().lfsr_stages;
  plan.bias_gates = tpg.bias_gate_count();
  plan.bias_gate_inputs = tpg.config().bias_bits;
  plan.cycle_counter_bits = bits_for(std::max<std::size_t>(2, lmax));
  plan.shift_counter_bits =
      bits_for(std::max<std::size_t>(2, scan.longest_length()));
  plan.segment_counter_bits = bits_for(std::max<std::size_t>(2, nseg_max));
  plan.sequence_counter_bits =
      bits_for(std::max<std::size_t>(2, num_sequences));
  plan.seed_rom_bits = num_seeds * plan.lfsr_bits;
  return plan;
}

}  // namespace

BistHardwarePlan plan_functional_bist_hardware(
    const Tpg& tpg, const ScanChains& scan, const FunctionalBistResult& run) {
  FBT_OBS_PHASE("cost");
  return base_plan(tpg, scan, run.lmax, run.nseg_max, run.sequences.size(),
                   run.num_seeds);
}

BistHardwarePlan plan_hold_bist_hardware(const Tpg& tpg, const ScanChains& scan,
                                         const FunctionalBistResult& base_run,
                                         const HoldSelectionResult& hold_run) {
  BistHardwarePlan plan = base_plan(
      tpg, scan, std::max(base_run.lmax, hold_run.lmax),
      std::max(base_run.nseg_max, hold_run.nseg_max),
      std::max(base_run.sequences.size(), hold_run.num_sequences),
      base_run.num_seeds + hold_run.num_seeds);
  if (!hold_run.selected.empty()) {
    plan.with_hold = true;
    plan.hold_sets = hold_run.selected.size();
    plan.set_counter_bits =
        bits_for(std::max<std::size_t>(2, hold_run.selected.size()));
    plan.decoder_outputs = hold_run.selected.size();
  }
  return plan;
}

}  // namespace fbt
