// Counter and control-signal hardware models (dissertation Figs. 4.6, 4.11,
// 4.13).
//
// The BIST controller tracks progress with four counters (clock cycle, shift,
// segment, sequence) and derives the test-apply and hold-enable strobes from
// the clock-cycle counter's low-order bits through NOR gates. These classes
// model the cycle-accurate behaviour; the area model charges their bits.
#pragma once

#include <cstdint>

#include "util/require.hpp"

namespace fbt {

/// Number of bits needed to count up to `max_value` (>= 1).
inline unsigned bits_for(std::uint64_t max_value) {
  unsigned bits = 1;
  while ((1ULL << bits) <= max_value) ++bits;
  return bits;
}

/// Free-running up-counter of a fixed width.
class UpCounter {
 public:
  explicit UpCounter(unsigned bits) : bits_(bits) {
    require(bits >= 1 && bits <= 63, "UpCounter", "bits must be in 1..63");
  }

  unsigned bits() const { return bits_; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }
  void tick() { value_ = (value_ + 1) & ((1ULL << bits_) - 1); }

 private:
  unsigned bits_;
  std::uint64_t value_ = 0;
};

/// Test-apply strobe of Fig. 4.6: the NOR of the clock-cycle counter's
/// rightmost q bits -- high every 2^q cycles. With q=1 (the dissertation's
/// choice) the inverted rightmost bit is used directly and no NOR is needed.
inline bool apply_signal(const UpCounter& cycle_counter, unsigned q) {
  require(q >= 1 && q < cycle_counter.bits(), "apply_signal",
          "q must be in [1, counter bits)");
  return (cycle_counter.value() & ((1ULL << q) - 1)) == 0;
}

/// Hold-enable strobe of Fig. 4.11: the NOR of the rightmost h bits -- state
/// holding is performed in the following clock cycle, i.e. every 2^h cycles.
inline bool hold_enable(const UpCounter& cycle_counter, unsigned h) {
  require(h >= 1 && h < cycle_counter.bits(), "hold_enable",
          "h must be in [1, counter bits)");
  return (cycle_counter.value() & ((1ULL << h) - 1)) == 0;
}

/// One-hot decoder of Fig. 4.13: routes the shared hold-enable to the
/// selected hold set.
class SetDecoder {
 public:
  explicit SetDecoder(std::size_t outputs) : outputs_(outputs) {
    require(outputs >= 1, "SetDecoder", "need at least one output");
  }

  std::size_t outputs() const { return outputs_; }
  unsigned select_bits() const { return bits_for(outputs_ - 1); }

  /// Decoded hold-enable lines for the given set-counter value.
  bool line(std::size_t index, std::uint64_t set_counter_value,
            bool hold_en) const {
    require(index < outputs_, "SetDecoder::line", "index out of range");
    return hold_en && set_counter_value == index;
  }

 private:
  std::size_t outputs_;
};

}  // namespace fbt
