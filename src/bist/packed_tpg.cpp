#include "bist/packed_tpg.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "util/require.hpp"

namespace fbt {

PackedTpg::PackedTpg(const Tpg& tpg)
    : tpg_(&tpg),
      stages_(tpg.config().lfsr_stages),
      taps_mask_(Lfsr::primitive_taps(tpg.config().lfsr_stages)) {
  lfsr_.assign(stages_, 0);
  sr_.assign(tpg.shift_register_size(), 0);
}

void PackedTpg::reseed(std::span<const std::uint32_t> seeds) {
  require(!seeds.empty() && seeds.size() <= kLanes, "PackedTpg::reseed",
          "seed count must be 1..64");
  const std::uint32_t mask =
      stages_ == 32 ? 0xffffffffu : ((1u << stages_) - 1);
  std::fill(lfsr_.begin(), lfsr_.end(), 0ULL);
  for (std::size_t k = 0; k < kLanes; ++k) {
    // Lanes beyond the seed span replicate seed 1; their output is ignored.
    std::uint32_t state = (k < seeds.size() ? seeds[k] : 1u) & mask;
    if (state == 0) state = 1;  // XOR-feedback lockup state, as Lfsr::seed
    for (unsigned j = 0; j < stages_; ++j) {
      if (state & (1u << j)) lfsr_[j] |= 1ULL << k;
    }
  }
  // Initialization: clock the shift register full before pattern generation.
  for (std::size_t c = 0; c < sr_.size(); ++c) clock_shift_register();
}

void PackedTpg::clock_shift_register() {
#if FBT_OBS_ENABLED
  lfsr_cycles_.add(1);
#endif
  // Fibonacci LFSR step, bit-sliced: the parity of the tapped stages is the
  // XOR of their stage words; stages shift towards Qn.
  std::uint64_t feedback = 0;
  for (unsigned j = 0; j < stages_; ++j) {
    if (taps_mask_ & (1u << j)) feedback ^= lfsr_[j];
  }
  for (unsigned j = stages_ - 1; j > 0; --j) lfsr_[j] = lfsr_[j - 1];
  lfsr_[0] = feedback;
  const std::uint64_t out = lfsr_[stages_ - 1];  // Qn drives the SR
  for (std::size_t k = sr_.size(); k > 1; --k) sr_[k - 1] = sr_[k - 2];
  if (!sr_.empty()) sr_[0] = out;
}

void PackedTpg::next_vectors(std::span<std::uint64_t> pi_words) {
#if FBT_OBS_ENABLED
  vectors_generated_.add(1);
#endif
  const InputCube& cube = tpg_->cube();
  require(pi_words.size() == cube.values.size(), "PackedTpg::next_vectors",
          "packed word count must equal the input count");
  clock_shift_register();
  for (std::size_t i = 0; i < pi_words.size(); ++i) {
    const std::vector<std::uint32_t>& taps = tpg_->input_taps(i);
    const Val3 c = cube.values[i];
    if (c == Val3::kX) {
      pi_words[i] = sr_[taps[0]];
    } else if (c == Val3::k0) {
      std::uint64_t acc = ~0ULL;
      for (const std::uint32_t t : taps) acc &= sr_[t];
      pi_words[i] = acc;
    } else {
      std::uint64_t acc = 0;
      for (const std::uint32_t t : taps) acc |= sr_[t];
      pi_words[i] = acc;
    }
  }
}

}  // namespace fbt
