// Lane-sliced test pattern generator: 64 independent TPG instances
// (LFSR + shift register + biasing gates, dissertation §4.3, Fig. 4.8)
// clocked in lockstep, producing packed primary-input words.
//
// Bit-sliced representation: for every LFSR stage and every shift-register
// position there is one 64-bit word whose bit k is lane k's value of that
// flip-flop. A step is then a handful of word XOR/moves instead of 64 scalar
// LFSR steps, and the biased input taps reduce to word AND/OR over the same
// tap positions the scalar Tpg uses. Each lane reproduces a scalar Tpg
// reseeded with that lane's seed, bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/tpg.hpp"
#include "obs/metrics.hpp"

namespace fbt {

class PackedTpg {
 public:
  static constexpr std::size_t kLanes = 64;

  /// Shares the scalar Tpg's cube, tap allocation, and LFSR polynomial.
  /// `tpg` must outlive this object.
  explicit PackedTpg(const Tpg& tpg);

  /// Loads one LFSR seed per lane (1..64 seeds; remaining lanes get seed 1)
  /// and clocks every shift register full, exactly like Tpg::reseed.
  void reseed(std::span<const std::uint32_t> seeds);

  /// Advances one clock and writes the packed primary-input words (bit k of
  /// `pi_words[i]` = lane k's value of input i). Size must equal the input
  /// count.
  void next_vectors(std::span<std::uint64_t> pi_words);

 private:
  void clock_shift_register();

  const Tpg* tpg_;
  unsigned stages_;
  std::uint32_t taps_mask_;
  std::vector<std::uint64_t> lfsr_;  ///< bit-sliced LFSR stages (Q1 first)
  std::vector<std::uint64_t> sr_;    ///< bit-sliced shift register
  // Batched per-clock counters; see the Tpg members of the same shape.
  obs::LocalCounter lfsr_cycles_{"bist.packed_lfsr_cycles"};
  obs::LocalCounter vectors_generated_{"bist.packed_tpg_vectors_generated"};
};

}  // namespace fbt
