// State-holding DFT for fault-coverage recovery (dissertation §4.5).
//
// Exclusive use of functional broadside tests can leave faults undetected
// (they require unreachable states). Holding a set of state variables every
// 2^h clock cycles during on-chip generation steers the circuit into
// unreachable -- but switching-bounded -- states that detect some of those
// faults. The set-selection procedure builds a full binary tree over the
// state variables (Fig. 4.12): the root holds all of them, children split
// their parent randomly in half; each node's detecting ability Det is
// measured by a cheap construction run (R = Q = 1) against the residual fault
// set Fr; a bottom-up pass decides where splitting beats holding together;
// finally each surviving non-overlapping subset is committed with a full
// construction run (R = 3, Q = 5) if it detects additional faults.
#pragma once

#include <cstdint>
#include <vector>

#include "bist/functional_bist.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace fbt {

struct HoldSelectionConfig {
  unsigned tree_height = 4;      ///< H (dissertation: 6; scaled by default)
  unsigned hold_period_log2 = 2; ///< h: hold every 4 cycles (§4.6)
  /// Construction parameters for Det evaluation (R = Q = 1 per §4.6).
  FunctionalBistConfig eval;
  /// Construction parameters for committed sets (R = 3, Q = 5 per §4.6).
  FunctionalBistConfig commit;
};

struct HoldSetRun {
  std::vector<std::size_t> flops;  ///< held state variables (flop indices)
  FunctionalBistResult result;
};

struct HoldSelectionResult {
  std::vector<HoldSetRun> selected;  ///< N_h committed sets, in order of use
  std::size_t total_held_flops = 0;  ///< N_bits
  std::size_t num_sequences = 0;     ///< N_multi over all sets
  std::size_t nseg_max = 0;
  std::size_t lmax = 0;
  std::size_t num_seeds = 0;
  std::size_t num_tests = 0;
  double peak_swa = 0.0;
  std::size_t newly_detected = 0;  ///< faults recovered from Fr
};

/// Runs set selection + committed generation. `detect_count` carries the
/// phase-1 (functional-only) detection state in and the final state out; the
/// residual set Fr is exactly the faults below the detect limit on entry.
HoldSelectionResult select_and_run_hold_sets(
    const Netlist& netlist, const TransitionFaultList& faults,
    std::vector<std::uint32_t>& detect_count, const HoldSelectionConfig& config,
    std::uint64_t rng_seed);

}  // namespace fbt
