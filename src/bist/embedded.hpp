// Embedded-block composition and functional switching-activity calibration
// (dissertation §4.1 Fig. 4.1, §4.4, §4.6).
//
// A target circuit embedded in a larger design has its primary inputs driven
// by another block's primary outputs, which constrains the input sequences it
// can see. The constraints are captured by simulating functional input
// sequences of the complete design (driving block + target) and recording the
// peak per-cycle switching activity inside the target: SWA_func. The "buffers"
// driving block (straight feed-through) represents the unconstrained case.
#pragma once

#include <cstdint>
#include <memory>

#include "bist/signal_transitions.hpp"
#include "bist/tpg.hpp"
#include "netlist/netlist.hpp"

namespace fbt {

struct SwaCalibrationConfig {
  std::size_t num_sequences = 16;    ///< dissertation: 30
  std::size_t sequence_length = 4096;  ///< dissertation: 30000
  TpgConfig tpg;                     ///< TPG built for the driving block
  std::uint64_t rng_seed = 7;
};

struct SwaCalibration {
  double peak_percent = 0.0;  ///< SWA_func
};

/// Simulates `config.num_sequences` functional input sequences through
/// driver -> target and returns the peak switching activity observed in the
/// target. Requires driver.num_outputs() >= target.num_inputs(); the first
/// num_inputs() driver outputs feed the target's inputs in order.
/// `target_flat` (optional) shares a pre-built FlatFanins CSR of `target`
/// with the internal simulator (the serving cache's copy); nullptr rebuilds
/// one. It never changes the measured value.
SwaCalibration measure_swa_func(
    const Netlist& target, const Netlist& driver,
    const SwaCalibrationConfig& config,
    std::shared_ptr<const class FlatFanins> target_flat = nullptr);

/// Full functional profile: the SWA peak plus the store of observed signal-
/// transition patterns (§5.1, consumed by the pattern-bound generation mode).
struct FunctionalProfile {
  double peak_percent = 0.0;
  TransitionPatternStore patterns;
};
FunctionalProfile measure_functional_profile(
    const Netlist& target, const Netlist& driver,
    const SwaCalibrationConfig& config, std::size_t max_patterns = 4096);

}  // namespace fbt
