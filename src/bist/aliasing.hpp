// MISR aliasing analysis (dissertation §4.2; classic signature analysis).
//
// A faulty response stream aliases when the MISR's final signature equals
// the golden one. For an n-stage MISR with a primitive polynomial the
// theoretical asymptotic aliasing probability over random error streams is
// 2^-n; the Monte-Carlo estimate here validates the hardware model against
// it (bench_fig4_hw / unit tests).
#pragma once

#include <cstddef>
#include <cstdint>

namespace fbt {

/// Theoretical asymptotic aliasing probability of an n-stage MISR.
double misr_theoretical_aliasing(unsigned stages);

/// Monte-Carlo estimate: `trials` random error streams of `cycles` cycles and
/// `width` response bits each are injected on top of a random golden stream;
/// returns the fraction whose signature matches the golden signature.
/// Deterministic in `seed`.
double misr_empirical_aliasing(unsigned stages, std::size_t width,
                               std::size_t cycles, std::size_t trials,
                               std::uint64_t seed);

}  // namespace fbt
