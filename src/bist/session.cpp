#include "bist/session.hpp"

#include <algorithm>

#include "bist/tpg.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

/// Scalar settle with an optional gross-delay transition fault on one line:
/// an edge of the faulty direction arrives one clock late, so in the cycle
/// where the fault-free value first flips, the line still shows its previous
/// value.
class FaultySettler {
 public:
  FaultySettler(const Netlist& netlist, NodeId faulty_line, bool rising)
      : netlist_(&netlist),
        faulty_line_(faulty_line),
        rising_(rising),
        values_(netlist.size(), 0) {}

  void settle(std::span<const std::uint8_t> pi,
              std::span<const std::uint8_t> state) {
    for (std::size_t i = 0; i < pi.size(); ++i) {
      values_[netlist_->inputs()[i]] = pi[i];
    }
    for (std::size_t i = 0; i < state.size(); ++i) {
      values_[netlist_->flops()[i]] = state[i];
    }
    for (NodeId id = 0; id < netlist_->size(); ++id) {
      const GateType t = netlist_->type(id);
      if (t == GateType::kConst0) values_[id] = 0;
      if (t == GateType::kConst1) values_[id] = 1;
    }
    maybe_force(faulty_line_, /*is_source=*/true);
    std::vector<std::uint8_t> fanins;
    for (const NodeId id : netlist_->eval_order()) {
      const Gate& g = netlist_->gate(id);
      fanins.clear();
      for (const NodeId f : g.fanins) fanins.push_back(values_[f]);
      values_[id] = eval_gate2(g.type, fanins);
      maybe_force(id, /*is_source=*/false);
    }
  }

  std::uint8_t value(NodeId id) const { return values_[id]; }

  std::vector<std::uint8_t> next_state() const {
    std::vector<std::uint8_t> s(netlist_->num_flops());
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = values_[netlist_->dff_input(netlist_->flops()[i])];
    }
    return s;
  }

 private:
  void maybe_force(NodeId id, bool is_source) {
    if (id != faulty_line_ || faulty_line_ == kNoNode) return;
    if (is_source &&
        is_combinational(netlist_->gate(faulty_line_).type)) {
      return;  // combinational faulty line is forced during eval instead
    }
    if (!is_source &&
        !is_combinational(netlist_->gate(faulty_line_).type)) {
      return;
    }
    const std::uint8_t fault_free = values_[id];
    if (have_prev_ && fault_free != prev_fault_free_) {
      const bool is_rising_edge = fault_free == 1;
      if (is_rising_edge == rising_) values_[id] = prev_fault_free_;
    }
    prev_fault_free_ = fault_free;
    have_prev_ = true;
  }

  const Netlist* netlist_;
  NodeId faulty_line_;
  bool rising_;
  std::vector<std::uint8_t> values_;
  std::uint8_t prev_fault_free_ = 0;
  bool have_prev_ = false;
};

}  // namespace

SessionReport run_bist_session(const Netlist& netlist,
                               const FunctionalBistResult& plan,
                               const ScanChains& scan,
                               const SessionConfig& config,
                               NodeId faulty_line, bool faulty_rising,
                               SessionObserver* observer) {
  require(config.q >= 1, "run_bist_session", "q must be >= 1");
  const bool may_hold = !config.hold_sets.empty();
  if (may_hold) {
    require(config.hold_period_log2 >= 1, "run_bist_session",
            "hold_period_log2 (h) must be >= 1 when hold sets are given");
    for (const auto& set : config.hold_sets) {
      for (const std::size_t f : set) {
        require(f < netlist.num_flops(), "run_bist_session",
                "hold set flop index out of range");
      }
    }
    for (const std::size_t s : config.hold_set_of_sequence) {
      require(s == kNoHoldSet || s < config.hold_sets.size(),
              "run_bist_session", "hold set index out of range");
    }
  }
  const std::size_t hold_period =
      may_hold ? (std::size_t{1} << config.hold_period_log2) : 0;

  SessionReport report;
  Tpg tpg(netlist, config.tpg);
  Misr misr(config.misr_stages);
  misr.reset();
  FaultySettler settler(netlist, faulty_line, faulty_rising);

  // Drive everything with the controller FSM (Fig. 4.2). Its plan mirrors
  // the generation result's sequence/segment structure.
  BistControllerPlan plan_fsm;
  plan_fsm.shift_register_size = tpg.shift_register_size();
  plan_fsm.scan_length = scan.longest_length();
  plan_fsm.q = config.q;
  for (const SequenceRecord& seq : plan.sequences) {
    std::vector<std::size_t> lens;
    for (const SegmentRecord& seg : seq.segments) lens.push_back(seg.length);
    plan_fsm.sequences.push_back(std::move(lens));
  }
  BistController ctrl(std::move(plan_fsm));

  std::vector<std::uint8_t> state(netlist.num_flops(), 0);
  std::vector<std::uint8_t> po(netlist.num_outputs());
  std::vector<std::uint8_t> shift_bits(
      std::max<std::size_t>(1, scan.num_chains()));
  std::vector<std::uint8_t> shift_snapshot;  // state at capture
  std::size_t shift_cycle = 0;               // within the current burst
  bool tpg_pending_reseed = true;
  std::vector<std::uint8_t> pi;  // last applied TPG vector

  while (!ctrl.done()) {
    const std::size_t seq_index = ctrl.sequence_index();
    const std::size_t seg_index = ctrl.segment_index();
    const std::size_t apply_index = ctrl.apply_cycle();
    const bool capture = ctrl.at_capture();
    const BistMode executed = ctrl.tick();
    ++report.total_cycles;
    bool applied = false;

    switch (executed) {
      case BistMode::kCircuitInit:
        // Shifting in the reachable all-0 initial state; the state is
        // complete when the phase ends.
        std::fill(state.begin(), state.end(), 0);
        break;
      case BistMode::kSeedLoad:
        tpg_pending_reseed = true;
        break;
      case BistMode::kShiftRegInit:
        // The SR fill is emulated inside Tpg::reseed; apply it once when
        // the phase completes (the controller accounts its cycles).
        break;
      case BistMode::kApply: {
        if (tpg_pending_reseed) {
          tpg.reseed(plan.sequences[seq_index].segments[seg_index].seed);
          tpg_pending_reseed = false;
        }
        pi = tpg.next_vector();
        settler.settle(pi, state);
        ++report.functional_cycles;
        applied = true;
        if (capture) {
          for (std::size_t k = 0; k < po.size(); ++k) {
            po[k] = settler.value(netlist.outputs()[k]);
          }
          misr.absorb(po);
          ++report.tests_applied;
        }
        std::vector<std::uint8_t> next = settler.next_state();
        // State holding (§4.5): the active set's variables keep their values
        // on the transition out of apply cycles divisible by 2^h.
        if (may_hold && apply_index % hold_period == 0 &&
            seq_index < config.hold_set_of_sequence.size() &&
            config.hold_set_of_sequence[seq_index] != kNoHoldSet) {
          const auto& held =
              config.hold_sets[config.hold_set_of_sequence[seq_index]];
          for (const std::size_t f : held) next[f] = state[f];
        }
        state = std::move(next);
        if (capture) {
          shift_snapshot = state;  // s(i+2), about to circulate
          shift_cycle = 0;
        }
        break;
      }
      case BistMode::kCircularShift: {
        // One rotation step: the MISR absorbs the scan-out bit of every
        // chain while the captured state circulates back into place.
        std::size_t base = 0;
        for (std::size_t ch = 0; ch < scan.num_chains(); ++ch) {
          const std::size_t len = scan.chain(ch).size();
          shift_bits[ch] =
              len == 0 ? 0
                       : shift_snapshot[base + (len - 1 + shift_cycle) % len];
          base += len;
        }
        misr.absorb(std::span(shift_bits.data(), scan.num_chains()));
        ++shift_cycle;
        ++report.shift_cycles;
        break;
      }
      default:
        break;
    }

    if (observer != nullptr) {
      SessionCycle cycle;
      cycle.index = report.total_cycles - 1;
      cycle.mode = executed;
      cycle.capture = capture;
      cycle.sequence = seq_index;
      cycle.segment = seg_index;
      cycle.apply_cycle = apply_index;
      if (applied) {
        cycle.pi = pi;
        cycle.state = state;
      }
      cycle.misr = misr.signature();
      observer->on_cycle(cycle);
    }
  }
  require(report.total_cycles == ctrl.total_cycles(), "run_bist_session",
          "internal: controller/session cycle accounting diverged");
  report.signature = misr.signature();
  return report;
}

}  // namespace fbt
