#include "bist/area_model.hpp"

#include "util/require.hpp"

namespace fbt {
namespace {

// Cell areas in um^2, representative of a generic 0.18 um standard-cell
// library (2-input NAND ~ 10 um^2, scan flop ~ 86 um^2).
constexpr double kFlopArea = 64.0;
constexpr double kScanMuxArea = 22.0;
constexpr double kInvArea = 7.0;
constexpr double kGate2Area = 10.0;       // 2-input NAND/NOR/AND/OR
constexpr double kGateExtraInput = 4.0;   // per input beyond 2
constexpr double kXor2Area = 20.0;
constexpr double kMux2Area = 22.0;
constexpr double kClockGateArea = 35.0;   // latch + AND (Fig. 4.10)
constexpr double kRomBitArea = 0.7;
constexpr double kCounterLogicPerBit = 15.0;  // incrementer + compare slice
constexpr double kControllerArea = 4400.0;    // mode FSM + clock gating tree

double gate_area(GateType type, std::size_t fanins) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kDff:
      return kFlopArea + kScanMuxArea;  // scan flop
    case GateType::kBuf:
      return kInvArea;
    case GateType::kNot:
      return kInvArea;
    case GateType::kXor:
    case GateType::kXnor:
      return kXor2Area +
             (fanins > 2 ? kXor2Area * static_cast<double>(fanins - 2) : 0.0);
    default:
      return kGate2Area +
             kGateExtraInput *
                 static_cast<double>(fanins > 2 ? fanins - 2 : 0);
  }
}

double counter_area(unsigned bits) {
  return bits * (kFlopArea + kCounterLogicPerBit);
}

}  // namespace

double bist_area(const BistHardwarePlan& plan) {
  double area = 0.0;

  // LFSR: flops + feedback XORs + seed-load muxes.
  area += plan.lfsr_bits * (kFlopArea + kMux2Area);
  area += 3 * kXor2Area;  // <= 4-tap primitive polynomials

  // Repeated-synchronization biasing gates (charged per §4.6).
  area += static_cast<double>(plan.bias_gates) *
          (kGate2Area +
           kGateExtraInput *
               static_cast<double>(plan.bias_gate_inputs > 2
                                       ? plan.bias_gate_inputs - 2
                                       : 0));

  // Counters and their strobe gates.
  area += counter_area(plan.cycle_counter_bits);
  area += counter_area(plan.shift_counter_bits);
  area += counter_area(plan.segment_counter_bits);
  area += counter_area(plan.sequence_counter_bits);
  area += 2 * kGate2Area;  // apply / hold NOR gates

  // Controller FSM and clock-gating network.
  area += kControllerArea;

  // Seed storage.
  area += static_cast<double>(plan.seed_rom_bits) * kRomBitArea;

  if (plan.with_hold) {
    area += static_cast<double>(plan.hold_sets) * kClockGateArea;
    area += counter_area(plan.set_counter_bits);
    area += static_cast<double>(plan.decoder_outputs) *
            (kGate2Area + kInvArea);  // one-hot decode per line
  }
  return area;
}

double circuit_area(const Netlist& netlist) {
  require(netlist.finalized(), "circuit_area", "netlist must be finalized");
  double area = 0.0;
  for (NodeId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    area += gate_area(g.type, g.fanins.size());
  }
  return area;
}

}  // namespace fbt
