// The genuine ISCAS89 s27 benchmark, embedded verbatim.
//
// s27 is small enough to transcribe exactly; it anchors the test suite with
// known-good behaviour (4 primary inputs, 1 primary output, 3 flip-flops).
#pragma once

#include <string_view>

#include "netlist/netlist.hpp"

namespace fbt {

/// .bench source text of s27.
std::string_view s27_bench_text();

/// Parsed, finalized s27 netlist.
Netlist make_s27();

}  // namespace fbt
