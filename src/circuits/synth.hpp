// Deterministic synthetic sequential-circuit generator.
//
// Stands in for benchmark netlists we cannot embed verbatim (see DESIGN.md,
// Substitutions #1). Given interface parameters (N_PI, N_PO, N_FF) and a gate
// budget, it builds a seeded random DAG with the structural character that the
// dissertation's experiments depend on: reconvergent fanout, mixed gate types
// (including some parity logic, which is random-pattern resistant), input
// logic cones that consume every primary input and state variable, deep
// next-state logic, and negligible dead logic.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace fbt {

/// Interface + size parameters of a synthetic circuit.
struct SynthParams {
  std::string name;
  std::size_t num_inputs = 1;
  std::size_t num_outputs = 1;
  std::size_t num_flops = 0;
  std::size_t num_gates = 16;   ///< combinational gate budget
  std::uint64_t seed = 1;
  /// Fraction (percent) of XOR/XNOR gates; parity logic resists random
  /// patterns and so controls how hard the circuit is for BIST.
  unsigned parity_percent = 6;
  /// Maximum logic depth (levels). 0 selects an ISCAS-like automatic depth
  /// of max(10, min(28, num_gates / 120)). Without a cap, random DAGs grow
  /// chains far deeper than real benchmark circuits, which makes long paths
  /// structurally untestable and distorts every path-based experiment.
  unsigned max_depth = 0;
};

/// Builds and finalizes a synthetic circuit. Deterministic in `params`.
Netlist generate_synthetic(const SynthParams& params);

/// Builds the "buffers" driving block of §4.6: `width` primary inputs buffered
/// straight to `width` primary outputs (imposes no input constraints).
Netlist make_buffers_block(std::size_t width);

}  // namespace fbt
