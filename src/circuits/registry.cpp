#include "circuits/registry.hpp"

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "util/require.hpp"

namespace fbt {

const std::vector<BenchmarkSpec>& benchmark_registry() {
  // Interface counts: ISCAS89/ITC99 standard statistics for the chapter-2/3
  // set; dissertation Table 4.2 for the chapter-4 embedded set. Gate budgets
  // marked "scaled" are reduced from the published sizes.
  static const std::vector<BenchmarkSpec> kRegistry = {
      // ---- chapter 2/3: ISCAS89 -----------------------------------------
      {"s27", 4, 1, 3, 0, 0, false, "genuine netlist"},
      {"s298", 3, 6, 14, 119, 298, true, ""},
      {"s344", 9, 11, 15, 160, 344, true, ""},
      {"s349", 9, 11, 15, 161, 349, true, ""},
      {"s382", 3, 6, 21, 158, 382, true, ""},
      {"s386", 7, 7, 6, 159, 386, true, ""},
      {"s444", 3, 6, 21, 181, 444, true, ""},
      {"s510", 19, 7, 6, 211, 510, true, ""},
      {"s526", 3, 6, 21, 193, 526, true, ""},
      {"s641", 35, 24, 19, 379, 641, true, ""},
      {"s713", 35, 23, 19, 393, 713, true, ""},
      {"s820", 18, 19, 5, 289, 820, true, ""},
      {"s832", 18, 19, 5, 287, 832, true, ""},
      {"s953", 16, 23, 29, 395, 953, true, ""},
      {"s1196", 14, 14, 18, 529, 1196, true, ""},
      {"s1238", 14, 14, 18, 508, 1238, true, ""},
      {"s1423", 17, 5, 74, 657, 1423, true, ""},
      {"s1488", 8, 19, 6, 653, 1488, true, ""},
      {"s1494", 8, 19, 6, 647, 1494, true, ""},
      {"s5378", 35, 49, 179, 2200, 5378, true, "gates scaled from 2779"},
      {"s9234", 36, 39, 211, 2800, 9234, true, "gates scaled from 5597"},
      {"s13207", 62, 152, 638, 3200, 13207, true, "gates scaled from 7951"},
      {"s35932", 35, 320, 1728, 4200, 35932, true, "gates scaled from 16065"},
      {"s38417", 28, 106, 1636, 4600, 38417, true, "gates scaled from 22179"},
      {"s38584", 38, 304, 1426, 4400, 38584, true, "gates scaled from 19253"},
      // ---- chapter 3: ITC99 ----------------------------------------------
      {"b11", 7, 6, 31, 366, 9911, true, ""},
      {"b12", 5, 6, 121, 904, 9912, true, ""},
      // ---- chapter 4: embedded set (Table 4.2 interface counts) ----------
      {"s35932e", 35, 320, 1728, 4200, 45932, true,
       "chapter-4 s35932; gates scaled from 16065"},
      {"s38584e", 12, 278, 1164, 4000, 48584, true,
       "chapter-4 s38584 (Table 4.2 interface); gates scaled"},
      {"b14", 32, 54, 215, 2600, 9914, true, "gates scaled from ~4800"},
      {"b20", 32, 22, 430, 3400, 9920, true, "gates scaled from ~9000"},
      {"spi", 45, 45, 229, 2400, 20051, true, "gates scaled from ~3200"},
      {"wb_dma", 215, 215, 523, 2800, 20052, true, "gates scaled from ~3600"},
      {"systemcaes", 258, 129, 670, 3600, 20053, true,
       "gates scaled from ~7500"},
      {"systemcdes", 130, 65, 190, 2000, 20054, true,
       "gates scaled from ~2600"},
      {"des_area", 239, 64, 128, 2400, 20055, true, "gates scaled from ~3100"},
      {"aes_core", 258, 129, 530, 3600, 20056, true,
       "gates scaled from ~11000"},
      {"wb_conmax", 1128, 1416, 770, 4600, 20057, true,
       "gates scaled from ~29000"},
      {"des_perf", 233, 64, 1200, 4800, 20058, true,
       "gates and flops scaled from ~49000 gates / 8808 flops"},
  };
  return kRegistry;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const auto& spec : benchmark_registry()) {
    if (spec.name == name) return spec;
  }
  throw Error("benchmark_spec: unknown benchmark '" + name + "'");
}

Netlist load_benchmark(const std::string& name) {
  const BenchmarkSpec& spec = benchmark_spec(name);
  if (!spec.synthetic) return make_s27();
  SynthParams params;
  params.name = spec.name;
  params.num_inputs = spec.num_inputs;
  params.num_outputs = spec.num_outputs;
  params.num_flops = spec.num_flops;
  params.num_gates = spec.num_gates;
  params.seed = spec.seed;
  return generate_synthetic(params);
}

}  // namespace fbt
