#include "circuits/synth.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string_view>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

/// Formats "<prefix><index>" into a reusable stack buffer. The netlist
/// interns the view into its name arena, so no per-node std::string is
/// allocated on the emit path (at 1M gates that is 1M saved heap churns).
struct NameBuf {
  char buf[32];
  std::string_view format(const char* prefix, std::size_t index) {
    const int n = std::snprintf(buf, sizeof(buf), "%s%zu", prefix, index);
    return {buf, static_cast<std::size_t>(n)};
  }
};

std::size_t pick_fanin_count(Pcg32& rng) {
  const std::uint32_t r = rng.below(100);
  if (r < 10) return 1;
  if (r < 68) return 2;
  if (r < 92) return 3;
  return 4;
}

/// Picks the gate function over already-chosen fanins so that the estimated
/// output signal probability stays near 1/2. Unconstrained random typing
/// drives probabilities to the rails within a few levels (an AND3 of p=0.5
/// inputs is 1 only 12.5% of the time), which leaves most of the circuit
/// static under any stimulus -- unlike real synthesized logic, whose signal
/// probabilities are roughly balanced.
GateType pick_gate_type(Pcg32& rng, unsigned parity_percent,
                        std::span<const double> fanin_probs,
                        double& out_prob) {
  if (fanin_probs.size() == 1) {
    out_prob = rng.chance(3, 4) ? 1.0 - fanin_probs[0] : fanin_probs[0];
    return out_prob == fanin_probs[0] ? GateType::kBuf : GateType::kNot;
  }
  double p_and = 1.0;
  double p_or = 1.0;
  double p_xor = 0.0;
  for (const double p : fanin_probs) {
    p_and *= p;
    p_or *= 1.0 - p;
    p_xor = p_xor * (1.0 - p) + (1.0 - p_xor) * p;
  }
  p_or = 1.0 - p_or;

  if (rng.below(100) < parity_percent) {
    out_prob = rng.chance(1, 2) ? p_xor : 1.0 - p_xor;
    return out_prob == p_xor ? GateType::kXor : GateType::kXnor;
  }

  struct Candidate {
    GateType type;
    double prob;
  };
  const Candidate candidates[] = {{GateType::kAnd, p_and},
                                  {GateType::kNand, 1.0 - p_and},
                                  {GateType::kOr, p_or},
                                  {GateType::kNor, 1.0 - p_or}};
  // Prefer candidates whose output probability stays balanced; among those,
  // choose randomly so gate-type mix stays diverse.
  std::size_t picks[4];
  std::size_t npicks = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (candidates[i].prob >= 0.30 && candidates[i].prob <= 0.70) {
      picks[npicks++] = i;
    }
  }
  std::size_t chosen;
  if (npicks > 0) {
    chosen = picks[rng.below(static_cast<std::uint32_t>(npicks))];
  } else {
    chosen = 0;
    double best = 1.0;
    for (std::size_t i = 0; i < 4; ++i) {
      const double dist = std::abs(candidates[i].prob - 0.5);
      if (dist < best) {
        best = dist;
        chosen = i;
      }
    }
  }
  out_prob = candidates[chosen].prob;
  return candidates[chosen].type;
}

}  // namespace

Netlist generate_synthetic(const SynthParams& params) {
  require(params.num_inputs >= 1, "generate_synthetic",
          "need at least one primary input");
  require(params.num_outputs >= 1, "generate_synthetic",
          "need at least one primary output");
  require(params.num_gates >= params.num_inputs + params.num_flops,
          "generate_synthetic",
          "gate budget must cover one use of every input and state variable");
  require(params.num_gates >= params.num_outputs, "generate_synthetic",
          "gate budget must cover the primary outputs");

  Pcg32 rng(params.seed, 0x9e3779b97f4a7c15ULL);
  Netlist netlist(params.name);
  NameBuf name;

  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < params.num_inputs; ++i) {
    sources.push_back(netlist.add_input(name.format("pi", i)));
  }
  std::vector<NodeId> flops;
  for (std::size_t i = 0; i < params.num_flops; ++i) {
    const NodeId ff = netlist.add_dff(name.format("ff", i));
    flops.push_back(ff);
    sources.push_back(ff);
  }

  // Queue of sources that must still acquire a fanout; consumed first so every
  // primary input and state variable drives logic.
  std::vector<NodeId> unused_sources = sources;
  // Shuffle so input cones interleave inputs and state variables.
  for (std::size_t i = unused_sources.size(); i > 1; --i) {
    std::swap(unused_sources[i - 1], unused_sources[rng.below(
                                         static_cast<std::uint32_t>(i))]);
  }
  std::size_t next_unused = 0;

  std::vector<std::uint32_t> fanout_count(netlist.size() + params.num_gates, 0);
  std::vector<unsigned> level(netlist.size() + params.num_gates, 0);
  // Estimated signal probability per node (sources balanced at 1/2).
  std::vector<double> prob(netlist.size() + params.num_gates, 0.5);
  std::vector<NodeId> gates;
  gates.reserve(params.num_gates);

  const unsigned max_depth =
      params.max_depth != 0
          ? params.max_depth
          : std::max<unsigned>(
                10, std::min<unsigned>(
                        28, static_cast<unsigned>(params.num_gates / 120)));

  // Layered construction: each gate is built toward a target level drawn
  // from [1, max_depth], its first fanin taken from the level just below
  // (realizing the level) and the rest from any shallower level. Fanout-free
  // nodes are preferred at every draw, so logic cones close and dead logic
  // stays negligible; only sink-bound gates (absorbed by flop D inputs and
  // primary outputs) are allowed at the cap itself.
  std::vector<std::vector<NodeId>> by_level(max_depth + 1);
  by_level[0] = sources;
  // Fanout-free nodes per level, with lazy deletion: nodes acquire fanout
  // between insertion and draw, so entries are validated when drawn.
  std::vector<std::vector<NodeId>> free_by_level(max_depth + 1);
  std::size_t cap_budget = params.num_flops + params.num_outputs;

  // Draws a node at `lvl`, strongly preferring fanout-free entries.
  auto draw_at = [&](unsigned lvl) -> NodeId {
    auto& free_pool = free_by_level[lvl];
    while (!free_pool.empty() && rng.chance(85, 100)) {
      const std::size_t i =
          rng.below(static_cast<std::uint32_t>(free_pool.size()));
      const NodeId cand = free_pool[i];
      free_pool[i] = free_pool.back();
      free_pool.pop_back();
      if (fanout_count[cand] == 0) return cand;
    }
    const auto& pool = by_level[lvl];
    return pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
  };

  // Scratch buffers reused across all gates: the emit loop performs no
  // per-gate heap allocation (fanins and probabilities are spans into these,
  // the name is a stack buffer, and add_gate copies into the arena/CSR).
  std::vector<NodeId> fanins;
  std::vector<double> fanin_probs;
  fanins.reserve(8);
  fanin_probs.reserve(8);

  for (std::size_t g = 0; g < params.num_gates; ++g) {
    const std::size_t nfanin = pick_fanin_count(rng);

    // Target level: uniform over [1, max_depth], but the cap level only
    // while sinks remain to absorb it, and never above the deepest populated
    // level + 1.
    unsigned target = 1 + rng.below(max_depth);
    if (target == max_depth && cap_budget == 0) --target;
    while (target > 1 && by_level[target - 1].empty()) --target;

    fanins.clear();
    // First fanin: pending unused source, or a node at target - 1.
    if (next_unused < unused_sources.size()) {
      fanins.push_back(unused_sources[next_unused++]);
    } else {
      fanins.push_back(draw_at(target - 1));
    }
    for (int attempts = 0; fanins.size() < nfanin && attempts < 24;
         ++attempts) {
      // Remaining fanins from any level < target (uniform level choice,
      // which yields both local structure and long reconvergent arcs),
      // preferring levels that still have fanout-free nodes to absorb.
      unsigned lvl_choice = rng.below(target);
      for (unsigned probe = 0; probe < target; ++probe) {
        const unsigned l = (lvl_choice + probe) % target;
        if (!free_by_level[l].empty()) {
          lvl_choice = l;
          break;
        }
      }
      if (by_level[lvl_choice].empty()) lvl_choice = 0;
      const NodeId f = draw_at(lvl_choice);
      if (std::find(fanins.begin(), fanins.end(), f) == fanins.end()) {
        fanins.push_back(f);
      }
      // On repeated collisions (tiny circuits) accept fewer fanins.
    }

    unsigned lvl = 0;
    fanin_probs.clear();
    for (const NodeId f : fanins) {
      ++fanout_count[f];
      lvl = std::max(lvl, level[f] + 1);
      fanin_probs.push_back(prob[f]);
    }
    if (lvl >= max_depth && cap_budget > 0) --cap_budget;
    double out_prob = 0.5;
    const GateType type =
        pick_gate_type(rng, params.parity_percent, fanin_probs, out_prob);
    const NodeId id = netlist.add_gate(type, name.format("g", g), fanins);
    level[id] = lvl;
    prob[id] = out_prob;
    const unsigned bucket = std::min<unsigned>(lvl, max_depth);
    by_level[bucket].push_back(id);
    if (bucket < max_depth) free_by_level[bucket].push_back(id);
    gates.push_back(id);
  }

  // Next-state functions: prefer fanout-free gates with high index (deep
  // logic), falling back to random gates from the upper half.
  std::vector<NodeId> free_gates;
  for (const NodeId g : gates) {
    if (fanout_count[g] == 0) free_gates.push_back(g);
  }
  std::size_t free_cursor = free_gates.size();
  auto take_sink = [&]() -> NodeId {
    if (free_cursor > 0) return free_gates[--free_cursor];
    const std::size_t half = gates.size() / 2;
    return gates[half + rng.below(static_cast<std::uint32_t>(
                             gates.size() - half))];
  };
  for (const NodeId ff : flops) {
    const NodeId d = take_sink();
    ++fanout_count[d];
    netlist.set_dff_input(ff, d);
  }

  // Primary outputs: first the remaining fanout-free gates, then distinct
  // random gates.
  std::vector<NodeId> po_candidates(free_gates.begin(),
                                    free_gates.begin() + free_cursor);
  std::vector<std::uint8_t> taken(netlist.size(), 0);
  std::size_t marked = 0;
  for (const NodeId g : po_candidates) {
    if (marked == params.num_outputs) break;
    netlist.mark_output(g);
    taken[g] = 1;
    ++marked;
  }
  while (marked < params.num_outputs) {
    const NodeId g =
        gates[rng.below(static_cast<std::uint32_t>(gates.size()))];
    if (taken[g]) continue;
    netlist.mark_output(g);
    taken[g] = 1;
    ++marked;
  }

  netlist.finalize();
  return netlist;
}

Netlist make_buffers_block(std::size_t width) {
  require(width >= 1, "make_buffers_block", "width must be >= 1");
  Netlist netlist("buffers" + std::to_string(width));
  NameBuf name;
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId pi = netlist.add_input(name.format("pi", i));
    const NodeId buf =
        netlist.add_gate(GateType::kBuf, name.format("po", i), {pi});
    netlist.mark_output(buf);
  }
  netlist.finalize();
  return netlist;
}

}  // namespace fbt
