// Named benchmark registry.
//
// Maps the benchmark names used throughout the dissertation's tables
// (ISCAS89, ITC99, IWLS2005) to circuit specifications. s27 is the genuine
// netlist; all other circuits are synthetic equivalents whose interface
// counts (N_PI, N_PO, N_SV) match the published values (dissertation Table
// 4.2 for the Chapter-4 set; standard ISCAS89/ITC99 statistics otherwise) and
// whose gate budgets are scaled where noted to keep single-machine runtimes
// practical. See DESIGN.md, Substitutions #1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

struct BenchmarkSpec {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_flops = 0;
  std::size_t num_gates = 0;  ///< synthetic gate budget (0 for real netlists)
  std::uint64_t seed = 0;
  bool synthetic = true;
  std::string note;  ///< scaling note when gate/flop counts were reduced
};

/// All registered benchmarks (chapter-2/3 ISCAS + chapter-4 embedded set).
const std::vector<BenchmarkSpec>& benchmark_registry();

/// Spec by name; throws fbt::Error when unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

/// Builds (or parses, for s27) the named benchmark. Deterministic.
Netlist load_benchmark(const std::string& name);

}  // namespace fbt
