// Logic value domains shared by the simulators and ATPG.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/gate_type.hpp"

namespace fbt {

/// Three-valued logic (0, 1, unknown).
enum class Val3 : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline Val3 not3(Val3 a) {
  if (a == Val3::kX) return Val3::kX;
  return a == Val3::k0 ? Val3::k1 : Val3::k0;
}

/// Evaluates one gate over three-valued fanin values.
Val3 eval_gate3(GateType type, std::span<const Val3> fanins);

/// Evaluates one gate over two-valued fanin values (0/1 in a std::uint8_t).
std::uint8_t eval_gate2(GateType type, std::span<const std::uint8_t> fanins);

/// Evaluates one gate over 64 patterns packed in std::uint64_t words.
std::uint64_t eval_gate64(GateType type, std::span<const std::uint64_t> fanins);

// Indexed variants for hot loops (fanin values gathered through an id array,
// avoiding a per-gate temporary).
std::uint8_t eval_gate2_indexed(GateType type, const std::uint32_t* fanin_ids,
                                std::size_t count, const std::uint8_t* values);
Val3 eval_gate3_indexed(GateType type, const std::uint32_t* fanin_ids,
                        std::size_t count, const Val3* values);
std::uint64_t eval_gate64_indexed(GateType type, const std::uint32_t* fanin_ids,
                                  std::size_t count,
                                  const std::uint64_t* values);

}  // namespace fbt
