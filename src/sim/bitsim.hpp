// 64-way bit-parallel combinational simulator.
//
// Each node holds one 64-bit word; bit k of every word belongs to pattern k.
// The fault simulator uses eval() for fault-free values and fault_propagate()
// for event-driven single-fault propagation over the same pattern block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

class BitSim {
 public:
  explicit BitSim(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }

  /// Sets the pattern word of a source (input, flip-flop, or any node --
  /// combinational nodes are overwritten by the next eval()).
  void set_value(NodeId id, std::uint64_t word) { values_[id] = word; }

  std::uint64_t value(NodeId id) const { return values_[id]; }

  /// Evaluates the full combinational core in topological order from the
  /// current source words.
  void eval();

  /// Writes the next-state words (flip-flop D values) into `next_state`,
  /// one word per flop in netlist().flops() order. Call after eval().
  void next_state(std::span<std::uint64_t> next_state) const;

  /// Marks the observation points used by fault_propagate(): all primary
  /// outputs plus all flip-flop D inputs (broadside capture points).
  void use_default_observation_points();

  /// Replaces the observation-point set.
  void set_observation_points(std::span<const NodeId> points);

  /// Event-driven propagation of a forced word at `site` through its fanout
  /// cone, on top of the current eval() result (which is left untouched).
  /// Returns the pattern mask on which any observation point differs from its
  /// fault-free value.
  std::uint64_t fault_propagate(NodeId site, std::uint64_t faulty_word);

  /// Bytes owned by the value/scratch arrays (resource telemetry).
  std::uint64_t footprint_bytes() const {
    std::uint64_t bytes =
        sizeof(*this) +
        (values_.size() + faulty_.size()) * sizeof(std::uint64_t) +
        (stamp_.size() + queued_stamp_.size()) * sizeof(std::uint32_t) +
        eval_ops_.size() * sizeof(EvalOp) +
        observe_.size() * sizeof(std::uint8_t) +
        level_queue_.size() * sizeof(std::vector<NodeId>);
    for (const std::vector<NodeId>& q : level_queue_) {
      bytes += q.size() * sizeof(NodeId);
    }
    return bytes;
  }

 private:
  std::uint64_t faulty_value(NodeId id) const {
    return stamp_[id] == current_stamp_ ? faulty_[id] : values_[id];
  }
  void enqueue_fanouts(NodeId id);

  // One entry per eval_order() gate. Gates with at most two fanins (all of a
  // synthesized netlist) are folded at construction into a branchless 4-entry
  // truth-table mux -- one-input gates duplicate their fanin -- so eval()
  // walks a flat 16-byte-record program instead of chasing Gate fanin
  // vectors and dispatching eval_gate64() per gate. Wider gates keep
  // `count` > 2 and fall back to the generic indexed evaluator.
  struct EvalOp {
    NodeId id = 0;            ///< output node
    NodeId fan0 = 0;          ///< count<=2: first fanin
    NodeId fan1 = 0;          ///< count<=2: second fanin
    std::uint16_t count = 0;  ///< fanin count (1 folded into 2)
    std::uint8_t tt = 0;      ///< count<=2: truth table; else GateType
    std::uint8_t pad = 0;
  };
  static_assert(sizeof(EvalOp) == 16);

  const Netlist* netlist_;
  std::vector<std::uint64_t> values_;
  std::vector<EvalOp> eval_ops_;

  // Fault propagation scratch.
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t current_stamp_ = 0;
  std::vector<std::uint8_t> observe_;
  std::vector<std::vector<NodeId>> level_queue_;
  std::vector<std::uint32_t> queued_stamp_;
};

}  // namespace fbt
