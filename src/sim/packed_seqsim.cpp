#include "sim/packed_seqsim.hpp"

#include <algorithm>
#include <bit>

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {

namespace {

inline std::uint64_t broadcast_bit(std::uint8_t v) {
  return v ? ~0ULL : 0ULL;
}

}  // namespace

PackedSeqSim::PackedSeqSim(const Netlist& netlist)
    : netlist_(&netlist), flat_(netlist) {
  require(netlist.finalized(), "PackedSeqSim", "netlist must be finalized");
  values_.assign(netlist.size(), 0);
  prev_values_.assign(netlist.size(), 0);
  state_.assign(netlist.num_flops(), 0);
  // Enough bit planes to count a toggle on every line of the circuit.
  planes_.assign(std::bit_width(netlist.size()), 0);
}

void PackedSeqSim::load_broadcast(std::span<const std::uint8_t> state,
                                  std::span<const std::uint8_t> values,
                                  std::span<const std::uint8_t> prev_values,
                                  bool have_prev) {
  require(state.size() == netlist_->num_flops(),
          "PackedSeqSim::load_broadcast", "state size must equal flop count");
  for (std::size_t i = 0; i < state.size(); ++i) {
    state_[i] = broadcast_bit(state[i]);
  }
  have_prev_ = have_prev;
  if (have_prev) {
    require(values.size() == netlist_->size() &&
                prev_values.size() == netlist_->size(),
            "PackedSeqSim::load_broadcast",
            "value vectors must cover every node when have_prev is set");
    for (std::size_t i = 0; i < values.size(); ++i) {
      values_[i] = broadcast_bit(values[i]);
      prev_values_[i] = broadcast_bit(prev_values[i]);
    }
  }
}

void PackedSeqSim::step(std::span<const std::uint64_t> pi_words,
                        std::span<std::uint32_t> toggles) {
  require(pi_words.size() == netlist_->num_inputs(), "PackedSeqSim::step",
          "packed primary input word count mismatch");
  require(toggles.size() == kLanes, "PackedSeqSim::step",
          "toggles span must have one entry per lane");

  values_.swap(prev_values_);

  // Sources.
  for (std::size_t i = 0; i < pi_words.size(); ++i) {
    values_[netlist_->inputs()[i]] = pi_words[i];
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    values_[netlist_->flops()[i]] = state_[i];
  }
  for (const NodeId id : flat_.const0_nodes()) values_[id] = 0;
  for (const NodeId id : flat_.const1_nodes()) values_[id] = ~0ULL;

  // Settle combinational logic, all 64 lanes per word operation.
  {
    const NodeId* ids = flat_.fanin_ids();
    std::uint64_t* vals = values_.data();
    for (const FlatFanins::Entry& e : flat_.entries()) {
      vals[e.node] = eval_gate64_indexed(e.type, ids + e.first, e.count, vals);
    }
#if FBT_OBS_ENABLED
    gates_evaluated_.add(flat_.entries().size());
    cycles_stepped_.add(1);
#endif
  }

  // Per-lane switching activity via carry-save vertical counters: add each
  // node's transition word (one bit per lane) into the bit planes, then read
  // the 64 lane counts back out. Mirrors SeqSim: the first step after a cold
  // load has no previous settled cycle, so no activity is measured.
  std::fill(toggles.begin(), toggles.end(), 0u);
  if (have_prev_) {
    std::fill(planes_.begin(), planes_.end(), 0ULL);
    for (NodeId id = 0; id < netlist_->size(); ++id) {
      std::uint64_t carry = values_[id] ^ prev_values_[id];
      for (std::size_t p = 0; carry != 0; ++p) {
        const std::uint64_t plane = planes_[p];
        planes_[p] = plane ^ carry;
        carry = plane & carry;
      }
    }
    for (std::size_t p = 0; p < planes_.size(); ++p) {
      std::uint64_t w = planes_[p];
      while (w != 0) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(w));
        toggles[k] += 1u << p;
        w &= w - 1;
      }
    }
  }
  have_prev_ = true;

  // State update, per lane (no holding: the packed engine falls back to the
  // scalar path for state-holding configurations).
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = values_[netlist_->dff_input(netlist_->flops()[i])];
  }
}

}  // namespace fbt
