// Fault-parallel broadside diff-word propagator (classic PPSFP).
//
// The serial grading engine (BitSim::fault_propagate) packs 64 *tests* per
// word and walks one fault at a time. This kernel flips the packing: bit k of
// every word belongs to fault lane k, and one event-driven pass propagates up
// to 64 faults' XOR-diff words through the combinational netlist for a
// single test, against a shared fault-free two-frame trace that is simulated
// once per 64-test block. A node's faulty word is reconstructed on the fly
// as broadcast(good bit) XOR diff, so only nodes inside some lane's fault
// cone are ever touched, and a lane is pruned the moment it reaches an
// observation point -- per-test detection is boolean, so the rest of that
// lane's cone is provably irrelevant (the serial engine cannot prune this
// way: its word lanes are tests and the full per-test mask feeds popcount /
// ctz). Detection at the default broadside observe set (primary outputs +
// flip-flop D inputs) is returned as a per-lane word, bit-identical to
// running BitSim::fault_propagate once per fault and reading the test's bit.
//
// Internally nodes are renumbered level-major, which collapses the event
// queue to one frontier bitmap scanned front to back: every fanout has a
// higher level than its driver, so internal ids are strictly increasing
// along any path and a single forward ctz scan drains events in topological
// order. An event push is one OR into the L1-resident bitmap (reconvergent
// duplicates merge for free) and cone-adjacent nodes share cache lines in
// the per-node record array. The fanin gather touches one 32-byte record per
// fanin (topology, good word, diff word) and is branchless: diff words of untouched
// nodes are kept at zero by resetting each propagation's touched set before
// returning (while those lines are still cache-hot), so
// faulty = broadcast(good bit) XOR diff unconditionally.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/flat_fanins.hpp"
#include "netlist/netlist.hpp"

namespace fbt {

class PackedFaultProp {
 public:
  static constexpr std::size_t kLanes = 64;

  /// `flat` shares a pre-built CSR of `netlist` (nullptr rebuilds one); the
  /// parallel grader hands the same immutable CSR to every shard, and each
  /// kernel lays its own level-major copy out from it.
  explicit PackedFaultProp(const Netlist& netlist,
                           std::shared_ptr<const FlatFanins> flat = nullptr);

  /// Binds the fault-free frame-2 trace of the current 64-test block: one
  /// word per node, bit t = test t's settled value. Copies the words into
  /// the per-node records; the span may be reused afterwards.
  void bind_good_trace(std::span<const std::uint64_t> good);

  /// Injects fault lane k (k < sites.size() <= 64) stuck at its launch-time
  /// initial value at node sites[k] and propagates all lanes' diff words for
  /// one test of the bound block. `active` bit k = lane k is launched by
  /// `test` (a non-launched lane is left fault-free, matching the serial
  /// engine's launch masking). Returns the word of lanes whose effect
  /// reached an observation point.
  std::uint64_t propagate(std::span<const NodeId> sites, std::uint64_t active,
                          unsigned test);

  /// Internal (level-major) id of a netlist node. A caller that grades many
  /// chunks against the same fault list can translate each fault site once
  /// and use propagate_internal() instead of paying the lookup per call.
  NodeId internal_id(NodeId netlist_id) const { return inv_[netlist_id]; }

  /// propagate() with sites already translated by internal_id().
  std::uint64_t propagate_internal(std::span<const NodeId> sites,
                                   std::uint64_t active, unsigned test);

  /// Cumulative diff words evaluated by propagate() over this object's
  /// lifetime (pack-efficiency telemetry; the fault simulator reads deltas).
  std::uint64_t diff_words_propagated() const {
    return diff_words_propagated_;
  }

  /// Bytes owned by the CSR view and per-node lane/scratch arrays
  /// (resource telemetry).
  std::uint64_t footprint_bytes() const;

 private:
  /// Per-node record: gate metadata and the lane words, together in one
  /// 32-byte (half cache line) struct so evaluating a node touches a single
  /// line. One-input gates are rewritten at construction as two-input gates
  /// with a duplicated fanin, so the two-input fast path (a branchless
  /// 4-entry truth-table mux keyed by `tt`) covers every node a synthesized
  /// netlist is made of, and its fanin ids live inline -- the gather issues
  /// both lane loads straight off this one record instead of bouncing
  /// through a CSR body first. Gates with more than two fanins fall back to
  /// a span in fanin_ids_ and `tt` holds the GateType for the generic
  /// accumulate loop. diff is zero for every node outside the running
  /// propagation's touched set (reset on every exit path via touched_), so
  /// the fanin gather needs no validity branch.
  struct Node {
    NodeId fan0 = 0;           ///< count==2: first fanin (internal id)
    NodeId fan1 = 0;           ///< count==2: second fanin (internal id)
    std::uint32_t first = 0;   ///< count>2: fanin span start in fanin_ids_
    std::uint16_t count = 0;   ///< fanin count (0: source; 1 folded into 2)
    std::uint8_t tt = 0;       ///< count==2: truth table; else GateType
    std::uint8_t observe = 0;  ///< PO or flop D input
    std::uint64_t good = 0;    ///< fault-free word of the bound block
    std::uint64_t diff = 0;    ///< faulty XOR good; zero when untouched
  };
  static_assert(sizeof(Node) == 32);

  const Netlist* netlist_;
  std::shared_ptr<const FlatFanins> flat_;  ///< immutable, possibly shared

  // Level-major internal id space: perm_[internal] = netlist id,
  // inv_[netlist id] = internal. All arrays below are internal-indexed and
  // all stored node ids (fanins, fanouts) are internal.
  std::vector<NodeId> perm_;
  std::vector<NodeId> inv_;

  std::vector<Node> nodes_;          ///< per-node records (level-major)
  std::vector<NodeId> fanin_ids_;    ///< >2-input fanin spans (internal ids)
  std::vector<NodeId> touched_;      ///< nodes whose diff is nonzero

  // Combinational-only fanout CSR: fanout_ids_[fanout_first_[id] ..
  // fanout_first_[id + 1]) are the combinational gates driven by node id.
  std::vector<std::uint32_t> fanout_first_;
  std::vector<NodeId> fanout_ids_;

  // Pending-event frontier, one bit per node. Bits are set at push (a
  // fanout's bit is always ahead of the scan cursor) and cleared as the
  // forward ctz scan pops them.
  std::vector<std::uint64_t> frontier_bits_;

  std::vector<std::uint64_t> inject_;  ///< forced lanes at fault sites
  // One bit per node: the node is a fault site of the current call, so its
  // inject_ word must be OR-ed over whatever its fanins evaluate to. Tiny
  // (L1-resident) so the per-eval test is a load the hot path already has
  // in cache; set during seeding, cleared on every exit path.
  std::vector<std::uint64_t> site_bits_;
  bool bound_ = false;  ///< bind_good_trace has been called

  std::uint64_t diff_words_propagated_ = 0;
};

}  // namespace fbt
