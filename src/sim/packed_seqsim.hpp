// 64-way bit-packed sequential simulator with per-lane switching activity.
//
// Advances up to 64 *independent* sequential trajectories per pass: bit k of
// every node word belongs to lane k. All lanes start from the same broadcast
// base state (the candidate-seed search speculates many LFSR seeds from one
// snapshot, dissertation §4.4) but diverge immediately because each lane
// receives its own primary-input bits, and flip-flop updates are per-bit.
//
// Per-lane switching activity is computed without a 64x popcount scan:
// the per-node transition words t = prev XOR cur are accumulated into
// carry-save *vertical counters* (bit-plane adders, one plane per count bit),
// and the 64 per-lane toggle counts are read out of the planes once per
// cycle. One pass over the nodes therefore yields every lane's SWA.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/flat_fanins.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"

namespace fbt {

class PackedSeqSim {
 public:
  static constexpr std::size_t kLanes = 64;

  explicit PackedSeqSim(const Netlist& netlist);

  /// Loads the same scalar base into all 64 lanes: per-flop state, settled
  /// line values of the current and previous cycle, and whether a previous
  /// settled cycle exists (mirrors SeqSim's SWA warm-up: the first step after
  /// a cold load measures no switching activity). `values`/`prev_values` are
  /// ignored when `have_prev` is false.
  void load_broadcast(std::span<const std::uint8_t> state,
                      std::span<const std::uint8_t> values,
                      std::span<const std::uint8_t> prev_values,
                      bool have_prev);

  /// Applies one packed primary-input cycle (`pi_words[i]` carries bit k =
  /// lane k's value of input i): settles the combinational core, writes each
  /// lane's toggled-line count into `toggles` (64 entries; all zero on the
  /// first step after a cold load), then updates the flip-flops per lane.
  void step(std::span<const std::uint64_t> pi_words,
            std::span<std::uint32_t> toggles);

  /// Per-flop packed state words after the last step's update.
  std::span<const std::uint64_t> state_words() const { return state_; }

  /// Packed settled value of any node in the most recent cycle.
  std::uint64_t value(NodeId id) const { return values_[id]; }

  bool have_prev() const { return have_prev_; }
  std::size_t num_lines() const { return netlist_->num_lines(); }

  /// Bytes owned by the flattened fanin view and packed lane words
  /// (resource telemetry).
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) - sizeof(flat_) + flat_.footprint_bytes() +
           (values_.size() + prev_values_.size() + state_.size() +
            planes_.size()) *
               sizeof(std::uint64_t);
  }

 private:
  const Netlist* netlist_;
  FlatFanins flat_;
  std::vector<std::uint64_t> values_;       // packed settled values, current
  std::vector<std::uint64_t> prev_values_;  // packed settled values, previous
  std::vector<std::uint64_t> state_;        // packed per-flop state
  std::vector<std::uint64_t> planes_;       // vertical counter bit planes
  bool have_prev_ = false;
  // Batched per-cycle counters; see the SeqSim members of the same name.
  obs::LocalCounter gates_evaluated_{"sim.packed_gates_evaluated"};
  obs::LocalCounter cycles_stepped_{"sim.packed_cycles_stepped"};
};

}  // namespace fbt
