// Three-valued (0/1/X) combinational cube simulator.
//
// Used for: primary-input cube computation (dissertation §4.3 -- how many
// state variables does a single input value synchronize), necessary-assignment
// implication seeds, and any partially-specified evaluation.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/value.hpp"

namespace fbt {

class CubeSim {
 public:
  explicit CubeSim(const Netlist& netlist);

  /// Resets every node (including sources) to X.
  void clear();

  void set_value(NodeId id, Val3 value) { values_[id] = value; }
  Val3 value(NodeId id) const { return values_[id]; }

  /// Evaluates the combinational core from the current source cube.
  void eval();

  /// Number of flip-flop D inputs with a specified (non-X) value. Call after
  /// eval().
  std::size_t specified_next_state_count() const;

 private:
  const Netlist* netlist_;
  std::vector<Val3> values_;
};

}  // namespace fbt
