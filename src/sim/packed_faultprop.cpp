#include "sim/packed_faultprop.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace fbt {

PackedFaultProp::PackedFaultProp(const Netlist& netlist,
                                 std::shared_ptr<const FlatFanins> flat)
    : netlist_(&netlist),
      flat_(flat != nullptr ? std::move(flat)
                            : std::make_shared<const FlatFanins>(netlist)) {
  require(netlist.finalized(), "PackedFaultProp", "netlist must be finalized");
  const std::size_t n = netlist.size();

  // Level-major renumbering (stable within a (level, type) class, so the
  // layout is deterministic): along any combinational path levels strictly
  // increase, hence internal ids do too, and one forward scan of the
  // frontier bitmap drains events in topological order. Within a level,
  // nodes of one gate type are contiguous, so the eval switch sees runs of
  // the same case as the scan pops a level's events.
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), NodeId{0});
  std::stable_sort(perm_.begin(), perm_.end(), [&](NodeId a, NodeId b) {
    const std::uint32_t la = netlist.level(a);
    const std::uint32_t lb = netlist.level(b);
    if (la != lb) return la < lb;
    return netlist.type(a) < netlist.type(b);
  });
  inv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) inv_[perm_[i]] = static_cast<NodeId>(i);

  // Two-input truth table per gate type, bit (a << 1) | b. One-input gates
  // are folded into the two-input path with a duplicated fanin: only the
  // a == b entries are reachable, so AND passes through and NAND inverts,
  // matching eval_gate64's degenerate one-input semantics (NOT/NAND/NOR/
  // XNOR invert, the rest pass).
  const auto gate_tt = [](GateType type, std::size_t count) -> std::uint8_t {
    if (count == 1) {
      return (type == GateType::kNot || type == GateType::kNand ||
              type == GateType::kNor || type == GateType::kXnor)
                 ? 0b0111
                 : 0b1000;
    }
    switch (type) {
      case GateType::kAnd:  return 0b1000;
      case GateType::kNand: return 0b0111;
      case GateType::kOr:   return 0b1110;
      case GateType::kNor:  return 0b0001;
      case GateType::kXor:  return 0b0110;
      default:              return 0b1001;  // kXnor
    }
  };
  nodes_.assign(n, Node{});
  fanin_ids_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId old = perm_[i];
    const GateType type = netlist.type(old);
    const auto fanins = netlist.fanins(old);
    require(fanins.size() <= 0xFFFF, "PackedFaultProp",
            "fanin count must fit 16 bits");
    Node& m = nodes_[i];
    if (fanins.size() == 1 || fanins.size() == 2) {
      m.count = 2;
      m.tt = gate_tt(type, fanins.size());
      m.fan0 = inv_[fanins[0]];
      m.fan1 = inv_[fanins.back()];
    } else {
      m.count = static_cast<std::uint16_t>(fanins.size());
      m.tt = static_cast<std::uint8_t>(type);
      m.first = static_cast<std::uint32_t>(fanin_ids_.size());
      for (const NodeId f : fanins) fanin_ids_.push_back(inv_[f]);
    }
  }
  for (const NodeId po : netlist.outputs()) nodes_[inv_[po]].observe = 1;
  for (const NodeId ff : netlist.flops()) {
    nodes_[inv_[netlist.dff_input(ff)]].observe = 1;
  }

  // Fanout events: only combinational fanouts can extend a frame-2 cone
  // (flops capture at the frame boundary, not inside it).
  fanout_first_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t cnt = 0;
    for (const NodeId out : netlist.fanouts(perm_[i])) {
      if (is_combinational(netlist.type(out))) ++cnt;
    }
    fanout_first_[i + 1] = fanout_first_[i] + cnt;
  }
  fanout_ids_.resize(fanout_first_.back());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t at = fanout_first_[i];
    for (const NodeId out : netlist.fanouts(perm_[i])) {
      if (is_combinational(netlist.type(out))) {
        fanout_ids_[at++] = inv_[out];
      }
    }
    // Ascending spans: pushes walk the bitmap forward, and the span's last
    // entry alone updates the scan's high-water word.
    std::sort(fanout_ids_.begin() + fanout_first_[i],
              fanout_ids_.begin() + at);
  }

  frontier_bits_.assign((n + 63) / 64, 0);
  site_bits_.assign((n + 63) / 64, 0);
  inject_.assign(n, 0);
}

void PackedFaultProp::bind_good_trace(std::span<const std::uint64_t> good) {
  require(good.size() == nodes_.size(), "PackedFaultProp::bind_good_trace",
          "trace must hold one word per node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].good = good[perm_[i]];
  }
  bound_ = true;
}

std::uint64_t PackedFaultProp::propagate(std::span<const NodeId> sites,
                                         std::uint64_t active, unsigned test) {
  require(sites.size() <= kLanes, "PackedFaultProp::propagate",
          "at most 64 fault lanes");
  NodeId internal[kLanes];
  for (std::size_t k = 0; k < sites.size(); ++k) internal[k] = inv_[sites[k]];
  return propagate_internal(std::span<const NodeId>(internal, sites.size()),
                            active, test);
}

std::uint64_t PackedFaultProp::propagate_internal(std::span<const NodeId> sites,
                                                  std::uint64_t active,
                                                  unsigned test) {
  require(bound_, "PackedFaultProp::propagate", "bind_good_trace first");
  require(sites.size() <= kLanes, "PackedFaultProp::propagate",
          "at most 64 fault lanes");
  if (active == 0) return 0;

  // Every exit path restores the between-calls invariant while the walked
  // lines are still cache-hot: all diff words zero (so the next call's fanin
  // gather can read any node's diff unconditionally) and site_bits_ clear.
  const auto cleanup = [&] {
    for (const NodeId id : touched_) nodes_[id].diff = 0;
    touched_.clear();
    for (const NodeId s : sites) site_bits_[s >> 6] = 0;
  };

  // Live window of the frontier bitmap: the forward scan only walks words
  // [lo, hi]. lo is bounded below by the seeded sites (fanout ids exceed
  // their driver's), hi is the high-water word of every push -- the fanout
  // spans are sorted, so the span's last entry maintains it.
  const std::size_t nwords = frontier_bits_.size();
  std::size_t lo = nwords;
  std::size_t hi = 0;

  // Fanout scheduling, hand-inlined at both event sources (seed + store):
  // a push is one OR into the L1-resident frontier bitmap; reconvergent
  // duplicates merge into the same bit for free.
  const auto enqueue_fanouts = [&](NodeId id) {
    const std::uint32_t first = fanout_first_[id];
    const std::uint32_t last = fanout_first_[id + 1];
    for (std::uint32_t i = first; i < last; ++i) {
      const NodeId out = fanout_ids_[i];
      frontier_bits_[out >> 6] |= 1ULL << (out & 63);
      // The pushed node is popped after the rest of the current level
      // drains -- far enough ahead that its record line lands before the
      // scan reaches it, close enough that it is not evicted again.
      __builtin_prefetch(&nodes_[out]);
    }
    if (first != last) {
      const std::size_t w = fanout_ids_[last - 1] >> 6;
      if (w > hi) hi = w;
    }
  };
  // Faulty word of a node for this test: the fault-free bit broadcast to
  // every lane, flipped in the lanes where a diff reached it. Branchless --
  // untouched nodes carry diff == 0.
  const auto faulty = [&](NodeId id) {
    const Node& fl = nodes_[id];
    return (0 - ((fl.good >> test) & 1ULL)) ^ fl.diff;
  };

  // Collect the forced lanes per site before seeding: a group may carry two
  // faults of one line (rising and falling), and the shared site's diff must
  // hold both lanes.
  for (std::uint64_t rem = active; rem != 0; rem &= rem - 1) {
    const unsigned k = static_cast<unsigned>(__builtin_ctzll(rem));
    const NodeId s = sites[k];
    if (((site_bits_[s >> 6] >> (s & 63)) & 1) == 0) {
      site_bits_[s >> 6] |= 1ULL << (s & 63);
      inject_[s] = 0;
    }
    inject_[s] |= 1ULL << k;
  }
  // Seed: a launched site differs from the fault-free machine in exactly its
  // forced lanes (the fault-free line transitions while the faulty one is
  // stuck at the launch-time initial value). A site that is itself observed
  // detects -- and thereby prunes -- its lanes immediately.
  std::uint64_t detect = 0;
  for (std::uint64_t rem = active; rem != 0; rem &= rem - 1) {
    const unsigned k = static_cast<unsigned>(__builtin_ctzll(rem));
    const NodeId s = sites[k];
    Node& lane = nodes_[s];
    if (lane.diff != 0) continue;  // shared line, already seeded
    lane.diff = inject_[s];
    touched_.push_back(s);
    if (lane.observe) detect |= lane.diff;
    if ((s >> 6) < lo) lo = s >> 6;
    enqueue_fanouts(s);
  }
  if (detect == active) {
    // Caught at the sites themselves; unwind the seeded events.
    if (lo <= hi) {
      std::fill(frontier_bits_.begin() + static_cast<std::ptrdiff_t>(lo),
                frontier_bits_.begin() + static_cast<std::ptrdiff_t>(hi + 1),
                0);
    }
    cleanup();
    return detect;
  }

  std::uint64_t evals = 0;
  for (std::size_t wi = lo; wi <= hi; ++wi) {
    // Re-read the word after every pop: a store below can push events into
    // this same word, but always at a higher bit (ids increase along paths),
    // so clearing the lowest set bit is exactly the popped event.
    while (frontier_bits_[wi] != 0) {
      const unsigned b =
          static_cast<unsigned>(__builtin_ctzll(frontier_bits_[wi]));
      frontier_bits_[wi] &= frontier_bits_[wi] - 1;
      const NodeId id = static_cast<NodeId>((wi << 6) | b);
      ++evals;
      Node& m = nodes_[id];
      std::uint64_t out;
      if (m.count == 2) {
        // One- and two-input gates dominate synthesized netlists (one-input
        // gates were folded in at construction); evaluate them with a
        // branchless truth-table mux -- gate types are data-dependent, so a
        // switch here is an unpredictable indirect branch on the hot path.
        const std::uint64_t a = faulty(m.fan0);
        const std::uint64_t b2 = faulty(m.fan1);
        const std::uint64_t t0 = 0 - static_cast<std::uint64_t>(m.tt & 1);
        const std::uint64_t t1 =
            0 - static_cast<std::uint64_t>((m.tt >> 1) & 1);
        const std::uint64_t t2 =
            0 - static_cast<std::uint64_t>((m.tt >> 2) & 1);
        const std::uint64_t t3 =
            0 - static_cast<std::uint64_t>((m.tt >> 3) & 1);
        const std::uint64_t lo = t0 ^ ((t0 ^ t1) & b2);  // a = 0 row
        const std::uint64_t hi = t2 ^ ((t2 ^ t3) & b2);  // a = 1 row
        out = lo ^ ((lo ^ hi) & a);
      } else {
        const GateType type = static_cast<GateType>(m.tt);
        const NodeId* fan = fanin_ids_.data() + m.first;
        std::uint64_t acc;
        switch (type) {
          case GateType::kAnd:
          case GateType::kNand:
            acc = ~0ULL;
            for (std::uint16_t k = 0; k < m.count; ++k) acc &= faulty(fan[k]);
            out = type == GateType::kAnd ? acc : ~acc;
            break;
          case GateType::kOr:
          case GateType::kNor:
            acc = 0;
            for (std::uint16_t k = 0; k < m.count; ++k) acc |= faulty(fan[k]);
            out = type == GateType::kOr ? acc : ~acc;
            break;
          default:  // kXor / kXnor
            acc = 0;
            for (std::uint16_t k = 0; k < m.count; ++k) acc ^= faulty(fan[k]);
            out = type == GateType::kXor ? acc : ~acc;
            break;
        }
      }
      std::uint64_t d = out ^ (0 - ((m.good >> test) & 1ULL));
      // A fault site inside another lane's cone stays stuck in its own lane
      // no matter what its fanins evaluate to. Sites are rare, so guard the
      // inject_ load behind the (L1-resident) site bitmap.
      if ((site_bits_[wi] >> b) & 1) d |= inject_[id];
      // Detected lanes are dead: per-test detection is boolean, so once a
      // lane reached any observe point nothing downstream of here can change
      // the answer. Masking it out of every stored diff kills its frontier
      // within one level.
      d &= ~detect;
      if (d == 0) continue;  // every live lane's effect died here
      if (m.observe) {
        detect |= d;
        if (detect == active) {
          // Every injected lane has been caught; the rest of the walk cannot
          // change the answer. Drop the pending events and stop.
          std::fill(frontier_bits_.begin() + static_cast<std::ptrdiff_t>(wi),
                    frontier_bits_.begin() + static_cast<std::ptrdiff_t>(hi + 1),
                    0);
          diff_words_propagated_ += evals;
          cleanup();
          return detect;
        }
        d &= ~detect;  // the lanes observed right here are dead too
        if (d == 0) continue;
      }
      m.diff = d;
      touched_.push_back(id);
      enqueue_fanouts(id);
    }
  }
  diff_words_propagated_ += evals;
  cleanup();
  return detect;
}

std::uint64_t PackedFaultProp::footprint_bytes() const {
  return sizeof(*this) - sizeof(flat_) + flat_->footprint_bytes() +
         nodes_.size() * sizeof(Node) +
         (inject_.size() + frontier_bits_.size() + site_bits_.size()) *
             sizeof(std::uint64_t) +
         (perm_.size() + inv_.size() + fanin_ids_.size() + touched_.size() +
          fanout_ids_.size()) *
             sizeof(NodeId) +
         fanout_first_.size() * sizeof(std::uint32_t);
}

}  // namespace fbt
