#include "sim/cubesim.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

CubeSim::CubeSim(const Netlist& netlist) : netlist_(&netlist) {
  require(netlist.finalized(), "CubeSim", "netlist must be finalized");
  values_.assign(netlist.size(), Val3::kX);
}

void CubeSim::clear() {
  std::fill(values_.begin(), values_.end(), Val3::kX);
}

void CubeSim::eval() {
  std::vector<Val3> fanins;
  for (const NodeId id : netlist_->eval_order()) {
    const Gate& g = netlist_->gate(id);
    fanins.clear();
    for (const NodeId f : g.fanins) fanins.push_back(values_[f]);
    values_[id] = eval_gate3(g.type, fanins);
  }
}

std::size_t CubeSim::specified_next_state_count() const {
  std::size_t count = 0;
  for (const NodeId ff : netlist_->flops()) {
    if (values_[netlist_->dff_input(ff)] != Val3::kX) ++count;
  }
  return count;
}

}  // namespace fbt
