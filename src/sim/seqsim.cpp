#include "sim/seqsim.hpp"

#include <algorithm>

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {

SeqSim::SeqSim(const Netlist& netlist)
    : SeqSim(netlist, std::make_shared<const FlatFanins>(netlist)) {}

SeqSim::SeqSim(const Netlist& netlist, std::shared_ptr<const FlatFanins> flat)
    : netlist_(&netlist), flat_(std::move(flat)) {
  require(netlist.finalized(), "SeqSim", "netlist must be finalized");
  require(flat_ != nullptr, "SeqSim", "shared FlatFanins must not be null");
  values_.assign(netlist.size(), 0);
  prev_values_.assign(netlist.size(), 0);
  state_.assign(netlist.num_flops(), 0);
}

void SeqSim::load_state(std::span<const std::uint8_t> state) {
  require(state.size() == netlist_->num_flops(), "SeqSim::load_state",
          "state size must equal the flop count");
  std::copy(state.begin(), state.end(), state_.begin());
  cycle_ = 0;
  have_prev_ = false;
}

void SeqSim::load_reset_state() {
  std::fill(state_.begin(), state_.end(), 0);
  cycle_ = 0;
  have_prev_ = false;
}

SeqStep SeqSim::step(std::span<const std::uint8_t> pi_values,
                     std::span<const std::uint8_t> held) {
  require(pi_values.size() == netlist_->num_inputs(), "SeqSim::step",
          "primary input vector size mismatch");
  require(held.empty() || held.size() == netlist_->num_flops(),
          "SeqSim::step", "held mask size mismatch");

  values_.swap(prev_values_);

  // Sources.
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    values_[netlist_->inputs()[i]] = pi_values[i] ? 1 : 0;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    values_[netlist_->flops()[i]] = state_[i];
  }
  for (const NodeId id : flat_->const0_nodes()) values_[id] = 0;
  for (const NodeId id : flat_->const1_nodes()) values_[id] = 1;

  // Settle combinational logic.
  {
    const NodeId* ids = flat_->fanin_ids();
    std::uint8_t* vals = values_.data();
    for (const FlatFanins::Entry& e : flat_->entries()) {
      vals[e.node] = eval_gate2_indexed(e.type, ids + e.first, e.count, vals);
    }
#if FBT_OBS_ENABLED
    gates_evaluated_.add(flat_->entries().size());
    cycles_stepped_.add(1);
#endif
  }

  // Switching activity vs. the previous settled cycle.
  SeqStep result;
  if (have_prev_) {
    for (NodeId id = 0; id < netlist_->size(); ++id) {
      result.toggled_lines += (values_[id] != prev_values_[id]) ? 1 : 0;
    }
    result.switching_percent = netlist_->num_lines() == 0
                                   ? 0.0
                                   : 100.0 * result.toggled_lines /
                                         static_cast<double>(
                                             netlist_->num_lines());
  }
  have_prev_ = true;

  // State update (with optional per-flop hold).
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (!held.empty() && held[i]) continue;
    state_[i] = values_[netlist_->dff_input(netlist_->flops()[i])];
  }
  ++cycle_;
  return result;
}

SeqSim::Snapshot SeqSim::snapshot() const {
  return Snapshot{values_, prev_values_, state_, cycle_, have_prev_};
}

void SeqSim::snapshot_into(Snapshot& out) const {
  out.values = values_;
  out.prev_values = prev_values_;
  out.state = state_;
  out.cycle = cycle_;
  out.have_prev = have_prev_;
}

void SeqSim::restore(const Snapshot& snap) {
  require(snap.values.size() == values_.size() &&
              snap.state.size() == state_.size(),
          "SeqSim::restore", "snapshot is for a different netlist");
  values_ = snap.values;
  prev_values_ = snap.prev_values;
  state_ = snap.state;
  cycle_ = snap.cycle;
  have_prev_ = snap.have_prev;
}

std::vector<std::uint8_t> SeqSim::outputs() const {
  std::vector<std::uint8_t> out;
  out.reserve(netlist_->num_outputs());
  for (const NodeId po : netlist_->outputs()) out.push_back(values_[po]);
  return out;
}

}  // namespace fbt
