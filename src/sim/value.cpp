#include "sim/value.hpp"

#include "util/require.hpp"

namespace fbt {

Val3 eval_gate3(GateType type, std::span<const Val3> fanins) {
  switch (type) {
    case GateType::kConst0:
      return Val3::k0;
    case GateType::kConst1:
      return Val3::k1;
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return not3(fanins[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (const Val3 v : fanins) {
        if (v == Val3::k0) {
          return type == GateType::kAnd ? Val3::k0 : Val3::k1;
        }
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kAnd ? Val3::k1 : Val3::k0;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (const Val3 v : fanins) {
        if (v == Val3::k1) {
          return type == GateType::kOr ? Val3::k1 : Val3::k0;
        }
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kOr ? Val3::k0 : Val3::k1;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = type == GateType::kXnor;  // XNOR = !XOR
      for (const Val3 v : fanins) {
        if (v == Val3::kX) return Val3::kX;
        parity ^= (v == Val3::k1);
      }
      return parity ? Val3::k1 : Val3::k0;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate3: sources have no combinational function");
}

std::uint8_t eval_gate2(GateType type, std::span<const std::uint8_t> fanins) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return 1;
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return fanins[0] ^ 1u;
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint8_t acc = 1;
      for (const std::uint8_t v : fanins) acc &= v;
      return type == GateType::kAnd ? acc : acc ^ 1u;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint8_t acc = 0;
      for (const std::uint8_t v : fanins) acc |= v;
      return type == GateType::kOr ? acc : acc ^ 1u;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint8_t acc = 0;
      for (const std::uint8_t v : fanins) acc ^= v;
      return type == GateType::kXor ? acc : acc ^ 1u;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate2: sources have no combinational function");
}

std::uint64_t eval_gate64(GateType type,
                          std::span<const std::uint64_t> fanins) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return ~fanins[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (const std::uint64_t v : fanins) acc &= v;
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0;
      for (const std::uint64_t v : fanins) acc |= v;
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0;
      for (const std::uint64_t v : fanins) acc ^= v;
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate64: sources have no combinational function");
}

std::uint8_t eval_gate2_indexed(GateType type, const std::uint32_t* fanin_ids,
                                std::size_t count,
                                const std::uint8_t* values) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return 1;
    case GateType::kBuf:
      return values[fanin_ids[0]];
    case GateType::kNot:
      return values[fanin_ids[0]] ^ 1u;
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint8_t acc = 1;
      for (std::size_t i = 0; i < count; ++i) acc &= values[fanin_ids[i]];
      return type == GateType::kAnd ? acc : acc ^ 1u;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint8_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc |= values[fanin_ids[i]];
      return type == GateType::kOr ? acc : acc ^ 1u;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint8_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc ^= values[fanin_ids[i]];
      return type == GateType::kXor ? acc : acc ^ 1u;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate2_indexed: sources have no combinational function");
}

std::uint64_t eval_gate64_indexed(GateType type, const std::uint32_t* fanin_ids,
                                  std::size_t count,
                                  const std::uint64_t* values) {
  switch (type) {
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kBuf:
      return values[fanin_ids[0]];
    case GateType::kNot:
      return ~values[fanin_ids[0]];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (std::size_t i = 0; i < count; ++i) acc &= values[fanin_ids[i]];
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc |= values[fanin_ids[i]];
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < count; ++i) acc ^= values[fanin_ids[i]];
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate64_indexed: sources have no combinational function");
}

Val3 eval_gate3_indexed(GateType type, const std::uint32_t* fanin_ids,
                        std::size_t count, const Val3* values) {
  switch (type) {
    case GateType::kConst0:
      return Val3::k0;
    case GateType::kConst1:
      return Val3::k1;
    case GateType::kBuf:
      return values[fanin_ids[0]];
    case GateType::kNot:
      return not3(values[fanin_ids[0]]);
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (std::size_t i = 0; i < count; ++i) {
        const Val3 v = values[fanin_ids[i]];
        if (v == Val3::k0) {
          return type == GateType::kAnd ? Val3::k0 : Val3::k1;
        }
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kAnd ? Val3::k1 : Val3::k0;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (std::size_t i = 0; i < count; ++i) {
        const Val3 v = values[fanin_ids[i]];
        if (v == Val3::k1) {
          return type == GateType::kOr ? Val3::k1 : Val3::k0;
        }
        if (v == Val3::kX) any_x = true;
      }
      if (any_x) return Val3::kX;
      return type == GateType::kOr ? Val3::k0 : Val3::k1;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = type == GateType::kXnor;
      for (std::size_t i = 0; i < count; ++i) {
        const Val3 v = values[fanin_ids[i]];
        if (v == Val3::kX) return Val3::kX;
        parity ^= (v == Val3::k1);
      }
      return parity ? Val3::k1 : Val3::k0;
    }
    case GateType::kInput:
    case GateType::kDff:
      break;
  }
  throw Error("eval_gate3_indexed: sources have no combinational function");
}

}  // namespace fbt
