#include "sim/bitsim.hpp"

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {

BitSim::BitSim(const Netlist& netlist) : netlist_(&netlist) {
  require(netlist.finalized(), "BitSim", "netlist must be finalized");
  values_.assign(netlist.size(), 0);
  faulty_.assign(netlist.size(), 0);
  stamp_.assign(netlist.size(), 0);
  observe_.assign(netlist.size(), 0);
  queued_stamp_.assign(netlist.size(), 0);
  level_queue_.resize(netlist.max_level() + 1);
  use_default_observation_points();

  // Fold the eval program: tt bit index is (a << 1) | b, and one-input gates
  // duplicate their fanin, which under eval_gate64()'s semantics inverts for
  // kNot/kNand/kNor/kXnor (NAND(a, a) = ~a) and passes through otherwise
  // (AND(a, a) = a).
  eval_ops_.reserve(netlist.eval_order().size());
  for (const NodeId id : netlist.eval_order()) {
    const GateType type = netlist.type(id);
    const auto fanins = netlist.fanins(id);
    EvalOp op;
    op.id = id;
    op.count = static_cast<std::uint16_t>(fanins.size());
    if (fanins.size() == 1) {
      op.fan0 = op.fan1 = fanins[0];
      op.count = 2;
      const bool invert = type == GateType::kNot ||
                          type == GateType::kNand ||
                          type == GateType::kNor || type == GateType::kXnor;
      op.tt = invert ? 0b0111 : 0b1000;
    } else if (fanins.size() == 2) {
      op.fan0 = fanins[0];
      op.fan1 = fanins[1];
      switch (type) {
        case GateType::kAnd:  op.tt = 0b1000; break;
        case GateType::kNand: op.tt = 0b0111; break;
        case GateType::kOr:   op.tt = 0b1110; break;
        case GateType::kNor:  op.tt = 0b0001; break;
        case GateType::kXor:  op.tt = 0b0110; break;
        case GateType::kXnor: op.tt = 0b1001; break;
        default:
          op.count = 3;  // unexpected two-input type: generic path
          op.tt = static_cast<std::uint8_t>(type);
          break;
      }
    } else {
      op.tt = static_cast<std::uint8_t>(type);
    }
    eval_ops_.push_back(op);
  }
}

void BitSim::eval() {
  std::uint64_t* const values = values_.data();
  for (const EvalOp& op : eval_ops_) {
    if (op.count == 2) {
      const std::uint64_t a = values[op.fan0];
      const std::uint64_t b = values[op.fan1];
      const std::uint64_t t0 = 0 - static_cast<std::uint64_t>(op.tt & 1);
      const std::uint64_t t1 = 0 - static_cast<std::uint64_t>((op.tt >> 1) & 1);
      const std::uint64_t t2 = 0 - static_cast<std::uint64_t>((op.tt >> 2) & 1);
      const std::uint64_t t3 = 0 - static_cast<std::uint64_t>((op.tt >> 3) & 1);
      const std::uint64_t lo = t0 ^ ((t0 ^ t1) & b);
      const std::uint64_t hi = t2 ^ ((t2 ^ t3) & b);
      values[op.id] = lo ^ ((lo ^ hi) & a);
    } else {
      const auto fanins = netlist_->fanins(op.id);
      values[op.id] = eval_gate64_indexed(netlist_->type(op.id), fanins.data(),
                                          fanins.size(), values);
    }
  }
  FBT_OBS_COUNTER_ADD("sim.bitsim_gates_evaluated", eval_ops_.size());
}

void BitSim::next_state(std::span<std::uint64_t> next_state) const {
  require(next_state.size() == netlist_->num_flops(), "BitSim::next_state",
          "span size must equal the flop count");
  for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
    next_state[i] = values_[netlist_->dff_input(netlist_->flops()[i])];
  }
}

void BitSim::use_default_observation_points() {
  std::fill(observe_.begin(), observe_.end(), 0);
  for (const NodeId po : netlist_->outputs()) observe_[po] = 1;
  for (const NodeId ff : netlist_->flops()) observe_[netlist_->dff_input(ff)] = 1;
}

void BitSim::set_observation_points(std::span<const NodeId> points) {
  std::fill(observe_.begin(), observe_.end(), 0);
  for (const NodeId p : points) {
    require(p < observe_.size(), "BitSim::set_observation_points",
            "node id out of range");
    observe_[p] = 1;
  }
}

void BitSim::enqueue_fanouts(NodeId id) {
  for (const NodeId out : netlist_->fanouts(id)) {
    if (!is_combinational(netlist_->gate(out).type)) continue;  // flop D pin
    if (queued_stamp_[out] == current_stamp_) continue;
    queued_stamp_[out] = current_stamp_;
    level_queue_[netlist_->level(out)].push_back(out);
  }
}

std::uint64_t BitSim::fault_propagate(NodeId site, std::uint64_t faulty_word) {
  ++current_stamp_;
  if (current_stamp_ == 0) {
    // Stamp wrapped; reset lazily-invalidated arrays.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(queued_stamp_.begin(), queued_stamp_.end(), 0);
    current_stamp_ = 1;
  }

  std::uint64_t detect = 0;
  if (faulty_word == values_[site]) return 0;
  stamp_[site] = current_stamp_;
  faulty_[site] = faulty_word;
  if (observe_[site]) detect |= faulty_word ^ values_[site];
  enqueue_fanouts(site);

  FBT_OBS_COUNTER_ADD("sim.bitsim_faults_propagated", 1);
  std::uint64_t propagation_evals = 0;
  std::uint64_t fanin_words[8];
  std::vector<std::uint64_t> big;
  const unsigned start =
      is_combinational(netlist_->gate(site).type) ? netlist_->level(site) : 0;
  for (unsigned lvl = start; lvl < level_queue_.size(); ++lvl) {
    auto& bucket = level_queue_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      ++propagation_evals;
      const NodeId id = bucket[i];
      const Gate& g = netlist_->gate(id);
      std::uint64_t out;
      const std::size_t n = g.fanins.size();
      if (n <= 8) {
        for (std::size_t k = 0; k < n; ++k) {
          fanin_words[k] = faulty_value(g.fanins[k]);
        }
        out = eval_gate64(g.type, std::span(fanin_words, n));
      } else {
        big.clear();
        for (const NodeId f : g.fanins) big.push_back(faulty_value(f));
        out = eval_gate64(g.type, big);
      }
      if (out == values_[id]) continue;  // fault effect died here
      stamp_[id] = current_stamp_;
      faulty_[id] = out;
      if (observe_[id]) detect |= out ^ values_[id];
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  FBT_OBS_COUNTER_ADD("sim.bitsim_fault_gates_evaluated", propagation_evals);
  return detect;
}

}  // namespace fbt
