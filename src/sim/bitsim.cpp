#include "sim/bitsim.hpp"

#include "obs/instrument.hpp"
#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {

BitSim::BitSim(const Netlist& netlist) : netlist_(&netlist) {
  require(netlist.finalized(), "BitSim", "netlist must be finalized");
  values_.assign(netlist.size(), 0);
  faulty_.assign(netlist.size(), 0);
  stamp_.assign(netlist.size(), 0);
  observe_.assign(netlist.size(), 0);
  queued_stamp_.assign(netlist.size(), 0);
  level_queue_.resize(netlist.max_level() + 1);
  use_default_observation_points();
}

void BitSim::eval() {
  std::uint64_t fanin_words[8];
  std::vector<std::uint64_t> big;
  for (const NodeId id : netlist_->eval_order()) {
    const Gate& g = netlist_->gate(id);
    const std::size_t n = g.fanins.size();
    if (n <= 8) {
      for (std::size_t i = 0; i < n; ++i) {
        fanin_words[i] = values_[g.fanins[i]];
      }
      values_[id] = eval_gate64(g.type, std::span(fanin_words, n));
    } else {
      big.clear();
      for (const NodeId f : g.fanins) big.push_back(values_[f]);
      values_[id] = eval_gate64(g.type, big);
    }
  }
  FBT_OBS_COUNTER_ADD("sim.bitsim_gates_evaluated",
                      netlist_->eval_order().size());
}

void BitSim::next_state(std::span<std::uint64_t> next_state) const {
  require(next_state.size() == netlist_->num_flops(), "BitSim::next_state",
          "span size must equal the flop count");
  for (std::size_t i = 0; i < netlist_->num_flops(); ++i) {
    next_state[i] = values_[netlist_->dff_input(netlist_->flops()[i])];
  }
}

void BitSim::use_default_observation_points() {
  std::fill(observe_.begin(), observe_.end(), 0);
  for (const NodeId po : netlist_->outputs()) observe_[po] = 1;
  for (const NodeId ff : netlist_->flops()) observe_[netlist_->dff_input(ff)] = 1;
}

void BitSim::set_observation_points(std::span<const NodeId> points) {
  std::fill(observe_.begin(), observe_.end(), 0);
  for (const NodeId p : points) {
    require(p < observe_.size(), "BitSim::set_observation_points",
            "node id out of range");
    observe_[p] = 1;
  }
}

void BitSim::enqueue_fanouts(NodeId id) {
  for (const NodeId out : netlist_->fanouts(id)) {
    if (!is_combinational(netlist_->gate(out).type)) continue;  // flop D pin
    if (queued_stamp_[out] == current_stamp_) continue;
    queued_stamp_[out] = current_stamp_;
    level_queue_[netlist_->level(out)].push_back(out);
  }
}

std::uint64_t BitSim::fault_propagate(NodeId site, std::uint64_t faulty_word) {
  ++current_stamp_;
  if (current_stamp_ == 0) {
    // Stamp wrapped; reset lazily-invalidated arrays.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(queued_stamp_.begin(), queued_stamp_.end(), 0);
    current_stamp_ = 1;
  }

  std::uint64_t detect = 0;
  if (faulty_word == values_[site]) return 0;
  stamp_[site] = current_stamp_;
  faulty_[site] = faulty_word;
  if (observe_[site]) detect |= faulty_word ^ values_[site];
  enqueue_fanouts(site);

  FBT_OBS_COUNTER_ADD("sim.bitsim_faults_propagated", 1);
  std::uint64_t propagation_evals = 0;
  std::uint64_t fanin_words[8];
  std::vector<std::uint64_t> big;
  const unsigned start =
      is_combinational(netlist_->gate(site).type) ? netlist_->level(site) : 0;
  for (unsigned lvl = start; lvl < level_queue_.size(); ++lvl) {
    auto& bucket = level_queue_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      ++propagation_evals;
      const NodeId id = bucket[i];
      const Gate& g = netlist_->gate(id);
      std::uint64_t out;
      const std::size_t n = g.fanins.size();
      if (n <= 8) {
        for (std::size_t k = 0; k < n; ++k) {
          fanin_words[k] = faulty_value(g.fanins[k]);
        }
        out = eval_gate64(g.type, std::span(fanin_words, n));
      } else {
        big.clear();
        for (const NodeId f : g.fanins) big.push_back(faulty_value(f));
        out = eval_gate64(g.type, big);
      }
      if (out == values_[id]) continue;  // fault effect died here
      stamp_[id] = current_stamp_;
      faulty_[id] = out;
      if (observe_[id]) detect |= out ^ values_[id];
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  FBT_OBS_COUNTER_ADD("sim.bitsim_fault_gates_evaluated", propagation_evals);
  return detect;
}

}  // namespace fbt
