// Scalar sequential simulator with per-cycle switching activity.
//
// Drives the circuit cycle by cycle from a loadable state, exactly as the
// on-chip TPG does during built-in test generation (dissertation §4.3-§4.5):
// apply a primary-input vector, settle the combinational logic, measure the
// switching activity against the previous cycle's line values, then update the
// state (optionally holding a subset of state variables, §4.5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/flat_fanins.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"

namespace fbt {

/// Result of one simulated clock cycle.
struct SeqStep {
  /// Lines whose settled value differs from the previous cycle's.
  std::size_t toggled_lines = 0;
  /// toggled_lines as a percentage of all circuit lines (SWA(i), §4.4).
  double switching_percent = 0.0;
};

class SeqSim {
 public:
  explicit SeqSim(const Netlist& netlist);

  /// Shares a pre-built flattened fanin view (CSR) of `netlist` instead of
  /// rebuilding it -- the serving cache hands the same immutable CSR to many
  /// concurrent simulators. `flat` must describe `netlist` exactly.
  SeqSim(const Netlist& netlist, std::shared_ptr<const FlatFanins> flat);

  /// Loads a state (one 0/1 value per flop, in netlist flop order), resets the
  /// cycle counter, and clears switching-activity history (the next step's
  /// SWA is measured against the settled values of this state with the first
  /// input vector; per the dissertation SWA(0) is undefined, so callers skip
  /// the first step's percentage or treat it as cycle-1-vs-cycle-0).
  void load_state(std::span<const std::uint8_t> state);

  /// Convenience: loads the all-0 state (the assumed reachable reset state).
  void load_reset_state();

  /// Applies one primary-input vector: settles combinational logic, measures
  /// toggles vs. the previous settled values, then updates flip-flops.
  /// `held` (optional) has one entry per flop; a nonzero entry keeps that
  /// state variable's value (clock-gated hold, Fig. 4.10).
  SeqStep step(std::span<const std::uint8_t> pi_values,
               std::span<const std::uint8_t> held = {});

  /// Current state (after the last step's update), one value per flop.
  const std::vector<std::uint8_t>& state() const { return state_; }

  /// Settled value of any node in the most recent cycle.
  std::uint8_t value(NodeId id) const { return values_[id]; }

  /// Settled values of all lines in the most recent / previous cycle
  /// (consumed by the signal-transition-pattern bound, §5.1).
  const std::vector<std::uint8_t>& values() const { return values_; }
  const std::vector<std::uint8_t>& prev_values() const { return prev_values_; }

  /// Primary-output values of the most recent cycle.
  std::vector<std::uint8_t> outputs() const;

  /// Number of step() calls since the last load_state().
  std::size_t cycle() const { return cycle_; }

  /// Whether a previous settled cycle exists (the next step measures SWA).
  bool have_prev() const { return have_prev_; }

  /// Opaque snapshot of the full simulation state (flip-flops, settled line
  /// values, switching-activity history). Used by the BIST flow to evaluate
  /// candidate TPG seeds and roll back rejected ones.
  struct Snapshot {
    std::vector<std::uint8_t> values;
    std::vector<std::uint8_t> prev_values;
    std::vector<std::uint8_t> state;
    std::size_t cycle = 0;
    bool have_prev = false;
  };
  Snapshot snapshot() const;
  /// Overwrites `out` in place, reusing its buffers (no allocation once the
  /// vectors have reached netlist size). For snapshot pools in hot loops.
  void snapshot_into(Snapshot& out) const;
  void restore(const Snapshot& snap);

  /// Bytes owned by the flattened fanin view and value/state arrays
  /// (resource telemetry).
  std::uint64_t footprint_bytes() const {
    return sizeof(*this) - sizeof(flat_) + flat_->footprint_bytes() +
           (values_.size() + prev_values_.size() + state_.size()) *
               sizeof(std::uint8_t);
  }

 private:
  const Netlist* netlist_;
  std::shared_ptr<const FlatFanins> flat_;  ///< immutable, possibly shared
  std::vector<std::uint8_t> values_;       // settled values, current cycle
  std::vector<std::uint8_t> prev_values_;  // settled values, previous cycle
  std::vector<std::uint8_t> state_;        // per flop
  std::size_t cycle_ = 0;
  bool have_prev_ = false;
  // Batched per-cycle counters: one atomic RMW per simulated cycle is the
  // dominant observability cost on small circuits (see bench/obs_overhead).
  obs::LocalCounter gates_evaluated_{"sim.seqsim_gates_evaluated"};
  obs::LocalCounter cycles_stepped_{"sim.seqsim_cycles_stepped"};
};

}  // namespace fbt
