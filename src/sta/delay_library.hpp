// Simplified standard-cell delay library (stand-in for the dissertation's
// "simplified TSMC 0.18um technology library"; DESIGN.md Substitutions #2).
//
// Pin-to-pin delays are fixed per gate type and output transition direction,
// with a small per-extra-fanin loading term. The smallest delay in the
// library is the rising delay of an inverter, 0.03 ns -- the "unit delay" the
// dissertation uses to normalize Table 3.4's diff_unit row. A per-side-input
// pessimism penalty models the unknown-condition margin a real STA tool
// carries: side inputs whose second-pattern value is unresolved add
// `side_input_penalty()` each, so feeding input necessary assignments back
// into the analysis can only shrink (never grow) path delays, exactly as
// observed in §3.3.
#pragma once

#include <cstddef>

#include "netlist/gate_type.hpp"

namespace fbt {

struct GateDelay {
  double rise = 0.0;  ///< ns, to a rising output transition
  double fall = 0.0;  ///< ns, to a falling output transition
};

class DelayLibrary {
 public:
  /// The default 0.18 um-flavoured library.
  static DelayLibrary standard_018um();

  /// Base pin-to-pin delay for a gate of `type` with `fanins` inputs.
  GateDelay delay(GateType type, std::size_t fanins) const;

  /// Pessimism charged per side input with an unresolved second-pattern
  /// value (ns).
  double side_input_penalty() const { return side_input_penalty_; }

  /// The library's unit delay (inverter rise), for diff_unit normalization.
  double unit_delay() const { return inv_.rise; }

 private:
  GateDelay inv_, buf_, nand_, nor_, and_, or_, xor_, xnor_;
  double per_extra_fanin_ = 0.0;
  double side_input_penalty_ = 0.0;
};

}  // namespace fbt
