// Slack analysis and PrimeTime-style timing reports.
//
// Completes the STA surface the dissertation leans on (§3.3 / appendix A's
// PrimeTime use): per-endpoint arrival and slack against a clock period, the
// worst path per endpoint, and a formatted report_timing-like text block.
#pragma once

#include <string>
#include <vector>

#include "sta/timing_graph.hpp"

namespace fbt {

struct EndpointSlack {
  NodeId endpoint = kNoNode;
  double arrival = 0.0;  ///< worst arrival at this capture point (ns)
  double slack = 0.0;    ///< clock_period - arrival
};

class TimingReport {
 public:
  /// Analyzes `graph` against `clock_period_ns` (case values are whatever
  /// the graph was built with).
  TimingReport(const Netlist& netlist, const TimingGraph& graph,
               double clock_period_ns);

  /// Endpoints sorted by ascending slack (most critical first).
  const std::vector<EndpointSlack>& endpoints() const { return endpoints_; }

  /// Worst (smallest) slack in the design.
  double worst_slack() const;

  /// Number of endpoints violating the period (negative slack).
  std::size_t violation_count() const;

  /// report_timing-style text for the K most critical endpoints, including
  /// the worst path through each.
  std::string to_string(std::size_t k = 5) const;

 private:
  const Netlist* netlist_;
  const TimingGraph* graph_;
  double period_;
  std::vector<EndpointSlack> endpoints_;
};

}  // namespace fbt
