#include "sta/timing_graph.hpp"

#include <algorithm>
#include <limits>

#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

TimingGraph::TimingGraph(const Netlist& netlist, const DelayLibrary& library,
                         std::span<const Assignment> case_values)
    : netlist_(&netlist), library_(library) {
  require(netlist.finalized(), "TimingGraph", "netlist must be finalized");
  const std::size_t n = netlist.size();
  val1_.assign(n, Val3::kX);
  val2_.assign(n, Val3::kX);

  // Only inputs specified under both patterns act as case constraints.
  std::vector<Val3> in1(n, Val3::kX);
  std::vector<Val3> in2(n, Val3::kX);
  for (const Assignment& a : case_values) {
    auto& side = a.where.frame == Frame::k1 ? in1 : in2;
    side[a.where.node] = a.value ? Val3::k1 : Val3::k0;
  }
  auto accept_case = [&](NodeId id) {
    return in1[id] != Val3::kX && in2[id] != Val3::kX;
  };

  // Three-valued settle of both patterns.
  auto settle = [&](std::vector<Val3>& vals, const std::vector<Val3>& in,
                    bool second_frame) {
    for (const NodeId pi : netlist.inputs()) {
      vals[pi] = accept_case(pi) ? in[pi] : Val3::kX;
    }
    for (const NodeId ff : netlist.flops()) {
      if (accept_case(ff)) {
        vals[ff] = in[ff];
      } else if (second_frame) {
        // Broadside linkage: s2 = next-state of pattern 1 when derivable.
        vals[ff] = val1_[netlist.dff_input(ff)];
      } else {
        vals[ff] = Val3::kX;
      }
    }
    for (NodeId id = 0; id < n; ++id) {
      if (netlist.type(id) == GateType::kConst0) vals[id] = Val3::k0;
      if (netlist.type(id) == GateType::kConst1) vals[id] = Val3::k1;
    }
    std::vector<Val3> fanins;
    for (const NodeId id : netlist.eval_order()) {
      const Gate& g = netlist.gate(id);
      fanins.clear();
      for (const NodeId fi : g.fanins) fanins.push_back(vals[fi]);
      vals[id] = eval_gate3(g.type, fanins);
      // Case values may be set on internal pins too (as with PrimeTime's
      // set_case_analysis); a both-pattern-specified internal condition
      // overrides the (necessarily weaker or equal) forward-derived value.
      if (accept_case(id)) vals[id] = in[id];
    }
  };
  settle(val1_, in1, false);
  settle(val2_, in2, true);

  // A node can toggle unless both pattern values are binary and equal.
  toggle_.assign(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    const bool steady =
        val1_[id] != Val3::kX && val2_[id] != Val3::kX && val1_[id] == val2_[id];
    toggle_[id] = steady ? 0 : 1;
  }

  // Reverse DP over the sensitizable subgraph.
  best_completion_.assign(2 * n, kNegInf);
  auto relax = [&](NodeId id) {
    if (!toggle_[id]) return;
    for (int dir = 0; dir < 2; ++dir) {
      double best = is_capture_point(netlist, id) ? 0.0 : kNegInf;
      for (const NodeId out : netlist.fanouts(id)) {
        if (!is_combinational(netlist.type(out))) continue;
        if (!edge_open(id, out)) continue;
        const int dir_out = dir_through(out, dir);
        const double completion = best_completion_[2 * out + dir_out];
        if (completion == kNegInf) continue;
        best = std::max(best, edge_delay(out, dir_out) + completion);
      }
      best_completion_[2 * id + dir] = best;
    }
  };
  const auto& order = netlist.eval_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) relax(*it);
  for (const NodeId pi : netlist.inputs()) relax(pi);
  for (const NodeId ff : netlist.flops()) relax(ff);
}

double TimingGraph::edge_delay(NodeId gate, int dir_out) const {
  const Gate& g = netlist_->gate(gate);
  const GateDelay d = library_.delay(g.type, g.fanins.size());
  double delay = dir_out == 0 ? d.rise : d.fall;
  // Pessimism for side inputs whose second-pattern value is unresolved.
  if (g.fanins.size() > 1) {
    std::size_t unresolved = 0;
    for (const NodeId fi : g.fanins) {
      if (val2_[fi] == Val3::kX) ++unresolved;
    }
    // The on-path input itself does not count as a side input; at most one
    // of the unresolved inputs is the on-path one.
    if (unresolved > 0) --unresolved;
    delay += library_.side_input_penalty() * static_cast<double>(unresolved);
  }
  return delay;
}

bool TimingGraph::edge_open(NodeId from, NodeId gate) const {
  if (!toggle_[from] || !toggle_[gate]) return false;
  const Gate& g = netlist_->gate(gate);
  if (!has_controlling_value(g.type)) return true;
  const Val3 ctrl = controlling_value(g.type) ? Val3::k1 : Val3::k0;
  for (const NodeId fi : g.fanins) {
    if (fi == from) continue;
    if (val2_[fi] == ctrl) return false;  // blocked in the second pattern
  }
  return true;
}

std::optional<double> TimingGraph::path_delay(
    const PathDelayFault& fault) const {
  const auto& nodes = fault.path.nodes;
  require(!nodes.empty(), "TimingGraph::path_delay", "empty path");
  if (!toggle_[nodes[0]]) return std::nullopt;
  // Check that the requested source transition is even possible under the
  // case values (e.g. a rising source needs val1 != 1 and val2 != 0).
  const Val3 v1 = val1_[nodes[0]];
  const Val3 v2 = val2_[nodes[0]];
  if (fault.rising && (v1 == Val3::k1 || v2 == Val3::k0)) return std::nullopt;
  if (!fault.rising && (v1 == Val3::k0 || v2 == Val3::k1)) return std::nullopt;

  double delay = 0.0;
  int dir = fault.rising ? 0 : 1;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (!edge_open(nodes[i - 1], nodes[i])) return std::nullopt;
    dir = dir_through(nodes[i], dir);
    delay += edge_delay(nodes[i], dir);
  }
  return delay;
}

double TimingGraph::worst_arrival() const {
  double best = 0.0;
  auto consider = [&](NodeId id) {
    for (int dir = 0; dir < 2; ++dir) {
      if (best_completion_[2 * id + dir] != kNegInf) {
        best = std::max(best, best_completion_[2 * id + dir]);
      }
    }
  };
  for (const NodeId pi : netlist_->inputs()) consider(pi);
  for (const NodeId ff : netlist_->flops()) consider(ff);
  return best;
}

void TimingGraph::enumerate(std::size_t max_paths,
                            std::optional<double> threshold,
                            std::vector<TimedPath>& out) const {
  struct Item {
    std::vector<NodeId> nodes;
    int src_dir = 0;
    int dir = 0;
    double delay = 0.0;  ///< accumulated so far
    double bound = 0.0;  ///< delay + best completion
    bool complete = false;

    bool operator<(const Item& other) const { return bound < other.bound; }
  };
  std::vector<Item> heap;
  auto push = [&](Item item) {
    heap.push_back(std::move(item));
    std::push_heap(heap.begin(), heap.end());
  };

  auto start = [&](NodeId src) {
    if (!toggle_[src]) return;
    for (int dir = 0; dir < 2; ++dir) {
      // Respect case transitions at the source (a rising case input can only
      // launch rising).
      const Val3 v1 = val1_[src];
      const Val3 v2 = val2_[src];
      if (dir == 0 && (v1 == Val3::k1 || v2 == Val3::k0)) continue;
      if (dir == 1 && (v1 == Val3::k0 || v2 == Val3::k1)) continue;
      const double completion = best_completion_[2 * src + dir];
      if (completion == kNegInf) continue;
      push({{src}, dir, dir, 0.0, completion, false});
    }
  };
  for (const NodeId pi : netlist_->inputs()) start(pi);
  for (const NodeId ff : netlist_->flops()) start(ff);

  constexpr std::size_t kHeapCap = 400000;
  while (!heap.empty() && out.size() < max_paths) {
    std::pop_heap(heap.begin(), heap.end());
    Item item = std::move(heap.back());
    heap.pop_back();
    if (threshold && item.bound < *threshold) break;
    if (item.complete) {
      out.push_back(
          {PathDelayFault{Path{std::move(item.nodes)}, item.src_dir == 0},
           item.delay});
      continue;
    }
    if (heap.size() > kHeapCap) break;  // safety valve on path explosion
    const NodeId last = item.nodes.back();
    if (is_capture_point(*netlist_, last)) {
      Item done = item;
      done.bound = done.delay;
      done.complete = true;
      push(std::move(done));
    }
    for (const NodeId outnode : netlist_->fanouts(last)) {
      if (!is_combinational(netlist_->type(outnode))) continue;
      if (!edge_open(last, outnode)) continue;
      const int dir_out = dir_through(outnode, item.dir);
      const double completion = best_completion_[2 * outnode + dir_out];
      if (completion == kNegInf) continue;
      Item extended;
      extended.nodes = item.nodes;
      extended.nodes.push_back(outnode);
      extended.src_dir = item.src_dir;
      extended.dir = dir_out;
      extended.delay = item.delay + edge_delay(outnode, dir_out);
      extended.bound = extended.delay + completion;
      push(std::move(extended));
    }
  }
}

std::vector<TimedPath> TimingGraph::most_critical(std::size_t k) const {
  std::vector<TimedPath> out;
  enumerate(k, std::nullopt, out);
  return out;
}

std::vector<TimedPath> TimingGraph::at_least(double threshold,
                                             std::size_t max_paths) const {
  std::vector<TimedPath> out;
  enumerate(max_paths, threshold, out);
  return out;
}

}  // namespace fbt
