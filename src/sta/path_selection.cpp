#include "sta/path_selection.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/require.hpp"

namespace fbt {

std::string path_fault_key(const PathDelayFault& fault) {
  std::string key = fault.rising ? "R" : "F";
  for (const NodeId n : fault.path.nodes) {
    key += ':';
    key += std::to_string(n);
  }
  return key;
}

PathSelectionResult select_critical_paths(const Netlist& netlist,
                                          const DelayLibrary& library,
                                          const PathSelectionConfig& config) {
  require(config.initial_pool >= config.num_target, "select_critical_paths",
          "M must be >= N");
  PathSelectionResult result;

  // Step 1: traditional static timing analysis.
  const TimingGraph traditional(netlist, library);
  const std::vector<TimedPath> pool =
      traditional.most_critical(config.initial_pool);

  // Step 2: initialize Target_PDF with the N most critical potentially
  // detectable faults (plus ties with the N-th).
  std::unordered_set<std::string> in_target;
  std::vector<SelectedPathFault> target;
  std::deque<std::size_t> worklist;  // indices into `target` to process
  double nth_delay = 0.0;
  std::unordered_set<std::string> in_traditional_selection;

  for (const TimedPath& tp : pool) {
    if (target.size() >= config.num_target && tp.delay < nth_delay) break;
    NecessaryAnalysis na =
        input_necessary_assignments(netlist, tp.fault, config.probe_rounds);
    if (na.undetectable) {
      ++result.undetectable_dropped;
      continue;
    }
    SelectedPathFault sel;
    sel.fault = tp.fault;
    sel.original_delay = tp.delay;
    sel.input_assignments = std::move(na.input_assignments);
    sel.case_values = std::move(na.detection_conditions);
    in_target.insert(path_fault_key(tp.fault));
    in_traditional_selection.insert(path_fault_key(tp.fault));
    target.push_back(std::move(sel));
    worklist.push_back(target.size() - 1);
    if (target.size() == config.num_target) nth_delay = tp.delay;
  }
  result.original_size = target.size();

  // Step 3: recalculate each fault's delay under its own INAs and absorb
  // paths that are at least as critical under those INAs.
  while (!worklist.empty() && target.size() < config.max_processed) {
    const std::size_t idx = worklist.front();
    worklist.pop_front();

    const TimingGraph constrained(netlist, library, target[idx].case_values);
    const auto own = constrained.path_delay(target[idx].fault);
    // The INAs are necessary conditions for detection, so the path must stay
    // sensitizable under them; fall back to the original delay if the model
    // disagrees (conservative).
    target[idx].final_delay = own.value_or(target[idx].original_delay);

    const std::vector<TimedPath> peers =
        constrained.at_least(target[idx].final_delay, config.expansion_cap);
    for (const TimedPath& tp : peers) {
      const std::string key = path_fault_key(tp.fault);
      if (in_target.count(key)) continue;
      NecessaryAnalysis na =
          input_necessary_assignments(netlist, tp.fault, config.probe_rounds);
      if (na.undetectable) {
        ++result.undetectable_dropped;
        continue;
      }
      SelectedPathFault sel;
      sel.fault = tp.fault;
      // Its delay under *traditional* STA, for reporting.
      sel.original_delay =
          traditional.path_delay(tp.fault).value_or(tp.delay);
      sel.newly_added = in_traditional_selection.count(key) == 0;
      sel.input_assignments = std::move(na.input_assignments);
      sel.case_values = std::move(na.detection_conditions);
      in_target.insert(key);
      target.push_back(std::move(sel));
      worklist.push_back(target.size() - 1);
      if (target.size() >= config.max_processed) break;
    }
  }

  // Any fault whose recalculation was cut off by the processing cap keeps a
  // final delay; compute it now.
  for (SelectedPathFault& sel : target) {
    if (sel.final_delay == 0.0) {
      const TimingGraph constrained(netlist, library, sel.case_values);
      sel.final_delay =
          constrained.path_delay(sel.fault).value_or(sel.original_delay);
    }
  }

  std::sort(target.begin(), target.end(),
            [](const SelectedPathFault& a, const SelectedPathFault& b) {
              return a.final_delay > b.final_delay;
            });
  result.final_size = target.size();
  result.target = std::move(target);
  return result;
}

}  // namespace fbt
