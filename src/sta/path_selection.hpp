// Critical-path selection with input necessary assignments (dissertation
// §3.3, Fig. 3.1).
//
// 1. Traditional STA ranks the M most critical path delay faults (FPo).
// 2. Input necessary assignments (INAs) are computed per fault; faults proven
//    undetectable are dropped; the N most critical potentially detectable
//    faults (plus delay ties) initialize Target_PDF.
// 3. Each fault's delay is recalculated by STA under its own INAs; paths at
//    least as slow under those INAs name additional faults, which join
//    Target_PDF if potentially detectable -- the transitive closure of the
//    "at least as critical under my detection conditions" relation.
// 4. The final N selections are ranked by recalculated delay.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "atpg/necessary.hpp"
#include "paths/path.hpp"
#include "sta/timing_graph.hpp"

namespace fbt {

struct PathSelectionConfig {
  std::size_t num_target = 100;        ///< N
  std::size_t initial_pool = 1500;     ///< M (>= N)
  std::size_t expansion_cap = 64;      ///< max new paths examined per fault
  std::size_t max_processed = 4000;    ///< safety cap on closure size
  std::size_t probe_rounds = 1;        ///< §3.2 step-4 rounds
};

struct SelectedPathFault {
  PathDelayFault fault;
  double original_delay = 0.0;  ///< traditional STA
  double final_delay = 0.0;     ///< STA under the fault's own INAs
  bool newly_added = false;     ///< absent from the traditional selection
  std::vector<Assignment> input_assignments;  ///< InNecAssign(fp)
  /// DetCon(fp): all implied line values; fed to the STA's case analysis
  /// (internal pins included, like set_case_analysis on nets).
  std::vector<Assignment> case_values;
};

struct PathSelectionResult {
  /// Target_PDF after expansion, sorted by final delay (descending).
  std::vector<SelectedPathFault> target;
  std::size_t original_size = 0;  ///< |Target_PDF| before recalculation
  std::size_t final_size = 0;     ///< |Target_PDF| after expansion
  std::size_t undetectable_dropped = 0;
};

PathSelectionResult select_critical_paths(const Netlist& netlist,
                                          const DelayLibrary& library,
                                          const PathSelectionConfig& config);

/// Stable identity key for a path delay fault (node ids + transition).
std::string path_fault_key(const PathDelayFault& fault);

}  // namespace fbt
