#include "sta/timing_report.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace fbt {

TimingReport::TimingReport(const Netlist& netlist, const TimingGraph& graph,
                           double clock_period_ns)
    : netlist_(&netlist), graph_(&graph), period_(clock_period_ns) {
  require(clock_period_ns > 0, "TimingReport", "clock period must be > 0");

  // Worst arrival per endpoint via a bounded path enumeration: paths come
  // out in non-increasing delay order, so the first completion seen at an
  // endpoint is its worst arrival.
  std::vector<std::uint8_t> seen(netlist.size(), 0);
  std::size_t endpoint_count = 0;
  for (const NodeId po : netlist.outputs()) {
    if (!seen[po]) {
      seen[po] = 1;
      ++endpoint_count;
    }
  }
  for (const NodeId ff : netlist.flops()) {
    const NodeId d = netlist.dff_input(ff);
    if (!seen[d]) {
      seen[d] = 1;
      ++endpoint_count;
    }
  }
  std::fill(seen.begin(), seen.end(), 0);

  const std::size_t cap = std::max<std::size_t>(4096, 64 * endpoint_count);
  const auto ranked = graph.most_critical(cap);
  for (const TimedPath& tp : ranked) {
    const NodeId end = tp.fault.path.nodes.back();
    if (seen[end]) continue;
    seen[end] = 1;
    endpoints_.push_back({end, tp.delay, clock_period_ns - tp.delay});
    if (endpoints_.size() == endpoint_count) break;
  }
  // Endpoints never reached by a sensitizable path have infinite slack; they
  // are reported with arrival 0.
  for (const NodeId po : netlist.outputs()) {
    if (!seen[po]) {
      seen[po] = 1;
      endpoints_.push_back({po, 0.0, clock_period_ns});
    }
  }
  for (const NodeId ff : netlist.flops()) {
    const NodeId d = netlist.dff_input(ff);
    if (!seen[d]) {
      seen[d] = 1;
      endpoints_.push_back({d, 0.0, clock_period_ns});
    }
  }
  std::sort(endpoints_.begin(), endpoints_.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              return a.slack < b.slack;
            });
}

double TimingReport::worst_slack() const {
  return endpoints_.empty() ? period_ : endpoints_.front().slack;
}

std::size_t TimingReport::violation_count() const {
  std::size_t count = 0;
  for (const EndpointSlack& e : endpoints_) count += (e.slack < 0);
  return count;
}

std::string TimingReport::to_string(std::size_t k) const {
  std::ostringstream out;
  out << "Timing report (period " << period_ << " ns, worst slack "
      << worst_slack() << " ns, " << violation_count() << " violations)\n";
  const auto worst_paths = graph_->most_critical(8 * k);
  std::size_t shown = 0;
  std::vector<std::uint8_t> covered(netlist_->size(), 0);
  for (const TimedPath& tp : worst_paths) {
    const NodeId end = tp.fault.path.nodes.back();
    if (covered[end]) continue;
    covered[end] = 1;
    out << "  endpoint " << netlist_->gate(end).name << ": arrival "
        << tp.delay << " ns, slack " << (period_ - tp.delay) << " ns\n"
        << "    path:";
    for (const NodeId n : tp.fault.path.nodes) {
      out << ' ' << netlist_->gate(n).name;
    }
    out << " (" << (tp.fault.rising ? "rising" : "falling") << " launch)\n";
    if (++shown == k) break;
  }
  return out.str();
}

}  // namespace fbt
