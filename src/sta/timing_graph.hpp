// Static timing analysis with optional case analysis (dissertation §3.3.1).
//
// The timing graph covers the combinational core: launch points (primary
// inputs, state variables) to capture points (primary outputs, flip-flop D
// inputs). Case analysis mirrors PrimeTime's set_case_analysis: an input
// specified under BOTH patterns contributes a constant (00/11) or a
// transition (01 rising / 10 falling); three-valued simulation of the two
// frames then prunes nodes that cannot toggle and edges blocked by a
// controlling second-pattern side input, and resolves side inputs so their
// pessimism penalty is dropped.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "atpg/two_frame.hpp"
#include "sim/value.hpp"
#include "netlist/netlist.hpp"
#include "paths/path.hpp"
#include "sta/delay_library.hpp"

namespace fbt {

/// A ranked critical path: the structural path, the transition at its source,
/// and its delay under the analysis conditions.
struct TimedPath {
  PathDelayFault fault;
  double delay = 0.0;
};

class TimingGraph {
 public:
  /// `case_values`: assignments on any line of the circuit (inputs, state
  /// variables, or internal nets -- as with PrimeTime's set_case_analysis,
  /// which accepts internal pins). Only lines specified under BOTH patterns
  /// act as case constraints (§3.3.1); others are ignored for timing.
  TimingGraph(const Netlist& netlist, const DelayLibrary& library,
              std::span<const Assignment> case_values = {});

  /// Delay of a specific path delay fault under the case conditions, or
  /// nullopt when the path cannot propagate a transition (a node is constant
  /// or an edge is blocked).
  std::optional<double> path_delay(const PathDelayFault& fault) const;

  /// The K most critical path delay faults in non-increasing delay order
  /// (fewer when the sensitizable graph has fewer paths).
  std::vector<TimedPath> most_critical(std::size_t k) const;

  /// All sensitizable path delay faults with delay >= threshold, capped at
  /// `max_paths` (used by the §3.3.2 expansion step).
  std::vector<TimedPath> at_least(double threshold,
                                  std::size_t max_paths) const;

  /// Worst arrival time at any capture point (classic STA number).
  double worst_arrival() const;

  /// True when the node can toggle between the two patterns.
  bool can_toggle(NodeId node) const { return toggle_[node] != 0; }

 private:
  // dir: 0 = rising, 1 = falling (transition direction at the node).
  double edge_delay(NodeId gate, int dir_out) const;
  bool edge_open(NodeId from, NodeId gate) const;
  int dir_through(NodeId gate, int dir_in) const {
    return inverts(netlist_->type(gate)) ? 1 - dir_in : dir_in;
  }

  void enumerate(std::size_t max_paths, std::optional<double> threshold,
                 std::vector<TimedPath>& out) const;

  const Netlist* netlist_;
  DelayLibrary library_;  // by value: small, and callers may pass temporaries
  std::vector<Val3> val1_;  ///< pattern-1 values under case analysis
  std::vector<Val3> val2_;  ///< pattern-2 values under case analysis
  std::vector<std::uint8_t> toggle_;
  /// best_completion_[2 * node + dir]: max delay from `node` (transitioning
  /// in direction dir) to any capture point; negative infinity when none.
  std::vector<double> best_completion_;
};

}  // namespace fbt
