#include "sta/delay_library.hpp"

#include "util/require.hpp"

namespace fbt {

DelayLibrary DelayLibrary::standard_018um() {
  DelayLibrary lib;
  lib.inv_ = {0.030, 0.027};
  lib.buf_ = {0.048, 0.044};
  lib.nand_ = {0.046, 0.040};
  lib.nor_ = {0.050, 0.058};
  lib.and_ = {0.062, 0.058};
  lib.or_ = {0.066, 0.062};
  lib.xor_ = {0.088, 0.086};
  lib.xnor_ = {0.092, 0.090};
  lib.per_extra_fanin_ = 0.006;
  lib.side_input_penalty_ = 0.006;
  return lib;
}

GateDelay DelayLibrary::delay(GateType type, std::size_t fanins) const {
  GateDelay base;
  switch (type) {
    case GateType::kNot: base = inv_; break;
    case GateType::kBuf: base = buf_; break;
    case GateType::kNand: base = nand_; break;
    case GateType::kNor: base = nor_; break;
    case GateType::kAnd: base = and_; break;
    case GateType::kOr: base = or_; break;
    case GateType::kXor: base = xor_; break;
    case GateType::kXnor: base = xnor_; break;
    default:
      throw Error("DelayLibrary::delay: node type has no delay arc");
  }
  if (fanins > 2) {
    const double extra = per_extra_fanin_ * static_cast<double>(fanins - 2);
    base.rise += extra;
    base.fall += extra;
  }
  return base;
}

}  // namespace fbt
