// Work-stealing job system: the single execution substrate of the repo.
//
// Replaces the fixed per-phase util/thread_pool so that many circuits and
// many experiments multiplex one set of worker threads (the serving story:
// every request's task graph shares the pool instead of spawning its own).
//
// Shape:
//  * one bounded set of worker threads, each owning a deque of ready tasks;
//    a worker pops from the back of its own deque (LIFO, cache-warm) and,
//    when empty, steals the front half of a victim's deque (FIFO, oldest
//    tasks first -- the classic steal-half discipline);
//  * tasks are handles with dependencies: submit_after() defers a task until
//    every dependency finished; a failed dependency propagates its exception
//    to dependents without running them;
//  * exception propagation: wait() rethrows the task's exception (or the
//    inherited dependency failure) on the waiting thread;
//  * waiting helps: a thread blocked in wait() executes pending tasks
//    instead of idling, so nested parallel_for from inside a task cannot
//    deadlock the pool;
//  * determinism: the scheduler never influences results -- parallel users
//    (fault-grading shards, flow task graphs) partition work by index and
//    merge by index, so any interleaving produces bit-identical output
//    (pinned by tests/bist/attribution_identity_test.cpp and
//    tests/serve/server_test.cpp).
//
// Observability: jobs.submitted / jobs.executed / jobs.steals counters plus,
// when FBT_OBS is on, cross-worker trace propagation (submit_after captures
// the submitter's obs::TraceContext and re-enters it on the executing worker,
// with a Chrome flow arrow from submit site to run site), per-worker busy
// time, queue-depth gauges, and steal-latency / run-time histograms. The
// always-on counters are plain relaxed atomics; everything involving a clock
// read compiles away under FBT_OBS=OFF.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#ifndef FBT_OBS_ENABLED
#define FBT_OBS_ENABLED 1
#endif

#if FBT_OBS_ENABLED
#include "obs/phase.hpp"
#endif

namespace fbt::jobs {

namespace detail {

/// Shared completion state of one task. Lifetime is managed by shared_ptr:
/// the queue, the handle, and dependent tasks may all hold references.
struct TaskState {
  std::function<void()> fn;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;                 ///< guarded by mutex
  std::exception_ptr error;          ///< set before done, guarded by mutex
  std::exception_ptr dep_error;      ///< first failed dependency, guarded
  std::vector<std::shared_ptr<TaskState>> dependents;  ///< guarded by mutex
  /// Unfinished dependencies + 1 submission guard; the task is enqueued when
  /// this reaches zero.
  std::atomic<int> pending{1};
#if FBT_OBS_ENABLED
  /// Submitter's trace position, captured at submit time and re-entered
  /// (obs::TraceContextScope) around fn() on the executing worker -- written
  /// before the task becomes reachable by any worker, read-only afterwards.
  obs::TraceContext trace{};
  std::uint64_t flow_id = 0;    ///< Chrome flow-arrow id (submit -> run)
  std::uint64_t submit_us = 0;  ///< trace-epoch time of the submit site
  std::uint32_t submit_tid = 0;  ///< trace tid of the submitting thread
#endif
};

}  // namespace detail

/// Point-in-time scheduler telemetry (see JobSystem::scheduler_snapshot).
/// Counters are lifetime totals for this pool; busy/utilization cover the
/// span from construction to the snapshot. Under FBT_OBS=OFF the busy-time
/// instrumentation compiles away, so busy_ms and utilization read 0.
struct SchedulerSnapshot {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;  ///< tasks queued, not yet started
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  double busy_ms = 0.0;     ///< summed across workers
  double elapsed_ms = 0.0;  ///< wall time since pool construction
  double utilization = 0.0;  ///< busy / (workers * elapsed), in [0, 1]
};

/// Opaque reference to a submitted task. Default-constructed handles are
/// inert (valid() == false); wait() on them returns immediately.
class TaskHandle {
 public:
  TaskHandle() = default;
  bool valid() const { return state_ != nullptr; }
  /// True once the task (or its dependency-failure short-circuit) finished.
  bool done() const;

 private:
  friend class JobSystem;
  explicit TaskHandle(std::shared_ptr<detail::TaskState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::TaskState> state_;
};

class JobSystem {
 public:
  /// `num_threads` = 0 selects std::thread::hardware_concurrency().
  explicit JobSystem(std::size_t num_threads = 0);
  ~JobSystem();
  JobSystem(const JobSystem&) = delete;
  JobSystem& operator=(const JobSystem&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const { return queues_.size(); }

  /// Maps the num_threads knob to an actual count: 0 becomes
  /// hardware_concurrency() (or 1 when that is unknown). Shared by every
  /// `num_threads` knob in the repo (grading shards, server pools).
  static std::size_t resolve_threads(std::size_t requested);

  /// Schedules `fn` for execution. The handle outlives the system only as an
  /// inert token; wait on it before destroying the JobSystem.
  TaskHandle submit(std::function<void()> fn);

  /// Schedules `fn` to run after every task in `deps` finished. If a
  /// dependency finished with an exception, `fn` is not run and the handle
  /// carries that exception instead.
  TaskHandle submit_after(const std::vector<TaskHandle>& deps,
                          std::function<void()> fn);

  /// Blocks until `handle` finished, executing pending tasks while waiting
  /// (from worker and external threads alike). Rethrows the task's
  /// exception. No-op for invalid handles.
  void wait(const TaskHandle& handle);

  /// Waits on every handle; rethrows the first (by index) exception after
  /// all finished.
  void wait_all(const std::vector<TaskHandle>& handles);

  /// Executes task(i) for every i in [0, num_tasks) across the pool and the
  /// calling thread; blocks until all finished and rethrows the first (by
  /// index) exception. Runs inline when the pool has one worker or
  /// num_tasks <= 1, preserving the serial reference path exactly.
  void parallel_for(std::size_t num_tasks,
                    const std::function<void(std::size_t)>& task);

  /// Current scheduler telemetry for this pool. Cheap (relaxed atomic loads
  /// only) and safe to call concurrently with running work -- the serve
  /// daemon calls it per `stats` request, the run report once at exit.
  SchedulerSnapshot scheduler_snapshot() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::shared_ptr<detail::TaskState>> tasks;
  };

  void worker_loop(std::size_t index);
  void enqueue(std::shared_ptr<detail::TaskState> state);
  /// Runs one ready task on the calling thread: own queue first (workers),
  /// then stealing. Returns false when every queue was empty.
  bool try_execute_one();
  void execute(const std::shared_ptr<detail::TaskState>& state);
  void complete(const std::shared_ptr<detail::TaskState>& state,
                std::exception_ptr error);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> submit_cursor_{0};  ///< round-robin for externals
  std::atomic<std::size_t> ready_count_{0};    ///< queued, not yet started
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  ///< guarded by idle_mutex_

  // Telemetry (scheduler_snapshot). The lifetime counters are always-on
  // relaxed atomics; busy-time accounting needs a clock read per task and is
  // compiled away under FBT_OBS=OFF.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::chrono::steady_clock::time_point start_;
#if FBT_OBS_ENABLED
  /// Per-worker (+1 slot for external helpers) microseconds spent in fn().
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_us_;
#endif
};

/// The process-wide pool (hardware_concurrency workers, created on first
/// use). Batch entry points default to it; servers may size their own.
JobSystem& global_jobs();

}  // namespace fbt::jobs
