#include "jobs/job_system.hpp"

#include <algorithm>
#include <chrono>

#include "obs/instrument.hpp"

namespace fbt::jobs {

namespace {

// Identifies the pool (and worker slot) owning the current thread so
// enqueue() can push to the local deque and wait() knows it must help.
thread_local JobSystem* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

#if FBT_OBS_ENABLED
double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
#endif

}  // namespace

bool TaskHandle::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

std::size_t JobSystem::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

JobSystem::JobSystem(std::size_t num_threads) {
  const std::size_t n = resolve_threads(num_threads);
  start_ = std::chrono::steady_clock::now();
#if FBT_OBS_ENABLED
  busy_us_ = std::make_unique<std::atomic<std::uint64_t>[]>(n + 1);
  for (std::size_t i = 0; i <= n; ++i) busy_us_[i] = 0;
#endif
  FBT_OBS_GAUGE_SET("jobs.workers", n);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

JobSystem::~JobSystem() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

TaskHandle JobSystem::submit(std::function<void()> fn) {
  return submit_after({}, std::move(fn));
}

TaskHandle JobSystem::submit_after(const std::vector<TaskHandle>& deps,
                                   std::function<void()> fn) {
  auto state = std::make_shared<detail::TaskState>();
  state->fn = std::move(fn);
  for (const TaskHandle& dep : deps) {
    if (!dep.valid()) continue;
    std::lock_guard<std::mutex> lock(dep.state_->mutex);
    if (!dep.state_->done) {
      state->pending.fetch_add(1, std::memory_order_relaxed);
      dep.state_->dependents.push_back(state);
    } else if (dep.state_->error != nullptr) {
      std::lock_guard<std::mutex> self_lock(state->mutex);
      if (state->dep_error == nullptr) state->dep_error = dep.state_->error;
    }
  }
#if FBT_OBS_ENABLED
  // Capture the submitter's trace position before the task becomes reachable
  // (execute() re-enters it on whichever worker runs fn, possibly after a
  // steal). The flow id pairs the Chrome "s"/"f" arrow from here to there;
  // untraced submits (no enclosing span) skip the arrow to keep the trace
  // buffer proportional to instrumented work.
  state->trace = obs::current_trace_context();
  if (state->trace.span_id != 0) {
    state->flow_id = obs::detail::next_flow_id();
    state->submit_us = obs::detail::trace_now_us();
    state->submit_tid = obs::detail::trace_thread_tid();
  }
#endif
  submitted_.fetch_add(1, std::memory_order_relaxed);
  FBT_OBS_COUNTER_ADD("jobs.submitted", 1);
  // Drop the submission guard; enqueue now when every dependency already
  // finished (the last finishing dependency enqueues otherwise).
  if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue(state);
  }
  return TaskHandle(state);
}

void JobSystem::enqueue(std::shared_ptr<detail::TaskState> state) {
  std::size_t index;
  if (tls_pool == this) {
    index = tls_worker;  // local push: LIFO hot path for nested submits
  } else {
    index = submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(state));
  }
  const std::size_t depth =
      ready_count_.fetch_add(1, std::memory_order_release) + 1;
  FBT_OBS_GAUGE_SET("jobs.queue_depth", depth);
  {
    // Pairs with the predicate re-check in worker_loop: taking the mutex
    // before notifying closes the missed-wakeup window.
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_one();
}

bool JobSystem::try_execute_one() {
  const bool is_worker = tls_pool == this;
  const std::size_t n = queues_.size();
  const std::size_t self = is_worker ? tls_worker : 0;

  std::shared_ptr<detail::TaskState> task;
  if (is_worker) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }

  if (task == nullptr) {
    // Steal: scan victims from the next slot; take the front half of the
    // first non-empty deque (oldest tasks -- likely whole subtrees), run the
    // first stolen task, keep the rest locally (workers only).
#if FBT_OBS_ENABLED
    const auto steal_t0 = std::chrono::steady_clock::now();
#endif
    std::vector<std::shared_ptr<detail::TaskState>> stolen;
    for (std::size_t off = is_worker ? 1 : 0; off < n && task == nullptr;
         ++off) {
      const std::size_t victim = (self + off) % n;
      if (is_worker && victim == self) continue;
      WorkerQueue& vq = *queues_[victim];
      std::lock_guard<std::mutex> lock(vq.mutex);
      if (vq.tasks.empty()) continue;
      const std::size_t take =
          is_worker ? (vq.tasks.size() + 1) / 2 : std::size_t{1};
      for (std::size_t i = 0; i < take; ++i) {
        stolen.push_back(std::move(vq.tasks.front()));
        vq.tasks.pop_front();
      }
      task = std::move(stolen.front());
      steals_.fetch_add(1, std::memory_order_relaxed);
      FBT_OBS_COUNTER_ADD("jobs.steals", 1);
    }
    if (task == nullptr) return false;
#if FBT_OBS_ENABLED
    // Time from "own deque empty" to "victim task in hand": the cost of the
    // scan itself, a proxy for contention on the victim locks.
    FBT_OBS_HIST_RECORD_LOG(
        "jobs.steal_latency_ms",
        us_between(steal_t0, std::chrono::steady_clock::now()) / 1000.0);
#endif
    if (stolen.size() > 1) {
      WorkerQueue& own = *queues_[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      for (std::size_t i = 1; i < stolen.size(); ++i) {
        own.tasks.push_back(std::move(stolen[i]));
      }
    }
  }

  ready_count_.fetch_sub(1, std::memory_order_acq_rel);
  execute(task);
  return true;
}

void JobSystem::execute(const std::shared_ptr<detail::TaskState>& state) {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    error = state->dep_error;
  }
  if (error == nullptr) {
#if FBT_OBS_ENABLED
    if (state->flow_id != 0) {
      // Chrome flow arrow: submit site -> this execution site (which may be
      // a different worker after a steal).
      obs::PhaseTrace::instance().add_flow(
          {state->flow_id, state->submit_us, state->submit_tid,
           obs::detail::trace_now_us(), obs::detail::trace_thread_tid()});
    }
    const auto run_t0 = std::chrono::steady_clock::now();
    try {
      // Re-enter the submitter's trace position: spans fn opens outside any
      // local span chain to the submitter instead of fragmenting into
      // parentless roots (stitched back by PhaseTrace::summarize()).
      obs::TraceContextScope trace_scope(state->trace);
      state->fn();
    } catch (...) {
      error = std::current_exception();
    }
    const double run_us =
        us_between(run_t0, std::chrono::steady_clock::now());
    FBT_OBS_HIST_RECORD_LOG("jobs.run_ms", run_us / 1000.0);
    FBT_OBS_COUNTER_ADD("jobs.busy_us", static_cast<std::uint64_t>(run_us));
    const std::size_t slot =
        tls_pool == this ? tls_worker : queues_.size();
    busy_us_[slot].fetch_add(static_cast<std::uint64_t>(run_us),
                             std::memory_order_relaxed);
#else
    try {
      state->fn();
    } catch (...) {
      error = std::current_exception();
    }
#endif
  }
  state->fn = nullptr;  // release captured resources before signalling done
  executed_.fetch_add(1, std::memory_order_relaxed);
  FBT_OBS_COUNTER_ADD("jobs.executed", 1);
  complete(state, error);
}

void JobSystem::complete(const std::shared_ptr<detail::TaskState>& state,
                         std::exception_ptr error) {
  std::vector<std::shared_ptr<detail::TaskState>> dependents;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->error = error;
    state->done = true;
    dependents.swap(state->dependents);
  }
  state->cv.notify_all();
  for (const std::shared_ptr<detail::TaskState>& dep : dependents) {
    if (error != nullptr) {
      std::lock_guard<std::mutex> lock(dep->mutex);
      if (dep->dep_error == nullptr) dep->dep_error = error;
    }
    if (dep->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      enqueue(dep);
    }
  }
}

void JobSystem::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_worker = index;
  while (true) {
    if (try_execute_one()) continue;
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
      return stop_ || ready_count_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void JobSystem::wait(const TaskHandle& handle) {
  if (!handle.valid()) return;
  const std::shared_ptr<detail::TaskState>& state = handle.state_;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->done) break;
    }
    // Help: run pending tasks instead of idling. A blocked dependency chain
    // leaves the queues empty, so fall back to a timed wait on the task's cv
    // (timed because new work may appear in the queues, not on this cv).
    if (!try_execute_one()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->done) break;
      state->cv.wait_for(lock, std::chrono::microseconds(200));
    }
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

void JobSystem::wait_all(const std::vector<TaskHandle>& handles) {
  std::exception_ptr first;
  for (const TaskHandle& h : handles) {
    try {
      wait(h);
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void JobSystem::parallel_for(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || size() == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  std::vector<TaskHandle> handles;
  handles.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    handles.push_back(submit([&task, i] { task(i); }));
  }
  wait_all(handles);
}

SchedulerSnapshot JobSystem::scheduler_snapshot() const {
  SchedulerSnapshot snap;
  snap.workers = queues_.size();
  snap.queue_depth = ready_count_.load(std::memory_order_relaxed);
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.executed = executed_.load(std::memory_order_relaxed);
  snap.steals = steals_.load(std::memory_order_relaxed);
  snap.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
#if FBT_OBS_ENABLED
  std::uint64_t busy_us = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    busy_us += busy_us_[i].load(std::memory_order_relaxed);
  }
  snap.busy_ms = static_cast<double>(busy_us) / 1000.0;
  const double capacity_ms =
      snap.elapsed_ms * static_cast<double>(snap.workers);
  if (capacity_ms > 0.0) {
    snap.utilization = std::min(1.0, snap.busy_ms / capacity_ms);
  }
#endif
  return snap;
}

JobSystem& global_jobs() {
  static JobSystem system(0);
  return system;
}

}  // namespace fbt::jobs
