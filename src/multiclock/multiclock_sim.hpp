// Multi-clock sequential and fault simulation (dissertation §5.1).
//
// MultiClockSim drives the composite machine: the fast domain captures every
// cycle, the slow domain only on its divided clock edges (realized as a hold
// on the off cycles, exactly the state-holding mechanism of §4.5 put to a
// functional use). MultiClockFaultSim grades *multi-cycle tests* -- stimulus
// windows long enough to contain at least one slow-clock capture -- against
// transition faults with a one-fast-cycle gross-delay model; detection is a
// primary-output mismatch on any cycle or a state mismatch at a domain's own
// capture edge.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "multiclock/clock_domains.hpp"
#include "sim/seqsim.hpp"

namespace fbt {

class MultiClockSim {
 public:
  explicit MultiClockSim(const ClockDomains& domains);

  void load_reset_state();

  /// Applies one fast-clock cycle: settles, then captures the fast domain
  /// always and the slow domain only when its edge lands this cycle.
  SeqStep step(std::span<const std::uint8_t> pi_values);

  const std::vector<std::uint8_t>& state() const { return sim_.state(); }
  std::uint8_t value(NodeId id) const { return sim_.value(id); }
  std::size_t cycle() const { return cycle_; }

 private:
  const ClockDomains* domains_;
  SeqSim sim_;
  std::vector<std::uint8_t> hold_slow_;  ///< hold mask for off cycles
  std::size_t cycle_ = 0;
};

/// A multi-cycle test: a start state plus a window of primary input vectors
/// (window length should be >= divider + 1 so every domain launches and
/// captures at speed at least once).
struct MultiCycleTest {
  std::vector<std::uint8_t> start_state;
  std::vector<std::vector<std::uint8_t>> vectors;
};

class MultiClockFaultSim {
 public:
  explicit MultiClockFaultSim(const ClockDomains& domains);

  /// True when `test` detects `fault` (gross delay of one fast cycle on the
  /// faulty direction's edges).
  bool detects(const MultiCycleTest& test, const TransitionFault& fault);

  /// Grades a set of tests with 1-detect dropping; detect_count as in
  /// BroadsideFaultSim::grade.
  std::size_t grade(const std::vector<MultiCycleTest>& tests,
                    const TransitionFaultList& faults,
                    std::vector<std::uint32_t>& detect_count);

 private:
  const ClockDomains* domains_;
};

/// Cuts multi-cycle tests out of a functional trajectory: from `start_state`
/// apply `vectors`; a test window of `window` cycles starts at every
/// divider-aligned position.
std::vector<MultiCycleTest> extract_multicycle_tests(
    const ClockDomains& domains, const std::vector<std::uint8_t>& start_state,
    const std::vector<std::vector<std::uint8_t>>& vectors, std::size_t window);

}  // namespace fbt
