#include "multiclock/clock_domains.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fbt {

ClockDomains::ClockDomains(const Netlist& netlist,
                           std::vector<std::uint8_t> slow_flops,
                           unsigned divider)
    : netlist_(&netlist), slow_flops_(std::move(slow_flops)),
      divider_(divider) {
  require(netlist.finalized(), "ClockDomains", "netlist must be finalized");
  require(slow_flops_.size() == netlist.num_flops(), "ClockDomains",
          "slow_flops must have one entry per flop");
  require(divider_ >= 2, "ClockDomains", "divider must be >= 2");
  for (const std::uint8_t s : slow_flops_) num_slow_ += (s != 0);

  const std::size_t n = netlist.size();
  fed_by_slow_.assign(n, 0);
  fed_by_fast_.assign(n, 0);
  feeds_slow_.assign(n, 0);
  feeds_fast_.assign(n, 0);

  // Forward reachability (launch side). Primary inputs count as fast-rate
  // sources (they may change every fast cycle).
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    (is_slow(i) ? fed_by_slow_ : fed_by_fast_)[netlist.flops()[i]] = 1;
  }
  for (const NodeId pi : netlist.inputs()) fed_by_fast_[pi] = 1;
  for (const NodeId id : netlist.eval_order()) {
    for (const NodeId f : netlist.gate(id).fanins) {
      fed_by_slow_[id] |= fed_by_slow_[f];
      fed_by_fast_[id] |= fed_by_fast_[f];
    }
  }

  // Backward reachability (capture side). Primary outputs are sampled at the
  // fast rate.
  for (std::size_t i = 0; i < netlist.num_flops(); ++i) {
    (is_slow(i) ? feeds_slow_ : feeds_fast_)[netlist.dff_input(
        netlist.flops()[i])] |= 1;
  }
  for (const NodeId po : netlist.outputs()) feeds_fast_[po] = 1;
  const auto& order = netlist.eval_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (const NodeId f : netlist.gate(*it).fanins) {
      feeds_slow_[f] |= feeds_slow_[*it];
      feeds_fast_[f] |= feeds_fast_[*it];
    }
  }
}

ClockDomains ClockDomains::split_by_index(const Netlist& netlist,
                                          unsigned slow_fraction_percent,
                                          unsigned divider) {
  require(slow_fraction_percent <= 100, "ClockDomains::split_by_index",
          "percentage must be <= 100");
  const std::size_t nff = netlist.num_flops();
  const std::size_t slow =
      nff * slow_fraction_percent / 100;
  std::vector<std::uint8_t> mask(nff, 0);
  for (std::size_t i = nff - slow; i < nff; ++i) mask[i] = 1;
  return ClockDomains(netlist, std::move(mask), divider);
}

ClockDomains::FaultSpan ClockDomains::classify(NodeId line) const {
  const bool launch_slow = fed_by_slow_[line] != 0;
  const bool launch_fast = fed_by_fast_[line] != 0;
  const bool capture_slow = feeds_slow_[line] != 0;
  const bool capture_fast = feeds_fast_[line] != 0;
  if (!launch_slow && !capture_slow) return FaultSpan::kIntraFast;
  if (!launch_fast && !capture_fast) return FaultSpan::kIntraSlow;
  return FaultSpan::kCrossing;
}

}  // namespace fbt
