// Multi-clock-domain circuit model (dissertation §5.1 future work).
//
// "For circuits with multiple clock domains, the frequency difference
// between clock domains must be taken into account during on-chip test
// generation. The clock domains should operate at their own speeds so that
// reachable states can be obtained properly. In addition, multi-cycle tests
// may be needed to detect both intra-clock-domain and inter-clock-domain
// faults."
//
// This module implements that extension in its simplest faithful form: two
// domains, a fast one and a slow one whose clock ticks once every `divider`
// fast cycles (a synchronous divided clock, so the composite machine stays
// deterministic). Each flip-flop belongs to one domain; combinational logic
// is shared. Faults are classified by the domains their launch/capture logic
// spans, and the sequence-based fault simulator applies multi-cycle stimuli
// so that slow-domain captures are observed on their own clock edges.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fbt {

class ClockDomains {
 public:
  /// Assigns each flop to a domain: `slow_flops[i]` nonzero puts flop i in
  /// the slow domain. `divider` >= 2 is the fast:slow frequency ratio.
  ClockDomains(const Netlist& netlist, std::vector<std::uint8_t> slow_flops,
               unsigned divider);

  /// Convenience: the last `slow_fraction_percent` % of flops are slow
  /// (deterministic, mirrors how register files cluster in real designs).
  static ClockDomains split_by_index(const Netlist& netlist,
                                     unsigned slow_fraction_percent,
                                     unsigned divider);

  const Netlist& netlist() const { return *netlist_; }
  unsigned divider() const { return divider_; }
  bool is_slow(std::size_t flop_index) const {
    return slow_flops_[flop_index] != 0;
  }
  std::size_t num_slow() const { return num_slow_; }

  /// True when the slow clock captures at the end of fast cycle `cycle`
  /// (cycle counting from 0; the slow edge lands every `divider` cycles, on
  /// cycles divider-1, 2*divider-1, ...).
  bool slow_capture_at(std::size_t cycle) const {
    return (cycle % divider_) == divider_ - 1;
  }

  /// Fault-site classification by the clock domains of the flops in the
  /// site's structural fan-in (launch side) and fan-out (capture side).
  enum class FaultSpan : std::uint8_t {
    kIntraFast,  ///< launched and captured by fast-domain logic only
    kIntraSlow,  ///< slow-domain only
    kCrossing,   ///< paths cross the domain boundary
  };
  FaultSpan classify(NodeId line) const;

 private:
  const Netlist* netlist_;
  std::vector<std::uint8_t> slow_flops_;  // per flop index
  unsigned divider_;
  std::size_t num_slow_ = 0;
  // Per node: reachable-from-slow-flop / reaches-slow-flop (and fast dito).
  std::vector<std::uint8_t> fed_by_slow_, fed_by_fast_;
  std::vector<std::uint8_t> feeds_slow_, feeds_fast_;
};

}  // namespace fbt
