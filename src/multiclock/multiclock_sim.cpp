#include "multiclock/multiclock_sim.hpp"

#include "sim/value.hpp"
#include "util/require.hpp"

namespace fbt {

MultiClockSim::MultiClockSim(const ClockDomains& domains)
    : domains_(&domains), sim_(domains.netlist()) {
  hold_slow_.assign(domains.netlist().num_flops(), 0);
  for (std::size_t i = 0; i < hold_slow_.size(); ++i) {
    hold_slow_[i] = domains.is_slow(i) ? 1 : 0;
  }
}

void MultiClockSim::load_reset_state() {
  sim_.load_reset_state();
  cycle_ = 0;
}

SeqStep MultiClockSim::step(std::span<const std::uint8_t> pi_values) {
  // The slow domain holds on every cycle whose edge is not its own.
  const bool slow_edge = domains_->slow_capture_at(cycle_);
  const SeqStep step =
      sim_.step(pi_values, slow_edge ? std::span<const std::uint8_t>{}
                                     : std::span<const std::uint8_t>(
                                           hold_slow_));
  ++cycle_;
  return step;
}

namespace {

/// Two-machine window simulation: fault-free and faulty, with per-domain
/// state updates. The gross delay is scaled to the fault site's own clock
/// domain ("at speed" per domain, §5.1): one fast cycle for fast/crossing
/// sites, one slow period (= divider fast cycles) for intra-slow sites. The
/// delayed output has the closed form
///   rising-slow:  o(t) = AND(good(t-delay) .. good(t))
///   falling-slow: o(t) = OR(good(t-delay) .. good(t))
/// (an edge of the faulty direction only completes after `delay` quiet
/// cycles; the opposite direction passes immediately). Returns true on any
/// observable mismatch.
bool window_detects(const ClockDomains& domains, const MultiCycleTest& test,
                    const TransitionFault& fault) {
  const Netlist& nl = domains.netlist();
  require(test.start_state.size() == nl.num_flops(), "MultiClockFaultSim",
          "start state size mismatch");

  const std::size_t delay =
      domains.classify(fault.line) == ClockDomains::FaultSpan::kIntraSlow
          ? domains.divider()
          : 1;

  std::vector<std::uint8_t> good_state = test.start_state;
  std::vector<std::uint8_t> bad_state = test.start_state;
  std::vector<std::uint8_t> good_vals(nl.size(), 0);
  std::vector<std::uint8_t> bad_vals(nl.size(), 0);
  std::vector<std::uint8_t> site_history;  // good site values, oldest first
  site_history.reserve(delay);

  std::vector<std::uint8_t> fanins;
  auto settle = [&](std::vector<std::uint8_t>& vals,
                    const std::vector<std::uint8_t>& state,
                    const std::vector<std::uint8_t>& pi, bool faulty) {
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      vals[nl.inputs()[i]] = pi[i];
    }
    for (std::size_t i = 0; i < nl.num_flops(); ++i) {
      vals[nl.flops()[i]] = state[i];
    }
    for (NodeId id = 0; id < nl.size(); ++id) {
      const GateType t = nl.type(id);
      if (t == GateType::kConst0) vals[id] = 0;
      if (t == GateType::kConst1) vals[id] = 1;
    }
    auto force = [&](NodeId id) {
      if (!faulty || id != fault.line) return;
      // Fold the fault-free history (missing history = current value, so a
      // short window is conservative toward fault-free behaviour).
      std::uint8_t folded = vals[id];
      for (const std::uint8_t h : site_history) {
        if (fault.rising) {
          folded &= h;
        } else {
          folded |= h;
        }
      }
      vals[id] = folded;
    };
    if (!is_combinational(nl.gate(fault.line).type)) force(fault.line);
    for (const NodeId id : nl.eval_order()) {
      const Gate& g = nl.gate(id);
      fanins.clear();
      for (const NodeId f : g.fanins) fanins.push_back(vals[f]);
      vals[id] = eval_gate2(g.type, fanins);
      force(id);
    }
  };

  for (std::size_t c = 0; c < test.vectors.size(); ++c) {
    settle(good_vals, good_state, test.vectors[c], /*faulty=*/false);
    settle(bad_vals, bad_state, test.vectors[c], /*faulty=*/true);

    // Primary outputs are observed every fast cycle.
    for (const NodeId po : nl.outputs()) {
      if (good_vals[po] != bad_vals[po]) return true;
    }

    // Domain captures.
    const bool slow_edge = domains.slow_capture_at(c);
    for (std::size_t i = 0; i < nl.num_flops(); ++i) {
      if (domains.is_slow(i) && !slow_edge) continue;
      const NodeId d = nl.dff_input(nl.flops()[i]);
      good_state[i] = good_vals[d];
      bad_state[i] = bad_vals[d];
    }
    for (std::size_t i = 0; i < nl.num_flops(); ++i) {
      if (good_state[i] != bad_state[i]) return true;
    }

    site_history.push_back(good_vals[fault.line]);
    if (site_history.size() > delay) {
      site_history.erase(site_history.begin());
    }
  }
  return false;
}

}  // namespace

MultiClockFaultSim::MultiClockFaultSim(const ClockDomains& domains)
    : domains_(&domains) {}

bool MultiClockFaultSim::detects(const MultiCycleTest& test,
                                 const TransitionFault& fault) {
  return window_detects(*domains_, test, fault);
}

std::size_t MultiClockFaultSim::grade(const std::vector<MultiCycleTest>& tests,
                                      const TransitionFaultList& faults,
                                      std::vector<std::uint32_t>& detect_count) {
  require(detect_count.size() == faults.size(), "MultiClockFaultSim::grade",
          "detect_count size mismatch");
  std::size_t newly = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detect_count[f] >= 1) continue;
    for (const MultiCycleTest& test : tests) {
      if (window_detects(*domains_, test, faults.fault(f))) {
        detect_count[f] = 1;
        ++newly;
        break;
      }
    }
  }
  return newly;
}

std::vector<MultiCycleTest> extract_multicycle_tests(
    const ClockDomains& domains, const std::vector<std::uint8_t>& start_state,
    const std::vector<std::vector<std::uint8_t>>& vectors,
    std::size_t window) {
  require(window >= 2, "extract_multicycle_tests", "window must be >= 2");
  MultiClockSim sim(domains);
  sim.load_reset_state();
  // Track the state at every cycle so windows can start anywhere aligned.
  std::vector<std::vector<std::uint8_t>> states;
  states.push_back(start_state);
  {
    // Re-simulate from the given start state.
    SeqSim base(domains.netlist());
    base.load_state(start_state);
    std::vector<std::uint8_t> hold(domains.netlist().num_flops(), 0);
    for (std::size_t i = 0; i < hold.size(); ++i) {
      hold[i] = domains.is_slow(i) ? 1 : 0;
    }
    for (std::size_t c = 0; c < vectors.size(); ++c) {
      const bool slow_edge = domains.slow_capture_at(c);
      base.step(vectors[c], slow_edge ? std::span<const std::uint8_t>{}
                                      : std::span<const std::uint8_t>(hold));
      states.push_back(base.state());
    }
  }
  std::vector<MultiCycleTest> tests;
  const std::size_t stride = domains.divider();
  for (std::size_t start = 0; start + window <= vectors.size();
       start += stride) {
    MultiCycleTest t;
    t.start_state = states[start];
    t.vectors.assign(vectors.begin() + start,
                     vectors.begin() + start + window);
    tests.push_back(std::move(t));
  }
  return tests;
}

}  // namespace fbt
