// Graceful SIGINT/SIGTERM handling for the daemon and the batch tools.
//
// Instead of an async-signal handler (which could only set a flag and must
// not touch mutexes or the journal), the signals are blocked process-wide
// and a dedicated watcher thread sigwait()s for them. The handler therefore
// runs on an ordinary thread and may drain jobs, flush the NDJSON journal,
// and write the run report. A second SIGINT/SIGTERM while the first is
// being handled hard-exits (the escape hatch when a drain hangs).
//
// Construct the watcher BEFORE spawning worker threads: pthread_sigmask
// applies to the constructing thread and is inherited by threads it creates,
// which is what keeps the signals out of the pool. SIGUSR2 is reserved as
// the watcher's private wake-up for destruction.
#pragma once

#include <atomic>
#include <csignal>
#include <functional>
#include <thread>

namespace fbt::serve {

class GracefulShutdown {
 public:
  /// `on_signal(signum)` runs on the watcher thread for the first
  /// SIGINT/SIGTERM. It should stop servers / drain work; when it returns,
  /// the watcher keeps running only to catch the hard-exit second signal.
  explicit GracefulShutdown(std::function<void(int)> on_signal);
  ~GracefulShutdown();
  GracefulShutdown(const GracefulShutdown&) = delete;
  GracefulShutdown& operator=(const GracefulShutdown&) = delete;

  /// 0 until a signal arrived, then the signal number.
  int signal_received() const {
    return signal_.load(std::memory_order_acquire);
  }

  /// Conventional exit status for "terminated by signal s" (128 + s).
  static int exit_status(int signum) { return 128 + signum; }

 private:
  std::function<void(int)> on_signal_;
  std::atomic<int> signal_{0};
  std::atomic<bool> quit_{false};
  std::thread watcher_;
};

}  // namespace fbt::serve
