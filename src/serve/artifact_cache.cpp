#include "serve/artifact_cache.hpp"

#include <algorithm>

#include "obs/instrument.hpp"

namespace fbt::serve {

ArtifactCache::ArtifactCache(std::uint64_t byte_cap) : byte_cap_(byte_cap) {}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

std::shared_ptr<const void> ArtifactCache::lookup(const std::string& id) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    FBT_OBS_COUNTER_ADD("serve.cache_misses", 1);
    return nullptr;
  }
  it->second.tick = ++tick_;
  ++stats_.hits;
  FBT_OBS_COUNTER_ADD("serve.cache_hits", 1);
  return it->second.value;
}

std::shared_ptr<const void> ArtifactCache::insert(
    const std::string& id, std::shared_ptr<const void> value,
    std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    // A racing compute beat us; keep the resident entry so every holder
    // shares one copy.
    it->second.tick = ++tick_;
    return it->second.value;
  }
  Entry& entry = entries_[id];
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.tick = ++tick_;
  bytes_ += bytes;
  evict_locked(id);
  FBT_OBS_FOOTPRINT("serve.cache", bytes_);
  return entry.value;
}

void ArtifactCache::evict_locked(const std::string& keep) {
  while (bytes_ > byte_cap_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() || it->second.tick < victim->second.tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    FBT_OBS_COUNTER_ADD("serve.cache_evictions", 1);
  }
}

std::optional<CacheKey> ArtifactCache::alias(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = aliases_.find(name);
  if (it == aliases_.end()) return std::nullopt;
  return it->second;
}

void ArtifactCache::remember_alias(const std::string& name,
                                   const CacheKey& key) {
  std::lock_guard lock(mutex_);
  aliases_.emplace(name, key);
}

}  // namespace fbt::serve
