#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "netlist/bench_io.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

namespace fbt::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Summary of the named serve.request_* histogram from a metrics snapshot.
LatencyStats latency_from(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
  LatencyStats out;
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name != name) continue;
    out.count = h.count;
    out.mean_ms = obs::histogram_mean(h);
    out.p50_ms = obs::histogram_quantile(h, 0.5);
    out.p99_ms = obs::histogram_quantile(h, 0.99, &out.p99_clamped);
    break;
  }
  return out;
}

/// Streams journal events in [cursor, size) as progress lines; advances
/// cursor.
void drain_journal(std::size_t& cursor, const std::string& id,
                   const std::function<void(const std::string&)>& emit) {
  const std::vector<obs::JournalEvent> events = obs::journal().events();
  for (; cursor < events.size(); ++cursor) {
    emit(render_progress(id, events[cursor]));
  }
}

}  // namespace

ExperimentService::ExperimentService(jobs::JobSystem& jobs,
                                     ArtifactCache& cache)
    : jobs_(jobs), cache_(cache) {
  // Pre-register the jobs.* / serve.request_* instruments so the stats
  // response always carries the full set (zero-valued before any request).
  obs::register_core_counters();
}

ServiceStats ExperimentService::collect_stats() const {
  ServiceStats out;
  const ArtifactCache::Stats cs = cache_.stats();
  out.requests_total = requests_total();
  out.cache_hits = cs.hits;
  out.cache_misses = cs.misses;
  out.cache_evictions = cs.evictions;
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  out.cold = latency_from(snap, "serve.request_total_cold_ms");
  out.warm = latency_from(snap, "serve.request_total_warm_ms");
  out.queue = latency_from(snap, "serve.request_queue_ms");
  out.cache_lookup = latency_from(snap, "serve.request_cache_ms");
  out.compute = latency_from(snap, "serve.request_compute_ms");
  out.render = latency_from(snap, "serve.request_render_ms");
  const jobs::SchedulerSnapshot js = jobs_.scheduler_snapshot();
  out.scheduler.workers = js.workers;
  out.scheduler.queue_depth = js.queue_depth;
  out.scheduler.submitted = js.submitted;
  out.scheduler.executed = js.executed;
  out.scheduler.steals = js.steals;
  out.scheduler.busy_ms = js.busy_ms;
  out.scheduler.utilization = js.utilization;
  return out;
}

void ExperimentService::freeze_stats() {
  ServiceStats snap = collect_stats();
  std::lock_guard lock(stats_mutex_);
  if (!frozen_stats_.has_value()) frozen_stats_ = std::move(snap);
}

ServiceStats ExperimentService::stats_snapshot() const {
  {
    std::lock_guard lock(stats_mutex_);
    if (frozen_stats_.has_value()) return *frozen_stats_;
  }
  return collect_stats();
}

std::shared_ptr<const Netlist> ExperimentService::fetch_netlist(
    const CacheKey& key, const std::function<Netlist()>& load) {
  return cache_.get_or_compute<Netlist>(
      "netlist", key,
      [&load] { return std::make_shared<const Netlist>(load()); },
      [](const Netlist& n) { return n.footprint_bytes(); });
}

ExperimentService::ResolvedNetlist ExperimentService::resolve_target(
    const ExperimentRequest& request, bool need_netlist) {
  ResolvedNetlist out;
  if (!request.netlist_bench.empty()) {
    // Inline text: canonicalize through parse (write_bench inside the key
    // function makes whitespace/comment variants collide on purpose).
    auto parsed = std::make_shared<Netlist>(parse_bench(
        request.netlist_bench,
        request.target.empty() ? std::string("inline") : request.target));
    out.key = netlist_cache_key(*parsed);
    out.netlist =
        fetch_netlist(out.key, [&parsed] { return std::move(*parsed); });
    return out;
  }
  const std::string alias = "bench:" + request.target;
  if (const std::optional<CacheKey> k = cache_.alias(alias)) {
    out.key = *k;
    if (need_netlist) {
      out.netlist = fetch_netlist(
          out.key, [&request] { return load_benchmark(request.target); });
    }
    return out;
  }
  Netlist loaded = load_benchmark(request.target);
  out.key = netlist_cache_key(loaded);
  cache_.remember_alias(alias, out.key);
  out.netlist = fetch_netlist(out.key, [&loaded] { return std::move(loaded); });
  return out;
}

ExperimentService::ResolvedNetlist ExperimentService::resolve_driver(
    const ExperimentRequest& request, const ResolvedNetlist& target,
    bool need_netlist) {
  const bool unconstrained =
      request.driver.empty() || request.driver == "buffers";
  ResolvedNetlist out;
  if (!unconstrained) {
    const std::string alias = "bench:" + request.driver;
    if (const std::optional<CacheKey> k = cache_.alias(alias)) {
      out.key = *k;
      if (need_netlist) {
        out.netlist = fetch_netlist(
            out.key, [&request] { return load_benchmark(request.driver); });
      }
      return out;
    }
    Netlist loaded = load_benchmark(request.driver);
    out.key = netlist_cache_key(loaded);
    cache_.remember_alias(alias, out.key);
    out.netlist =
        fetch_netlist(out.key, [&loaded] { return std::move(loaded); });
    return out;
  }
  // Buffers block: a pure function of the target's input count, aliased per
  // target so repeat requests never rebuild it.
  const std::string alias = "buffers-for:" + target.key.hex();
  if (const std::optional<CacheKey> k = cache_.alias(alias)) {
    out.key = *k;
    if (!need_netlist) return out;
  }
  // Needs the width (and therefore the target netlist) at least once.
  std::shared_ptr<const Netlist> target_netlist = target.netlist;
  if (target_netlist == nullptr) {
    target_netlist = fetch_netlist(
        target.key, [&request] { return load_benchmark(request.target); });
  }
  Netlist block = make_buffers_block(target_netlist->num_inputs());
  out.key = netlist_cache_key(block);
  cache_.remember_alias(alias, out.key);
  if (need_netlist) {
    out.netlist =
        fetch_netlist(out.key, [&block] { return std::move(block); });
  }
  return out;
}

ExperimentSummary ExperimentService::run_experiment(
    const ExperimentRequest& request, bool* cache_hit,
    const std::function<void(const std::string&)>& emit,
    const std::string& id, std::string* experiment_key_hex) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  FBT_OBS_COUNTER_ADD("serve.requests_total", 1);

  // The cache segment of the request: name/key resolution, the experiment
  // lookup, and (cold only, below) artifact materialization through the
  // cache. Warm requests record only this segment plus the total.
  const auto cache_t0 = std::chrono::steady_clock::now();
  BistExperimentConfig config = request.config;
  config.target_name = request.target;
  config.driver_name = request.driver;
  ResolvedNetlist target;
  ResolvedNetlist driver;
  CacheKey exp_key;
  std::shared_ptr<const void> found;
  {
    FBT_OBS_PHASE("request_cache");
    target = resolve_target(request, /*need_netlist=*/false);
    driver = resolve_driver(request, target, /*need_netlist=*/false);
    exp_key = experiment_cache_key(target.key, driver.key, config);
    found = cache_.lookup(ArtifactCache::make_id("experiment", exp_key));
  }
  const std::string exp_id = ArtifactCache::make_id("experiment", exp_key);
  if (experiment_key_hex != nullptr) *experiment_key_hex = exp_key.hex();
  if (found != nullptr) {
    FBT_OBS_HIST_RECORD_LOG("serve.request_cache_ms", ms_since(cache_t0));
    if (cache_hit != nullptr) *cache_hit = true;
    return *std::static_pointer_cast<const ExperimentSummary>(found);
  }
  if (cache_hit != nullptr) *cache_hit = false;

  ExperimentArtifacts artifacts;
  {
    FBT_OBS_PHASE("request_cache");
    if (target.netlist == nullptr) target = resolve_target(request, true);
    if (driver.netlist == nullptr) {
      driver = resolve_driver(request, target, true);
    }

    // Derived artifacts, each cached under its own content key.
    artifacts.target = target.netlist;
    artifacts.driver = driver.netlist;
    artifacts.flat = cache_.get_or_compute<FlatFanins>(
        "flat_fanins", flat_fanins_cache_key(target.key),
        // The view constructor taking shared_ptr keeps the netlist alive for
        // as long as the cached FlatFanins is: the cache may evict the
        // netlist entry independently, and the view's spans point into
        // netlist-owned CSR storage.
        [&] { return std::make_shared<const FlatFanins>(target.netlist); },
        [](const FlatFanins& f) { return f.footprint_bytes(); });
    artifacts.faults = cache_.get_or_compute<TransitionFaultList>(
        "fault_list", fault_list_cache_key(target.key),
        [&] {
          return std::make_shared<const TransitionFaultList>(
              TransitionFaultList::collapsed(*target.netlist));
        },
        [](const TransitionFaultList& f) { return f.footprint_bytes(); });
    const std::shared_ptr<const double> calibration =
        cache_.get_or_compute<double>(
            "calibration",
            calibration_cache_key(target.key, driver.key, config.calibration),
            [&] {
              return std::make_shared<const double>(
                  measure_swa_func(*target.netlist, *driver.netlist,
                                   config.calibration, artifacts.flat)
                      .peak_percent);
            },
            [](const double&) { return std::uint64_t{sizeof(double)}; });
    artifacts.swa_func_percent = *calibration;
  }
  FBT_OBS_HIST_RECORD_LOG("serve.request_cache_ms", ms_since(cache_t0));

  // Run the flow as a task on the shared pool, streaming journal events
  // while it executes (see the header's interleaving caveat). queue-wait is
  // submit -> first instruction of the task (written by the worker, read
  // only after wait() synchronizes on task completion); compute is the
  // task's own run time.
  const bool stream = emit != nullptr && request.stream_progress;
  std::size_t cursor = obs::journal().size();
  std::optional<BistExperimentResult> result;
  const auto submit_t = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point compute_t0 = submit_t;
  const jobs::TaskHandle handle = jobs_.submit([&] {
    compute_t0 = std::chrono::steady_clock::now();
    {
      FBT_OBS_PHASE("request_compute");
      result.emplace(run_bist_experiment(config, jobs_, artifacts));
    }
    FBT_OBS_HIST_RECORD_LOG("serve.request_compute_ms", ms_since(compute_t0));
  });
  while (!handle.done()) {
    if (stream) drain_journal(cursor, id, emit);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  jobs_.wait(handle);  // rethrows a failed run
  const double queue_ms =
      std::chrono::duration<double, std::milli>(compute_t0 - submit_t).count();
  FBT_OBS_HIST_RECORD_LOG("serve.request_queue_ms", queue_ms);
  if (stream) drain_journal(cursor, id, emit);

  ExperimentSummary summary;
  summary.target = request.target.empty() ? "inline" : request.target;
  summary.swa_func_percent = result->swa_func;
  summary.num_tests = result->run.num_tests;
  summary.num_seeds = result->run.num_seeds;
  summary.detected = result->detected;
  summary.num_faults = result->faults.size();
  summary.fault_coverage_percent = result->fault_coverage_percent;
  summary.overhead_percent = result->overhead_percent;
  summary.detect_count = std::move(result->detect_count);
  summary.first_detect = std::move(result->run.first_detect);

  auto stored = std::make_shared<const ExperimentSummary>(std::move(summary));
  const std::uint64_t bytes = stored->footprint_bytes();
  return *std::static_pointer_cast<const ExperimentSummary>(
      cache_.insert(exp_id, std::move(stored), bytes));
}

bool ExperimentService::handle_line(
    const std::string& line,
    const std::function<void(const std::string&)>& emit) {
  Request request;
  std::string error;
  if (!parse_request(line, request, error)) {
    emit(render_error(request.id, error));
    return true;
  }
  switch (request.type) {
    case RequestType::kPing:
      emit(render_pong(request.id));
      return true;
    case RequestType::kStats:
      emit(render_stats(request.id, stats_snapshot()));
      return true;
    case RequestType::kShutdown:
      emit(render_bye(request.id));
      return false;
    case RequestType::kExperiment:
      break;
  }
  const auto start = std::chrono::steady_clock::now();
  FBT_OBS_PHASE("serve_request");
  try {
    bool hit = false;
    std::string key_hex;
    const ExperimentSummary summary =
        run_experiment(request.experiment, &hit, emit, request.id, &key_hex);
    const double elapsed_ms = ms_since(start);
    const auto render_t0 = std::chrono::steady_clock::now();
    const std::string report = compact_json(render_run_report(
        obs::collect_run_report(
            "fbt_serve", {{"target", summary.target},
                          {"cache", hit ? "hit" : "miss"}})));
    const std::string line_out =
        render_result(request.id, summary, hit, key_hex, elapsed_ms, report);
    FBT_OBS_HIST_RECORD_LOG("serve.request_render_ms", ms_since(render_t0));
    emit(line_out);
    // Totals keyed cold vs warm: the two populations differ by orders of
    // magnitude, so one merged histogram would bury the warm path.
    if (hit) {
      FBT_OBS_HIST_RECORD_LOG("serve.request_total_warm_ms", ms_since(start));
    } else {
      FBT_OBS_HIST_RECORD_LOG("serve.request_total_cold_ms", ms_since(start));
    }
  } catch (const std::exception& e) {
    emit(render_error(request.id, e.what()));
  }
  return true;
}

SocketServer::SocketServer(ExperimentService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() {
  request_stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
}

bool SocketServer::start(std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path_;
    return false;
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    error = std::string("bind/listen(") + path_ + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void SocketServer::serve_forever() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard lock(mutex_);
    conn_fds_.push_back(fd);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::request_stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard lock(mutex_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void SocketServer::handle_connection(int fd) {
  const auto emit = [fd](const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; drop the rest of this response
      sent += static_cast<std::size_t>(n);
    }
  };
  std::string buffer;
  char chunk[4096];
  bool keep_serving = true;
  while (keep_serving && !stop_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && keep_serving;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      keep_serving = service_.handle_line(line, emit);
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  if (!keep_serving) request_stop();
}

}  // namespace fbt::serve
