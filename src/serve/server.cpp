#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "netlist/bench_io.hpp"
#include "obs/instrument.hpp"
#include "obs/run_report.hpp"

namespace fbt::serve {

namespace {

std::string render_stats_line(const std::string& id,
                              const ArtifactCache::Stats& stats,
                              std::uint64_t requests_total) {
  std::string out = "{\"type\": \"stats\", \"id\": \"";
  out += obs::json_escape(id);
  out += "\", \"requests_total\": " + std::to_string(requests_total);
  out += ", \"cache_hits\": " + std::to_string(stats.hits);
  out += ", \"cache_misses\": " + std::to_string(stats.misses);
  out += ", \"cache_evictions\": " + std::to_string(stats.evictions);
  out += ", \"cache_entries\": " + std::to_string(stats.entries);
  out += ", \"cache_bytes\": " + std::to_string(stats.bytes);
  out += "}";
  return out;
}

/// Streams journal events in [cursor, size) as progress lines; advances
/// cursor.
void drain_journal(std::size_t& cursor, const std::string& id,
                   const std::function<void(const std::string&)>& emit) {
  const std::vector<obs::JournalEvent> events = obs::journal().events();
  for (; cursor < events.size(); ++cursor) {
    emit(render_progress(id, events[cursor]));
  }
}

}  // namespace

ExperimentService::ExperimentService(jobs::JobSystem& jobs,
                                     ArtifactCache& cache)
    : jobs_(jobs), cache_(cache) {}

std::shared_ptr<const Netlist> ExperimentService::fetch_netlist(
    const CacheKey& key, const std::function<Netlist()>& load) {
  return cache_.get_or_compute<Netlist>(
      "netlist", key,
      [&load] { return std::make_shared<const Netlist>(load()); },
      [](const Netlist& n) { return n.footprint_bytes(); });
}

ExperimentService::ResolvedNetlist ExperimentService::resolve_target(
    const ExperimentRequest& request, bool need_netlist) {
  ResolvedNetlist out;
  if (!request.netlist_bench.empty()) {
    // Inline text: canonicalize through parse (write_bench inside the key
    // function makes whitespace/comment variants collide on purpose).
    auto parsed = std::make_shared<Netlist>(parse_bench(
        request.netlist_bench,
        request.target.empty() ? std::string("inline") : request.target));
    out.key = netlist_cache_key(*parsed);
    out.netlist =
        fetch_netlist(out.key, [&parsed] { return std::move(*parsed); });
    return out;
  }
  const std::string alias = "bench:" + request.target;
  if (const std::optional<CacheKey> k = cache_.alias(alias)) {
    out.key = *k;
    if (need_netlist) {
      out.netlist = fetch_netlist(
          out.key, [&request] { return load_benchmark(request.target); });
    }
    return out;
  }
  Netlist loaded = load_benchmark(request.target);
  out.key = netlist_cache_key(loaded);
  cache_.remember_alias(alias, out.key);
  out.netlist = fetch_netlist(out.key, [&loaded] { return std::move(loaded); });
  return out;
}

ExperimentService::ResolvedNetlist ExperimentService::resolve_driver(
    const ExperimentRequest& request, const ResolvedNetlist& target,
    bool need_netlist) {
  const bool unconstrained =
      request.driver.empty() || request.driver == "buffers";
  ResolvedNetlist out;
  if (!unconstrained) {
    const std::string alias = "bench:" + request.driver;
    if (const std::optional<CacheKey> k = cache_.alias(alias)) {
      out.key = *k;
      if (need_netlist) {
        out.netlist = fetch_netlist(
            out.key, [&request] { return load_benchmark(request.driver); });
      }
      return out;
    }
    Netlist loaded = load_benchmark(request.driver);
    out.key = netlist_cache_key(loaded);
    cache_.remember_alias(alias, out.key);
    out.netlist =
        fetch_netlist(out.key, [&loaded] { return std::move(loaded); });
    return out;
  }
  // Buffers block: a pure function of the target's input count, aliased per
  // target so repeat requests never rebuild it.
  const std::string alias = "buffers-for:" + target.key.hex();
  if (const std::optional<CacheKey> k = cache_.alias(alias)) {
    out.key = *k;
    if (!need_netlist) return out;
  }
  // Needs the width (and therefore the target netlist) at least once.
  std::shared_ptr<const Netlist> target_netlist = target.netlist;
  if (target_netlist == nullptr) {
    target_netlist = fetch_netlist(
        target.key, [&request] { return load_benchmark(request.target); });
  }
  Netlist block = make_buffers_block(target_netlist->num_inputs());
  out.key = netlist_cache_key(block);
  cache_.remember_alias(alias, out.key);
  if (need_netlist) {
    out.netlist =
        fetch_netlist(out.key, [&block] { return std::move(block); });
  }
  return out;
}

ExperimentSummary ExperimentService::run_experiment(
    const ExperimentRequest& request, bool* cache_hit,
    const std::function<void(const std::string&)>& emit,
    const std::string& id, std::string* experiment_key_hex) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  FBT_OBS_COUNTER_ADD("serve.requests_total", 1);

  ResolvedNetlist target = resolve_target(request, /*need_netlist=*/false);
  ResolvedNetlist driver =
      resolve_driver(request, target, /*need_netlist=*/false);

  BistExperimentConfig config = request.config;
  config.target_name = request.target;
  config.driver_name = request.driver;
  const CacheKey exp_key =
      experiment_cache_key(target.key, driver.key, config);
  const std::string exp_id = ArtifactCache::make_id("experiment", exp_key);
  if (experiment_key_hex != nullptr) *experiment_key_hex = exp_key.hex();
  if (const std::shared_ptr<const void> found = cache_.lookup(exp_id)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return *std::static_pointer_cast<const ExperimentSummary>(found);
  }
  if (cache_hit != nullptr) *cache_hit = false;

  if (target.netlist == nullptr) target = resolve_target(request, true);
  if (driver.netlist == nullptr) {
    driver = resolve_driver(request, target, true);
  }

  // Derived artifacts, each cached under its own content key.
  ExperimentArtifacts artifacts;
  artifacts.target = target.netlist;
  artifacts.driver = driver.netlist;
  artifacts.flat = cache_.get_or_compute<FlatFanins>(
      "flat_fanins", flat_fanins_cache_key(target.key),
      // The view constructor taking shared_ptr keeps the netlist alive for
      // as long as the cached FlatFanins is: the cache may evict the netlist
      // entry independently, and the view's spans point into netlist-owned
      // CSR storage.
      [&] { return std::make_shared<const FlatFanins>(target.netlist); },
      [](const FlatFanins& f) { return f.footprint_bytes(); });
  artifacts.faults = cache_.get_or_compute<TransitionFaultList>(
      "fault_list", fault_list_cache_key(target.key),
      [&] {
        return std::make_shared<const TransitionFaultList>(
            TransitionFaultList::collapsed(*target.netlist));
      },
      [](const TransitionFaultList& f) { return f.footprint_bytes(); });
  const std::shared_ptr<const double> calibration =
      cache_.get_or_compute<double>(
          "calibration",
          calibration_cache_key(target.key, driver.key, config.calibration),
          [&] {
            return std::make_shared<const double>(
                measure_swa_func(*target.netlist, *driver.netlist,
                                 config.calibration, artifacts.flat)
                    .peak_percent);
          },
          [](const double&) { return std::uint64_t{sizeof(double)}; });
  artifacts.swa_func_percent = *calibration;

  // Run the flow as a task on the shared pool, streaming journal events
  // while it executes (see the header's interleaving caveat).
  const bool stream = emit != nullptr && request.stream_progress;
  std::size_t cursor = obs::journal().size();
  std::optional<BistExperimentResult> result;
  const jobs::TaskHandle handle = jobs_.submit(
      [&] { result.emplace(run_bist_experiment(config, jobs_, artifacts)); });
  while (!handle.done()) {
    if (stream) drain_journal(cursor, id, emit);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  jobs_.wait(handle);  // rethrows a failed run
  if (stream) drain_journal(cursor, id, emit);

  ExperimentSummary summary;
  summary.target = request.target.empty() ? "inline" : request.target;
  summary.swa_func_percent = result->swa_func;
  summary.num_tests = result->run.num_tests;
  summary.num_seeds = result->run.num_seeds;
  summary.detected = result->detected;
  summary.num_faults = result->faults.size();
  summary.fault_coverage_percent = result->fault_coverage_percent;
  summary.overhead_percent = result->overhead_percent;
  summary.detect_count = std::move(result->detect_count);
  summary.first_detect = std::move(result->run.first_detect);

  auto stored = std::make_shared<const ExperimentSummary>(std::move(summary));
  const std::uint64_t bytes = stored->footprint_bytes();
  return *std::static_pointer_cast<const ExperimentSummary>(
      cache_.insert(exp_id, std::move(stored), bytes));
}

bool ExperimentService::handle_line(
    const std::string& line,
    const std::function<void(const std::string&)>& emit) {
  Request request;
  std::string error;
  if (!parse_request(line, request, error)) {
    emit(render_error(request.id, error));
    return true;
  }
  switch (request.type) {
    case RequestType::kPing:
      emit(render_pong(request.id));
      return true;
    case RequestType::kStats:
      emit(render_stats_line(request.id, cache_.stats(), requests_total()));
      return true;
    case RequestType::kShutdown:
      emit(render_bye(request.id));
      return false;
    case RequestType::kExperiment:
      break;
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    bool hit = false;
    std::string key_hex;
    const ExperimentSummary summary =
        run_experiment(request.experiment, &hit, emit, request.id, &key_hex);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const std::string report = compact_json(render_run_report(
        obs::collect_run_report(
            "fbt_serve", {{"target", summary.target},
                          {"cache", hit ? "hit" : "miss"}})));
    emit(render_result(request.id, summary, hit, key_hex, elapsed_ms,
                       report));
  } catch (const std::exception& e) {
    emit(render_error(request.id, e.what()));
  }
  return true;
}

SocketServer::SocketServer(ExperimentService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() {
  request_stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
}

bool SocketServer::start(std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path_;
    return false;
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    error = std::string("bind/listen(") + path_ + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void SocketServer::serve_forever() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard lock(mutex_);
    conn_fds_.push_back(fd);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::request_stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard lock(mutex_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void SocketServer::handle_connection(int fd) {
  const auto emit = [fd](const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; drop the rest of this response
      sent += static_cast<std::size_t>(n);
    }
  };
  std::string buffer;
  char chunk[4096];
  bool keep_serving = true;
  while (keep_serving && !stop_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && keep_serving;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      keep_serving = service_.handle_line(line, emit);
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  if (!keep_serving) request_stop();
}

}  // namespace fbt::serve
