// Byte-capped LRU cache of derived artifacts, shared by every request the
// daemon serves.
//
// Entries are immutable values behind shared_ptr<const T>, addressed by
// "kind:<content-hash>" ids (see serve/cache_key.hpp). Hits bump an LRU
// tick; inserts evict least-recently-used entries until the configured byte
// cap holds again. Eviction only drops the cache's reference -- requests
// already holding the shared_ptr keep a live artifact; the bytes are freed
// when the last holder releases it.
//
// Concurrency: one mutex guards the map; compute callbacks run OUTSIDE the
// lock (artifact construction can take seconds), so two racing misses for
// the same key may both compute. Artifacts are deterministic functions of
// their key, so the race is benign: the first insert wins and the loser's
// copy is discarded.
//
// Observability: serve.cache_hits / serve.cache_misses /
// serve.cache_evictions counters, plus a "serve.cache" entry in the
// footprint registry tracking resident bytes. Internal Stats mirror the
// counters so behavior is testable under FBT_OBS=OFF.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "serve/cache_key.hpp"

namespace fbt::serve {

class ArtifactCache {
 public:
  static constexpr std::uint64_t kDefaultByteCap = 256ULL << 20;  // 256 MiB

  explicit ArtifactCache(std::uint64_t byte_cap = kDefaultByteCap);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  Stats stats() const;
  std::uint64_t byte_cap() const { return byte_cap_; }

  /// Returns the cached artifact for `kind` + `key`, computing and inserting
  /// it on a miss. `compute` builds the artifact; `size_of` reports its byte
  /// footprint for cap accounting. Counts exactly one hit or one miss.
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      const char* kind, const CacheKey& key,
      const std::function<std::shared_ptr<const T>()>& compute,
      const std::function<std::uint64_t(const T&)>& size_of) {
    const std::string id = make_id(kind, key);
    if (std::shared_ptr<const void> found = lookup(id)) {
      return std::static_pointer_cast<const T>(found);
    }
    std::shared_ptr<const T> value = compute();
    return std::static_pointer_cast<const T>(
        insert(id, value, size_of(*value)));
  }

  /// Hit/miss-counting lookup of a type-erased entry; null on miss.
  std::shared_ptr<const void> lookup(const std::string& id);

  /// Inserts (first writer wins: a racing earlier insert is returned
  /// instead) and evicts LRU entries until the byte cap holds. Returns the
  /// entry now cached under `id`.
  std::shared_ptr<const void> insert(const std::string& id,
                                     std::shared_ptr<const void> value,
                                     std::uint64_t bytes);

  /// Name -> content key memo ("target:s298" resolved once per daemon), so
  /// repeat requests for a named benchmark skip recomputing its key.
  std::optional<CacheKey> alias(const std::string& name) const;
  void remember_alias(const std::string& name, const CacheKey& key);

  static std::string make_id(const char* kind, const CacheKey& key) {
    return std::string(kind) + ":" + key.hex();
  }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::uint64_t bytes = 0;
    std::uint64_t tick = 0;  ///< last-use order; smallest evicts first
  };

  /// Evicts while over cap (never the entry named by `keep`); call under
  /// the lock.
  void evict_locked(const std::string& keep);

  const std::uint64_t byte_cap_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, CacheKey> aliases_;
  std::uint64_t tick_ = 0;
  std::uint64_t bytes_ = 0;
  Stats stats_;
};

}  // namespace fbt::serve
