// The serving core: ExperimentService executes protocol requests against a
// shared JobSystem + ArtifactCache, and SocketServer exposes it on a local
// AF_UNIX socket with NDJSON framing.
//
// Request lifecycle (experiment):
//   1. resolve target/driver netlists through the cache (content keys; the
//      name -> key memo makes repeat requests for named benchmarks O(1));
//   2. look up the experiment key -- a hit renders the stored summary
//      without touching the flow (the >= 10x warm path);
//   3. on a miss, fetch the derived artifacts (FlatFanins CSR, collapsed
//      fault list, SWA_func calibration) through the cache and run the flow
//      task graph on the shared pool, streaming journal events as progress
//      lines while it executes;
//   4. store the summary under the experiment key and render it.
//
// Determinism note: cached experiment keys EXCLUDE num_threads and
// speculation_lanes (results are bit-identical across them), so a request
// repeated at a different parallelism setting is a legitimate warm hit; the
// detect_hash / first_detect_hash fields prove it bit-identical.
//
// Progress caveat: the journal is process-wide, so when several experiments
// run concurrently each client's progress stream may interleave events from
// the others. Result lines are always computed from the request's own run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "jobs/job_system.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/protocol.hpp"

namespace fbt::serve {

class ExperimentService {
 public:
  ExperimentService(jobs::JobSystem& jobs, ArtifactCache& cache);

  /// Handles one NDJSON request line, passing each response line (without
  /// trailing newline) to `emit`. Returns false when the request asked the
  /// server to shut down.
  bool handle_line(const std::string& line,
                   const std::function<void(const std::string&)>& emit);

  /// Direct (in-process) experiment execution; the socket path and the
  /// bench harness share it. `emit`, when set, receives progress lines.
  /// Sets `*cache_hit` to whether the experiment key was already cached.
  ExperimentSummary run_experiment(
      const ExperimentRequest& request, bool* cache_hit,
      const std::function<void(const std::string&)>& emit = {},
      const std::string& id = {}, std::string* experiment_key_hex = nullptr);

  ArtifactCache& cache() { return cache_; }
  std::uint64_t requests_total() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Assembles a live ServiceStats from the cache, the request counter, the
  /// serve.request_* latency histograms, and the scheduler snapshot.
  ServiceStats collect_stats() const;

  /// Freezes the stats at their current values: every later stats_snapshot()
  /// returns this copy. Called by the shutdown path BEFORE the graceful
  /// drain starts, so the final `stats` response and the partial run report
  /// agree instead of racing the journal/metrics flush. First freeze wins;
  /// later calls are no-ops.
  void freeze_stats();

  /// The frozen stats when freeze_stats() ran, else collect_stats().
  ServiceStats stats_snapshot() const;

 private:
  struct ResolvedNetlist {
    CacheKey key;
    std::shared_ptr<const Netlist> netlist;  ///< may be null on alias hit
  };
  /// Target by inline text (canonicalized via parse) or registry name.
  ResolvedNetlist resolve_target(const ExperimentRequest& request,
                                 bool need_netlist);
  /// Driver by name, or the buffers block sized to the target.
  ResolvedNetlist resolve_driver(const ExperimentRequest& request,
                                 const ResolvedNetlist& target,
                                 bool need_netlist);
  std::shared_ptr<const Netlist> fetch_netlist(
      const CacheKey& key, const std::function<Netlist()>& load);

  jobs::JobSystem& jobs_;
  ArtifactCache& cache_;
  std::atomic<std::uint64_t> requests_{0};
  mutable std::mutex stats_mutex_;  ///< guards frozen_stats_
  std::optional<ServiceStats> frozen_stats_;
};

/// Blocking AF_UNIX NDJSON server: accept loop + one thread per connection.
class SocketServer {
 public:
  SocketServer(ExperimentService& service, std::string socket_path);
  ~SocketServer();

  /// Binds and listens (unlinking a stale socket file). False + `error` on
  /// failure.
  bool start(std::string& error);

  /// Runs the accept loop until request_stop(); joins connection threads
  /// before returning.
  void serve_forever();

  /// Stops the accept loop and wakes blocked connection reads. Safe from
  /// any thread (the signal watcher calls it).
  void request_stop();

  bool stopping() const { return stop_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return path_; }

 private:
  void handle_connection(int fd);

  ExperimentService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;                 ///< guards conn_fds_ and threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> threads_;
};

}  // namespace fbt::serve
