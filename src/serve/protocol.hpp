// NDJSON wire protocol of the fbt_serve daemon.
//
// Framing: one JSON object per line in both directions. Requests carry a
// "type" ("experiment", "ping", "stats", "shutdown") and a caller-chosen
// "id" that every response line echoes, so a client multiplexing requests
// over one connection can pair them up. Responses:
//
//   {"type":"progress","id":...,"event":{...}}   journal events, streamed
//   {"type":"result","id":...,"cache":"hit"|"miss",...,"report":{...}}
//   {"type":"error","id":...,"message":"..."}
//   {"type":"pong","id":...}
//   {"type":"stats","id":...,"cache_hits":...,"latency":{...},
//    "scheduler":{...}}                          see ServiceStats
//   {"type":"bye","id":...}                      shutdown acknowledged
//
// The "report" member of a result embeds the full schema-v4 run report
// (obs/run_report.hpp) compacted to one line. Identity fields "detect_hash"
// and "first_detect_hash" fingerprint the per-fault detect counts and
// first-detect attribution so clients (and CI) can assert that a cache hit
// is bit-identical to a cold run without shipping the whole matrix.
//
// Parsing reuses the obs/json DOM reader; rendering is by hand like the
// rest of the repo's writers (fixed key order, deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bist/functional_bist.hpp"
#include "flow/bist_flow.hpp"
#include "obs/event_journal.hpp"

namespace fbt::serve {

enum class RequestType { kExperiment, kPing, kStats, kShutdown };

struct ExperimentRequest {
  /// Benchmark name of the target (circuits/registry), OR inline .bench
  /// text in `netlist_bench` (then `target` only names the circuit).
  std::string target;
  std::string netlist_bench;
  /// Driving block benchmark name; empty or "buffers" = unconstrained.
  std::string driver;
  BistExperimentConfig config;  ///< target_name/driver_name filled from above
  bool stream_progress = true;
};

struct Request {
  RequestType type = RequestType::kPing;
  std::string id;
  ExperimentRequest experiment;  ///< valid when type == kExperiment
};

/// Parses one request line. Returns false and fills `error` on malformed
/// input (unknown type, bad JSON, missing target). Config fields absent
/// from the request keep BistExperimentConfig defaults.
bool parse_request(const std::string& line, Request& out, std::string& error);

/// Hex fingerprint of the per-fault detect-count vector.
std::string hash_detect_counts(const std::vector<std::uint32_t>& counts);
/// Hex fingerprint of the first-detect attribution records.
std::string hash_first_detects(const std::vector<FaultFirstDetect>& fd);

/// Collapses pretty-printed JSON to one line (newlines and indentation
/// outside string literals are dropped), for embedding reports in NDJSON.
std::string compact_json(const std::string& pretty);

/// Everything a result line carries; also the cache's experiment-entry
/// payload (a warm hit re-renders a stored summary).
struct ExperimentSummary {
  std::string target;
  double swa_func_percent = 0.0;
  std::size_t num_tests = 0;
  std::size_t num_seeds = 0;
  std::size_t detected = 0;
  std::size_t num_faults = 0;
  double fault_coverage_percent = 0.0;
  double overhead_percent = 0.0;
  std::vector<std::uint32_t> detect_count;
  std::vector<FaultFirstDetect> first_detect;

  std::uint64_t footprint_bytes() const {
    return sizeof(*this) + target.size() +
           detect_count.size() * sizeof(std::uint32_t) +
           first_detect.size() * sizeof(FaultFirstDetect);
  }
};

/// Summary of one latency histogram for the stats response, in ms.
/// p99_clamped mirrors obs::histogram_quantile's overflow flag: when true
/// the p99 is only a lower bound (the rank landed past the last bucket).
struct LatencyStats {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool p99_clamped = false;
};

/// Scheduler snapshot carried by the stats response (see
/// jobs::JobSystem::scheduler_snapshot).
struct SchedulerStats {
  std::uint64_t workers = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  double busy_ms = 0.0;
  double utilization = 0.0;
};

/// Everything a stats response carries: request/cache totals (the v1 flat
/// fields, kept byte-compatible), per-request latency decomposed into
/// queue / cache_lookup / compute / render segments plus cold/warm totals,
/// and the scheduler snapshot. Assembled by ExperimentService::
/// collect_stats(); frozen at shutdown so the drain cannot skew the final
/// response (see ExperimentService::freeze_stats).
struct ServiceStats {
  std::uint64_t requests_total = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  LatencyStats cold;          ///< serve.request_total_cold_ms
  LatencyStats warm;          ///< serve.request_total_warm_ms
  LatencyStats queue;         ///< serve.request_queue_ms
  LatencyStats cache_lookup;  ///< serve.request_cache_ms
  LatencyStats compute;       ///< serve.request_compute_ms
  LatencyStats render;        ///< serve.request_render_ms
  SchedulerStats scheduler;
};

std::string render_stats(const std::string& id, const ServiceStats& stats);

std::string render_progress(const std::string& id,
                            const obs::JournalEvent& event);
std::string render_result(const std::string& id, const ExperimentSummary& s,
                          bool cache_hit, const std::string& experiment_key,
                          double elapsed_ms,
                          const std::string& compact_report);
std::string render_error(const std::string& id, const std::string& message);
std::string render_pong(const std::string& id);
std::string render_bye(const std::string& id);

}  // namespace fbt::serve
