#include "serve/protocol.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "serve/cache_key.hpp"

namespace fbt::serve {

namespace {

double num_or(const obs::JsonValue& obj, const std::string& key,
              double fallback) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr ? v->as_number(fallback) : fallback;
}

std::uint64_t uint_or(const obs::JsonValue& obj, const std::string& key,
                      std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      num_or(obj, key, static_cast<double>(fallback)));
}

bool bool_or(const obs::JsonValue& obj, const std::string& key,
             bool fallback) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind == obs::JsonValue::Kind::kBool) return v->boolean;
  return v->as_number(fallback ? 1.0 : 0.0) != 0.0;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string& error) {
  obs::JsonValue doc;
  if (!obs::json_parse(line, doc, error)) return false;
  if (!doc.is_object()) {
    error = "request must be a JSON object";
    return false;
  }
  const obs::JsonValue* type = doc.find("type");
  const std::string kind =
      type != nullptr ? type->as_string("") : std::string();
  if (const obs::JsonValue* id = doc.find("id")) {
    out.id = id->as_string("");
  } else {
    out.id.clear();
  }
  if (kind == "ping") {
    out.type = RequestType::kPing;
    return true;
  }
  if (kind == "stats") {
    out.type = RequestType::kStats;
    return true;
  }
  if (kind == "shutdown") {
    out.type = RequestType::kShutdown;
    return true;
  }
  if (kind != "experiment") {
    error = "unknown request type \"" + kind + "\"";
    return false;
  }
  out.type = RequestType::kExperiment;
  ExperimentRequest& exp = out.experiment;
  exp = ExperimentRequest{};
  if (const obs::JsonValue* t = doc.find("target")) {
    exp.target = t->as_string("");
  }
  if (const obs::JsonValue* n = doc.find("netlist_bench")) {
    exp.netlist_bench = n->as_string("");
  }
  if (exp.target.empty() && exp.netlist_bench.empty()) {
    error = "experiment request needs \"target\" or \"netlist_bench\"";
    return false;
  }
  if (const obs::JsonValue* d = doc.find("driver")) {
    exp.driver = d->as_string("");
  }
  exp.stream_progress = bool_or(doc, "stream_progress", true);

  BistExperimentConfig& cfg = exp.config;
  cfg.target_name = exp.target;
  cfg.driver_name = exp.driver;
  if (const obs::JsonValue* c = doc.find("config"); c != nullptr &&
                                                    c->is_object()) {
    const obs::JsonValue& o = *c;
    cfg.calibration.num_sequences =
        uint_or(o, "cal_sequences", cfg.calibration.num_sequences);
    cfg.calibration.sequence_length =
        uint_or(o, "cal_length", cfg.calibration.sequence_length);
    cfg.calibration.rng_seed =
        uint_or(o, "cal_rng_seed", cfg.calibration.rng_seed);
    cfg.calibration.tpg.lfsr_stages = static_cast<unsigned>(
        uint_or(o, "cal_lfsr_stages", cfg.calibration.tpg.lfsr_stages));
    cfg.calibration.tpg.bias_bits = static_cast<unsigned>(
        uint_or(o, "cal_bias_bits", cfg.calibration.tpg.bias_bits));
    cfg.generation.tpg.lfsr_stages = static_cast<unsigned>(
        uint_or(o, "tpg_lfsr_stages", cfg.generation.tpg.lfsr_stages));
    cfg.generation.tpg.bias_bits = static_cast<unsigned>(
        uint_or(o, "tpg_bias_bits", cfg.generation.tpg.bias_bits));
    cfg.generation.segment_length =
        uint_or(o, "segment_length", cfg.generation.segment_length);
    cfg.generation.max_segment_failures = uint_or(
        o, "max_segment_failures", cfg.generation.max_segment_failures);
    cfg.generation.max_sequence_failures = uint_or(
        o, "max_sequence_failures", cfg.generation.max_sequence_failures);
    cfg.generation.rng_seed = uint_or(o, "rng_seed", cfg.generation.rng_seed);
    cfg.generation.detect_limit = static_cast<std::uint32_t>(
        uint_or(o, "detect_limit", cfg.generation.detect_limit));
    cfg.scan.max_chains = uint_or(o, "scan_max_chains", cfg.scan.max_chains);
    cfg.scan.min_chain_length =
        uint_or(o, "scan_min_chain_length", cfg.scan.min_chain_length);
    cfg.reduce_sequences =
        bool_or(o, "reduce_sequences", cfg.reduce_sequences);
    cfg.num_threads = uint_or(o, "num_threads", cfg.num_threads);
    cfg.speculation_lanes =
        uint_or(o, "speculation_lanes", cfg.speculation_lanes);
    cfg.fault_pack_width =
        uint_or(o, "fault_pack_width", cfg.fault_pack_width);
    cfg.emit_rtl = bool_or(o, "emit_rtl", cfg.emit_rtl);
    cfg.rtl_misr_stages = static_cast<unsigned>(
        uint_or(o, "rtl_misr_stages", cfg.rtl_misr_stages));
  }
  return true;
}

std::string hash_detect_counts(const std::vector<std::uint32_t>& counts) {
  KeyBuilder b;
  b.str("detect_counts");
  b.u64(counts.size());
  b.bytes(counts.data(), counts.size() * sizeof(std::uint32_t));
  return b.finish().hex();
}

std::string hash_first_detects(const std::vector<FaultFirstDetect>& fd) {
  KeyBuilder b;
  b.str("first_detects");
  b.u64(fd.size());
  for (const FaultFirstDetect& f : fd) {
    b.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(f.sequence)))
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(f.segment)))
        .u64(static_cast<std::uint64_t>(f.test))
        .u64(f.seed);
  }
  return b.finish().hex();
}

std::string compact_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  bool in_string = false;
  bool escaped = false;
  bool at_line_start = false;
  for (const char c : pretty) {
    if (in_string) {
      out.push_back(c);
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start && (c == ' ' || c == '\t')) continue;
    at_line_start = false;
    if (c == '"') in_string = true;
    out.push_back(c);
  }
  return out;
}

namespace {

void append_latency(std::string& out, const char* key,
                    const LatencyStats& l) {
  out += "\"";
  out += key;
  out += "\": {\"count\": " + std::to_string(l.count);
  out += ", \"mean_ms\": " + fmt_double(l.mean_ms);
  out += ", \"p50_ms\": " + fmt_double(l.p50_ms);
  out += ", \"p99_ms\": " + fmt_double(l.p99_ms);
  out += ", \"p99_clamped\": ";
  out += l.p99_clamped ? "true" : "false";
  out += "}";
}

}  // namespace

std::string render_stats(const std::string& id, const ServiceStats& s) {
  // The flat cache/request fields predate the latency section and stay
  // byte-compatible with the v1 stats line (tests and CI grep for them).
  std::string out = "{\"type\": \"stats\", \"id\": \"";
  out += obs::json_escape(id);
  out += "\", \"requests_total\": " + std::to_string(s.requests_total);
  out += ", \"cache_hits\": " + std::to_string(s.cache_hits);
  out += ", \"cache_misses\": " + std::to_string(s.cache_misses);
  out += ", \"cache_evictions\": " + std::to_string(s.cache_evictions);
  out += ", \"cache_entries\": " + std::to_string(s.cache_entries);
  out += ", \"cache_bytes\": " + std::to_string(s.cache_bytes);
  out += ", \"latency\": {";
  append_latency(out, "cold", s.cold);
  out += ", ";
  append_latency(out, "warm", s.warm);
  out += ", ";
  append_latency(out, "queue", s.queue);
  out += ", ";
  append_latency(out, "cache_lookup", s.cache_lookup);
  out += ", ";
  append_latency(out, "compute", s.compute);
  out += ", ";
  append_latency(out, "render", s.render);
  out += "}";
  const SchedulerStats& sch = s.scheduler;
  out += ", \"scheduler\": {\"workers\": " + std::to_string(sch.workers);
  out += ", \"queue_depth\": " + std::to_string(sch.queue_depth);
  out += ", \"submitted\": " + std::to_string(sch.submitted);
  out += ", \"executed\": " + std::to_string(sch.executed);
  out += ", \"steals\": " + std::to_string(sch.steals);
  out += ", \"busy_ms\": " + fmt_double(sch.busy_ms);
  out += ", \"utilization\": " + fmt_double(sch.utilization);
  out += "}}";
  return out;
}

std::string render_progress(const std::string& id,
                            const obs::JournalEvent& event) {
  std::string out = "{\"type\": \"progress\", \"id\": \"";
  out += obs::json_escape(id);
  out += "\", \"event\": ";
  out += obs::render_event_line(event);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += "}";
  return out;
}

std::string render_result(const std::string& id, const ExperimentSummary& s,
                          bool cache_hit, const std::string& experiment_key,
                          double elapsed_ms,
                          const std::string& compact_report) {
  std::string out = "{\"type\": \"result\", \"id\": \"";
  out += obs::json_escape(id);
  out += "\", \"cache\": \"";
  out += cache_hit ? "hit" : "miss";
  out += "\", \"target\": \"";
  out += obs::json_escape(s.target);
  out += "\", \"experiment_key\": \"" + experiment_key + "\"";
  out += ", \"swa_func_percent\": " + fmt_double(s.swa_func_percent);
  out += ", \"num_tests\": " + std::to_string(s.num_tests);
  out += ", \"num_seeds\": " + std::to_string(s.num_seeds);
  out += ", \"num_faults\": " + std::to_string(s.num_faults);
  out += ", \"detected\": " + std::to_string(s.detected);
  out += ", \"fault_coverage_percent\": " +
         fmt_double(s.fault_coverage_percent);
  out += ", \"overhead_percent\": " + fmt_double(s.overhead_percent);
  out += ", \"detect_hash\": \"" + hash_detect_counts(s.detect_count) + "\"";
  out += ", \"first_detect_hash\": \"" + hash_first_detects(s.first_detect) +
         "\"";
  out += ", \"elapsed_ms\": " + fmt_double(elapsed_ms);
  if (!compact_report.empty()) {
    out += ", \"report\": " + compact_report;
  }
  out += "}";
  return out;
}

std::string render_error(const std::string& id, const std::string& message) {
  return "{\"type\": \"error\", \"id\": \"" + obs::json_escape(id) +
         "\", \"message\": \"" + obs::json_escape(message) + "\"}";
}

std::string render_pong(const std::string& id) {
  return "{\"type\": \"pong\", \"id\": \"" + obs::json_escape(id) + "\"}";
}

std::string render_bye(const std::string& id) {
  return "{\"type\": \"bye\", \"id\": \"" + obs::json_escape(id) + "\"}";
}

}  // namespace fbt::serve
