#include "serve/shutdown.hpp"

#include <cstdlib>

#include <pthread.h>

namespace fbt::serve {

namespace {

sigset_t shutdown_sigset() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGUSR2);
  return set;
}

}  // namespace

GracefulShutdown::GracefulShutdown(std::function<void(int)> on_signal)
    : on_signal_(std::move(on_signal)) {
  const sigset_t set = shutdown_sigset();
  // Block on this thread; threads created after this (the watcher, worker
  // pools, connection threads) inherit the mask, so sigwait below is the
  // only consumer of these signals.
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  watcher_ = std::thread([this] {
    const sigset_t wait_set = shutdown_sigset();
    while (true) {
      int sig = 0;
      if (sigwait(&wait_set, &sig) != 0) continue;
      if (sig == SIGUSR2) {
        if (quit_.load(std::memory_order_acquire)) return;
        continue;  // stray USR2; not ours to act on
      }
      int expected = 0;
      if (signal_.compare_exchange_strong(expected, sig,
                                          std::memory_order_acq_rel)) {
        if (on_signal_) on_signal_(sig);
      } else {
        // Second SIGINT/SIGTERM: the graceful path is already running (or
        // hung) -- hard exit without waiting for it.
        std::_Exit(exit_status(sig));
      }
    }
  });
}

GracefulShutdown::~GracefulShutdown() {
  quit_.store(true, std::memory_order_release);
  pthread_kill(watcher_.native_handle(), SIGUSR2);
  watcher_.join();
}

}  // namespace fbt::serve
