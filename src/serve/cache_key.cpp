#include "serve/cache_key.hpp"

#include <cstdio>

#include "netlist/bench_io.hpp"

namespace fbt::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Second lane: same structure, different odd multiplier, so the two 64-bit
// lanes decorrelate even though they walk the same byte stream.
constexpr std::uint64_t kLane2Prime = 0x00000100000001b5ULL;

}  // namespace

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

KeyBuilder& KeyBuilder::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hi_ = (hi_ ^ p[i]) * kFnvPrime;
    lo_ = (lo_ ^ p[i]) * kLane2Prime;
  }
  return *this;
}

KeyBuilder& KeyBuilder::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

KeyBuilder& KeyBuilder::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(le, sizeof le);
}

KeyBuilder& KeyBuilder::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}

KeyBuilder& KeyBuilder::key(const CacheKey& k) { return u64(k.hi).u64(k.lo); }

CacheKey KeyBuilder::finish() const { return {hi_, lo_}; }

CacheKey netlist_cache_key(const Netlist& netlist) {
  // write_bench leads with a "# <name>" comment; the key is over content
  // only, so the same circuit under different names shares one key.
  std::string text = write_bench(netlist);
  if (!text.empty() && text.front() == '#') {
    const std::size_t nl = text.find('\n');
    text.erase(0, nl == std::string::npos ? text.size() : nl + 1);
  }
  return KeyBuilder().str("netlist").str(text).finish();
}

CacheKey calibration_cache_key(const CacheKey& target_key,
                               const CacheKey& driver_key,
                               const SwaCalibrationConfig& config) {
  return KeyBuilder()
      .str("calibration")
      .key(target_key)
      .key(driver_key)
      .u64(config.num_sequences)
      .u64(config.sequence_length)
      .u64(config.tpg.lfsr_stages)
      .u64(config.tpg.bias_bits)
      .u64(config.rng_seed)
      .finish();
}

CacheKey fault_list_cache_key(const CacheKey& target_key) {
  return KeyBuilder().str("fault_list").key(target_key).finish();
}

CacheKey flat_fanins_cache_key(const CacheKey& target_key) {
  return KeyBuilder().str("flat_fanins").key(target_key).finish();
}

CacheKey experiment_cache_key(const CacheKey& target_key,
                              const CacheKey& driver_key,
                              const BistExperimentConfig& config) {
  KeyBuilder b;
  b.str("experiment").key(target_key).key(driver_key);
  // Calibration (feeds swa_bound_percent).
  b.u64(config.calibration.num_sequences)
      .u64(config.calibration.sequence_length)
      .u64(config.calibration.tpg.lfsr_stages)
      .u64(config.calibration.tpg.bias_bits)
      .u64(config.calibration.rng_seed);
  // Generation. num_threads, speculation_lanes, and fault_pack_width are
  // intentionally absent: results are bit-identical across them (see header
  // comment), so a warm cache serves any parallelism setting -- folding a
  // parallelism-only knob in would turn warm repeats at a different setting
  // into spurious misses. swa_bound_percent/bounded are derived (from
  // calibration and the driver) rather than request inputs.
  const FunctionalBistConfig& g = config.generation;
  b.u64(g.tpg.lfsr_stages)
      .u64(g.tpg.bias_bits)
      .u64(g.segment_length)
      .u64(g.max_segment_failures)
      .u64(g.max_sequence_failures)
      .u64(g.rng_seed)
      .u64(g.detect_limit)
      .u64(g.hold_period_log2)
      .u64(g.hold_set.size());
  for (const std::size_t flop : g.hold_set) b.u64(flop);
  b.u64(g.pattern_store != nullptr ? 1 : 0);
  // Scan partition and the flow knobs.
  b.u64(config.scan.max_chains)
      .u64(config.scan.min_chain_length)
      .u64(config.reduce_sequences ? 1 : 0)
      .u64(config.emit_rtl ? 1 : 0)
      .u64(config.rtl_misr_stages);
  return b.finish();
}

}  // namespace fbt::serve
