// Content-hash cache keys for the serving layer.
//
// Every cached artifact is addressed by what it is derived from, never by
// where it came from: netlists hash their canonical .bench serialization
// (write_bench round-trips parse_bench, so whitespace/comment/ordering
// variants of the same circuit collapse to one key), and derived artifacts
// fold the producing netlist keys together with exactly the config fields
// that affect their bytes. Fields that are proven result-neutral --
// num_threads, speculation_lanes, and fault_pack_width, bit-identical by
// the determinism discipline pinned since the parallel-grading PRs -- are
// deliberately EXCLUDED from experiment keys, so a warm cache answers a request at any
// parallelism setting.
//
// The hash is a dual-lane 64-bit FNV-1a (two independent offset bases /
// primes over the same byte stream) giving a 128-bit key; collisions are
// not a correctness hazard the protocol must survive, just vanishingly
// unlikely. Every variable-length field is length-prefixed before folding so
// concatenation ambiguity cannot alias two different inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bist/embedded.hpp"
#include "flow/bist_flow.hpp"
#include "netlist/netlist.hpp"

namespace fbt::serve {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const CacheKey&) const = default;
  /// 32 lowercase hex digits; the wire/report form of the key.
  std::string hex() const;
};

/// Incremental dual-lane FNV-1a fold. All multi-byte integers are folded
/// little-endian; doubles fold their IEEE-754 bit pattern (so two configs
/// differing in any bit of any field produce different streams).
class KeyBuilder {
 public:
  KeyBuilder& bytes(const void* data, std::size_t size);
  /// Length-prefixed string fold.
  KeyBuilder& str(std::string_view s);
  KeyBuilder& u64(std::uint64_t v);
  KeyBuilder& f64(double v);
  KeyBuilder& key(const CacheKey& k);
  CacheKey finish() const;

 private:
  std::uint64_t hi_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t lo_ = 0x6c62272e07bb0142ULL;  // FNV-0 basis (second lane)
};

/// Key of a netlist's content: hashes write_bench(netlist), the canonical
/// serialization. Two textual .bench variants that parse to the same circuit
/// share a key; the circuit's name is NOT part of it.
CacheKey netlist_cache_key(const Netlist& netlist);

/// Key of the SWA_func calibration artifact for target driven by driver.
CacheKey calibration_cache_key(const CacheKey& target_key,
                               const CacheKey& driver_key,
                               const SwaCalibrationConfig& config);

/// Key of the collapsed transition-fault list (depends only on the target).
CacheKey fault_list_cache_key(const CacheKey& target_key);

/// Key of the flattened fanin CSR (depends only on the target).
CacheKey flat_fanins_cache_key(const CacheKey& target_key);

/// Key of a full experiment result. Folds the netlist keys and every config
/// field that can change the result bytes; num_threads, speculation_lanes,
/// and fault_pack_width are excluded (results are bit-identical across
/// them).
CacheKey experiment_cache_key(const CacheKey& target_key,
                              const CacheKey& driver_key,
                              const BistExperimentConfig& config);

}  // namespace fbt::serve
