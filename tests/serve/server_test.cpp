#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "flow/bist_flow.hpp"
#include "jobs/job_system.hpp"
#include "serve/protocol.hpp"

namespace fbt::serve {
namespace {

// The CI container may report one core; size the shared pool explicitly so
// requests genuinely multiplex (the >= 4 concurrent-request acceptance runs
// under TSan in CI).
constexpr std::size_t kPool = 4;

ExperimentRequest small_request() {
  ExperimentRequest request;
  request.target = "s298";
  request.driver = "buffers";
  request.config.target_name = "s298";
  request.config.driver_name = "buffers";
  request.config.calibration.num_sequences = 4;
  request.config.calibration.sequence_length = 400;
  request.config.generation.segment_length = 200;
  request.config.generation.max_segment_failures = 2;
  request.config.generation.max_sequence_failures = 2;
  request.config.generation.rng_seed = 19;
  return request;
}

struct Fixture {
  jobs::JobSystem jobs{kPool};
  ArtifactCache cache;
  ExperimentService service{jobs, cache};
};

TEST(ExperimentService, PingPongAndStats) {
  Fixture fx;
  std::vector<std::string> lines;
  const auto emit = [&lines](const std::string& l) { lines.push_back(l); };

  EXPECT_TRUE(fx.service.handle_line(
      "{\"type\": \"ping\", \"id\": \"p1\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"pong\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\": \"p1\""), std::string::npos);

  lines.clear();
  EXPECT_TRUE(fx.service.handle_line(
      "{\"type\": \"stats\", \"id\": \"s1\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"stats\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"cache_hits\": 0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cache_misses\": 0"), std::string::npos);
  // The enriched stats response: per-segment latency summaries (cold/warm
  // keyed separately) and the scheduler snapshot of the shared pool.
  EXPECT_NE(lines[0].find("\"latency\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cold\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"warm\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"queue\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"compute\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"render\": {"), std::string::npos);
  EXPECT_NE(lines[0].find("\"p99_clamped\": "), std::string::npos);
  EXPECT_NE(lines[0].find("\"scheduler\": {\"workers\": 4"),
            std::string::npos);
}

TEST(ExperimentService, FreezeStatsPinsThePublishedSnapshot) {
  // The SIGTERM drain fix: the shutdown path freezes the stats BEFORE the
  // graceful drain, so requests completing during the drain cannot make the
  // final stats responses disagree with the run report. First freeze wins.
  Fixture fx;
  const ExperimentRequest request = small_request();
  bool hit = false;
  fx.service.run_experiment(request, &hit);
  fx.service.freeze_stats();
  const ServiceStats frozen = fx.service.stats_snapshot();
  EXPECT_EQ(frozen.requests_total, 1u);

  // A request that completes after the freeze (the in-flight drain): the
  // live counter moves, the published snapshot does not.
  fx.service.run_experiment(request, &hit);
  EXPECT_EQ(fx.service.requests_total(), 2u);
  EXPECT_EQ(fx.service.collect_stats().requests_total, 2u);
  EXPECT_EQ(fx.service.stats_snapshot().requests_total, 1u);

  // Later freezes are no-ops.
  fx.service.freeze_stats();
  EXPECT_EQ(fx.service.stats_snapshot().requests_total, 1u);

  // The protocol line rendered from the frozen snapshot agrees.
  std::vector<std::string> lines;
  const auto emit = [&lines](const std::string& l) { lines.push_back(l); };
  EXPECT_TRUE(fx.service.handle_line(
      "{\"type\": \"stats\", \"id\": \"s2\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"requests_total\": 1"), std::string::npos);
}

TEST(ExperimentService, MalformedRequestEmitsError) {
  Fixture fx;
  std::vector<std::string> lines;
  const auto emit = [&lines](const std::string& l) { lines.push_back(l); };

  EXPECT_TRUE(fx.service.handle_line("this is not json", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"error\""), std::string::npos);

  lines.clear();
  // Valid JSON, unknown type: still an error, still keeps serving.
  EXPECT_TRUE(fx.service.handle_line(
      "{\"type\": \"frobnicate\", \"id\": \"x\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"error\""), std::string::npos);

  lines.clear();
  // Experiment with no target and no inline netlist.
  EXPECT_TRUE(fx.service.handle_line(
      "{\"type\": \"experiment\", \"id\": \"x\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"error\""), std::string::npos);
}

TEST(ExperimentService, ShutdownRequestStopsServing) {
  Fixture fx;
  std::vector<std::string> lines;
  const auto emit = [&lines](const std::string& l) { lines.push_back(l); };
  EXPECT_FALSE(fx.service.handle_line(
      "{\"type\": \"shutdown\", \"id\": \"bye\"}", emit));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"bye\""), std::string::npos);
}

TEST(ExperimentService, ColdRunMatchesBatchFlow) {
  Fixture fx;
  const ExperimentRequest request = small_request();
  bool hit = true;
  const ExperimentSummary served = fx.service.run_experiment(request, &hit);
  EXPECT_FALSE(hit);

  const BistExperimentResult batch = run_bist_experiment(request.config);
  EXPECT_EQ(served.num_tests, batch.run.num_tests);
  EXPECT_EQ(served.num_seeds, batch.run.num_seeds);
  EXPECT_EQ(served.detected, batch.detected);
  EXPECT_EQ(served.num_faults, batch.faults.size());
  EXPECT_DOUBLE_EQ(served.fault_coverage_percent,
                   batch.fault_coverage_percent);
  EXPECT_DOUBLE_EQ(served.swa_func_percent, batch.swa_func);
  // Bit-identity down to the per-fault detect matrix and attribution.
  EXPECT_EQ(hash_detect_counts(served.detect_count),
            hash_detect_counts(batch.detect_count));
  EXPECT_EQ(hash_first_detects(served.first_detect),
            hash_first_detects(batch.run.first_detect));
}

TEST(ExperimentService, WarmHitIsBitIdenticalToColdMiss) {
  Fixture fx;
  const ExperimentRequest request = small_request();
  bool hit = true;
  const ExperimentSummary cold = fx.service.run_experiment(request, &hit);
  ASSERT_FALSE(hit);
  const ExperimentSummary warm = fx.service.run_experiment(request, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(hash_detect_counts(cold.detect_count),
            hash_detect_counts(warm.detect_count));
  EXPECT_EQ(hash_first_detects(cold.first_detect),
            hash_first_detects(warm.first_detect));
  EXPECT_EQ(cold.num_tests, warm.num_tests);
  EXPECT_DOUBLE_EQ(cold.fault_coverage_percent, warm.fault_coverage_percent);
  EXPECT_GE(fx.cache.stats().hits, 1u);
}

TEST(ExperimentService, WarmHitAcrossParallelismKnobs) {
  // num_threads / speculation_lanes are excluded from experiment keys
  // (results are bit-identical across them), so the repeat at a different
  // parallelism setting is a legitimate warm hit.
  Fixture fx;
  ExperimentRequest request = small_request();
  bool hit = true;
  const ExperimentSummary cold = fx.service.run_experiment(request, &hit);
  ASSERT_FALSE(hit);
  request.config.num_threads = 3;
  request.config.speculation_lanes = 8;
  const ExperimentSummary warm = fx.service.run_experiment(request, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(hash_detect_counts(cold.detect_count),
            hash_detect_counts(warm.detect_count));
  EXPECT_EQ(hash_first_detects(cold.first_detect),
            hash_first_detects(warm.first_detect));

  // fault_pack_width only changes how faults are packed into lane words
  // (PPSFP vs the serial reference engine), never the results -- a repeat at
  // a different width is the same experiment.
  request.config.fault_pack_width = 1;
  request.config.generation.fault_pack_width = 1;
  const ExperimentSummary repacked = fx.service.run_experiment(request, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(hash_detect_counts(cold.detect_count),
            hash_detect_counts(repacked.detect_count));
  EXPECT_EQ(hash_first_detects(cold.first_detect),
            hash_first_detects(repacked.first_detect));
}

TEST(ExperimentService, ConfigChangeIsAFreshMiss) {
  Fixture fx;
  ExperimentRequest request = small_request();
  bool hit = true;
  const ExperimentSummary first = fx.service.run_experiment(request, &hit);
  ASSERT_FALSE(hit);
  request.config.generation.rng_seed += 1;
  const ExperimentSummary second = fx.service.run_experiment(request, &hit);
  EXPECT_FALSE(hit);
  // Different seed, different run (detect attribution differs with
  // overwhelming probability on this circuit).
  EXPECT_NE(hash_first_detects(first.first_detect),
            hash_first_detects(second.first_detect));
}

TEST(ExperimentService, ConcurrentRequestsMultiplexOnePool) {
  // The TSan acceptance: >= 4 concurrent experiment requests share one
  // JobSystem without deadlock, and every result is bit-identical.
  Fixture fx;
  const ExperimentRequest request = small_request();
  constexpr std::size_t kClients = 4;
  std::vector<ExperimentSummary> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&fx, &request, &results, c] {
      bool h = false;
      results[c] = fx.service.run_experiment(request, &h);
    });
  }
  for (std::thread& t : clients) t.join();

  const std::string detect = hash_detect_counts(results[0].detect_count);
  const std::string first = hash_first_detects(results[0].first_detect);
  for (std::size_t c = 1; c < kClients; ++c) {
    EXPECT_EQ(hash_detect_counts(results[c].detect_count), detect) << c;
    EXPECT_EQ(hash_first_detects(results[c].first_detect), first) << c;
  }
  EXPECT_EQ(fx.service.requests_total(), kClients);
}

TEST(ExperimentService, HandleLineExperimentEmitsResultWithReport) {
  Fixture fx;
  std::vector<std::string> lines;
  const auto emit = [&lines](const std::string& l) { lines.push_back(l); };
  const std::string line =
      "{\"type\": \"experiment\", \"id\": \"e1\", \"target\": \"s298\", "
      "\"driver\": \"buffers\", \"stream_progress\": false, \"config\": "
      "{\"cal_sequences\": 4, \"cal_length\": 400, \"segment_length\": 200, "
      "\"max_segment_failures\": 2, \"max_sequence_failures\": 2, "
      "\"rng_seed\": 19}}";
  EXPECT_TRUE(fx.service.handle_line(line, emit));
  ASSERT_FALSE(lines.empty());
  const std::string& result = lines.back();
  EXPECT_NE(result.find("\"type\": \"result\""), std::string::npos);
  EXPECT_NE(result.find("\"id\": \"e1\""), std::string::npos);
  EXPECT_NE(result.find("\"cache\": \"miss\""), std::string::npos);
  EXPECT_NE(result.find("\"detect_hash\": \""), std::string::npos);
  EXPECT_NE(result.find("\"report\": {"), std::string::npos);
  // NDJSON framing: the embedded report must be compacted to one line.
  EXPECT_EQ(result.find('\n'), std::string::npos);

  lines.clear();
  EXPECT_TRUE(fx.service.handle_line(line, emit));
  EXPECT_NE(lines.back().find("\"cache\": \"hit\""), std::string::npos);
}

TEST(ExperimentService, InlineNetlistSharesKeyWithTextualVariant) {
  Fixture fx;
  const std::string bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                            "f = DFF(y)\ny = AND(a, b)\n";
  const std::string noisy = "# same circuit\nINPUT(a)\n INPUT(b)\n"
                            "OUTPUT(y)\nf = DFF(y)\ny = AND(a,b)\n";
  ExperimentRequest request = small_request();
  request.target = "inline-a";
  request.netlist_bench = bench;
  request.config.calibration.num_sequences = 2;
  request.config.calibration.sequence_length = 64;
  request.config.generation.segment_length = 32;
  bool hit = true;
  const ExperimentSummary cold = fx.service.run_experiment(request, &hit);
  EXPECT_FALSE(hit);
  // The same circuit spelled differently canonicalizes to the same content
  // key -- a warm hit.
  request.target = "inline-b";
  request.netlist_bench = noisy;
  const ExperimentSummary warm = fx.service.run_experiment(request, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(hash_detect_counts(cold.detect_count),
            hash_detect_counts(warm.detect_count));
}

}  // namespace
}  // namespace fbt::serve
