#include "serve/cache_key.hpp"

#include <gtest/gtest.h>

#include <string>

#include "circuits/registry.hpp"
#include "netlist/bench_io.hpp"

namespace fbt::serve {
namespace {

BistExperimentConfig base_config() {
  BistExperimentConfig cfg;
  cfg.target_name = "s298";
  cfg.driver_name = "buffers";
  cfg.calibration.num_sequences = 4;
  cfg.calibration.sequence_length = 400;
  cfg.generation.segment_length = 200;
  cfg.generation.max_segment_failures = 2;
  cfg.generation.max_sequence_failures = 2;
  cfg.generation.rng_seed = 19;
  return cfg;
}

TEST(CacheKey, HexIs32LowercaseDigits) {
  const CacheKey key = KeyBuilder().str("probe").finish();
  const std::string hex = key.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(CacheKey, KeyBuilderIsDeterministic) {
  const CacheKey a = KeyBuilder().str("x").u64(7).f64(1.5).finish();
  const CacheKey b = KeyBuilder().str("x").u64(7).f64(1.5).finish();
  EXPECT_EQ(a, b);
  const CacheKey c = KeyBuilder().str("x").u64(8).f64(1.5).finish();
  EXPECT_NE(a, c);
}

TEST(CacheKey, LengthPrefixPreventsConcatAliasing) {
  // "ab" + "c" must not collide with "a" + "bc".
  const CacheKey a = KeyBuilder().str("ab").str("c").finish();
  const CacheKey b = KeyBuilder().str("a").str("bc").finish();
  EXPECT_NE(a, b);
}

TEST(CacheKey, NetlistKeyIgnoresTextualVariants) {
  const std::string text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  const std::string noisy =
      "# a comment\n\nINPUT(a)\n  INPUT(b)\nOUTPUT(y)\n\n"
      "y = AND(a,   b)\n# trailing\n";
  const Netlist n1 = parse_bench(text, "one");
  const Netlist n2 = parse_bench(noisy, "two");
  EXPECT_EQ(netlist_cache_key(n1), netlist_cache_key(n2));
}

TEST(CacheKey, NetlistKeySeparatesDifferentCircuits) {
  const Netlist and_gate = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "g");
  const Netlist or_gate = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "g");
  EXPECT_NE(netlist_cache_key(and_gate), netlist_cache_key(or_gate));
}

TEST(CacheKey, RegistryCircuitsHaveDistinctKeys) {
  const CacheKey s298 = netlist_cache_key(load_benchmark("s298"));
  const CacheKey s386 = netlist_cache_key(load_benchmark("s386"));
  EXPECT_NE(s298, s386);
  // And the key is stable across loads.
  EXPECT_EQ(s298, netlist_cache_key(load_benchmark("s298")));
}

TEST(CacheKey, ExperimentKeyFlipsOnResultAffectingFields) {
  const CacheKey target = KeyBuilder().str("t").finish();
  const CacheKey driver = KeyBuilder().str("d").finish();
  const BistExperimentConfig base = base_config();
  const CacheKey base_key = experiment_cache_key(target, driver, base);

  // Each result-affecting field must change the key when flipped.
  {
    BistExperimentConfig c = base;
    c.generation.rng_seed += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.generation.segment_length += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.generation.max_segment_failures += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.generation.max_sequence_failures += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.calibration.num_sequences += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.calibration.sequence_length += 1;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  {
    BistExperimentConfig c = base;
    c.reduce_sequences = !c.reduce_sequences;
    EXPECT_NE(experiment_cache_key(target, driver, c), base_key);
  }
  // Different netlists never share a key either.
  EXPECT_NE(experiment_cache_key(driver, target, base), base_key);
}

TEST(CacheKey, ExperimentKeyIgnoresParallelismKnobs) {
  // num_threads, speculation_lanes, and fault_pack_width are result-neutral
  // by the determinism discipline, so a warm cache must answer any
  // parallelism setting.
  const CacheKey target = KeyBuilder().str("t").finish();
  const CacheKey driver = KeyBuilder().str("d").finish();
  BistExperimentConfig a = base_config();
  BistExperimentConfig b = base_config();
  b.num_threads = 8;
  b.speculation_lanes = 1;
  b.fault_pack_width = 1;
  b.generation.num_threads = 8;
  b.generation.speculation_lanes = 1;
  b.generation.fault_pack_width = 8;
  EXPECT_EQ(experiment_cache_key(target, driver, a),
            experiment_cache_key(target, driver, b));
}

TEST(CacheKey, DerivedArtifactKeysAreDistinctPerKind) {
  const CacheKey target = KeyBuilder().str("t").finish();
  const CacheKey driver = KeyBuilder().str("d").finish();
  const SwaCalibrationConfig cal;
  const CacheKey cal_key = calibration_cache_key(target, driver, cal);
  const CacheKey faults = fault_list_cache_key(target);
  const CacheKey flat = flat_fanins_cache_key(target);
  EXPECT_NE(cal_key, faults);
  EXPECT_NE(cal_key, flat);
  EXPECT_NE(faults, flat);
}

TEST(CacheKey, CalibrationKeyFlipsOnConfig) {
  const CacheKey target = KeyBuilder().str("t").finish();
  const CacheKey driver = KeyBuilder().str("d").finish();
  SwaCalibrationConfig a;
  SwaCalibrationConfig b = a;
  b.num_sequences += 1;
  EXPECT_NE(calibration_cache_key(target, driver, a),
            calibration_cache_key(target, driver, b));
  SwaCalibrationConfig c = a;
  c.rng_seed += 1;
  EXPECT_NE(calibration_cache_key(target, driver, a),
            calibration_cache_key(target, driver, c));
}

}  // namespace
}  // namespace fbt::serve
