#include "serve/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace fbt::serve {
namespace {

CacheKey key_of(const std::string& tag) {
  return KeyBuilder().str(tag).finish();
}

std::function<std::uint64_t(const int&)> int_size(std::uint64_t bytes) {
  return [bytes](const int&) { return bytes; };
}

TEST(ArtifactCache, MissThenHit) {
  ArtifactCache cache(1 << 20);
  int computes = 0;
  const auto compute = [&computes] {
    ++computes;
    return std::make_shared<const int>(42);
  };
  const std::shared_ptr<const int> first = cache.get_or_compute<int>(
      "probe", key_of("a"), compute, int_size(64));
  const std::shared_ptr<const int> second = cache.get_or_compute<int>(
      "probe", key_of("a"), compute, int_size(64));
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(first.get(), second.get());  // same cached object, not a copy
  EXPECT_EQ(computes, 1);
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 64u);
}

TEST(ArtifactCache, KindNamespacesSeparateEntries) {
  ArtifactCache cache(1 << 20);
  const auto make = [](int v) {
    return [v] { return std::make_shared<const int>(v); };
  };
  const auto a = cache.get_or_compute<int>("netlist", key_of("same"),
                                           make(1), int_size(8));
  const auto b = cache.get_or_compute<int>("faults", key_of("same"),
                                           make(2), int_size(8));
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedFirst) {
  ArtifactCache cache(300);  // fits three 100-byte entries
  const auto make = [](int v) {
    return [v] { return std::make_shared<const int>(v); };
  };
  cache.get_or_compute<int>("e", key_of("a"), make(1), int_size(100));
  cache.get_or_compute<int>("e", key_of("b"), make(2), int_size(100));
  cache.get_or_compute<int>("e", key_of("c"), make(3), int_size(100));
  // Touch "a" so "b" is now the LRU entry.
  cache.get_or_compute<int>("e", key_of("a"), make(1), int_size(100));
  // Inserting "d" must evict "b", keeping the hot "a".
  cache.get_or_compute<int>("e", key_of("d"), make(4), int_size(100));

  ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, 300u);

  const std::uint64_t hits_before = stats.hits;
  cache.get_or_compute<int>("e", key_of("a"), make(1), int_size(100));
  EXPECT_EQ(cache.stats().hits, hits_before + 1);  // "a" survived
  // Evicted "b" was dropped, so a small-cap cache keeps churning on it, but
  // with a new LRU victim ("c" became the oldest untouched entry).
  cache.get_or_compute<int>("e", key_of("b"), make(2), int_size(100));
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ArtifactCache, OversizedEntryStillCachedAlone) {
  // A single entry larger than the cap is admitted (the cache never evicts
  // below one entry), so a hot oversized artifact is not recomputed per
  // request.
  ArtifactCache cache(10);
  int computes = 0;
  const auto compute = [&computes] {
    ++computes;
    return std::make_shared<const int>(9);
  };
  cache.get_or_compute<int>("big", key_of("x"), compute, int_size(1000));
  cache.get_or_compute<int>("big", key_of("x"), compute, int_size(1000));
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactCache, EvictedEntrySurvivesForHolders) {
  ArtifactCache cache(100);
  const auto a = cache.get_or_compute<int>(
      "e", key_of("a"), [] { return std::make_shared<const int>(7); },
      int_size(100));
  // Insert another full-cap entry; "a" is evicted from the cache but our
  // shared_ptr keeps the artifact alive.
  cache.get_or_compute<int>(
      "e", key_of("b"), [] { return std::make_shared<const int>(8); },
      int_size(100));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(*a, 7);
}

TEST(ArtifactCache, InsertFirstWriterWins) {
  ArtifactCache cache(1 << 20);
  const std::string id = ArtifactCache::make_id("race", key_of("k"));
  const auto winner = std::make_shared<const int>(1);
  const auto loser = std::make_shared<const int>(2);
  const auto kept1 = cache.insert(id, winner, 8);
  const auto kept2 = cache.insert(id, loser, 8);
  EXPECT_EQ(kept1.get(), winner.get());
  EXPECT_EQ(kept2.get(), winner.get());  // racing duplicate discarded
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactCache, AliasMemo) {
  ArtifactCache cache(1 << 20);
  EXPECT_FALSE(cache.alias("target:s298").has_value());
  const CacheKey key = key_of("s298-content");
  cache.remember_alias("target:s298", key);
  const std::optional<CacheKey> found = cache.alias("target:s298");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, key);
  EXPECT_FALSE(cache.alias("target:s386").has_value());
}

}  // namespace
}  // namespace fbt::serve
