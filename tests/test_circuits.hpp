// Shared hand-built circuits for unit tests, including the dissertation's
// Chapter-1 didactic figures.
#pragma once

#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"

namespace fbt::testing {

/// Fig. 1.1 / 1.3: inputs a, b, d; c = OR(a, b); e = AND(c, d); output e.
/// The test <abd = 001, 101> detects the slow-to-rise fault at c.
inline Netlist make_fig1_circuit() {
  return parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(d)
OUTPUT(e)
c = OR(a, b)
e = AND(c, d)
)",
                     "fig1");
}

/// Fig. 1.2 / 1.4 / 1.5: inputs a, b, d, f; c = OR(a, b); e = AND(c, d);
/// g = OR(e, f); output g. Path a-c-e-g with a rising transition at a.
inline Netlist make_fig2_circuit() {
  return parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(d)
INPUT(f)
OUTPUT(g)
c = OR(a, b)
e = AND(c, d)
g = OR(e, f)
)",
                     "fig2");
}

/// Reconvergence with opposite inversion polarities (the Fig. 1.6/1.7
/// phenomenon): d fans out to f = NOT(d) and g = OR(d, e); h = AND(f, g).
/// A rising transition at d produces fault effects of opposite polarity that
/// cancel at h, so the transition fault at d is not detected even though
/// both branch paths are statically sensitized.
inline Netlist make_reconvergent_circuit() {
  return parse_bench(R"(
INPUT(d)
INPUT(e)
OUTPUT(h)
f = NOT(d)
g = OR(d, e)
h = AND(f, g)
)",
                     "reconv");
}

/// Minimal sequential circuit: one input, one flop, one output.
/// nxt = XOR(in, ff); out = NOT(ff).
inline Netlist make_toggle_circuit() {
  return parse_bench(R"(
INPUT(in)
OUTPUT(out)
ff = DFF(nxt)
nxt = XOR(in, ff)
out = NOT(ff)
)",
                     "toggle");
}

/// The Fig. 2.1 circuit (the preprocessing example): the path c-d-e with a
/// rising transition at c carries the transition faults c:0->1, d:1->0,
/// e:0->1, and e is the data input of the flop whose output is c. Detecting
/// e:0->1 needs e = 0 under the first pattern, which under a broadside test
/// implies c = 0 under the second pattern -- conflicting with the c = 1
/// second-pattern requirement of c:0->1. Reconstructed as:
/// c = DFF(e); d = NOT(c); e = NAND(b, d).
inline Netlist make_fig21_circuit() {
  return parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(e)
c = DFF(e)
d = NOT(c)
e = NAND(b, d)
)",
                     "fig21");
}

}  // namespace fbt::testing
