#include "sta/path_selection.hpp"

#include <gtest/gtest.h>

#include <set>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"

namespace fbt {
namespace {

TEST(PathSelection, SelectsRequestedCountOnS27) {
  const Netlist nl = make_s27();
  PathSelectionConfig cfg;
  cfg.num_target = 8;
  cfg.initial_pool = 56;
  const PathSelectionResult result =
      select_critical_paths(nl, DelayLibrary::standard_018um(), cfg);
  EXPECT_GE(result.original_size, 8u);
  EXPECT_GE(result.final_size, result.original_size);
  ASSERT_GE(result.target.size(), 8u);
  // Sorted by final delay.
  for (std::size_t i = 1; i < result.target.size(); ++i) {
    EXPECT_GE(result.target[i - 1].final_delay,
              result.target[i].final_delay - 1e-12);
  }
}

TEST(PathSelection, FinalDelayNeverExceedsOriginal) {
  const Netlist nl = make_s27();
  PathSelectionConfig cfg;
  cfg.num_target = 12;
  cfg.initial_pool = 56;
  const PathSelectionResult result =
      select_critical_paths(nl, DelayLibrary::standard_018um(), cfg);
  for (const SelectedPathFault& sel : result.target) {
    EXPECT_LE(sel.final_delay, sel.original_delay + 1e-12)
        << path_fault_name(nl, sel.fault);
  }
}

TEST(PathSelection, NoDuplicateFaults) {
  const Netlist nl = make_s27();
  PathSelectionConfig cfg;
  cfg.num_target = 10;
  cfg.initial_pool = 56;
  const PathSelectionResult result =
      select_critical_paths(nl, DelayLibrary::standard_018um(), cfg);
  std::set<std::string> keys;
  for (const SelectedPathFault& sel : result.target) {
    EXPECT_TRUE(keys.insert(path_fault_key(sel.fault)).second);
  }
}

TEST(PathSelection, DropsUndetectableFaults) {
  const Netlist nl = make_s27();
  PathSelectionConfig cfg;
  cfg.num_target = 20;
  cfg.initial_pool = 200;  // pull in everything, incl. undetectable paths
  const PathSelectionResult result =
      select_critical_paths(nl, DelayLibrary::standard_018um(), cfg);
  // s27 has many undetectable path delay faults (Table 2.1: 31 of 56);
  // the selection must have skipped a nonzero number of them.
  EXPECT_GT(result.undetectable_dropped, 0u);
}

TEST(PathSelection, WorksOnMidSizeSyntheticCircuit) {
  const Netlist nl = load_benchmark("s386");
  PathSelectionConfig cfg;
  cfg.num_target = 16;
  cfg.initial_pool = 300;
  cfg.expansion_cap = 16;
  cfg.max_processed = 200;
  const PathSelectionResult result =
      select_critical_paths(nl, DelayLibrary::standard_018um(), cfg);
  EXPECT_GE(result.final_size, result.original_size);
  EXPECT_GT(result.target.size(), 0u);
}

TEST(PathSelection, KeyIsInjectiveOverTransitions) {
  PathDelayFault a{Path{{1, 2, 3}}, true};
  PathDelayFault b{Path{{1, 2, 3}}, false};
  PathDelayFault c{Path{{1, 2}}, true};
  EXPECT_NE(path_fault_key(a), path_fault_key(b));
  EXPECT_NE(path_fault_key(a), path_fault_key(c));
}

}  // namespace
}  // namespace fbt
