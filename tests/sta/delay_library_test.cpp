#include "sta/delay_library.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace fbt {
namespace {

TEST(DelayLibrary, InverterRiseIsTheUnitDelay) {
  const DelayLibrary lib = DelayLibrary::standard_018um();
  EXPECT_DOUBLE_EQ(lib.unit_delay(), 0.03);
  EXPECT_DOUBLE_EQ(lib.delay(GateType::kNot, 1).rise, 0.03);
}

TEST(DelayLibrary, UnitDelayIsTheMinimum) {
  const DelayLibrary lib = DelayLibrary::standard_018um();
  for (const GateType t : {GateType::kBuf, GateType::kNot, GateType::kAnd,
                           GateType::kNand, GateType::kOr, GateType::kNor,
                           GateType::kXor, GateType::kXnor}) {
    const std::size_t fanins =
        (t == GateType::kBuf || t == GateType::kNot) ? 1 : 2;
    const GateDelay d = lib.delay(t, fanins);
    EXPECT_GE(d.rise, lib.unit_delay() - 1e-12) << gate_type_name(t);
    // Inverter fall (0.027) is the single arc below the rise unit; every
    // other arc is at least the unit.
    if (t != GateType::kNot) {
      EXPECT_GE(d.fall, lib.unit_delay() - 1e-12) << gate_type_name(t);
    }
  }
}

TEST(DelayLibrary, ExtraFaninsAddDelay) {
  const DelayLibrary lib = DelayLibrary::standard_018um();
  EXPECT_GT(lib.delay(GateType::kNand, 4).rise,
            lib.delay(GateType::kNand, 2).rise);
  EXPECT_DOUBLE_EQ(lib.delay(GateType::kNand, 2).rise,
                   lib.delay(GateType::kNand, 1).rise);
}

TEST(DelayLibrary, SourcesHaveNoArcs) {
  const DelayLibrary lib = DelayLibrary::standard_018um();
  EXPECT_THROW(lib.delay(GateType::kInput, 0), Error);
  EXPECT_THROW(lib.delay(GateType::kDff, 1), Error);
}

}  // namespace
}  // namespace fbt
