#include "sta/timing_graph.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/synth.hpp"
#include "test_circuits.hpp"

namespace fbt {
namespace {

DelayLibrary lib() { return DelayLibrary::standard_018um(); }

TEST(TimingGraph, WorstArrivalMatchesLongestEnumeratedPath) {
  const Netlist nl = make_s27();
  const TimingGraph graph(nl, lib());
  const auto paths = graph.most_critical(1);
  ASSERT_FALSE(paths.empty());
  EXPECT_NEAR(graph.worst_arrival(), paths[0].delay, 1e-9);
}

TEST(TimingGraph, EnumerationIsSortedAndConsistent) {
  const Netlist nl = make_s27();
  const TimingGraph graph(nl, lib());
  const auto paths = graph.most_critical(50);
  ASSERT_GE(paths.size(), 10u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].delay, paths[i].delay - 1e-12);
  }
  for (const TimedPath& tp : paths) {
    const auto recomputed = graph.path_delay(tp.fault);
    ASSERT_TRUE(recomputed.has_value());
    EXPECT_NEAR(*recomputed, tp.delay, 1e-9);
  }
}

TEST(TimingGraph, AtLeastReturnsExactlyThePathsAboveThreshold) {
  const Netlist nl = make_s27();
  const TimingGraph graph(nl, lib());
  const auto all = graph.most_critical(1000);
  const double threshold = all[all.size() / 2].delay;
  const auto subset = graph.at_least(threshold, 1000);
  std::size_t expected = 0;
  for (const TimedPath& tp : all) {
    if (tp.delay >= threshold) ++expected;
  }
  EXPECT_EQ(subset.size(), expected);
  for (const TimedPath& tp : subset) EXPECT_GE(tp.delay, threshold - 1e-12);
}

TEST(TimingGraph, ConstantCaseInputPrunesPaths) {
  const Netlist nl = testing::make_fig2_circuit();
  // f held at 1 in both patterns: g = OR(e, f) is blocked for e, and f
  // itself cannot toggle, so only the f-g path survives... which is also
  // blocked since f is constant. No sensitizable path through g remains.
  const std::vector<Assignment> case_values = {
      {{Frame::k1, nl.find("f")}, true}, {{Frame::k2, nl.find("f")}, true}};
  const TimingGraph graph(nl, lib(), case_values);
  PathDelayFault through_e;
  through_e.path.nodes = {nl.find("a"), nl.find("c"), nl.find("e"),
                          nl.find("g")};
  through_e.rising = true;
  EXPECT_FALSE(graph.path_delay(through_e).has_value());
  EXPECT_EQ(graph.most_critical(100).size(), 0u);
}

TEST(TimingGraph, CaseAnalysisNeverIncreasesDelay) {
  const Netlist nl = make_s27();
  const TimingGraph unconstrained(nl, lib());
  const auto paths = unconstrained.most_critical(30);
  // Pin G1 to constant 0 (both patterns): delays of surviving paths must not
  // increase (the side-input pessimism can only shrink).
  const std::vector<Assignment> case_values = {
      {{Frame::k1, nl.find("G1")}, false}, {{Frame::k2, nl.find("G1")}, false}};
  const TimingGraph constrained(nl, lib(), case_values);
  for (const TimedPath& tp : paths) {
    const auto d = constrained.path_delay(tp.fault);
    if (d.has_value()) {
      EXPECT_LE(*d, tp.delay + 1e-12) << path_fault_name(nl, tp.fault);
    }
  }
}

TEST(TimingGraph, RisingCaseInputRestrictsLaunchDirection) {
  const Netlist nl = testing::make_fig1_circuit();
  // a: rising (0 in p1, 1 in p2).
  const std::vector<Assignment> case_values = {
      {{Frame::k1, nl.find("a")}, false}, {{Frame::k2, nl.find("a")}, true}};
  const TimingGraph graph(nl, lib(), case_values);
  PathDelayFault rising{Path{{nl.find("a"), nl.find("c"), nl.find("e")}},
                        true};
  PathDelayFault falling{Path{{nl.find("a"), nl.find("c"), nl.find("e")}},
                         false};
  EXPECT_TRUE(graph.path_delay(rising).has_value());
  EXPECT_FALSE(graph.path_delay(falling).has_value());
}

TEST(TimingGraph, FullySpecifiedSideInputsDropAllPessimism) {
  const Netlist nl = testing::make_fig2_circuit();
  PathDelayFault fp{Path{{nl.find("a"), nl.find("c"), nl.find("e"),
                          nl.find("g")}},
                    true};
  const TimingGraph loose(nl, lib());
  // Pin every off-path input in both frames (the after-TG condition).
  const std::vector<Assignment> pins = {
      {{Frame::k1, nl.find("a")}, false}, {{Frame::k2, nl.find("a")}, true},
      {{Frame::k1, nl.find("b")}, false}, {{Frame::k2, nl.find("b")}, false},
      {{Frame::k1, nl.find("d")}, true},  {{Frame::k2, nl.find("d")}, true},
      {{Frame::k1, nl.find("f")}, false}, {{Frame::k2, nl.find("f")}, false}};
  const TimingGraph tight(nl, lib(), pins);
  const auto d_loose = loose.path_delay(fp);
  const auto d_tight = tight.path_delay(fp);
  ASSERT_TRUE(d_loose.has_value());
  ASSERT_TRUE(d_tight.has_value());
  // Three 2-input gates, each with one side input resolved: exactly 3
  // penalties dropped.
  const DelayLibrary l = lib();
  EXPECT_NEAR(*d_loose - *d_tight, 3 * l.side_input_penalty(), 1e-9);
}

TEST(TimingGraph, SyntheticCircuitEnumerationScales) {
  SynthParams p;
  p.name = "sta_syn";
  p.num_inputs = 10;
  p.num_outputs = 6;
  p.num_flops = 12;
  p.num_gates = 300;
  p.seed = 23;
  const Netlist nl = generate_synthetic(p);
  const TimingGraph graph(nl, lib());
  const auto paths = graph.most_critical(200);
  EXPECT_EQ(paths.size(), 200u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].delay, paths[i].delay - 1e-12);
  }
}

}  // namespace
}  // namespace fbt
