// Cross-engine timing properties on random circuits.
#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "paths/path.hpp"
#include "sta/timing_graph.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

Netlist make_random(std::uint64_t seed) {
  SynthParams p;
  p.name = "sta_prop" + std::to_string(seed);
  p.num_inputs = 5;
  p.num_outputs = 3;
  p.num_flops = 4;
  p.num_gates = 60;
  p.seed = seed;
  return generate_synthetic(p);
}

class TimingProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: the best-first enumeration agrees with exhaustive path
// enumeration -- same path count (per launch transition) and the maximum of
// the exhaustively recomputed delays equals worst_arrival().
TEST_P(TimingProperty, EnumerationMatchesExhaustiveRecomputation) {
  const Netlist nl = make_random(GetParam());
  const DelayLibrary lib = DelayLibrary::standard_018um();
  const TimingGraph graph(nl, lib);

  const PathEnumeration all = enumerate_all_paths(nl, 100000);
  ASSERT_TRUE(all.complete);

  double exhaustive_worst = 0.0;
  std::size_t sensitizable = 0;
  for (const Path& p : all.paths) {
    for (const bool rising : {true, false}) {
      const auto d = graph.path_delay({p, rising});
      if (!d.has_value()) continue;
      ++sensitizable;
      exhaustive_worst = std::max(exhaustive_worst, *d);
    }
  }
  EXPECT_NEAR(graph.worst_arrival(), exhaustive_worst, 1e-9);

  const auto ranked = graph.most_critical(2 * all.paths.size() + 10);
  EXPECT_EQ(ranked.size(), sensitizable);
  if (!ranked.empty()) {
    EXPECT_NEAR(ranked.front().delay, exhaustive_worst, 1e-9);
  }
}

// Property: adding case values never increases any surviving path's delay
// and never resurrects a blocked path.
TEST_P(TimingProperty, CaseAnalysisIsMonotone) {
  const Netlist nl = make_random(GetParam());
  const DelayLibrary lib = DelayLibrary::standard_018um();
  const TimingGraph free_graph(nl, lib);
  Pcg32 rng(GetParam() ^ 0xfeed);

  // Random case values on two inputs (both frames).
  std::vector<Assignment> case_values;
  for (int k = 0; k < 2; ++k) {
    const NodeId pi = nl.inputs()[rng.below(
        static_cast<std::uint32_t>(nl.num_inputs()))];
    case_values.push_back({{Frame::k1, pi}, rng.chance(1, 2) != 0});
    case_values.push_back({{Frame::k2, pi}, rng.chance(1, 2) != 0});
  }
  const TimingGraph constrained(nl, lib, case_values);

  const auto ranked = free_graph.most_critical(200);
  for (const TimedPath& tp : ranked) {
    const auto constrained_delay = constrained.path_delay(tp.fault);
    if (constrained_delay.has_value()) {
      EXPECT_LE(*constrained_delay, tp.delay + 1e-12);
    }
    // And a path blocked without case values must stay blocked (the free
    // graph has the loosest sensitization).
  }
  for (const TimedPath& tp : constrained.most_critical(200)) {
    EXPECT_TRUE(free_graph.path_delay(tp.fault).has_value())
        << "case analysis resurrected a path";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingProperty,
                         ::testing::Values(3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace fbt
