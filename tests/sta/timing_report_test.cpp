#include "sta/timing_report.hpp"

#include <gtest/gtest.h>

#include "circuits/s27.hpp"
#include "circuits/registry.hpp"

namespace fbt {
namespace {

TEST(TimingReport, WorstSlackMatchesWorstArrival) {
  const Netlist nl = make_s27();
  const DelayLibrary lib = DelayLibrary::standard_018um();
  const TimingGraph graph(nl, lib);
  const double period = 1.0;
  const TimingReport report(nl, graph, period);
  EXPECT_NEAR(report.worst_slack(), period - graph.worst_arrival(), 1e-9);
}

TEST(TimingReport, CoversEveryEndpointOnce) {
  const Netlist nl = make_s27();
  const TimingGraph graph(nl, DelayLibrary::standard_018um());
  const TimingReport report(nl, graph, 1.0);
  // Endpoints: 1 PO + distinct flop D inputs.
  std::set<NodeId> expected;
  for (const NodeId po : nl.outputs()) expected.insert(po);
  for (const NodeId ff : nl.flops()) expected.insert(nl.dff_input(ff));
  std::set<NodeId> got;
  for (const EndpointSlack& e : report.endpoints()) {
    EXPECT_TRUE(got.insert(e.endpoint).second) << "duplicate endpoint";
  }
  EXPECT_EQ(got, expected);
  // Sorted by ascending slack.
  for (std::size_t i = 1; i < report.endpoints().size(); ++i) {
    EXPECT_LE(report.endpoints()[i - 1].slack, report.endpoints()[i].slack);
  }
}

TEST(TimingReport, ViolationsFollowThePeriod) {
  const Netlist nl = load_benchmark("s386");
  const TimingGraph graph(nl, DelayLibrary::standard_018um());
  const double worst = graph.worst_arrival();
  const TimingReport loose(nl, graph, worst + 0.1);
  EXPECT_EQ(loose.violation_count(), 0u);
  const TimingReport tight(nl, graph, worst * 0.7);
  EXPECT_GT(tight.violation_count(), 0u);
  EXPECT_LT(tight.worst_slack(), 0.0);
}

TEST(TimingReport, TextReportNamesPathsAndSlack) {
  const Netlist nl = make_s27();
  const TimingGraph graph(nl, DelayLibrary::standard_018um());
  const TimingReport report(nl, graph, 0.5);
  const std::string text = report.to_string(3);
  EXPECT_NE(text.find("Timing report"), std::string::npos);
  EXPECT_NE(text.find("endpoint"), std::string::npos);
  EXPECT_NE(text.find("path:"), std::string::npos);
  EXPECT_NE(text.find("launch"), std::string::npos);
}

}  // namespace
}  // namespace fbt
