// Satellite: the emitted RTL must reconcile gate-for-gate and bit-for-bit
// with the analytic hardware plans the area model charges. Drift between
// emit_bist_rtl and plan_functional_bist_hardware / plan_hold_bist_hardware
// fails loudly here.
#include <gtest/gtest.h>

#include <string>

#include "bist/functional_bist.hpp"
#include "bist/hardware_plan.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "fault/fault.hpp"
#include "rtl/emit.hpp"
#include "rtl_test_util.hpp"

namespace fbt {
namespace {

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) out += "\n  " + l;
  return out;
}

// Runs the real generator (unconstrained, small segments) so the reconciled
// plan covers generator-produced sequence shapes, not just hand-made ones.
struct GeneratedFixture {
  Netlist netlist;
  ScanChains scan;
  FunctionalBistConfig gen_config;
  FunctionalBistResult plan;
  Tpg tpg;

  explicit GeneratedFixture(const std::string& name)
      : netlist(load_benchmark(name)),
        scan(netlist, rtltest::dividing_scan_config(netlist.num_flops())),
        gen_config(make_config()),
        plan(generate()),
        tpg(netlist, gen_config.tpg) {}

  static FunctionalBistConfig make_config() {
    FunctionalBistConfig cfg;
    cfg.tpg.lfsr_stages = 8;
    cfg.tpg.bias_bits = 2;
    cfg.segment_length = 40;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    cfg.rng_seed = 21;
    return cfg;
  }

  FunctionalBistResult generate() {
    const TransitionFaultList faults = TransitionFaultList::collapsed(netlist);
    std::vector<std::uint32_t> detect(faults.size(), 0);
    FunctionalBistGenerator gen(netlist, gen_config);
    return gen.run(faults, detect);
  }

  SessionConfig session_config() const {
    SessionConfig session;
    session.misr_stages = 16;
    session.tpg = gen_config.tpg;
    return session;
  }
};

TEST(Consistency, EmittedInventoryMatchesTheFunctionalPlan) {
  for (const char* name : {"s27", "s382", "s526"}) {
    GeneratedFixture fx(name);
    ASSERT_GT(fx.plan.num_tests, 0u) << name;
    const EmittedRtl rtl =
        emit_bist_rtl(fx.netlist, fx.plan, fx.scan, fx.session_config());
    const BistHardwarePlan hw =
        plan_functional_bist_hardware(fx.tpg, fx.scan, fx.plan);
    const std::vector<std::string> drift =
        reconcile_inventory(rtl.inventory, hw);
    EXPECT_TRUE(drift.empty()) << name << join(drift);
  }
}

TEST(Consistency, EmittedInventoryMatchesTheHoldPlan) {
  GeneratedFixture fx("s382");
  ASSERT_GT(fx.plan.num_tests, 0u);
  ASSERT_GE(fx.netlist.num_flops(), 3u);

  // Two committed hold sets with hand-made runs, the way the selection phase
  // records them.
  HoldSelectionResult hold;
  HoldSetRun first;
  first.flops = {0, 1};
  first.result = rtltest::make_plan({{{0x99u, 4}, {0x7u, 2}}});
  HoldSetRun second;
  second.flops = {2};
  second.result = rtltest::make_plan({{{0x42u, 6}}});
  hold.selected = {first, second};
  hold.total_held_flops = 3;
  hold.num_sequences = 2;
  hold.nseg_max = 2;
  hold.lmax = 6;
  hold.num_seeds = 3;

  // The emitted controller spans the concatenated base+hold session.
  FunctionalBistResult combined = fx.plan;
  SessionConfig session = fx.session_config();
  session.hold_period_log2 = 2;
  session.hold_sets = {first.flops, second.flops};
  session.hold_set_of_sequence.assign(combined.sequences.size(), kNoHoldSet);
  for (std::size_t set = 0; set < hold.selected.size(); ++set) {
    for (const SequenceRecord& seq : hold.selected[set].result.sequences) {
      combined.sequences.push_back(seq);
      session.hold_set_of_sequence.push_back(set);
    }
    const FunctionalBistResult& run = hold.selected[set].result;
    combined.num_seeds += run.num_seeds;
    combined.num_tests += run.num_tests;
    if (run.lmax > combined.lmax) combined.lmax = run.lmax;
    if (run.nseg_max > combined.nseg_max) combined.nseg_max = run.nseg_max;
  }

  const EmittedRtl rtl =
      emit_bist_rtl(fx.netlist, combined, fx.scan, session);
  const BistHardwarePlan hw =
      plan_hold_bist_hardware(fx.tpg, fx.scan, fx.plan, hold);
  const std::vector<std::string> drift =
      reconcile_inventory(rtl.inventory, hw, /*allow_wider_sequence_counter=*/true);
  EXPECT_TRUE(drift.empty()) << join(drift);

  // The plan sizes the shared sequence counter for the wider phase; when the
  // concatenated session genuinely needs more bits, strict reconciliation
  // must flag exactly that.
  if (rtl.inventory.sequence_counter_bits > hw.sequence_counter_bits) {
    EXPECT_FALSE(reconcile_inventory(rtl.inventory, hw).empty());
  }
}

TEST(Consistency, ReconcileFlagsInjectedDrift) {
  GeneratedFixture fx("s27");
  const EmittedRtl rtl =
      emit_bist_rtl(fx.netlist, fx.plan, fx.scan, fx.session_config());
  const BistHardwarePlan hw =
      plan_functional_bist_hardware(fx.tpg, fx.scan, fx.plan);
  ASSERT_TRUE(reconcile_inventory(rtl.inventory, hw).empty());

  RtlInventory widened = rtl.inventory;
  widened.lfsr_bits += 1;
  EXPECT_FALSE(reconcile_inventory(widened, hw).empty());

  RtlInventory trimmed = rtl.inventory;
  trimmed.seed_rom_bits -= 1;
  EXPECT_FALSE(reconcile_inventory(trimmed, hw).empty());

  // A narrower-than-planned sequence counter is a bug even in the hold case.
  RtlInventory narrowed = rtl.inventory;
  narrowed.sequence_counter_bits -= 1;
  EXPECT_FALSE(
      reconcile_inventory(narrowed, hw, /*allow_wider_sequence_counter=*/true)
          .empty());
}

}  // namespace
}  // namespace fbt
