// Shared helpers for the RTL emission / elaboration / lockstep tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bist/functional_bist.hpp"
#include "bist/session.hpp"
#include "netlist/scan.hpp"

namespace fbt::rtltest {

/// Hand-made plan: one inner vector per multi-segment sequence, each entry a
/// (seed, applied-cycle count) pair. Statistics fields are filled the way the
/// generator fills them; the tests/TestSet are left empty (the session replays
/// the sequences from the TPG, not from the recorded tests).
inline FunctionalBistResult make_plan(
    const std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>>&
        seqs) {
  FunctionalBistResult plan;
  for (const auto& s : seqs) {
    SequenceRecord seq;
    for (const auto& [seed, length] : s) {
      SegmentRecord seg;
      seg.seed = seed;
      seg.length = length;
      seg.num_tests = length / 2;
      plan.num_seeds += 1;
      plan.num_tests += seg.num_tests;
      if (length > plan.lmax) plan.lmax = length;
      seq.segments.push_back(seg);
    }
    if (seq.segments.size() > plan.nseg_max) {
      plan.nseg_max = seq.segments.size();
    }
    plan.sequences.push_back(std::move(seq));
  }
  return plan;
}

/// Equal-length scan partition: the circular shift restores the state only
/// when every chain's length divides Lsc (see equal_partition_scan_config).
inline ScanConfig dividing_scan_config(std::size_t nff) {
  return equal_partition_scan_config(nff);
}

/// Small TPG/MISR so the registry-wide sweep stays fast.
inline SessionConfig small_session_config() {
  SessionConfig cfg;
  cfg.misr_stages = 16;
  cfg.tpg.lfsr_stages = 8;
  cfg.tpg.bias_bits = 2;
  return cfg;
}

}  // namespace fbt::rtltest
