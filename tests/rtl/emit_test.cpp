// Structure and precondition tests for emit_bist_rtl.
#include "rtl/emit.hpp"

#include <gtest/gtest.h>

#include <string>

#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "rtl/elaborate.hpp"
#include "rtl_test_util.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

struct EmitFixture {
  Netlist cut;
  ScanChains scan;
  SessionConfig session;
  FunctionalBistResult plan;

  explicit EmitFixture(const std::string& name)
      : cut(load_benchmark(name)),
        scan(cut, rtltest::dividing_scan_config(cut.num_flops())),
        session(rtltest::small_session_config()),
        plan(rtltest::make_plan({{{0xACE1u, 4}, {0x99u, 2}}, {{0x51u, 2}}})) {}
};

TEST(Emit, EmitsEveryModuleOnce) {
  EmitFixture fx("s27");
  const EmittedRtl rtl = emit_bist_rtl(fx.cut, fx.plan, fx.scan, fx.session);
  EXPECT_EQ(rtl.top_name, "fbt_bist_top");
  for (const char* module :
       {"module fbt_lfsr ", "module fbt_shiftreg ", "module fbt_bias ",
        "module fbt_misr ", "module fbt_ctrl ", "module s27_bist_wrap ",
        "module fbt_bist_top ", "module fbt_dff "}) {
    const std::size_t first = rtl.verilog.find(module);
    EXPECT_NE(first, std::string::npos) << module;
    EXPECT_EQ(rtl.verilog.find(module, first + 1), std::string::npos)
        << module << " defined more than once";
  }
}

TEST(Emit, TopIsSelfContained) {
  // The top module drives everything from the controller: its only input is
  // the clock, so the elaborated design has no primary inputs at all.
  EmitFixture fx("s298");
  const EmittedRtl rtl = emit_bist_rtl(fx.cut, fx.plan, fx.scan, fx.session);
  const RtlDesign design = elaborate_verilog(rtl.verilog, rtl.top_name);
  EXPECT_EQ(design.netlist.num_inputs(), 0u);
  EXPECT_GT(design.netlist.num_outputs(), 0u);
}

TEST(Emit, ProbeNamesResolveInTheElaboratedDesign) {
  EmitFixture fx("s382");
  const EmittedRtl rtl = emit_bist_rtl(fx.cut, fx.plan, fx.scan, fx.session);
  const RtlDesign design = elaborate_verilog(rtl.verilog, rtl.top_name);
  for (const std::string& m : rtl.probes.mode) {
    EXPECT_NE(design.node(m), kNoNode) << m;
  }
  EXPECT_NE(design.node(rtl.probes.done), kNoNode);
  EXPECT_NE(design.node(rtl.probes.capture), kNoNode);
  ASSERT_EQ(rtl.probes.pi.size(), fx.cut.num_inputs());
  ASSERT_EQ(rtl.probes.state.size(), fx.cut.num_flops());
  ASSERT_EQ(rtl.probes.misr.size(), fx.session.misr_stages);
  for (const std::string& p : rtl.probes.pi) {
    EXPECT_NE(design.node(p), kNoNode) << p;
  }
  for (const std::string& s : rtl.probes.state) {
    EXPECT_NE(design.node(s), kNoNode) << s;
  }
  for (const std::string& s : rtl.probes.misr) {
    EXPECT_NE(design.node(s), kNoNode) << s;
  }
}

TEST(Emit, InventoryCountsTheRtlOnlyMachinery) {
  EmitFixture fx("s526");
  const Tpg tpg(fx.cut, fx.session.tpg);
  const EmittedRtl rtl = emit_bist_rtl(fx.cut, fx.plan, fx.scan, fx.session);
  const RtlInventory& inv = rtl.inventory;
  EXPECT_EQ(inv.lfsr_bits, fx.session.tpg.lfsr_stages);
  EXPECT_EQ(inv.shiftreg_flops, tpg.shift_register_size());
  EXPECT_EQ(inv.misr_flops, fx.session.misr_stages);
  EXPECT_EQ(inv.fsm_flops, 7u);
  EXPECT_EQ(inv.seed_rom_entries, fx.plan.num_seeds);
  EXPECT_EQ(inv.seed_rom_bits,
            fx.plan.num_seeds * fx.session.tpg.lfsr_stages);
  EXPECT_EQ(inv.cut_flops, fx.cut.num_flops());
  EXPECT_FALSE(inv.with_hold);
  EXPECT_GT(inv.total_flops,
            inv.cut_flops + inv.shiftreg_flops + inv.misr_flops);
  EXPECT_GT(inv.total_gates, inv.cut_gates);
}

TEST(Emit, RejectsOddSegmentLengths) {
  EmitFixture fx("s27");
  const FunctionalBistResult bad = rtltest::make_plan({{{0x5u, 3}}});
  EXPECT_THROW(emit_bist_rtl(fx.cut, bad, fx.scan, fx.session), Error);
}

TEST(Emit, RejectsEmptyPlans) {
  EmitFixture fx("s27");
  EXPECT_THROW(
      emit_bist_rtl(fx.cut, FunctionalBistResult{}, fx.scan, fx.session),
      Error);
}

TEST(Emit, RejectsChainsThatDoNotDivideTheShiftLength) {
  // s382 has 21 flops; two chains of 11 and 10 give Lsc = 11, and the
  // 10-flop chain cannot be restored by an 11-cycle circular shift.
  const Netlist cut = load_benchmark("s382");
  ASSERT_EQ(cut.num_flops(), 21u);
  const ScanChains scan(cut, ScanConfig{2, 10});
  ASSERT_EQ(scan.num_chains(), 2u);
  const SessionConfig session = rtltest::small_session_config();
  const FunctionalBistResult plan = rtltest::make_plan({{{0x5u, 2}}});
  EXPECT_THROW(emit_bist_rtl(cut, plan, scan, session), Error);
}

TEST(Emit, RejectsCombinationalCircuits) {
  Netlist comb("comb_only");
  const NodeId a = comb.add_input("a");
  const NodeId b = comb.add_input("b");
  comb.mark_output(comb.add_gate(GateType::kAnd, "y", {a, b}));
  comb.finalize();
  const ScanChains scan(comb, ScanConfig{});
  const SessionConfig session = rtltest::small_session_config();
  const FunctionalBistResult plan = rtltest::make_plan({{{0x5u, 2}}});
  EXPECT_THROW(emit_bist_rtl(comb, plan, scan, session), Error);
}

}  // namespace
}  // namespace fbt
