// Unit tests for the structural-Verilog elaborator and its two-phase
// simulator: hand-written hierarchies, alias/constant assigns, error cases,
// and a full round-trip of write_verilog output simulated against SeqSim.
#include "rtl/elaborate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "netlist/export.hpp"
#include "sim/seqsim.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

const char* kToggleDesign = R"(
// A leaf whose flop toggles every cycle; the top ties its input high.
module leaf (clk, a, y);
  input clk;
  input a;
  output y;
  wire q;
  wire d;
  not g_d (d, q);
  fbt_dff dff_q (.clk(clk), .d(d), .q(q));
  xor g_y (y, q, a);
endmodule

module top2 (clk, o);
  input clk;
  output o;
  wire k;
  wire z;
  assign k = 1'b1;
  leaf u_l (.clk(clk), .a(k), .y(z));
  assign o = z;
endmodule
)";

TEST(Elaborate, FlattensHierarchyAndStepsIt) {
  const RtlDesign design = elaborate_verilog(kToggleDesign, "top2");
  EXPECT_EQ(design.netlist.num_flops(), 1u);
  EXPECT_EQ(design.netlist.num_inputs(), 0u);
  ASSERT_NE(design.node("o"), kNoNode);
  // Port binding and alias assigns merge nets: the leaf's output, the top
  // wire, and the top port are one node with every name preserved.
  EXPECT_EQ(design.node("o"), design.node("z"));
  EXPECT_EQ(design.node("o"), design.node("u_l__y"));
  EXPECT_EQ(design.node("k"), design.node("u_l__a"));

  RtlSim sim(design);
  // q powers up 0, a is tied 1: o = q ^ 1 toggles starting at 1.
  EXPECT_EQ(sim.value("o"), 1);
  sim.step();
  EXPECT_EQ(sim.value("o"), 0);
  EXPECT_EQ(sim.value("u_l__q"), 1);
  sim.step();
  EXPECT_EQ(sim.value("o"), 1);
}

TEST(Elaborate, TopLevelInputsBecomePrimaryInputs) {
  const std::string text =
      "module passthru (clk, a, b, y);\n"
      "  input clk;\n  input a;\n  input b;\n  output y;\n"
      "  and g_y (y, a, b);\nendmodule\n";
  const RtlDesign design = elaborate_verilog(text, "passthru");
  ASSERT_EQ(design.netlist.num_inputs(), 2u);
  RtlSim sim(design);
  EXPECT_EQ(sim.value("y"), 0);
  sim.set_value(design.node("a"), 1);
  sim.set_value(design.node("b"), 1);
  sim.settle();
  EXPECT_EQ(sim.value("y"), 1);
}

TEST(Elaborate, RejectsUnknownTopAndMultiplyDrivenNets) {
  EXPECT_THROW(elaborate_verilog(kToggleDesign, "nosuch"), Error);
  const std::string doubled =
      "module bad (clk, y);\n"
      "  input clk;\n  output y;\n  wire a;\n"
      "  buf g_1 (a, y);\n  not g_2 (a, y);\n  assign y = 1'b0;\nendmodule\n";
  EXPECT_THROW(elaborate_verilog(doubled, "bad"), Error);
}

TEST(Elaborate, SkipsTheBehavioralDffModel) {
  // write_verilog appends the behavioral fbt_dff cell; the elaborator must
  // treat it as a primitive rather than parse its body.
  const Netlist cut = load_benchmark("s27");
  const RtlDesign design = elaborate_verilog(write_verilog(cut), "s27");
  EXPECT_EQ(design.netlist.num_flops(), cut.num_flops());
  EXPECT_EQ(design.netlist.num_inputs(), cut.num_inputs());
  EXPECT_EQ(design.netlist.num_outputs(), cut.num_outputs());
  EXPECT_EQ(design.netlist.num_gates(), cut.num_gates());
}

// Round-trip: a benchmark written to Verilog, elaborated back, and stepped
// with the same stimulus must match SeqSim line-for-line on outputs and state.
TEST(Elaborate, RoundTrippedBenchmarkMatchesSeqSim) {
  for (const char* name : {"s27", "s298", "s526"}) {
    const Netlist cut = load_benchmark(name);
    const VerilogNames names = verilog_names(cut);
    const RtlDesign design = elaborate_verilog(write_verilog(cut), names.module_name);

    std::vector<NodeId> in_nodes;
    for (const NodeId id : cut.inputs()) {
      const NodeId node = design.node(names.net[id]);
      ASSERT_NE(node, kNoNode) << names.net[id];
      in_nodes.push_back(node);
    }
    std::vector<NodeId> out_nodes;
    for (std::size_t o = 0; o < cut.num_outputs(); ++o) {
      const NodeId node = design.node(names.out_port[o]);
      ASSERT_NE(node, kNoNode) << names.out_port[o];
      out_nodes.push_back(node);
    }
    std::vector<NodeId> flop_nodes;
    for (const NodeId id : cut.flops()) {
      const NodeId node = design.node(names.net[id]);
      ASSERT_NE(node, kNoNode) << names.net[id];
      flop_nodes.push_back(node);
    }

    SeqSim golden(cut);
    golden.load_reset_state();
    RtlSim sim(design);
    std::uint32_t lcg = 0xC0FFEEu;
    std::vector<std::uint8_t> pi(cut.num_inputs());
    for (std::size_t cycle = 0; cycle < 32; ++cycle) {
      for (std::size_t i = 0; i < pi.size(); ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        pi[i] = (lcg >> 17) & 1u;
        sim.set_value(in_nodes[i], pi[i]);
      }
      sim.settle();
      golden.step(pi);
      for (std::size_t o = 0; o < out_nodes.size(); ++o) {
        ASSERT_EQ(sim.value(out_nodes[o]), golden.value(cut.outputs()[o]))
            << name << " output " << o << " at cycle " << cycle;
      }
      sim.step();
      for (std::size_t f = 0; f < flop_nodes.size(); ++f) {
        ASSERT_EQ(sim.value(flop_nodes[f]), golden.state()[f])
            << name << " flop " << f << " at cycle " << cycle;
      }
    }
  }
}

// Satellite: identifier legalization/dedup must survive the round trip even
// for hostile .bench-style names (brackets, leading digits, keywords,
// mangling collisions).
TEST(Elaborate, LegalizedIdentifiersRoundTrip) {
  Netlist nl("2bad name");
  const NodeId a = nl.add_input("G1[3]");
  const NodeId b = nl.add_input("G1_3_");  // collides with legalized G1[3]
  const NodeId ff = nl.add_dff("wire");    // keyword
  const NodeId g = nl.add_gate(GateType::kXor, "9out", {a, ff});
  nl.set_dff_input(ff, nl.add_gate(GateType::kAnd, "a.b", {a, b}));
  nl.mark_output(g);
  nl.finalize();

  const VerilogNames names = verilog_names(nl);
  const RtlDesign design =
      elaborate_verilog(write_verilog(nl), names.module_name);
  EXPECT_EQ(design.netlist.num_inputs(), 2u);
  EXPECT_EQ(design.netlist.num_flops(), 1u);
  EXPECT_EQ(design.netlist.num_gates(), nl.num_gates());
  // Distinct nodes despite the mangling collision.
  EXPECT_NE(design.node(names.net[a]), design.node(names.net[b]));
  EXPECT_NE(design.node(names.net[g]), kNoNode);
}

}  // namespace
}  // namespace fbt
