// Lockstep equivalence: the emitted Verilog, elaborated back into a
// cycle-steppable model, must track the behavioral BistSession clock-for-clock
// over full 2q-cycle sessions -- on every registry benchmark, and under a
// state-holding configuration.
#include "rtl/lockstep.hpp"

#include <gtest/gtest.h>

#include <string>

#include "circuits/registry.hpp"
#include "rtl_test_util.hpp"

namespace fbt {
namespace {

std::string describe(const std::string& name, const LockstepReport& rep) {
  std::string out = name + ": " + std::to_string(rep.mismatches) +
                    " mismatches over " + std::to_string(rep.cycles_checked) +
                    " cycles";
  for (const std::string& d : rep.details) out += "\n  " + d;
  return out;
}

TEST(Lockstep, S27FullSession) {
  const Netlist cut = load_benchmark("s27");
  const ScanChains scan(cut, rtltest::dividing_scan_config(cut.num_flops()));
  // Two multi-segment sequences; the second's seed 0 exercises the zero-seed
  // masking (the hardware substitutes 1 so the LFSR never locks up).
  const FunctionalBistResult plan =
      rtltest::make_plan({{{0xACE1u, 4}, {0x1234u, 2}}, {{0x0u, 2}}});
  const LockstepReport rep =
      check_bist_rtl(cut, plan, scan, rtltest::small_session_config());
  EXPECT_TRUE(rep.ok) << describe("s27", rep);
  EXPECT_TRUE(rep.done_asserted);
  EXPECT_GT(rep.cycles_checked, 0u);
  EXPECT_EQ(rep.behavioral_signature, rep.rtl_signature);
}

TEST(Lockstep, EveryRegistryBenchmark) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    const Netlist cut = load_benchmark(spec.name);
    const ScanChains scan(cut, rtltest::dividing_scan_config(cut.num_flops()));
    // Segment lengths {4, 2} then {2}: exercises reseed within a sequence,
    // resume-after-shift, and the sequence advance.
    const FunctionalBistResult plan =
        rtltest::make_plan({{{0xACE1u, 4}, {0xBEEFu, 2}}, {{0x51u, 2}}});
    const LockstepReport rep =
        check_bist_rtl(cut, plan, scan, rtltest::small_session_config());
    EXPECT_TRUE(rep.ok) << describe(spec.name, rep);
    EXPECT_TRUE(rep.done_asserted) << spec.name;
    EXPECT_EQ(rep.behavioral_signature, rep.rtl_signature) << spec.name;
  }
}

TEST(Lockstep, StateHoldingConfiguration) {
  for (const char* name : {"s27", "s382", "s953"}) {
    const Netlist cut = load_benchmark(name);
    const std::size_t nff = cut.num_flops();
    ASSERT_GE(nff, 3u) << name;
    const ScanChains scan(cut, rtltest::dividing_scan_config(nff));
    SessionConfig cfg = rtltest::small_session_config();
    cfg.hold_period_log2 = 1;
    cfg.hold_sets = {{0}, {1, nff - 1}};
    // First sequence runs without holding, then one sequence per set -- the
    // decoder, set counter, and hold-valid gating all get exercised.
    cfg.hold_set_of_sequence = {kNoHoldSet, 0, 1};
    const FunctionalBistResult plan = rtltest::make_plan(
        {{{0xACE1u, 4}, {0x77u, 2}}, {{0x3C3Cu, 4}}, {{0x55AAu, 6}}});
    const LockstepReport rep = check_bist_rtl(cut, plan, scan, cfg);
    EXPECT_TRUE(rep.ok) << describe(name, rep);
    EXPECT_TRUE(rep.done_asserted) << name;
  }
}

TEST(Lockstep, LongerSessionWithWideTpg) {
  const Netlist cut = load_benchmark("s1423");
  const ScanChains scan(cut, rtltest::dividing_scan_config(cut.num_flops()));
  SessionConfig cfg;
  cfg.misr_stages = 24;
  cfg.tpg.lfsr_stages = 16;
  cfg.tpg.bias_bits = 3;
  const FunctionalBistResult plan = rtltest::make_plan(
      {{{0xACE1u, 40}, {0xBEEFu, 8}}, {{0xC0DEu, 16}, {0xF00Du, 2}}});
  const LockstepReport rep = check_bist_rtl(cut, plan, scan, cfg);
  EXPECT_TRUE(rep.ok) << describe("s1423", rep);
  EXPECT_TRUE(rep.done_asserted);
}

TEST(Lockstep, DetectsDivergence) {
  // RTL emitted for one plan but run against a session replaying a different
  // seed must be flagged -- the checker can actually fail.
  const Netlist cut = load_benchmark("s27");
  const ScanChains scan(cut, rtltest::dividing_scan_config(cut.num_flops()));
  const SessionConfig cfg = rtltest::small_session_config();
  const FunctionalBistResult emitted = rtltest::make_plan({{{0x11u, 4}}});
  const FunctionalBistResult replayed = rtltest::make_plan({{{0x2Eu, 4}}});
  const EmittedRtl rtl = emit_bist_rtl(cut, emitted, scan, cfg);
  const RtlDesign design = elaborate_verilog(rtl.verilog, rtl.top_name);
  const LockstepReport rep =
      run_lockstep(cut, replayed, scan, cfg, rtl, design);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.mismatches, 0u);
}

}  // namespace
}  // namespace fbt
