#include "jobs/job_system.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/instrument.hpp"
#include "obs/metrics.hpp"

namespace fbt::jobs {
namespace {

// The CI container may report a single core, which would collapse every
// parallel path to the inline one -- tests that exercise scheduling size the
// pool explicitly.
constexpr std::size_t kPool = 4;

TEST(JobSystem, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(JobSystem::resolve_threads(0), 1u);
  EXPECT_EQ(JobSystem::resolve_threads(3), 3u);
  EXPECT_EQ(JobSystem::resolve_threads(1), 1u);
}

TEST(JobSystem, SubmitRunsAndWaitBlocks) {
  JobSystem jobs(kPool);
  std::atomic<int> ran{0};
  const TaskHandle h = jobs.submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(h.valid());
  jobs.wait(h);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(h.done());
}

TEST(JobSystem, InvalidHandleWaitIsNoop) {
  JobSystem jobs(kPool);
  TaskHandle inert;
  EXPECT_FALSE(inert.valid());
  jobs.wait(inert);  // must not hang or throw
}

TEST(JobSystem, ParallelForCoversEveryIndexExactlyOnce) {
  JobSystem jobs(kPool);
  constexpr std::size_t kN = 997;  // odd, not a multiple of the pool size
  std::vector<std::atomic<int>> hits(kN);
  jobs.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(JobSystem, SingleWorkerParallelForRunsInline) {
  JobSystem jobs(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  jobs.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(JobSystem, ExceptionRethrownOnWait) {
  JobSystem jobs(kPool);
  const TaskHandle h =
      jobs.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(jobs.wait(h), std::runtime_error);
  // A second wait on the same handle rethrows again (the state is sticky).
  EXPECT_THROW(jobs.wait(h), std::runtime_error);
}

TEST(JobSystem, ParallelForRethrowsFirstByIndex) {
  JobSystem jobs(kPool);
  try {
    jobs.parallel_for(64, [](std::size_t i) {
      if (i == 7) throw std::runtime_error("seven");
      if (i == 31) throw std::logic_error("thirty-one");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "seven");
  }
}

TEST(JobSystem, FailedDependencySkipsDependent) {
  JobSystem jobs(kPool);
  std::atomic<bool> dependent_ran{false};
  const TaskHandle bad =
      jobs.submit([] { throw std::runtime_error("dep failed"); });
  const TaskHandle after =
      jobs.submit_after({bad}, [&] { dependent_ran.store(true); });
  EXPECT_THROW(jobs.wait(after), std::runtime_error);
  EXPECT_FALSE(dependent_ran.load());
  EXPECT_TRUE(after.done());
}

TEST(JobSystem, DiamondDependencyOrdering) {
  JobSystem jobs(kPool);
  std::atomic<int> stage{0};
  int a_at = -1, b_at = -1, c_at = -1, d_at = -1;
  const TaskHandle a = jobs.submit([&] { a_at = stage.fetch_add(1); });
  const TaskHandle b = jobs.submit_after({a}, [&] { b_at = stage.fetch_add(1); });
  const TaskHandle c = jobs.submit_after({a}, [&] { c_at = stage.fetch_add(1); });
  const TaskHandle d =
      jobs.submit_after({b, c}, [&] { d_at = stage.fetch_add(1); });
  jobs.wait(d);
  EXPECT_EQ(a_at, 0);
  EXPECT_GT(b_at, a_at);
  EXPECT_GT(c_at, a_at);
  EXPECT_GT(d_at, b_at);
  EXPECT_GT(d_at, c_at);
  EXPECT_EQ(d_at, 3);
}

TEST(JobSystem, DependencyAlreadyFinishedStillRuns) {
  JobSystem jobs(kPool);
  const TaskHandle a = jobs.submit([] {});
  jobs.wait(a);
  std::atomic<bool> ran{false};
  const TaskHandle b = jobs.submit_after({a}, [&] { ran.store(true); });
  jobs.wait(b);
  EXPECT_TRUE(ran.load());
}

TEST(JobSystem, NestedParallelForDoesNotDeadlock) {
  JobSystem jobs(kPool);
  // More outer tasks than workers, each nesting an inner parallel_for: only
  // the helping wait() keeps this from deadlocking when every worker is
  // blocked in an outer task.
  std::atomic<int> inner_total{0};
  jobs.parallel_for(kPool * 3, [&](std::size_t) {
    jobs.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), static_cast<int>(kPool * 3 * 16));
}

TEST(JobSystem, ExternalWaitHelpsExecuteTasks) {
  JobSystem jobs(kPool);
  // A chain longer than the pool: the external wait on the tail must help
  // drain the queue rather than deadlock if workers are saturated.
  std::vector<TaskHandle> chain;
  std::atomic<int> sum{0};
  TaskHandle prev;
  for (int i = 0; i < 200; ++i) {
    prev = prev.valid()
               ? jobs.submit_after({prev}, [&] { sum.fetch_add(1); })
               : jobs.submit([&] { sum.fetch_add(1); });
    chain.push_back(prev);
  }
  jobs.wait(prev);
  EXPECT_EQ(sum.load(), 200);
}

TEST(JobSystem, StressManySmallTasks) {
  JobSystem jobs(kPool);
  constexpr int kTasks = 5000;
  std::atomic<long> total{0};
  std::vector<TaskHandle> handles;
  handles.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    handles.push_back(jobs.submit([&total, i] { total.fetch_add(i); }));
  }
  jobs.wait_all(handles);
  EXPECT_EQ(total.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
}

#if FBT_OBS_ENABLED
TEST(JobSystem, CountersTrackSubmissionAndExecution) {
  obs::registry().reset();
  {
    JobSystem jobs(kPool);
    std::vector<TaskHandle> handles;
    for (int i = 0; i < 100; ++i) handles.push_back(jobs.submit([] {}));
    jobs.wait_all(handles);
  }
  const std::uint64_t submitted =
      obs::registry().counter("jobs.submitted").value();
  const std::uint64_t executed =
      obs::registry().counter("jobs.executed").value();
  EXPECT_GE(submitted, 100u);
  EXPECT_EQ(executed, submitted);
  // jobs.steals is scheduling-dependent; just confirm it is registered.
  (void)obs::registry().counter("jobs.steals").value();
}
#endif

TEST(JobSystem, SchedulerSnapshotTracksLifetimeTotals) {
  JobSystem jobs(kPool);
  const SchedulerSnapshot before = jobs.scheduler_snapshot();
  EXPECT_EQ(before.workers, kPool);
  EXPECT_EQ(before.submitted, 0u);
  EXPECT_EQ(before.executed, 0u);

  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < kTasks; ++i) {
    handles.push_back(jobs.submit([&ran] { ran.fetch_add(1); }));
  }
  jobs.wait_all(handles);

  const SchedulerSnapshot after = jobs.scheduler_snapshot();
  EXPECT_EQ(after.workers, kPool);
  EXPECT_EQ(after.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(after.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(after.queue_depth, 0u);
  EXPECT_GT(after.elapsed_ms, 0.0);
  // Utilization is bounded even when busy-time accounting is compiled out
  // (it reads 0 under FBT_OBS=OFF).
  EXPECT_GE(after.utilization, 0.0);
  EXPECT_LE(after.utilization, 1.0);
#if FBT_OBS_ENABLED
  EXPECT_GE(after.busy_ms, 0.0);
#else
  EXPECT_EQ(after.busy_ms, 0.0);
#endif
}

}  // namespace
}  // namespace fbt::jobs
