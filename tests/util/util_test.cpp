#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fbt {
namespace {

TEST(Require, ThrowsWithContext) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "module", "what went wrong");
    FAIL() << "expected fbt::Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "module: what went wrong");
  }
}

TEST(Rng, DeterministicStreams) {
  Pcg32 a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    all_equal &= (va == b.next());
    any_diff_from_c |= (va != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(Rng, BelowIsInRangeAndCoversIt) {
  Pcg32 rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, RangeInclusive) {
  Pcg32 rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
  }
  EXPECT_THROW(rng.range(5, 3), Error);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Pcg32 rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(1, 4);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // "--name value" consumes the following bare token as the value, so a
  // positional must precede any bare boolean flag.
  const char* argv[] = {"prog", "pos1", "--a=1", "--b", "2", "--d=x",
                        "--flag"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("a", 0), 1);
  EXPECT_EQ(cli.get_int("b", 0), 2);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("flag", ""), "true");
  EXPECT_EQ(cli.get("d", ""), "x");
  EXPECT_EQ(cli.get("missing", "fb"), "fb");
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, RejectsNonNumericValues) {
  const char* argv[] = {"prog", "--n=abc"};
  const Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), Error);
  EXPECT_THROW(cli.get_double("n", 0.0), Error);
}

TEST(Cli, ParsesDoubles) {
  const char* argv[] = {"prog", "--x=2.5"};
  const Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
}

TEST(Table, AlignsAndCounts) {
  Table t("demo");
  t.set_header({"a", "longer"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormats) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Timer, FormatsHms) {
  EXPECT_EQ(Timer::format_hms(0), "0:00:00");
  EXPECT_EQ(Timer::format_hms(61), "0:01:01");
  EXPECT_EQ(Timer::format_hms(3723), "1:02:03");
}

TEST(Timer, MeasuresForward) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace fbt
