#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace fbt {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // hardware concurrency
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.run(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.run(17, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "task must not run"; });
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                            if (i == 13) throw Error("task 13 failed");
                            completed.fetch_add(1, std::memory_order_relaxed);
                          }),
                 Error);
    // The pool survives the failed job and runs the next one normally.
    pool.run(8, [&](std::size_t) {
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_GE(completed.load(), 8);
  }
}

TEST(ThreadPool, WorkIsSharedAcrossThreads) {
  // With two threads, draining 4 tasks that each block until both threads
  // have participated would deadlock if only one thread executed tasks; a
  // weaker but deterministic check: distinct thread ids observed >= 1 and
  // all tasks ran.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.run(100, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace fbt
