// Cross-thread trace propagation: TraceContext capture/adoption, detached
// roots, stitching, the Chrome export's span-id args and flow arrows, and --
// under FBT_OBS=ON -- the JobSystem's context re-entry across work stealing.
// The heavy concurrent tests double as TSan targets (the obs label runs in
// the -fsanitize=thread CI job).
#include "obs/phase.hpp"

#include <atomic>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "jobs/job_system.hpp"
#include "obs/json.hpp"

namespace fbt::obs {
namespace {

/// Depth-first search of a stitched forest by span name.
const PhaseNode* find_named(const std::vector<PhaseNode>& nodes,
                            const std::string& name) {
  for (const PhaseNode& n : nodes) {
    if (n.name == name) return &n;
    if (const PhaseNode* hit = find_named(n.children, name)) return hit;
  }
  return nullptr;
}

std::size_t count_named(const std::vector<PhaseNode>& nodes,
                        const std::string& name) {
  std::size_t total = 0;
  for (const PhaseNode& n : nodes) {
    total += (n.name == name ? 1 : 0) + count_named(n.children, name);
  }
  return total;
}

TEST(TraceContext, FollowsTheOpenSpanStack) {
  PhaseTrace::instance().clear();
  EXPECT_EQ(current_trace_context().span_id, 0u);
  {
    PhaseSpan outer("ctx_outer");
    const TraceContext outer_ctx = current_trace_context();
    EXPECT_NE(outer_ctx.span_id, 0u);
    {
      PhaseSpan inner("ctx_inner");
      const TraceContext inner_ctx = current_trace_context();
      EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
      EXPECT_EQ(inner_ctx.parent_id, outer_ctx.span_id);
    }
    EXPECT_EQ(current_trace_context().span_id, outer_ctx.span_id);
  }
  EXPECT_EQ(current_trace_context().span_id, 0u);
}

TEST(TraceContext, AdoptionParentsSpansAcrossRawThreads) {
  PhaseTrace::instance().clear();
  TraceContext captured{};
  {
    PhaseSpan outer("adopt_outer");
    captured = current_trace_context();
    std::thread other([captured] {
      // Without adoption the remote span would be an orphan root.
      TraceContextScope scope(captured);
      EXPECT_EQ(current_trace_context().span_id, captured.span_id);
      PhaseSpan remote("adopt_remote");
    });
    other.join();
  }
  // Raw roots: the remote span is recorded detached, carrying the captured
  // parent id; stitching re-attaches it under the outer span.
  const std::vector<PhaseNode> raw = PhaseTrace::instance().roots();
  const PhaseNode* detached = find_named(raw, "adopt_remote");
  ASSERT_NE(detached, nullptr);
  EXPECT_EQ(detached->parent_span_id, captured.span_id);
  const std::vector<PhaseNode> stitched = PhaseTrace::instance().stitched_roots();
  const PhaseNode* outer = find_named(stitched, "adopt_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(find_named(outer->children, "adopt_remote"), nullptr);
}

TEST(TraceContext, LocalStackWinsOverAdoptedContext) {
  PhaseTrace::instance().clear();
  {
    PhaseSpan outer("local_outer");
    const std::uint64_t outer_id = current_trace_context().span_id;
    TraceContextScope scope(TraceContext{9999999, 0});
    // The local open span is innermost; the adopted context must not
    // reparent spans nested under it.
    PhaseSpan inner("local_inner");
    EXPECT_EQ(current_trace_context().parent_id, outer_id);
  }
  const std::vector<PhaseNode> stitched = PhaseTrace::instance().stitched_roots();
  const PhaseNode* outer = find_named(stitched, "local_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(find_named(outer->children, "local_inner"), nullptr);
}

TEST(StitchPhaseRoots, ReattachesByParentIdInStartOrder) {
  std::vector<PhaseNode> roots;
  PhaseNode parent;
  parent.name = "p";
  parent.span_id = 10;
  PhaseNode local_child;
  local_child.name = "c_local";
  local_child.span_id = 11;
  local_child.parent_span_id = 10;
  local_child.start_us = 50;
  parent.children.push_back(local_child);
  roots.push_back(parent);
  PhaseNode detached_early;
  detached_early.name = "c_detached_early";
  detached_early.span_id = 12;
  detached_early.parent_span_id = 10;
  detached_early.start_us = 10;
  roots.push_back(detached_early);
  PhaseNode detached_late;
  detached_late.name = "c_detached_late";
  detached_late.span_id = 13;
  detached_late.parent_span_id = 10;
  detached_late.start_us = 90;
  roots.push_back(detached_late);

  const std::vector<PhaseNode> stitched = stitch_phase_roots(std::move(roots));
  ASSERT_EQ(stitched.size(), 1u);
  ASSERT_EQ(stitched[0].children.size(), 3u);
  EXPECT_EQ(stitched[0].children[0].name, "c_detached_early");
  EXPECT_EQ(stitched[0].children[1].name, "c_local");
  EXPECT_EQ(stitched[0].children[2].name, "c_detached_late");
}

TEST(StitchPhaseRoots, ChainsOfDetachedRootsResolveTransitively) {
  // grandchild -> child -> parent, all recorded as separate roots (the
  // completion order across workers is arbitrary).
  PhaseNode parent;
  parent.name = "p";
  parent.span_id = 1;
  PhaseNode child;
  child.name = "c";
  child.span_id = 2;
  child.parent_span_id = 1;
  PhaseNode grandchild;
  grandchild.name = "g";
  grandchild.span_id = 3;
  grandchild.parent_span_id = 2;
  const std::vector<PhaseNode> stitched =
      stitch_phase_roots({grandchild, parent, child});
  ASSERT_EQ(stitched.size(), 1u);
  const PhaseNode* c = find_named(stitched, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_NE(find_named(c->children, "g"), nullptr);
}

TEST(StitchPhaseRoots, UnresolvableParentStaysRoot) {
  PhaseNode orphan;
  orphan.name = "orphan";
  orphan.span_id = 5;
  orphan.parent_span_id = 4242;  // never recorded (e.g. cleared trace)
  const std::vector<PhaseNode> stitched = stitch_phase_roots({orphan});
  ASSERT_EQ(stitched.size(), 1u);
  EXPECT_EQ(stitched[0].name, "orphan");
}

#if FBT_OBS_ENABLED

TEST(JobSystemTracing, SubmittedTasksParentUnderTheSubmitSite) {
  PhaseTrace::instance().clear();
  jobs::JobSystem pool(4);
  constexpr int kTasks = 32;
  {
    PhaseSpan root("jobs_root");
    std::vector<jobs::TaskHandle> handles;
    for (int i = 0; i < kTasks; ++i) {
      handles.push_back(pool.submit([] { PhaseSpan task("jobs_task"); }));
    }
    pool.wait_all(handles);
  }
  const std::vector<PhaseNode> stitched = PhaseTrace::instance().stitched_roots();
  const PhaseNode* root = find_named(stitched, "jobs_root");
  ASSERT_NE(root, nullptr);
  // Every task span must have been re-attached under the submitting span --
  // none dropped, none left dangling at the top level.
  EXPECT_EQ(count_named(root->children, "jobs_task"),
            static_cast<std::size_t>(kTasks));
  EXPECT_EQ(count_named(stitched, "jobs_task"),
            static_cast<std::size_t>(kTasks));
}

TEST(JobSystemTracing, ChromeExportCarriesSpanIdsAndFlowArrows) {
  PhaseTrace::instance().clear();
  jobs::JobSystem pool(2);
  {
    PhaseSpan root("flow_root");
    std::vector<jobs::TaskHandle> handles;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(pool.submit([] { PhaseSpan task("flow_task"); }));
    }
    pool.wait_all(handles);
  }
  EXPECT_FALSE(PhaseTrace::instance().flows().empty());

  const std::string json = PhaseTrace::instance().chrome_trace_json();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(json, doc, error)) << error;
  ASSERT_TRUE(doc.is_array());

  std::set<double> span_ids;
  std::set<double> flow_starts;
  std::set<double> flow_finishes;
  for (const JsonValue& event : doc.array) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string kind = ph->as_string("");
    if (kind == "X") {
      const JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("span_id"), nullptr);
      ASSERT_NE(args->find("parent_span_id"), nullptr);
      span_ids.insert(args->find("span_id")->as_number());
    } else if (kind == "s") {
      flow_starts.insert(event.find("id")->as_number());
    } else if (kind == "f") {
      flow_finishes.insert(event.find("id")->as_number());
    }
  }
  // Parent ids reference recorded spans (or 0 = root).
  for (const JsonValue& event : doc.array) {
    if (event.find("ph")->as_string("") != "X") continue;
    const double parent = event.find("args")->find("parent_span_id")->as_number();
    if (parent != 0.0) EXPECT_TRUE(span_ids.count(parent) != 0) << parent;
  }
  // Every flow start has a matching finish and vice versa.
  EXPECT_FALSE(flow_starts.empty());
  EXPECT_EQ(flow_starts, flow_finishes);
}

// TSan stress: many submitters, nested resubmission from inside tasks, and
// forced stealing. Context re-entry on stolen jobs must never corrupt the
// phase tree or drop spans.
TEST(JobSystemTracing, ConcurrentStolenJobsKeepEverySpan) {
  PhaseTrace::instance().clear();
  constexpr int kOuter = 16;
  constexpr int kInner = 8;
  std::atomic<int> executed{0};
  {
    jobs::JobSystem pool(4);
    PhaseSpan root("stress_root");
    std::vector<jobs::TaskHandle> outer;
    for (int i = 0; i < kOuter; ++i) {
      outer.push_back(pool.submit([&pool, &executed] {
        PhaseSpan mid("stress_mid");
        std::vector<jobs::TaskHandle> inner;
        for (int j = 0; j < kInner; ++j) {
          inner.push_back(pool.submit([&executed] {
            PhaseSpan leaf("stress_leaf");
            executed.fetch_add(1, std::memory_order_relaxed);
          }));
        }
        // Helping wait from inside a task: the waiting worker executes
        // (steals) other tasks, re-entering their contexts concurrently.
        pool.wait_all(inner);
      }));
    }
    pool.wait_all(outer);
  }
  EXPECT_EQ(executed.load(), kOuter * kInner);
  const std::vector<PhaseNode> stitched = PhaseTrace::instance().stitched_roots();
  EXPECT_EQ(count_named(stitched, "stress_mid"),
            static_cast<std::size_t>(kOuter));
  EXPECT_EQ(count_named(stitched, "stress_leaf"),
            static_cast<std::size_t>(kOuter * kInner));
  // Every mid span lands somewhere in the root's subtree. (A task executed
  // by a *helping* thread may parent under the helper's open span -- the
  // local stack wins by design -- but that helper span is itself in the
  // subtree, so the recursive count is exact.)
  const PhaseNode* root = find_named(stitched, "stress_root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(count_named(root->children, "stress_mid"),
            static_cast<std::size_t>(kOuter));
}

#endif  // FBT_OBS_ENABLED

}  // namespace
}  // namespace fbt::obs
