#include "obs/resource.hpp"

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "circuits/synth.hpp"
#include "fault/fault.hpp"
#include "netlist/flat_fanins.hpp"
#include "obs/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/run_report.hpp"

namespace fbt::obs {
namespace {

TEST(RssSampler, ReportsPlausibleValuesOnLinux) {
#if defined(__linux__)
  const std::uint64_t current = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  // A live test process is at least a megabyte and under a terabyte.
  EXPECT_GT(current, 1u << 20);
  EXPECT_LT(current, 1ull << 40);
  EXPECT_GT(peak, 1u << 20);
  // The high-water mark can never sit below the current residency by more
  // than rounding (VmHWM is page-granular like VmRSS).
  EXPECT_GE(peak + 4096, current);
#else
  SUCCEED() << "no RSS source asserted off-Linux";
#endif
}

TEST(RssSampler, PeakIsMonotoneUnderAllocation) {
  const std::uint64_t before = peak_rss_bytes();
  // Allocate and touch 32 MiB so the pages become resident; peak RSS must
  // not decrease, and on Linux it must grow by roughly the touched size.
  constexpr std::size_t kBytes = 32u << 20;
  auto block = std::make_unique<unsigned char[]>(kBytes);
  std::memset(block.get(), 0xab, kBytes);
  const std::uint64_t after = peak_rss_bytes();
  EXPECT_GE(after, before);
#if defined(__linux__)
  if (before > 0) {
    EXPECT_GE(after, before + kBytes / 2);
  }
#endif
  // Keep the block alive past the sample.
  EXPECT_EQ(block[kBytes - 1], 0xab);
}

TEST(RssSampler, ThrottledSamplerTracksCurrent) {
  const std::uint64_t sampled = sampled_rss_bytes();
#if defined(__linux__)
  EXPECT_GT(sampled, 0u);
#endif
  // Immediately re-sampling returns the cache; it never goes backwards in
  // time or throws, and stays in the same ballpark as current_rss_bytes.
  const std::uint64_t again = sampled_rss_bytes();
  EXPECT_EQ(sampled, again);
}

TEST(AllocationAccounting, TotalsAccumulateAndReset) {
  reset_allocation_totals();
  charge_allocation(1000);
  charge_allocation(24, 3);
  const AllocationTotals totals = allocation_totals();
  EXPECT_EQ(totals.bytes, 1024u);
  EXPECT_EQ(totals.count, 4u);
  reset_allocation_totals();
  EXPECT_EQ(allocation_totals().bytes, 0u);
  EXPECT_EQ(allocation_totals().count, 0u);
}

TEST(AllocationAccounting, ChargesSettleOnInnermostOpenPhase) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  reset_allocation_totals();
  {
    PhaseSpan outer("charge_outer");
    charge_allocation(100);
    {
      PhaseSpan inner("charge_inner");
      charge_allocation(50);
      charge_allocation(7);
    }
    charge_allocation(11);
  }
  const std::vector<PhaseNode> roots = trace.roots();
  ASSERT_EQ(roots.size(), 1u);
  // Charges are "self" quantities: the inner span's 57 bytes are not folded
  // into the outer span's 111.
  EXPECT_EQ(roots[0].alloc_bytes, 111u);
  EXPECT_EQ(roots[0].alloc_count, 2u);
  ASSERT_EQ(roots[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].alloc_bytes, 57u);
  EXPECT_EQ(roots[0].children[0].alloc_count, 2u);
  // The process totals saw every charge regardless of span nesting.
  EXPECT_EQ(allocation_totals().bytes, 168u);
  trace.clear();
  reset_allocation_totals();
}

TEST(AllocationAccounting, ChargeWithNoOpenPhaseStillCountsGlobally) {
  reset_allocation_totals();
  EXPECT_FALSE(detail::charge_open_phase(64, 1));
  charge_allocation(64);
  EXPECT_EQ(allocation_totals().bytes, 64u);
  reset_allocation_totals();
}

TEST(FootprintRegistry, RecordsOverwritesAndSorts) {
  FootprintRegistry reg;
  reg.record("netlist", 1000);
  reg.record("fault_list", 300);
  reg.record("netlist", 1200);  // overwrite, not accumulate
  const std::vector<FootprintSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "fault_list");
  EXPECT_EQ(snap[0].bytes, 300u);
  EXPECT_EQ(snap[1].name, "netlist");
  EXPECT_EQ(snap[1].bytes, 1200u);
  EXPECT_EQ(reg.total_bytes(), 1500u);
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.total_bytes(), 0u);
}

TEST(Footprints, StructureFootprintsScaleWithCircuitSize) {
  SynthParams small;
  small.name = "fp_small";
  small.num_inputs = 8;
  small.num_outputs = 4;
  small.num_flops = 16;
  small.num_gates = 200;
  small.seed = 7;
  SynthParams big = small;
  big.name = "fp_big";
  big.num_gates = 2000;
  big.num_flops = 160;

  const Netlist nl_small = generate_synthetic(small);
  const Netlist nl_big = generate_synthetic(big);
  // The arena must cover at least the raw SoA content: one type byte, one
  // output flag, a name offset, and a fanin offset per node.
  EXPECT_GT(nl_small.arena_bytes(),
            nl_small.size() * (2 * sizeof(std::uint32_t) + 2));
  EXPECT_GT(nl_small.footprint_bytes(), nl_small.arena_bytes());
  EXPECT_GT(nl_big.footprint_bytes(), 4 * nl_small.footprint_bytes());
  // The eval CSR absorbed into the netlist holds one Entry per eval-order
  // gate; the footprint must cover that content.
  EXPECT_GE(nl_small.footprint_bytes(),
            nl_small.eval_entries().size() * sizeof(EvalEntry));

  // FlatFanins is a constant-size view over the netlist-owned CSR: its
  // footprint is just the view header, independent of circuit size.
  const FlatFanins flat_small(nl_small);
  const FlatFanins flat_big(nl_big);
  EXPECT_EQ(flat_big.footprint_bytes(), flat_small.footprint_bytes());
  EXPECT_EQ(flat_small.footprint_bytes(), sizeof(FlatFanins));
  EXPECT_EQ(flat_small.entries().size(), nl_small.eval_entries().size());

  const TransitionFaultList faults_small =
      TransitionFaultList::collapsed(nl_small);
  EXPECT_EQ(faults_small.footprint_bytes(),
            sizeof(TransitionFaultList) +
                faults_small.size() * sizeof(TransitionFault));
}

TEST(MemoryReport, CollectGathersSamplerTotalsAndFootprints) {
  footprints().clear();
  reset_allocation_totals();
  footprints().record("test_structure", 4096);
  charge_allocation(512);
  const MemoryReport report = collect_memory_report();
  EXPECT_EQ(report.allocated_bytes, 512u);
  EXPECT_EQ(report.allocation_count, 1u);
  ASSERT_EQ(report.footprints.size(), 1u);
  EXPECT_EQ(report.footprints[0].name, "test_structure");
  EXPECT_EQ(report.footprints[0].bytes, 4096u);
  // Derived ratios are collect_run_report's job.
  EXPECT_EQ(report.bytes_per_gate, 0.0);
  EXPECT_EQ(report.bytes_per_fault, 0.0);
#if defined(__linux__)
  EXPECT_GT(report.peak_rss_bytes, 0u);
  EXPECT_GT(report.current_rss_bytes, 0u);
#endif
  footprints().clear();
  reset_allocation_totals();
}

TEST(MemoryReport, RunReportDerivesBytesPerGateFromGauges) {
  footprints().clear();
  footprints().record("netlist", 100000);
  footprints().record("fault_list", 20000);
  registry().gauge("flow.num_gates").set(1000.0);
  registry().gauge("flow.num_faults").set(400.0);
  const RunReportData data = collect_run_report("resource_test", {});
  // collect_run_report also records the journal/trace buffer footprints;
  // bytes_per_gate divides the full registry total by the gauge.
  std::uint64_t total = 0;
  for (const FootprintSample& f : data.memory.footprints) total += f.bytes;
  EXPECT_GE(total, 120000u);
  EXPECT_DOUBLE_EQ(data.memory.bytes_per_gate,
                   static_cast<double>(total) / 1000.0);
  EXPECT_DOUBLE_EQ(data.memory.bytes_per_fault,
                   static_cast<double>(total) / 400.0);
  footprints().clear();
  registry().gauge("flow.num_gates").set(0.0);
  registry().gauge("flow.num_faults").set(0.0);
}

#if !FBT_OBS_ENABLED
TEST(ObsDisabled, ResourceMacrosAreNoOps) {
  footprints().clear();
  reset_allocation_totals();
  // Under FBT_OBS=OFF the macros must not evaluate their arguments or touch
  // the registries.
  int evaluations = 0;
  auto count_eval = [&evaluations] {
    ++evaluations;
    return std::uint64_t{4096};
  };
  FBT_OBS_ALLOC_CHARGE(count_eval());
  FBT_OBS_FOOTPRINT("noop", count_eval());
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(allocation_totals().bytes, 0u);
  EXPECT_TRUE(footprints().snapshot().empty());
}
#endif

}  // namespace
}  // namespace fbt::obs
