#include "obs/event_journal.hpp"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/instrument.hpp"

namespace fbt::obs {
namespace {

TEST(EventJournal, AssignsDenseSequenceNumbers) {
  EventJournal j;
  j.emit("first", {});
  j.emit("second", {{"k", 1u}});
  const std::vector<JournalEvent> events = j.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, "first");
  EXPECT_EQ(events[1].seq, 1u);
  j.clear();
  EXPECT_EQ(j.size(), 0u);
  j.emit("after_clear", {});
  EXPECT_EQ(j.events()[0].seq, 0u);  // numbering restarts
}

TEST(EventJournal, RendersTypedFieldsAsOneJsonLine) {
  EventJournal j;
  j.emit("seed_tried", {{"seed", 123u},
                        {"segment", -1},
                        {"swa", 12.5},
                        {"source", "packed"}});
  const std::vector<JournalEvent> events = j.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(render_event_line(events[0]),
            "{\"seq\": 0, \"type\": \"seed_tried\", \"seed\": 123, "
            "\"segment\": -1, \"swa\": 12.5, \"source\": \"packed\"}");
}

TEST(EventJournal, EscapesStringsInTypeAndFields) {
  EventJournal j;
  j.emit("odd\"type", {{"msg", "line\nbreak"}});
  const std::string line = render_event_line(j.events()[0]);
  EXPECT_NE(line.find("odd\\\"type"), std::string::npos);
  EXPECT_NE(line.find("line\\nbreak"), std::string::npos);
}

TEST(EventJournal, NdjsonIsOneTerminatedLinePerEvent) {
  EventJournal j;
  EXPECT_EQ(j.ndjson(), "");
  j.emit("a", {});
  j.emit("b", {{"v", 2u}});
  const std::string body = j.ndjson();
  std::size_t lines = 0;
  for (const char c : body) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(body.back(), '\n');
}

TEST(EventJournal, WriteNdjsonRoundTrips) {
  EventJournal j;
  j.emit("milestone", {{"detected", 42u}});
  const std::string path = testing::TempDir() + "/fbt_obs_journal_test.ndjson";
  ASSERT_TRUE(j.write_ndjson(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) read_back.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read_back, j.ndjson());
}

TEST(EventJournal, ConcurrentEmitsAreLosslessWithUniqueSeq) {
  EventJournal j;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&j] {
      for (int i = 0; i < kPerThread; ++i) j.emit("tick", {});
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<JournalEvent> events = j.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<bool> seen(events.size(), false);
  for (const JournalEvent& e : events) {
    ASSERT_LT(e.seq, seen.size());
    EXPECT_FALSE(seen[e.seq]);
    seen[e.seq] = true;
  }
}

#if FBT_OBS_ENABLED
TEST(EventMacro, AppendsToTheGlobalJournal) {
  const std::size_t before = journal().size();
  FBT_OBS_EVENT("test_event", {{"value", 7u}});
  ASSERT_EQ(journal().size(), before + 1);
  EXPECT_EQ(journal().events().back().type, "test_event");
}
#endif

}  // namespace
}  // namespace fbt::obs
