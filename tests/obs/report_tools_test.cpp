#include "obs/report_tools.hpp"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/run_report.hpp"

namespace fbt::obs {
namespace {

JsonValue parse_or_die(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, v, error)) << error;
  return v;
}

/// A minimal but schema-shaped report the diff/render paths understand.
std::string report_json(double coverage, double tests, double walltime_ms) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      R"({
  "schema_version": 2,
  "tool": "bench_flow_smoke",
  "git_sha": "abc1234",
  "timestamp_utc": "2026-01-01T00:00:00Z",
  "config": {"target": "s298"},
  "phases": [{"name": "flow", "count": 1, "total_ms": %.3f, "self_ms": 1.0, "children": []}],
  "counters": {"bist.lfsr_cycles": 4096},
  "gauges": {"flow.fault_coverage_percent": %.6g, "flow.num_tests": %.6g},
  "histograms": {},
  "analytics": {
    "convergence": [{"tests": 64, "detected": 100}, {"tests": 128, "detected": 150}],
    "segment_yield": [{"sequence": 0, "segment": 0, "seed": 7, "tests": 128, "newly_detected": 150, "peak_swa": 20.5}],
    "speculation": {"batches": 1, "lanes_evaluated": 64, "hits": 2, "wasted": 5}
  }
})",
      walltime_ms, coverage, tests);
  return buf;
}

TEST(JsonParse, ParsesReportShapedDocuments) {
  const JsonValue v = parse_or_die(report_json(91.25, 500, 10.0));
  ASSERT_TRUE(v.is_object());
  const JsonValue* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("flow.fault_coverage_percent")->as_number(),
                   91.25);
  const JsonValue* curve = v.find_path({"analytics", "convergence"});
  ASSERT_NE(curve, nullptr);
  ASSERT_EQ(curve->array.size(), 2u);
  EXPECT_DOUBLE_EQ(curve->array[1].find("detected")->as_number(), 150.0);
  // Key order is document order, not sorted.
  EXPECT_EQ(v.object[0].first, "schema_version");
  EXPECT_EQ(v.object[1].first, "tool");
}

TEST(JsonParse, RejectsMalformedInputWithPosition) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": 1,}", v, error));
  EXPECT_NE(error.find("byte"), std::string::npos);
  EXPECT_FALSE(json_parse("[1, 2", v, error));
  EXPECT_FALSE(json_parse("", v, error));
  EXPECT_FALSE(json_parse("{} trailing", v, error));
}

TEST(JsonParse, HandlesEscapesAndLiterals) {
  const JsonValue v =
      parse_or_die(R"({"s": "a\"b\nc", "t": true, "n": null, "d": -1.5e2})");
  EXPECT_EQ(v.find("s")->string, "a\"b\nc");
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_DOUBLE_EQ(v.find("d")->as_number(), -150.0);
}

TEST(DiffRunReports, PassesWhenWithinThresholds) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(91.0, 550, 100.0));
  const DiffResult result = diff_run_reports(base, cur, DiffThresholds{});
  EXPECT_FALSE(result.regression);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_NE(result.summary_text.find("coverage: 91.25% -> 91%"),
            std::string::npos);
}

TEST(DiffRunReports, FlagsCoverageDrop) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(89.0, 500, 10.0));
  const DiffResult result = diff_run_reports(base, cur, DiffThresholds{});
  ASSERT_TRUE(result.regression);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("coverage"), std::string::npos);
}

TEST(DiffRunReports, FlagsTestCountGrowth) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(91.25, 700, 10.0));
  const DiffResult result = diff_run_reports(base, cur, DiffThresholds{});
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("test count"), std::string::npos);
}

TEST(DiffRunReports, WalltimeGateIsOptIn) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(91.25, 500, 1000.0));
  // Disabled by default: machine-dependent.
  EXPECT_FALSE(diff_run_reports(base, cur, DiffThresholds{}).regression);
  DiffThresholds gated;
  gated.max_walltime_increase_percent = 50.0;
  const DiffResult result = diff_run_reports(base, cur, gated);
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("walltime"), std::string::npos);
}

TEST(DiffRunReports, NegativeThresholdDisablesCheck) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(50.0, 5000, 10.0));
  DiffThresholds off;
  off.max_coverage_drop = -1.0;
  off.max_tests_increase_percent = -1.0;
  EXPECT_FALSE(diff_run_reports(base, cur, off).regression);
}

TEST(DiffRunReports, PackSpeedupGateIsOptIn) {
  // bench_ppsfp's gated gauge: serial grade walltime / pack-64 walltime.
  // The gate reads the *current* report (the bound is absolute, not
  // relative to the baseline) and is off unless requested.
  const JsonValue base =
      parse_or_die(R"({"gauges": {"fault.pack_speedup_64": 4.5}})");
  const JsonValue cur =
      parse_or_die(R"({"gauges": {"fault.pack_speedup_64": 3.2}})");
  EXPECT_FALSE(diff_run_reports(base, cur, DiffThresholds{}).regression);

  DiffThresholds gated;
  gated.min_pack_speedup = 4.0;
  const DiffResult result = diff_run_reports(base, cur, gated);
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("pack-64"), std::string::npos);

  gated.min_pack_speedup = 3.0;
  EXPECT_FALSE(diff_run_reports(base, cur, gated).regression);
}

TEST(DiffRunReports, ObsOverheadGateIsOptIn) {
  // bench_obs_overhead publishes obs.flow_run_ms (min-of-N walltime) in
  // both the FBT_OBS=OFF baseline and the ON current report; the gate
  // bounds the relative increase.
  const JsonValue off =
      parse_or_die(R"({"gauges": {"obs.flow_run_ms": 100.0}})");
  const JsonValue on_ok =
      parse_or_die(R"({"gauges": {"obs.flow_run_ms": 101.5}})");
  const JsonValue on_slow =
      parse_or_die(R"({"gauges": {"obs.flow_run_ms": 104.0}})");
  EXPECT_FALSE(diff_run_reports(off, on_slow, DiffThresholds{}).regression);

  DiffThresholds gated;
  gated.max_obs_overhead_pct = 2.0;
  EXPECT_FALSE(diff_run_reports(off, on_ok, gated).regression);
  const DiffResult result = diff_run_reports(off, on_slow, gated);
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("observability overhead"),
            std::string::npos);
  EXPECT_NE(result.summary_text.find("obs_flow_run_ms"), std::string::npos);

  // A baseline without the gauge (or zero) cannot regress.
  const JsonValue empty = parse_or_die("{}");
  EXPECT_FALSE(diff_run_reports(empty, on_slow, gated).regression);
}

TEST(DiffRunReports, MissingSectionsDiffAsZeros) {
  const JsonValue base = parse_or_die("{}");
  const JsonValue cur = parse_or_die(report_json(91.25, 500, 10.0));
  // Coverage went 0 -> 91.25 (an improvement); never a regression.
  EXPECT_FALSE(diff_run_reports(base, cur, DiffThresholds{}).regression);
}

TEST(DiffRunReports, SummaryListsChangedMetrics) {
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json(91.25, 520, 10.0));
  const DiffResult result = diff_run_reports(base, cur, DiffThresholds{});
  EXPECT_NE(result.summary_text.find("gauges.flow.num_tests: 500 -> 520"),
            std::string::npos);
}

/// Schema-v3 report with a memory section. bytes_per_gate is the gated
/// deterministic quantity; peak_rss the opt-in machine-dependent one.
std::string report_json_v3(double peak_rss, double bytes_per_gate) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      R"({
  "schema_version": 3,
  "tool": "bench_scale",
  "git_sha": "abc1234",
  "timestamp_utc": "2026-01-01T00:00:00Z",
  "config": {},
  "phases": [{"name": "scale", "count": 4, "total_ms": 100.0, "self_ms": 1.0, "rss_delta_bytes": 1048576, "alloc_bytes": 2048, "alloc_count": 2, "children": []}],
  "counters": {},
  "gauges": {"flow.fault_coverage_percent": 91.25, "flow.num_tests": 500},
  "histograms": {},
  "analytics": {"convergence": [], "segment_yield": [], "speculation": {"batches": 0, "lanes_evaluated": 0, "hits": 0, "wasted": 0}},
  "memory": {
    "peak_rss_bytes": %.6g,
    "current_rss_bytes": 100000,
    "allocated_bytes": 5000,
    "allocation_count": 3,
    "footprints": {"netlist": 2000000, "fault_list": 500000},
    "bytes_per_gate": %.6g,
    "bytes_per_fault": 40.0
  }
})",
      peak_rss, bytes_per_gate);
  return buf;
}

TEST(DiffRunReports, MemoryGatesAreOptIn) {
  const JsonValue base = parse_or_die(report_json_v3(1e8, 100.0));
  // +20% bytes-per-gate and 3x peak RSS: passes with default thresholds.
  const JsonValue cur = parse_or_die(report_json_v3(3e8, 120.0));
  EXPECT_FALSE(diff_run_reports(base, cur, DiffThresholds{}).regression);
}

TEST(DiffRunReports, FlagsBytesPerGateGrowth) {
  const JsonValue base = parse_or_die(report_json_v3(1e8, 100.0));
  const JsonValue cur = parse_or_die(report_json_v3(1e8, 120.0));
  DiffThresholds gated;
  gated.max_bytes_per_gate_increase_percent = 10.0;
  const DiffResult result = diff_run_reports(base, cur, gated);
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("bytes per gate"), std::string::npos);
  // Within threshold: +8% passes at the 10% gate.
  const JsonValue ok = parse_or_die(report_json_v3(1e8, 108.0));
  EXPECT_FALSE(diff_run_reports(base, ok, gated).regression);
}

TEST(DiffRunReports, FlagsPeakRssGrowth) {
  const JsonValue base = parse_or_die(report_json_v3(1e8, 100.0));
  const JsonValue cur = parse_or_die(report_json_v3(2.5e8, 100.0));
  DiffThresholds gated;
  gated.max_peak_rss_increase_percent = 100.0;
  const DiffResult result = diff_run_reports(base, cur, gated);
  ASSERT_TRUE(result.regression);
  EXPECT_NE(result.violations[0].find("peak RSS"), std::string::npos);
}

TEST(DiffRunReports, SchemaV2ReportsDiffWithoutMemorySection) {
  // A v2 baseline has no "memory" section: reads as 0, never crashes, and
  // with the gates enabled a 0 baseline cannot regress (division guard).
  const JsonValue base = parse_or_die(report_json(91.25, 500, 10.0));
  const JsonValue cur = parse_or_die(report_json_v3(1e8, 120.0));
  DiffThresholds gated;
  gated.max_bytes_per_gate_increase_percent = 10.0;
  gated.max_peak_rss_increase_percent = 100.0;
  const DiffResult result = diff_run_reports(base, cur, gated);
  EXPECT_FALSE(result.regression);
  EXPECT_NE(result.summary_text.find("peak_rss_bytes: 0 ->"),
            std::string::npos);
}

TEST(RenderHtmlDashboard, ProducesSelfContainedPage) {
  const JsonValue report = parse_or_die(report_json(91.25, 500, 10.0));
  const std::string html = render_html_dashboard(
      report, "{\"seq\": 0, \"type\": \"construct_started\"}\n");
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("bench_flow_smoke"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);         // convergence curve
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  EXPECT_NE(html.find("newly_detected"), std::string::npos);
  EXPECT_NE(html.find("construct_started"), std::string::npos);
  // No external resources: self-contained means no http(s) references.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(RenderHtmlDashboard, EscapesUntrustedStrings) {
  const JsonValue report = parse_or_die(
      R"({"tool": "<script>alert(1)</script>", "config": {"k": "<b>"}})");
  const std::string html = render_html_dashboard(report, "");
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(RenderHtmlDashboard, RoundTripsRealCollectedReport) {
  register_core_counters();
  const RunReportData data = collect_run_report("dashboard_smoke", {});
  const JsonValue report = parse_or_die(render_run_report(data));
  const std::string html = render_html_dashboard(report, "");
  EXPECT_NE(html.find("dashboard_smoke"), std::string::npos);
  EXPECT_NE(html.find("bist.lfsr_cycles"), std::string::npos);
  EXPECT_NE(html.find("<h2>Memory</h2>"), std::string::npos);
}

TEST(RenderHtmlDashboard, MemoryPanelRendersFootprintsAndPhaseDeltas) {
  const JsonValue report = parse_or_die(report_json_v3(1e8, 100.0));
  const std::string html = render_html_dashboard(report, "");
  EXPECT_NE(html.find("peak_rss_bytes"), std::string::npos);
  EXPECT_NE(html.find("Structure footprints"), std::string::npos);
  EXPECT_NE(html.find("Per-phase RSS delta"), std::string::npos);
  EXPECT_NE(html.find("class=\"bar\""), std::string::npos);
}

TEST(RenderHtmlDashboard, SchemaV2ReportStillRenders) {
  // v2 reports have no memory section; the panel degrades to a note and the
  // rest of the page is unaffected.
  const JsonValue report = parse_or_die(report_json(91.25, 500, 10.0));
  const std::string html = render_html_dashboard(report, "");
  EXPECT_NE(html.find("no memory data (schema v2 report)"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

/// Schema-v4 report with scheduler utilization and request-latency
/// histograms, as a serve daemon writes at exit.
std::string report_json_v4() {
  return R"({
  "schema_version": 4,
  "tool": "fbt_serve",
  "git_sha": "abc1234",
  "timestamp_utc": "2026-01-01T00:00:00Z",
  "config": {},
  "phases": [],
  "counters": {},
  "gauges": {},
  "histograms": {
    "jobs.run_ms": {"count": 40, "sum": 100.0, "mean": 2.5, "p50": 2.0, "p90": 4.0, "p99": 5.0, "p99_clamped": false, "buckets": []},
    "serve.request_total_cold_ms": {"count": 3, "sum": 2400.0, "mean": 800.0, "p50": 750.0, "p90": 900.0, "p99": 1000.0, "p99_clamped": true, "buckets": []},
    "serve.request_total_warm_ms": {"count": 9, "sum": 4.5, "mean": 0.5, "p50": 0.4, "p90": 0.9, "p99": 1.0, "p99_clamped": false, "buckets": []}
  },
  "analytics": {"convergence": [], "segment_yield": [], "speculation": {"batches": 0, "lanes_evaluated": 0, "hits": 0, "wasted": 0}},
  "jobs": {"workers": 4, "submitted": 40, "executed": 40, "steals": 6, "busy_ms": 90.000, "idle_ms": 310.000, "utilization": 0.225},
  "memory": {"peak_rss_bytes": 1000, "current_rss_bytes": 900, "allocated_bytes": 0, "allocation_count": 0, "footprints": {}, "bytes_per_gate": 0, "bytes_per_fault": 0}
})";
}

TEST(RenderHtmlDashboard, SchedulerAndRequestLatencyPanels) {
  const JsonValue report = parse_or_die(report_json_v4());
  const std::string html = render_html_dashboard(report, "");
  EXPECT_NE(html.find("<h2>Scheduler</h2>"), std::string::npos);
  EXPECT_NE(html.find("utilization"), std::string::npos);
  EXPECT_NE(html.find("jobs.run_ms"), std::string::npos);
  EXPECT_NE(html.find("<h2>Request latency</h2>"), std::string::npos);
  EXPECT_NE(html.find("serve.request_total_cold_ms"), std::string::npos);
  EXPECT_NE(html.find("serve.request_total_warm_ms"), std::string::npos);
  // The cold p99 was clamped to the last bucket: marked "+".
  EXPECT_NE(html.find("<td>1000+</td>"), std::string::npos);
}

TEST(RenderHtmlDashboard, PreV4ReportDegradesSchedulerPanels) {
  const JsonValue report = parse_or_die(report_json_v3(1e8, 100.0));
  const std::string html = render_html_dashboard(report, "");
  EXPECT_NE(html.find("no scheduler data (pre-v4 report)"), std::string::npos);
  EXPECT_NE(html.find("no request latency data in this run"),
            std::string::npos);
}

}  // namespace
}  // namespace fbt::obs
