#include "obs/run_report.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fbt::obs {
namespace {

// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
// literals). Records top-level object keys in order so tests can pin the
// schema. Returns false on any syntax error.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string text) : s_(std::move(text)) {}

  bool parse(std::vector<std::string>* top_keys) {
    top_keys_ = top_keys;
    skip_ws();
    const bool ok = value(0);
    skip_ws();
    return ok && pos_ == s_.size();
  }

 private:
  bool value(int depth) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string_lit(nullptr);
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_lit(&key)) return false;
      if (depth == 0 && top_keys_ != nullptr) top_keys_->push_back(key);
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string_lit(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      if (out != nullptr) out->push_back(s_[pos_]);
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string s_;
  std::size_t pos_ = 0;
  std::vector<std::string>* top_keys_ = nullptr;
};

RunReportData golden_data() {
  RunReportData data;
  data.tool = "golden_tool";
  data.git_sha = "abc1234";
  data.timestamp_utc = "2026-01-01T00:00:00Z";
  data.config = {{"target", "spi"}, {"driver", "wb_dma"}};
  PhaseSummary grade{"grade", 3, 6.0, 6.0, -4096, 2048, 2, {}};
  PhaseSummary construct{"construct", 1, 10.0, 4.0, 1048576, 4096, 1, {grade}};
  data.phases = {construct};
  data.metrics.counters = {{"bist.lfsr_cycles", 4096},
                           {"sim.seqsim_gates_evaluated", 123456}};
  data.metrics.gauges = {{"flow.fault_coverage_percent", 91.25}};
  data.metrics.histograms = {
      {"fault.grade_duration_ms", {1.0, 10.0}, {2, 1, 0}, 3, 5.5}};
  data.analytics.convergence = {{64, 300}, {128, 321}};
  data.analytics.segment_yield = {{0, 0, 123, 100, 42, 12.5}};
  data.analytics.speculation = {1, 64, 3, 10};
  data.memory.peak_rss_bytes = 50331648;
  data.memory.current_rss_bytes = 33554432;
  data.memory.allocated_bytes = 6144;
  data.memory.allocation_count = 3;
  data.memory.footprints = {{"fault_list", 500000}, {"netlist", 2000000}};
  data.memory.bytes_per_gate = 123.456;
  data.memory.bytes_per_fault = 41.5;
  data.jobs.workers = 4;
  data.jobs.submitted = 100;
  data.jobs.executed = 100;
  data.jobs.steals = 7;
  data.jobs.busy_ms = 120.0;
  data.jobs.idle_ms = 280.0;
  data.jobs.utilization = 0.3;
  return data;
}

// The schema contract: this exact rendering is what downstream diff tooling
// consumes. Any change here is a schema change and must bump schema_version.
// v2 added the "analytics" section and the histogram mean/p50/p90 summary
// values (p50 of the golden histogram: rank 1.5 falls 3/4 into the [0, 1]
// bucket; p90: rank 2.7 falls 7/10 into the [1, 10] bucket).
// v3 added the per-phase rss_delta_bytes/alloc_bytes/alloc_count fields and
// the trailing "memory" section (resource telemetry).
// v4 added the "jobs" scheduler-utilization section and the histogram
// p99/p99_clamped summary values (p99 of the golden histogram: rank 2.97
// falls 97/100 into the [1, 10] bucket -> 9.73, not clamped).
constexpr const char* kGoldenReport = R"({
  "schema_version": 4,
  "tool": "golden_tool",
  "git_sha": "abc1234",
  "timestamp_utc": "2026-01-01T00:00:00Z",
  "config": {
    "driver": "wb_dma",
    "target": "spi"
  },
  "phases": [
    {"name": "construct", "count": 1, "total_ms": 10.000, "self_ms": 4.000, "rss_delta_bytes": 1048576, "alloc_bytes": 4096, "alloc_count": 1, "children": [
      {"name": "grade", "count": 3, "total_ms": 6.000, "self_ms": 6.000, "rss_delta_bytes": -4096, "alloc_bytes": 2048, "alloc_count": 2, "children": []}
    ]}
  ],
  "counters": {
    "bist.lfsr_cycles": 4096,
    "sim.seqsim_gates_evaluated": 123456
  },
  "gauges": {
    "flow.fault_coverage_percent": 91.25
  },
  "histograms": {
    "fault.grade_duration_ms": {"count": 3, "sum": 5.5, "mean": 1.83333, "p50": 0.75, "p90": 7.3, "p99": 9.73, "p99_clamped": false, "buckets": [{"le": 1, "count": 2}, {"le": 10, "count": 1}, {"le": "inf", "count": 0}]}
  },
  "analytics": {
    "convergence": [{"tests": 64, "detected": 300}, {"tests": 128, "detected": 321}],
    "segment_yield": [
      {"sequence": 0, "segment": 0, "seed": 123, "tests": 100, "newly_detected": 42, "peak_swa": 12.5}
    ],
    "speculation": {"batches": 1, "lanes_evaluated": 64, "hits": 3, "wasted": 10}
  },
  "jobs": {"workers": 4, "submitted": 100, "executed": 100, "steals": 7, "busy_ms": 120.000, "idle_ms": 280.000, "utilization": 0.3},
  "memory": {
    "peak_rss_bytes": 50331648,
    "current_rss_bytes": 33554432,
    "allocated_bytes": 6144,
    "allocation_count": 3,
    "footprints": {
      "fault_list": 500000,
      "netlist": 2000000
    },
    "bytes_per_gate": 123.456,
    "bytes_per_fault": 41.5
  }
}
)";

TEST(RunReport, MatchesGoldenRendering) {
  EXPECT_EQ(render_run_report(golden_data()), kGoldenReport);
}

TEST(RunReport, GoldenIsWellFormedJsonWithStableKeyOrder) {
  std::vector<std::string> keys;
  MiniJsonParser parser(render_run_report(golden_data()));
  ASSERT_TRUE(parser.parse(&keys));
  EXPECT_EQ(keys, (std::vector<std::string>{
                      "schema_version", "tool", "git_sha", "timestamp_utc",
                      "config", "phases", "counters", "gauges", "histograms",
                      "analytics", "jobs", "memory"}));
}

TEST(RunReport, EmptyReportIsStillValidJson) {
  RunReportData data;
  data.tool = "empty";
  std::vector<std::string> keys;
  MiniJsonParser parser(render_run_report(data));
  ASSERT_TRUE(parser.parse(&keys));
  EXPECT_EQ(keys.size(), 12u);
}

TEST(RunReport, EmptyHistogramRendersZeroSummariesNotNan) {
  RunReportData data;
  data.tool = "empty_hist";
  data.metrics.histograms = {{"flow.idle", {1.0, 10.0}, {0, 0, 0}, 0, 0.0}};
  const std::string body = render_run_report(data);
  EXPECT_EQ(body.find("nan"), std::string::npos);
  EXPECT_NE(body.find("\"mean\": 0, \"p50\": 0, \"p90\": 0, \"p99\": 0, "
                      "\"p99_clamped\": false"),
            std::string::npos);
  MiniJsonParser parser(body);
  ASSERT_TRUE(parser.parse(nullptr));
}

TEST(RunReport, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  RunReportData data;
  data.tool = "quote\"tool";
  data.config = {{"key\n", "value\t"}};
  MiniJsonParser parser(render_run_report(data));
  ASSERT_TRUE(parser.parse(nullptr));
}

TEST(RunReport, CollectedReportIsValidAndCarriesCoreCounters) {
  const RunReportData data =
      collect_run_report("obs_test", {{"case", "collected"}});
  EXPECT_FALSE(data.git_sha.empty());
  EXPECT_EQ(data.timestamp_utc.size(), 20u);  // 2026-01-01T00:00:00Z
  const std::string body = render_run_report(data);
  MiniJsonParser parser(body);
  ASSERT_TRUE(parser.parse(nullptr));
  EXPECT_NE(body.find("\"bist.lfsr_cycles\""), std::string::npos);
  EXPECT_NE(body.find("\"atpg.podem_backtracks\""), std::string::npos);
  EXPECT_NE(body.find("\"flow.faults_detected\""), std::string::npos);
  // Every collected report carries the v3 memory section; on Linux the RSS
  // sampler reads /proc and the values are nonzero.
  EXPECT_NE(body.find("\"memory\""), std::string::npos);
  EXPECT_NE(body.find("\"peak_rss_bytes\""), std::string::npos);
#if defined(__linux__)
  EXPECT_GT(data.memory.peak_rss_bytes, 0u);
  EXPECT_GT(data.memory.current_rss_bytes, 0u);
#endif
}

TEST(RunReport, RoundTripsThroughDisk) {
  const std::string path =
      testing::TempDir() + "/fbt_obs_run_report_test.json";
  const RunReportData data = golden_data();
  ASSERT_TRUE(write_run_report(path, data));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    read_back.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read_back, render_run_report(data));
}

}  // namespace
}  // namespace fbt::obs
