#include "obs/phase.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fbt::obs {
namespace {

void spin_for_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(PhaseSpan, NestsAndAttributesChildTime) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  {
    PhaseSpan outer("outer");
    spin_for_ms(2);
    {
      PhaseSpan inner("inner");
      spin_for_ms(4);
    }
    {
      PhaseSpan inner("inner");
      spin_for_ms(4);
    }
  }
  const std::vector<PhaseNode> roots = trace.roots();
  ASSERT_EQ(roots.size(), 1u);
  const PhaseNode& outer = roots[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner");

  // The parent covers its children; self time excludes them.
  std::uint64_t child_us = 0;
  for (const PhaseNode& c : outer.children) {
    EXPECT_GE(c.start_us, outer.start_us);
    EXPECT_LE(c.start_us + c.dur_us, outer.start_us + outer.dur_us);
    child_us += c.dur_us;
  }
  EXPECT_GE(outer.dur_us, child_us);
  EXPECT_NEAR(outer.self_ms(), outer.total_ms() - child_us / 1000.0, 1e-9);
  EXPECT_GT(outer.self_ms(), 0.0);
}

TEST(PhaseSpan, SequentialRootsAccumulate) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  { PhaseSpan a("first"); }
  { PhaseSpan b("second"); }
  const std::vector<PhaseNode> roots = trace.roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "first");
  EXPECT_EQ(roots[1].name, "second");
  EXPECT_LE(roots[0].start_us, roots[1].start_us);
}

TEST(SummarizePhases, MergesSameNameSiblings) {
  PhaseNode parent;
  parent.name = "construct";
  parent.dur_us = 10000;
  for (int i = 0; i < 3; ++i) {
    PhaseNode grade;
    grade.name = "grade";
    grade.start_us = static_cast<std::uint64_t>(1000 * i);
    grade.dur_us = 2000;
    parent.children.push_back(grade);
  }
  const std::vector<PhaseSummary> summary = summarize_phases({parent});
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].count, 1u);
  EXPECT_DOUBLE_EQ(summary[0].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(summary[0].self_ms, 4.0);  // 10ms - 3 x 2ms
  ASSERT_EQ(summary[0].children.size(), 1u);
  EXPECT_EQ(summary[0].children[0].name, "grade");
  EXPECT_EQ(summary[0].children[0].count, 3u);
  EXPECT_DOUBLE_EQ(summary[0].children[0].total_ms, 6.0);
}

TEST(PhaseSpan, RecordsRssAtOpenAndClose) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  { PhaseSpan span("rss_probe"); }
  const std::vector<PhaseNode> roots = trace.roots();
  ASSERT_EQ(roots.size(), 1u);
#if defined(__linux__)
  // The sampler reads /proc on Linux; a live process always has nonzero RSS.
  EXPECT_GT(roots[0].rss_open_bytes, 0u);
  EXPECT_GT(roots[0].rss_close_bytes, 0u);
#endif
  trace.clear();
}

TEST(SummarizePhases, AggregatesRssDeltaAndAllocationCharges) {
  PhaseNode a;
  a.name = "grade";
  a.rss_open_bytes = 1000;
  a.rss_close_bytes = 4000;
  a.alloc_bytes = 256;
  a.alloc_count = 2;
  PhaseNode b = a;
  b.rss_open_bytes = 4000;
  b.rss_close_bytes = 3000;  // shrank: negative delta sums in
  b.alloc_bytes = 64;
  b.alloc_count = 1;
  const std::vector<PhaseSummary> summary = summarize_phases({a, b});
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_EQ(summary[0].rss_delta_bytes, 3000 - 1000);
  EXPECT_EQ(summary[0].alloc_bytes, 320u);
  EXPECT_EQ(summary[0].alloc_count, 3u);
}

TEST(PhaseTrace, TreeStringShowsNestingAndAggregation) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  {
    PhaseSpan outer("construct");
    { PhaseSpan g("grade"); }
    { PhaseSpan g("grade"); }
  }
  const std::string tree = trace.tree_string();
  EXPECT_NE(tree.find("construct"), std::string::npos);
  EXPECT_NE(tree.find("  grade x2"), std::string::npos);
}

TEST(PhaseTrace, ConcurrentSpansFromWorkerThreadsDoNotInterleave) {
  // Regression for parallel fault grading: several threads completing spans
  // at once must neither corrupt the shared sink nor share a Chrome-trace
  // track. Each worker's roots carry that worker's thread id, nesting stays
  // per-thread, and every span arrives exactly once.
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        PhaseSpan outer("worker_outer");
        PhaseSpan inner("worker_inner");
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const std::vector<PhaseNode> roots = trace.roots();
  ASSERT_EQ(roots.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::map<std::uint32_t, int> roots_per_tid;
  for (const PhaseNode& root : roots) {
    EXPECT_EQ(root.name, "worker_outer");
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "worker_inner");
    // A child opened on the same thread carries the same tid and never
    // leaks into another thread's root.
    EXPECT_EQ(root.children[0].tid, root.tid);
    ++roots_per_tid[root.tid];
  }
  ASSERT_EQ(roots_per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : roots_per_tid) {
    EXPECT_EQ(count, kSpansPerThread) << "tid " << tid;
  }

  // The Chrome trace carries the per-thread track ids.
  const std::string json = trace.chrome_trace_json();
  for (const auto& [tid, count] : roots_per_tid) {
    EXPECT_NE(json.find("\"tid\": " + std::to_string(tid)),
              std::string::npos);
  }
  trace.clear();
}

TEST(PhaseTrace, ChromeTraceJsonListsEveryEvent) {
  PhaseTrace& trace = PhaseTrace::instance();
  trace.clear();
  {
    PhaseSpan outer("outer");
    { PhaseSpan inner("inner"); }
  }
  const std::string json = trace.chrome_trace_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  trace.clear();
  EXPECT_EQ(trace.chrome_trace_json(), "[]\n");
  EXPECT_EQ(trace.tree_string(), "");
}

}  // namespace
}  // namespace fbt::obs
