#include "obs/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/instrument.hpp"

namespace fbt::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(LocalCounter, BatchesAndFlushesExactTotals) {
  Counter& shared = registry().counter("test.local_counter");
  shared.reset();
  {
    LocalCounter local("test.local_counter");
    // Small adds stay pending until the batch threshold or destruction.
    local.add(3);
    EXPECT_EQ(shared.value(), 0u);
    // A batch-sized add flushes immediately (threshold is 4096).
    local.add(5000);
    EXPECT_EQ(shared.value(), 5003u);
    local.add(1);
    // A copy inherits the target but not the pending batch: the original
    // still owns (and later flushes) its own count exactly once.
    LocalCounter copy = local;
    copy.add(2);
    copy.flush();
    EXPECT_EQ(shared.value(), 5005u);
  }
  // Destruction flushed the original's pending 1.
  EXPECT_EQ(shared.value(), 5006u);
}

TEST(Gauge, KeepsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(91.25);
  g.set(12.5);
  EXPECT_EQ(g.value(), 12.5);
}

TEST(Histogram, RoutesSamplesToBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (bounds are inclusive upper edges)
  h.record(7.0);    // <= 10
  h.record(100.0);  // <= 100
  h.record(5000.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 100.0 + 5000.0);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, SortsAndDeduplicatesBounds) {
  Histogram h({10.0, 1.0, 10.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(h.bucket_counts().size(), 3u);
}

TEST(MetricsRegistry, ReturnsSameInstrumentForSameName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.same_name");
  Counter& b = reg.counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct namespaces per instrument kind.
  Gauge& g = reg.gauge("test.same_name");
  g.set(1.5);
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry reg;
  Histogram& first = reg.histogram("test.hist", {1.0, 2.0});
  Histogram& again = reg.histogram("test.hist", {99.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("z.gauge").set(7);
  reg.histogram("m.hist", {1.0}).record(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b.second");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].bucket_counts.size(), 2u);
  EXPECT_EQ(snap.histograms[0].bucket_counts[0], 1u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.reset");
  c.add(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // the cached reference stays valid
  EXPECT_EQ(&reg.counter("test.reset"), &c);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("test.concurrent");
      Histogram& h = reg.histogram("test.concurrent_hist", {0.5});
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add();
        h.record(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(reg.histogram("test.concurrent_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(RegisterCoreCounters, CoreNamesAlwaysPresent) {
  register_core_counters();
  const MetricsSnapshot snap = registry().snapshot();
  for (const char* name :
       {"sim.seqsim_gates_evaluated", "sim.bitsim_gates_evaluated",
        "bist.lfsr_cycles", "bist.tests_extracted", "atpg.podem_backtracks",
        "fault.faults_dropped", "flow.faults_detected",
        // Parallel grading (PR 3) and speculative seed search (PR 4): must
        // appear as zeros in serial/scalar runs, not be omitted.
        "bist.speculated_lanes", "bist.speculation_hits",
        "bist.speculation_wasted", "bist.speculation_batches",
        "fault.parallel_shards_graded",
        // Scheduler telemetry (PR 10): report consumers rely on the jobs
        // section existing even for single-threaded runs.
        "jobs.submitted", "jobs.executed", "jobs.steals", "jobs.busy_us"}) {
    bool found = false;
    for (const CounterSample& c : snap.counters) found |= c.name == name;
    EXPECT_TRUE(found) << name;
  }
  for (const char* name :
       {"fault.parallel_threads", "flow.num_threads", "flow.speculation_lanes",
        "flow.fault_coverage_percent", "flow.num_tests", "flow.num_seeds",
        "jobs.workers", "jobs.queue_depth"}) {
    bool found = false;
    for (const GaugeSample& g : snap.gauges) found |= g.name == name;
    EXPECT_TRUE(found) << name;
  }
  // Request-latency histograms pre-register with the log-scale bounds so a
  // daemon's first stats response carries empty summaries, not absent keys.
  for (const char* name :
       {"jobs.run_ms", "jobs.steal_latency_ms", "serve.request_queue_ms",
        "serve.request_cache_ms", "serve.request_compute_ms",
        "serve.request_render_ms", "serve.request_total_cold_ms",
        "serve.request_total_warm_ms"}) {
    bool found = false;
    for (const HistogramSample& h : snap.histograms) {
      if (h.name != name) continue;
      found = true;
      EXPECT_EQ(h.bounds, Histogram::log_latency_ms_bounds()) << name;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(Histogram, LogLatencyBoundsSpanMicrosecondsToSeconds) {
  const std::vector<double> bounds = Histogram::log_latency_ms_bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 0.001);   // 1 us
  EXPECT_DOUBLE_EQ(bounds.back(), 10000.0);  // 10 s
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
    // 1-2-5 spacing: each step grows by at most 2.5x.
    EXPECT_LE(bounds[i] / bounds[i - 1], 2.5 + 1e-9);
  }
}

TEST(HistogramSummary, EmptyHistogramYieldsZeroesNotNan) {
  const HistogramSample empty{"h", {1.0, 10.0}, {0, 0, 0}, 0, 0.0};
  EXPECT_EQ(histogram_mean(empty), 0.0);
  EXPECT_EQ(histogram_quantile(empty, 0.5), 0.0);
  EXPECT_EQ(histogram_quantile(empty, 0.9), 0.0);
  const HistogramSample no_bounds{"h", {}, {5}, 5, 10.0};
  EXPECT_EQ(histogram_quantile(no_bounds, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_mean(no_bounds), 2.0);
}

TEST(HistogramSummary, QuantileInterpolatesWithinBucket) {
  // 2 samples in (0, 1], 1 in (1, 10], 1 in overflow.
  const HistogramSample h{"h", {1.0, 10.0}, {2, 1, 1}, 4, 0.0};
  EXPECT_DOUBLE_EQ(histogram_mean(h), 0.0);
  // rank 2.0 -> exactly fills the first bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 1.0);
  // rank 1.0 -> halfway through the first bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.25), 0.5);
  // rank 3.0 -> fills the second bucket: its upper edge.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.75), 10.0);
  // rank 4.0 lands in the overflow bucket: pinned to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 10.0);
  // Out-of-range q is clamped.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, -1.0), 0.0);
}

TEST(HistogramSummary, QuantileReportsOverflowClamping) {
  // 2 samples in (0, 1], 1 in (1, 10], 1 in overflow.
  const HistogramSample h{"h", {1.0, 10.0}, {2, 1, 1}, 4, 0.0};
  bool clamped = true;
  // Ranks inside finite buckets must CLEAR the flag, not leave it stale.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5, &clamped), 1.0);
  EXPECT_FALSE(clamped);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.75, &clamped), 10.0);
  EXPECT_FALSE(clamped);
  // The overflow bucket: the value is only a lower bound, flagged as such.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0, &clamped), 10.0);
  EXPECT_TRUE(clamped);
  // Everything in overflow: any quantile is clamped.
  const HistogramSample all_over{"h", {1.0}, {0, 3}, 3, 0.0};
  EXPECT_DOUBLE_EQ(histogram_quantile(all_over, 0.5, &clamped), 1.0);
  EXPECT_TRUE(clamped);
  // Empty histogram: 0, never flagged.
  const HistogramSample empty{"h", {1.0}, {0, 0}, 0, 0.0};
  EXPECT_EQ(histogram_quantile(empty, 0.99, &clamped), 0.0);
  EXPECT_FALSE(clamped);
}

#if FBT_OBS_ENABLED
TEST(InstrumentMacros, UpdateTheGlobalRegistry) {
  Counter& c = registry().counter("test.macro_counter");
  const std::uint64_t before = c.value();
  FBT_OBS_COUNTER_ADD("test.macro_counter", 5);
  EXPECT_EQ(c.value(), before + 5);
  FBT_OBS_GAUGE_SET("test.macro_gauge", 2.5);
  EXPECT_EQ(registry().gauge("test.macro_gauge").value(), 2.5);
  FBT_OBS_HIST_RECORD_WITH("test.macro_hist", 3, {1, 2, 5});
  EXPECT_GE(registry().histogram("test.macro_hist").count(), 1u);
  FBT_OBS_HIST_RECORD_LOG("test.macro_log_hist", 0.004);
  Histogram& log_hist = registry().histogram("test.macro_log_hist");
  EXPECT_EQ(log_hist.bounds(), Histogram::log_latency_ms_bounds());
  EXPECT_GE(log_hist.count(), 1u);
}
#endif

}  // namespace
}  // namespace fbt::obs
