// PackedTpg vs 64 independently reseeded scalar Tpgs: every lane of the
// bit-sliced generator must reproduce its scalar counterpart bit for bit.
#include <gtest/gtest.h>

#include <vector>

#include "bist/packed_tpg.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

void check_lockstep(const Netlist& nl, std::span<const std::uint32_t> seeds,
                    std::size_t cycles) {
  const TpgConfig cfg;
  const Tpg ref(nl, cfg);
  PackedTpg packed(ref);
  packed.reseed(seeds);

  std::vector<Tpg> scalars(seeds.size(), Tpg(nl, cfg));
  for (std::size_t k = 0; k < seeds.size(); ++k) scalars[k].reseed(seeds[k]);

  std::vector<std::uint64_t> words(nl.num_inputs());
  std::vector<std::uint8_t> vec(nl.num_inputs());
  for (std::size_t c = 0; c < cycles; ++c) {
    packed.next_vectors(words);
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      scalars[k].next_vector_into(vec);
      for (std::size_t i = 0; i < vec.size(); ++i) {
        ASSERT_EQ(vec[i], (words[i] >> k) & 1)
            << "input " << i << " lane " << k << " cycle " << c;
      }
    }
  }
}

TEST(PackedTpg, FullWidthMatchesScalarTpgs) {
  const Netlist nl = load_benchmark("s344");
  Pcg32 rng(99, 7);
  std::vector<std::uint32_t> seeds(PackedTpg::kLanes);
  for (auto& s : seeds) s = rng.next() | 1u;
  check_lockstep(nl, seeds, 200);
}

TEST(PackedTpg, PartialLaneCountMatchesScalarTpgs) {
  const Netlist nl = load_benchmark("s298");
  const std::vector<std::uint32_t> seeds = {1, 2, 0xdeadbeefu, 0xffffffffu, 5};
  check_lockstep(nl, seeds, 100);
}

TEST(PackedTpg, ZeroSeedLocksToOneLikeScalarLfsr) {
  const Netlist nl = load_benchmark("s298");
  const std::vector<std::uint32_t> seeds = {0, 1};
  const Tpg ref(nl, TpgConfig{});
  PackedTpg packed(ref);
  packed.reseed(seeds);
  std::vector<std::uint64_t> words(nl.num_inputs());
  for (std::size_t c = 0; c < 50; ++c) {
    packed.next_vectors(words);
    for (const std::uint64_t w : words) {
      // Seed 0 is coerced to 1 (the scalar Lfsr's lockup escape), so lanes 0
      // and 1 must stay identical forever.
      EXPECT_EQ((w >> 0) & 1, (w >> 1) & 1);
    }
  }
}

TEST(PackedTpg, ReseedRestartsTheSequence) {
  const Netlist nl = load_benchmark("s344");
  const std::vector<std::uint32_t> seeds = {0x1234u, 0x777u};
  const Tpg ref(nl, TpgConfig{});
  PackedTpg packed(ref);

  packed.reseed(seeds);
  std::vector<std::uint64_t> first(nl.num_inputs());
  packed.next_vectors(first);
  std::vector<std::uint64_t> scratch(nl.num_inputs());
  for (int c = 0; c < 10; ++c) packed.next_vectors(scratch);

  packed.reseed(seeds);
  std::vector<std::uint64_t> again(nl.num_inputs());
  packed.next_vectors(again);
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace fbt
