// Reproducibility: every stochastic flow is a pure function of its explicit
// seeds, so tables regenerate bit-identically (README's promise).
#include <gtest/gtest.h>

#include "bist/functional_bist.hpp"
#include "bist/session.hpp"
#include "circuits/registry.hpp"
#include "netlist/scan.hpp"

namespace fbt {
namespace {

FunctionalBistResult run_once(const Netlist& nl, std::uint64_t seed) {
  FunctionalBistConfig cfg;
  cfg.segment_length = 256;
  cfg.max_segment_failures = 2;
  cfg.max_sequence_failures = 2;
  cfg.bounded = false;
  cfg.rng_seed = seed;
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> det(faults.size(), 0);
  return gen.run(faults, det);
}

TEST(Determinism, GenerationIsAPureFunctionOfTheSeed) {
  const Netlist nl = load_benchmark("s298");
  const FunctionalBistResult a = run_once(nl, 42);
  const FunctionalBistResult b = run_once(nl, 42);
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t s = 0; s < a.sequences.size(); ++s) {
    ASSERT_EQ(a.sequences[s].segments.size(), b.sequences[s].segments.size());
    for (std::size_t g = 0; g < a.sequences[s].segments.size(); ++g) {
      EXPECT_EQ(a.sequences[s].segments[g].seed,
                b.sequences[s].segments[g].seed);
      EXPECT_EQ(a.sequences[s].segments[g].length,
                b.sequences[s].segments[g].length);
    }
  }
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t t = 0; t < a.tests.size(); ++t) {
    EXPECT_EQ(a.tests[t].scan_state, b.tests[t].scan_state);
    EXPECT_EQ(a.tests[t].v1, b.tests[t].v1);
    EXPECT_EQ(a.tests[t].v2, b.tests[t].v2);
  }
  EXPECT_DOUBLE_EQ(a.peak_swa, b.peak_swa);

  const FunctionalBistResult c = run_once(nl, 43);
  EXPECT_NE(a.num_tests * 1000000 + a.num_seeds,
            c.num_tests * 1000000 + c.num_seeds);
}

TEST(Determinism, SessionSignatureIsStableAcrossProcessesInSpirit) {
  // Same plan, two independently constructed sessions: identical signatures
  // and cycle counts (nothing depends on addresses, time, or global state).
  const Netlist nl = load_benchmark("s298");
  const ScanChains scan(nl, {});
  const FunctionalBistResult plan = run_once(nl, 7);
  const SessionReport r1 = run_bist_session(nl, plan, scan, {});
  const SessionReport r2 = run_bist_session(nl, plan, scan, {});
  EXPECT_EQ(r1.signature, r2.signature);
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);
  EXPECT_EQ(r1.tests_applied, r2.tests_applied);
}

}  // namespace
}  // namespace fbt
