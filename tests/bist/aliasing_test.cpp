#include "bist/aliasing.hpp"

#include <gtest/gtest.h>

namespace fbt {
namespace {

TEST(Aliasing, TheoreticalMatchesTwoToMinusN) {
  EXPECT_DOUBLE_EQ(misr_theoretical_aliasing(8), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(misr_theoretical_aliasing(16), 1.0 / 65536.0);
}

// Property: the empirical aliasing rate of a short MISR tracks 2^-n within
// Monte-Carlo noise, and longer MISRs alias strictly less.
TEST(Aliasing, EmpiricalTracksTheory) {
  const double p8 = misr_empirical_aliasing(8, 6, 24, 20000, 11);
  EXPECT_NEAR(p8, 1.0 / 256.0, 2.5e-3);
  const double p16 = misr_empirical_aliasing(16, 6, 24, 20000, 12);
  EXPECT_LT(p16, p8);
  EXPECT_LT(p16, 1.0 / 2000.0);
}

TEST(Aliasing, DeterministicInSeed) {
  EXPECT_DOUBLE_EQ(misr_empirical_aliasing(10, 4, 16, 3000, 5),
                   misr_empirical_aliasing(10, 4, 16, 3000, 5));
}

}  // namespace
}  // namespace fbt
