// Speculative packed candidate-seed search vs the scalar reference loop:
// the accepted seeds, segment lengths, extracted tests, peak SWA, and fault
// credit must be bit-identical for every speculation width, bounded or not,
// across the benchmark registry. Also pins the fallback rules (state holding
// and pattern stores stay scalar) and bounded-trim replayability.
#include <gtest/gtest.h>

#include <vector>

#include "bist/functional_bist.hpp"
#include "bist/signal_transitions.hpp"
#include "bist/tpg.hpp"
#include "circuits/registry.hpp"
#include "sim/seqsim.hpp"

namespace fbt {
namespace {

struct RunOutput {
  FunctionalBistResult result;
  std::vector<std::uint32_t> detect_count;
};

RunOutput run_with_lanes(const Netlist& nl, FunctionalBistConfig cfg,
                         std::size_t lanes) {
  cfg.speculation_lanes = lanes;
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  RunOutput out;
  out.detect_count.assign(faults.size(), 0);
  out.result = gen.run(faults, out.detect_count);
  return out;
}

void expect_identical(const RunOutput& a, const RunOutput& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.result.sequences.size(), b.result.sequences.size());
  for (std::size_t s = 0; s < a.result.sequences.size(); ++s) {
    const auto& sa = a.result.sequences[s].segments;
    const auto& sb = b.result.sequences[s].segments;
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t g = 0; g < sa.size(); ++g) {
      EXPECT_EQ(sa[g].seed, sb[g].seed);
      EXPECT_EQ(sa[g].length, sb[g].length);
      EXPECT_EQ(sa[g].num_tests, sb[g].num_tests);
    }
  }
  ASSERT_EQ(a.result.tests.size(), b.result.tests.size());
  for (std::size_t t = 0; t < a.result.tests.size(); ++t) {
    EXPECT_EQ(a.result.tests[t].scan_state, b.result.tests[t].scan_state);
    EXPECT_EQ(a.result.tests[t].v1, b.result.tests[t].v1);
    EXPECT_EQ(a.result.tests[t].v2, b.result.tests[t].v2);
  }
  EXPECT_EQ(a.result.num_seeds, b.result.num_seeds);
  EXPECT_EQ(a.result.num_tests, b.result.num_tests);
  EXPECT_EQ(a.result.nseg_max, b.result.nseg_max);
  EXPECT_EQ(a.result.lmax, b.result.lmax);
  EXPECT_EQ(a.result.newly_detected, b.result.newly_detected);
  EXPECT_DOUBLE_EQ(a.result.peak_swa, b.result.peak_swa);
  EXPECT_EQ(a.detect_count, b.detect_count);
}

FunctionalBistConfig small_config(bool bounded) {
  FunctionalBistConfig cfg;
  cfg.segment_length = 64;
  cfg.max_segment_failures = 2;
  cfg.max_sequence_failures = 2;
  cfg.bounded = bounded;
  // Tight enough to force violations and trimmed segments on every circuit,
  // loose enough that some segments survive.
  cfg.swa_bound_percent = 30.0;
  cfg.rng_seed = 2026;
  return cfg;
}

TEST(PackedEquivalence, RegistryWideScalarVsPackedAllWidths) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    // Bound the sweep's runtime: the large embedded-set circuits are covered
    // by the seed-search benchmark; equivalence is exercised here on every
    // registry circuit small enough for a multi-config sweep.
    if (spec.num_gates > 1200) continue;
    const Netlist nl = load_benchmark(spec.name);
    for (const bool bounded : {false, true}) {
      const FunctionalBistConfig cfg = small_config(bounded);
      const RunOutput scalar = run_with_lanes(nl, cfg, 1);
      for (const std::size_t lanes : {std::size_t{8}, std::size_t{64}}) {
        const RunOutput packed = run_with_lanes(nl, cfg, lanes);
        expect_identical(scalar, packed,
                         spec.name + (bounded ? "/bounded" : "/unbounded") +
                             "/lanes=" + std::to_string(lanes));
      }
    }
  }
}

TEST(PackedEquivalence, SpeculationEngineActivationRules) {
  const Netlist nl = load_benchmark("s298");
  FunctionalBistConfig cfg = small_config(true);

  cfg.speculation_lanes = 64;
  EXPECT_TRUE(FunctionalBistGenerator(nl, cfg).speculating());
  cfg.speculation_lanes = 1;
  EXPECT_FALSE(FunctionalBistGenerator(nl, cfg).speculating());

  // State holding forces the scalar path regardless of the width.
  cfg.speculation_lanes = 64;
  cfg.hold_period_log2 = 2;
  cfg.hold_set = {0, 1};
  EXPECT_FALSE(FunctionalBistGenerator(nl, cfg).speculating());

  // A signal-transition-pattern store forces it too (it needs full per-cycle
  // line values), but only when the bound is active at all.
  cfg.hold_set.clear();
  cfg.hold_period_log2 = 0;
  TransitionPatternStore store;
  cfg.pattern_store = &store;
  EXPECT_FALSE(FunctionalBistGenerator(nl, cfg).speculating());
  cfg.bounded = false;
  EXPECT_TRUE(FunctionalBistGenerator(nl, cfg).speculating());
}

TEST(PackedEquivalence, HoldSetFallbackStillMatchesScalar) {
  // With state holding both widths run the scalar loop; identical results
  // confirm the fallback does not perturb the seed stream.
  const Netlist nl = load_benchmark("s344");
  FunctionalBistConfig cfg = small_config(true);
  cfg.hold_period_log2 = 2;
  cfg.hold_set = {0, 2};
  const RunOutput a = run_with_lanes(nl, cfg, 1);
  const RunOutput b = run_with_lanes(nl, cfg, 64);
  expect_identical(a, b, "hold-set fallback");
}

TEST(PackedEquivalence, BoundedTrimsLeaveAReplayableTrajectory) {
  // Replays every committed multi-segment sequence from reset using only the
  // recorded (seed, length) pairs and re-derives the tests. This pins the
  // invariant that after a violation-trimmed segment the simulator sits at
  // the end of the usable prefix -- the trajectory the on-chip hardware
  // would actually produce.
  const Netlist nl = load_benchmark("s298");
  const FunctionalBistConfig cfg = small_config(true);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{64}}) {
    const RunOutput out = run_with_lanes(nl, cfg, lanes);
    ASSERT_FALSE(out.result.sequences.empty());
    std::size_t trimmed = 0;

    Tpg tpg(nl, cfg.tpg);
    SeqSim sim(nl);
    std::size_t next_test = 0;
    for (const SequenceRecord& seq : out.result.sequences) {
      sim.load_reset_state();
      for (const SegmentRecord& seg : seq.segments) {
        ASSERT_EQ(seg.length % 2, 0u);
        if (seg.length < cfg.segment_length) ++trimmed;
        tpg.reseed(seg.seed);
        for (std::size_t c = 0; c < seg.length; ++c) {
          const std::vector<std::uint8_t> launch = sim.state();
          const std::vector<std::uint8_t> v1 = tpg.next_vector();
          sim.step(v1);
          const std::vector<std::uint8_t> v2 = tpg.next_vector();
          sim.step(v2);
          ++c;  // consumed two cycles
          ASSERT_LT(next_test, out.result.tests.size());
          const BroadsideTest& t = out.result.tests[next_test++];
          EXPECT_EQ(t.scan_state, launch);
          EXPECT_EQ(t.v1, v1);
          EXPECT_EQ(t.v2, v2);
        }
      }
    }
    EXPECT_EQ(next_test, out.result.tests.size());
    // The config is tight enough that at least one segment was trimmed, so
    // the replay actually crossed a post-violation boundary.
    EXPECT_GT(trimmed, 0u) << "lanes=" << lanes;
  }
}

}  // namespace
}  // namespace fbt
