#include "bist/state_holding.hpp"

#include <gtest/gtest.h>

#include <set>

#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "circuits/s27.hpp"

namespace fbt {
namespace {

HoldSelectionConfig small_hold_config() {
  HoldSelectionConfig cfg;
  cfg.tree_height = 2;
  cfg.hold_period_log2 = 2;
  cfg.eval.segment_length = 150;
  cfg.eval.max_segment_failures = 1;
  cfg.eval.max_sequence_failures = 1;
  cfg.eval.bounded = false;
  cfg.commit.segment_length = 150;
  cfg.commit.max_segment_failures = 2;
  cfg.commit.max_sequence_failures = 2;
  cfg.commit.bounded = false;
  return cfg;
}

TEST(StateHolding, SelectedSetsAreNonOverlapping) {
  const Netlist nl = load_benchmark("s298");
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);

  // Phase 1: plain functional generation to build the residual set Fr.
  {
    FunctionalBistConfig cfg;
    cfg.segment_length = 200;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    cfg.rng_seed = 3;
    FunctionalBistGenerator gen(nl, cfg);
    gen.run(faults, detect);
  }
  const std::vector<std::uint32_t> before = detect;

  const HoldSelectionResult result = select_and_run_hold_sets(
      nl, faults, detect, small_hold_config(), /*rng_seed=*/5);

  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const HoldSetRun& run : result.selected) {
    EXPECT_FALSE(run.flops.empty());
    for (const std::size_t flop : run.flops) {
      EXPECT_LT(flop, nl.num_flops());
      EXPECT_TRUE(seen.insert(flop).second) << "flop " << flop << " reused";
      ++total;
    }
  }
  EXPECT_EQ(result.total_held_flops, total);

  // Detection credit is monotone: nothing detected before may be lost.
  std::size_t recovered = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    EXPECT_GE(detect[f], before[f]);
    if (before[f] == 0 && detect[f] >= 1) ++recovered;
  }
  EXPECT_EQ(recovered, result.newly_detected);
}

TEST(StateHolding, NoFlopsMeansNoSelection) {
  const Netlist nl = make_buffers_block(4);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const HoldSelectionResult result = select_and_run_hold_sets(
      nl, faults, detect, small_hold_config(), 1);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.newly_detected, 0u);
}

TEST(StateHolding, FullyDetectedResidualSelectsNothing) {
  const Netlist nl = make_s27();
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  // Pretend every fault is already detected: Det is 0 everywhere.
  std::vector<std::uint32_t> detect(faults.size(), 1);
  const HoldSelectionResult result = select_and_run_hold_sets(
      nl, faults, detect, small_hold_config(), 9);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.newly_detected, 0u);
}

TEST(StateHolding, AggregatesAreConsistent) {
  const Netlist nl = load_benchmark("s298");
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  {
    FunctionalBistConfig cfg;
    cfg.segment_length = 200;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    FunctionalBistGenerator gen(nl, cfg);
    gen.run(faults, detect);
  }
  const HoldSelectionResult result = select_and_run_hold_sets(
      nl, faults, detect, small_hold_config(), 17);
  std::size_t seqs = 0;
  std::size_t seeds = 0;
  std::size_t tests = 0;
  for (const HoldSetRun& run : result.selected) {
    seqs += run.result.sequences.size();
    seeds += run.result.num_seeds;
    tests += run.result.num_tests;
  }
  EXPECT_EQ(result.num_sequences, seqs);
  EXPECT_EQ(result.num_seeds, seeds);
  EXPECT_EQ(result.num_tests, tests);
}

}  // namespace
}  // namespace fbt
