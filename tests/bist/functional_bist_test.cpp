#include "bist/functional_bist.hpp"

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "sim/seqsim.hpp"

namespace fbt {
namespace {

FunctionalBistConfig small_config() {
  FunctionalBistConfig cfg;
  cfg.segment_length = 200;
  cfg.max_segment_failures = 2;
  cfg.max_sequence_failures = 2;
  cfg.bounded = false;
  cfg.rng_seed = 11;
  return cfg;
}

// The central property of the target paper: every generated test is a
// *functional broadside test* -- its scan-in state lies on a functional-mode
// trajectory from the reachable reset state, and its second state is the
// circuit's broadside response to the first pattern.
TEST(FunctionalBist, TestsAreFunctionalBroadsideTests) {
  const Netlist nl = make_s27();
  FunctionalBistGenerator gen(nl, small_config());
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);
  ASSERT_GT(run.num_tests, 0u);

  // Replay each sequence functionally and confirm the tests are cut from the
  // trajectory.
  Tpg tpg(nl, small_config().tpg);
  std::size_t test_index = 0;
  for (const SequenceRecord& seq : run.sequences) {
    SeqSim sim(nl);
    sim.load_reset_state();
    for (const SegmentRecord& seg : seq.segments) {
      tpg.reseed(seg.seed);
      for (std::size_t c = 0; c < seg.length; ++c) {
        const auto pi = tpg.next_vector();
        if (c % 2 == 0) {
          ASSERT_LT(test_index, run.tests.size());
          const BroadsideTest& t = run.tests[test_index];
          EXPECT_EQ(t.scan_state, sim.state());
          EXPECT_EQ(t.v1, pi);
        } else {
          EXPECT_EQ(run.tests[test_index].v2, pi);
          ++test_index;
        }
        sim.step(pi);
      }
    }
  }
  EXPECT_EQ(test_index, run.num_tests);

  // And the broadside property: s2 is the response to <s1, v1> (no state
  // holding in this configuration).
  for (const BroadsideTest& t : run.tests) {
    EXPECT_TRUE(t.state2_override.empty());
  }
}

TEST(FunctionalBist, DetectsFaultsAndReportsCoverage) {
  const Netlist nl = make_s27();
  FunctionalBistGenerator gen(nl, small_config());
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);

  std::size_t detected = 0;
  for (const std::uint32_t c : detect) detected += (c >= 1);
  EXPECT_EQ(detected, run.newly_detected);
  EXPECT_GT(detected, faults.size() / 4);

  // Re-grading the returned tests reproduces the same detection set.
  BroadsideFaultSim fsim(nl);
  std::vector<std::uint32_t> regraded(faults.size(), 0);
  fsim.grade(run.tests, faults, regraded, 1);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    EXPECT_EQ(regraded[f] >= 1, detect[f] >= 1) << fault_name(nl, faults.fault(f));
  }
}

TEST(FunctionalBist, EverySegmentEarnsItsKeep) {
  // Each committed segment must have detected at least one new fault at the
  // time it was committed, so #segments <= #detected faults.
  const Netlist nl = make_s27();
  FunctionalBistGenerator gen(nl, small_config());
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);
  EXPECT_LE(run.num_seeds, run.newly_detected);
  EXPECT_EQ(run.num_tests, run.tests.size());
  std::size_t seg_count = 0;
  for (const auto& seq : run.sequences) seg_count += seq.segments.size();
  EXPECT_EQ(run.num_seeds, seg_count);
}

TEST(FunctionalBist, SwaBoundIsRespected) {
  const Netlist nl = load_benchmark("s386");
  FunctionalBistConfig cfg = small_config();
  cfg.bounded = true;
  cfg.segment_length = 300;
  // Measure the unbounded peak first, then constrain to 85% of it.
  {
    FunctionalBistConfig probe = cfg;
    probe.bounded = false;
    FunctionalBistGenerator gen(nl, probe);
    const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
    std::vector<std::uint32_t> detect(faults.size(), 0);
    const FunctionalBistResult unbounded = gen.run(faults, detect);
    ASSERT_GT(unbounded.peak_swa, 0.0);
    cfg.swa_bound_percent = 0.85 * unbounded.peak_swa;
  }
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult bounded = gen.run(faults, detect);
  EXPECT_LE(bounded.peak_swa, cfg.swa_bound_percent + 1e-9);
  if (bounded.num_tests > 0) {
    EXPECT_GT(bounded.num_seeds, 0u);
  }
}

TEST(FunctionalBist, TighterBoundNeverHelpsCoverage) {
  const Netlist nl = load_benchmark("s386");
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);

  auto coverage_at = [&](double bound, bool bounded) {
    FunctionalBistConfig cfg = small_config();
    cfg.segment_length = 300;
    cfg.bounded = bounded;
    cfg.swa_bound_percent = bound;
    FunctionalBistGenerator gen(nl, cfg);
    std::vector<std::uint32_t> detect(faults.size(), 0);
    gen.run(faults, detect);
    std::size_t detected = 0;
    for (const std::uint32_t c : detect) detected += (c >= 1);
    return detected;
  };
  const std::size_t unbounded = coverage_at(100.0, false);
  const std::size_t tight = coverage_at(12.0, true);
  EXPECT_LE(tight, unbounded);
}

TEST(FunctionalBist, SegmentLengthsAreEvenAndBounded) {
  const Netlist nl = make_s27();
  FunctionalBistConfig cfg = small_config();
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);
  for (const auto& seq : run.sequences) {
    for (const auto& seg : seq.segments) {
      EXPECT_EQ(seg.length % 2, 0u);
      EXPECT_LE(seg.length, cfg.segment_length);
      EXPECT_EQ(seg.num_tests, seg.length / 2);
    }
  }
  EXPECT_LE(run.lmax, cfg.segment_length);
}

TEST(FunctionalBist, HoldingProducesOverriddenStates) {
  const Netlist nl = load_benchmark("s298");
  FunctionalBistConfig cfg = small_config();
  cfg.hold_period_log2 = 2;
  cfg.hold_set = {0, 1, 2, 3, 4};
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);
  std::size_t overridden = 0;
  for (const BroadsideTest& t : run.tests) {
    ASSERT_FALSE(t.state2_override.empty());
    const auto natural = second_state(nl, t);
    if (t.state2_override != natural) {
      ++overridden;
      // Only held flops may deviate from the broadside response.
      for (std::size_t i = 0; i < natural.size(); ++i) {
        if (t.state2_override[i] != natural[i]) {
          EXPECT_TRUE(std::find(cfg.hold_set.begin(), cfg.hold_set.end(), i) !=
                      cfg.hold_set.end());
        }
      }
    }
  }
  if (!run.tests.empty()) {
    EXPECT_GT(overridden, 0u);  // holding must actually bite somewhere
  }
}

}  // namespace
}  // namespace fbt
