#include "bist/session.hpp"

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"

namespace fbt {
namespace {

struct SessionFixture {
  Netlist netlist;
  ScanChains scan;
  FunctionalBistResult plan;
  TransitionFaultList faults;
  std::vector<std::uint32_t> detect;

  explicit SessionFixture(const std::string& name)
      : netlist(load_benchmark(name)),
        scan(netlist, ScanConfig{}),
        faults(TransitionFaultList::collapsed(netlist)) {
    FunctionalBistConfig cfg;
    cfg.segment_length = 120;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    cfg.rng_seed = 21;
    FunctionalBistGenerator gen(netlist, cfg);
    detect.assign(faults.size(), 0);
    plan = gen.run(faults, detect);
  }
};

TEST(Session, GoldenSignatureIsDeterministic) {
  SessionFixture fx("s27");
  ASSERT_GT(fx.plan.num_tests, 0u);
  const SessionReport a =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  const SessionReport b =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.tests_applied, fx.plan.num_tests);
  EXPECT_GT(a.shift_cycles, 0u);
  EXPECT_GT(a.functional_cycles, 0u);
  EXPECT_GT(a.total_cycles, a.functional_cycles + a.shift_cycles);
}

TEST(Session, DetectedFaultChangesTheSignature) {
  SessionFixture fx("s27");
  ASSERT_GT(fx.plan.num_tests, 0u);
  const SessionReport golden =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});

  // Pick faults the generated tests detect; their injection must change the
  // signature (the MISR sees a differing response stream).
  std::size_t checked = 0;
  std::size_t flagged = 0;
  for (std::size_t f = 0; f < fx.faults.size() && checked < 10; ++f) {
    if (fx.detect[f] == 0) continue;
    ++checked;
    const TransitionFault& tf = fx.faults.fault(f);
    const SessionReport faulty = run_bist_session(
        fx.netlist, fx.plan, fx.scan, SessionConfig{}, tf.line, tf.rising);
    if (faulty.signature != golden.signature) ++flagged;
  }
  ASSERT_GT(checked, 0u);
  // The session's temporal gross-delay model is slightly stronger than the
  // two-pattern abstraction, so allow rare aliasing but require the vast
  // majority to flag.
  EXPECT_GE(flagged + 1, checked);
}

TEST(Session, FaultFreeInjectionSiteNoNodeMatchesGolden) {
  SessionFixture fx("s27");
  const SessionReport golden =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  const SessionReport same = run_bist_session(
      fx.netlist, fx.plan, fx.scan, SessionConfig{}, kNoNode, true);
  EXPECT_EQ(golden.signature, same.signature);
}

TEST(Session, CycleAccountingMatchesPlan) {
  SessionFixture fx("s298");
  const SessionReport report =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  std::size_t functional = 0;
  for (const auto& seq : fx.plan.sequences) {
    for (const auto& seg : seq.segments) functional += seg.length;
  }
  EXPECT_EQ(report.functional_cycles, functional);
  EXPECT_EQ(report.shift_cycles,
            fx.plan.num_tests * fx.scan.longest_length());
}

}  // namespace
}  // namespace fbt
