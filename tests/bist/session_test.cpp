#include "bist/session.hpp"

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"
#include "fault/fault_sim.hpp"
#include "util/require.hpp"

namespace fbt {
namespace {

struct SessionFixture {
  Netlist netlist;
  ScanChains scan;
  FunctionalBistResult plan;
  TransitionFaultList faults;
  std::vector<std::uint32_t> detect;

  explicit SessionFixture(const std::string& name)
      : netlist(load_benchmark(name)),
        scan(netlist, ScanConfig{}),
        faults(TransitionFaultList::collapsed(netlist)) {
    FunctionalBistConfig cfg;
    cfg.segment_length = 120;
    cfg.max_segment_failures = 2;
    cfg.max_sequence_failures = 2;
    cfg.bounded = false;
    cfg.rng_seed = 21;
    FunctionalBistGenerator gen(netlist, cfg);
    detect.assign(faults.size(), 0);
    plan = gen.run(faults, detect);
  }
};

TEST(Session, GoldenSignatureIsDeterministic) {
  SessionFixture fx("s27");
  ASSERT_GT(fx.plan.num_tests, 0u);
  const SessionReport a =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  const SessionReport b =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.tests_applied, fx.plan.num_tests);
  EXPECT_GT(a.shift_cycles, 0u);
  EXPECT_GT(a.functional_cycles, 0u);
  EXPECT_GT(a.total_cycles, a.functional_cycles + a.shift_cycles);
}

TEST(Session, DetectedFaultChangesTheSignature) {
  SessionFixture fx("s27");
  ASSERT_GT(fx.plan.num_tests, 0u);
  const SessionReport golden =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});

  // Pick faults the generated tests detect; their injection must change the
  // signature (the MISR sees a differing response stream).
  std::size_t checked = 0;
  std::size_t flagged = 0;
  for (std::size_t f = 0; f < fx.faults.size() && checked < 10; ++f) {
    if (fx.detect[f] == 0) continue;
    ++checked;
    const TransitionFault& tf = fx.faults.fault(f);
    const SessionReport faulty = run_bist_session(
        fx.netlist, fx.plan, fx.scan, SessionConfig{}, tf.line, tf.rising);
    if (faulty.signature != golden.signature) ++flagged;
  }
  ASSERT_GT(checked, 0u);
  // The session's temporal gross-delay model is slightly stronger than the
  // two-pattern abstraction, so allow rare aliasing but require the vast
  // majority to flag.
  EXPECT_GE(flagged + 1, checked);
}

TEST(Session, FaultFreeInjectionSiteNoNodeMatchesGolden) {
  SessionFixture fx("s27");
  const SessionReport golden =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  const SessionReport same = run_bist_session(
      fx.netlist, fx.plan, fx.scan, SessionConfig{}, kNoNode, true);
  EXPECT_EQ(golden.signature, same.signature);
}

TEST(Session, CycleAccountingMatchesPlan) {
  SessionFixture fx("s298");
  const SessionReport report =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});
  std::size_t functional = 0;
  for (const auto& seq : fx.plan.sequences) {
    for (const auto& seg : seq.segments) functional += seg.length;
  }
  EXPECT_EQ(report.functional_cycles, functional);
  EXPECT_EQ(report.shift_cycles,
            fx.plan.num_tests * fx.scan.longest_length());
}

// Counts what a SessionObserver sees so the waveform bookkeeping can be
// checked against the report.
struct CountingObserver final : SessionObserver {
  std::size_t cycles = 0;
  std::size_t captures = 0;
  std::size_t apply_cycles = 0;
  std::size_t last_index = 0;
  std::uint32_t last_misr = 0;
  bool indices_monotone = true;

  void on_cycle(const SessionCycle& cycle) override {
    if (cycles > 0 && cycle.index != last_index + 1) indices_monotone = false;
    last_index = cycle.index;
    ++cycles;
    if (cycle.capture) ++captures;
    if (cycle.mode == BistMode::kApply) {
      ++apply_cycles;
      EXPECT_FALSE(cycle.pi.empty());
      EXPECT_FALSE(cycle.state.empty());
    } else {
      EXPECT_TRUE(cycle.pi.empty());
      EXPECT_TRUE(cycle.state.empty());
    }
    last_misr = cycle.misr;
  }
};

TEST(Session, ObserverSeesEveryCycleAndTheFinalSignature) {
  SessionFixture fx("s27");
  ASSERT_GT(fx.plan.num_tests, 0u);
  CountingObserver obs;
  const SessionReport report =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{}, kNoNode,
                       true, &obs);
  EXPECT_EQ(obs.cycles, report.total_cycles);
  EXPECT_TRUE(obs.indices_monotone);
  EXPECT_EQ(obs.apply_cycles, report.functional_cycles);
  // With q = 1 every second apply cycle captures.
  EXPECT_EQ(obs.captures, report.functional_cycles / 2);
  EXPECT_EQ(obs.last_misr, report.signature);
}

TEST(Session, HoldingAStateVariableChangesTheTrajectory) {
  SessionFixture fx("s298");
  ASSERT_GT(fx.plan.num_tests, 0u);
  const SessionReport plain =
      run_bist_session(fx.netlist, fx.plan, fx.scan, SessionConfig{});

  SessionConfig held;
  held.hold_period_log2 = 1;
  held.hold_sets.assign(1, {});
  for (std::size_t f = 0; f < fx.netlist.num_flops(); ++f) {
    held.hold_sets[0].push_back(f);
  }
  held.hold_set_of_sequence.assign(fx.plan.sequences.size(), 0);
  const SessionReport gated =
      run_bist_session(fx.netlist, fx.plan, fx.scan, held);
  // Same cycle accounting, different response stream: holding every state
  // variable on the strobe steers the circuit off the functional trajectory.
  EXPECT_EQ(gated.total_cycles, plain.total_cycles);
  EXPECT_EQ(gated.tests_applied, plain.tests_applied);
  EXPECT_NE(gated.signature, plain.signature);

  // A sequence past hold_set_of_sequence's end runs unheld: restricting the
  // mapping to no sequences reproduces the plain signature exactly.
  SessionConfig unmapped = held;
  unmapped.hold_set_of_sequence.clear();
  const SessionReport same =
      run_bist_session(fx.netlist, fx.plan, fx.scan, unmapped);
  EXPECT_EQ(same.signature, plain.signature);
}

TEST(Session, HoldConfigIsValidated) {
  SessionFixture fx("s27");
  SessionConfig bad;
  bad.hold_sets = {{0}};
  bad.hold_set_of_sequence = {0};
  // hold sets without a period are a configuration error.
  EXPECT_THROW(run_bist_session(fx.netlist, fx.plan, fx.scan, bad), Error);

  bad.hold_period_log2 = 1;
  bad.hold_sets = {{fx.netlist.num_flops()}};  // flop index out of range
  EXPECT_THROW(run_bist_session(fx.netlist, fx.plan, fx.scan, bad), Error);
}

}  // namespace
}  // namespace fbt
