#include "bist/counters.hpp"

#include <gtest/gtest.h>

namespace fbt {
namespace {

TEST(Counters, BitsForCoversTheRange) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(1000), 10u);
  EXPECT_EQ(bits_for(1023), 10u);
  EXPECT_EQ(bits_for(1024), 11u);
}

TEST(Counters, UpCounterWraps) {
  UpCounter c(3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(i));
    c.tick();
  }
  EXPECT_EQ(c.value(), 0u);  // wrapped at 2^3
}

// Fig. 4.6: the apply strobe fires every 2^q cycles; with q = 1 it is simply
// the inverted low bit, so a test is applied every 2 clock cycles.
TEST(Counters, ApplySignalEveryTwoCyclesWhenQIsOne) {
  UpCounter c(8);
  int strobes = 0;
  for (int i = 0; i < 16; ++i) {
    if (apply_signal(c, 1)) ++strobes;
    c.tick();
  }
  EXPECT_EQ(strobes, 8);
}

TEST(Counters, ApplySignalPeriodMatchesQ) {
  for (unsigned q = 1; q <= 4; ++q) {
    UpCounter c(10);
    int strobes = 0;
    const int cycles = 1 << 6;
    for (int i = 0; i < cycles; ++i) {
      if (apply_signal(c, q)) ++strobes;
      c.tick();
    }
    EXPECT_EQ(strobes, cycles >> q) << "q=" << q;
  }
}

// Fig. 4.11: hold enable every 2^h cycles; §4.6 uses h = 2 (every 4 cycles).
TEST(Counters, HoldEnableEveryFourCyclesWhenHIsTwo) {
  UpCounter c(10);
  std::vector<int> fired;
  for (int i = 0; i < 12; ++i) {
    if (hold_enable(c, 2)) fired.push_back(i);
    c.tick();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 4, 8}));
}

// The capture transition of a test applied at even cycle k is k+1 -> k+2;
// with h >= 1 the hold strobe fires only at even cycles, so it can never
// coincide with a capture transition (§4.5.1's requirement).
TEST(Counters, HoldNeverCoincidesWithCapture) {
  UpCounter c(12);
  for (int i = 0; i < 256; ++i) {
    const bool hold = hold_enable(c, 2);
    const bool is_capture_cycle = (c.value() % 2) == 1;
    EXPECT_FALSE(hold && is_capture_cycle);
    c.tick();
  }
}

TEST(Counters, DecoderSelectsExactlyOneLine) {
  SetDecoder dec(6);
  UpCounter set_counter(dec.select_bits());
  for (std::size_t sel = 0; sel < 6; ++sel) {
    int active = 0;
    for (std::size_t line = 0; line < dec.outputs(); ++line) {
      if (dec.line(line, sel, /*hold_en=*/true)) ++active;
      EXPECT_FALSE(dec.line(line, sel, /*hold_en=*/false));
    }
    EXPECT_EQ(active, 1);
  }
}

}  // namespace
}  // namespace fbt
