#include "bist/tpg_variants.hpp"

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"

namespace fbt {
namespace {

TEST(WeightedTpg, WeightsAreRealizedEmpirically) {
  const Netlist nl = load_benchmark("s298");
  WeightedTpg tpg(nl, 24, 3, 7);
  ASSERT_EQ(tpg.num_sets(), 3u);
  // Set 0 is balanced.
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    EXPECT_EQ(tpg.weight(0, i), 4u);
  }
  // Exercise each set and check the empirical P(1) against weight/8.
  for (std::size_t set = 0; set < 3; ++set) {
    // reseed cycles through the sets in order.
    WeightedTpg fresh(nl, 24, 3, 7);
    for (std::size_t skip = 0; skip < set; ++skip) fresh.reseed(1);
    fresh.reseed(12345);
    ASSERT_EQ(fresh.active_set(), set);
    const std::size_t trials = 8000;
    std::vector<std::size_t> ones(nl.num_inputs(), 0);
    for (std::size_t t = 0; t < trials; ++t) {
      const auto v = fresh.next_vector();
      for (std::size_t i = 0; i < v.size(); ++i) ones[i] += v[i];
    }
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const double expected = fresh.weight(set, i) / 8.0;
      EXPECT_NEAR(static_cast<double>(ones[i]) / trials, expected, 0.04)
          << "set " << set << " input " << i;
    }
  }
}

TEST(WeightedTpg, ReseedCyclesThroughSets) {
  const Netlist nl = make_s27();
  WeightedTpg tpg(nl, 16, 4, 3);
  for (int round = 0; round < 8; ++round) {
    tpg.reseed(100 + round);
    EXPECT_EQ(tpg.active_set(), static_cast<std::size_t>(round % 4));
  }
}

TEST(BitFlippingTpg, DeterministicAndDifferentFromPlainLfsr) {
  const Netlist nl = make_s27();
  BitFlippingTpg a(nl, 16, 5);
  BitFlippingTpg b(nl, 16, 5);
  a.reseed(77);
  b.reseed(77);
  bool any_flip_effect = false;
  Lfsr plain(16);
  plain.seed(77);
  for (int c = 0; c < 64; ++c) {
    const auto va = a.next_vector();
    EXPECT_EQ(va, b.next_vector());
    for (std::size_t i = 0; i < va.size(); ++i) {
      plain.step();
      if (va[i] != (plain.output() ? 1 : 0)) any_flip_effect = true;
    }
  }
  EXPECT_TRUE(any_flip_effect);  // the flip function actually bites
}

TEST(PatternSource, CubeAdapterMatchesTpg) {
  const Netlist nl = make_s27();
  CubeTpgSource source(nl, {});
  Tpg reference(nl, {});
  source.reseed(9);
  reference.reseed(9);
  for (int c = 0; c < 50; ++c) {
    EXPECT_EQ(source.next_vector(), reference.next_vector());
  }
}

}  // namespace
}  // namespace fbt
