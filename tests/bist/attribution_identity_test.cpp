// First-detect attribution identity: the (sequence, segment, test, seed)
// recorded for every fault's first detection must be bit-identical across
// num_threads in {1, 2, hardware} and speculation_lanes in {1, 64} -- the
// acceptance criterion for the provenance layer. Also pins the sentinel and
// consistency invariants of the attribution table itself.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bist/functional_bist.hpp"
#include "circuits/registry.hpp"
#include "jobs/job_system.hpp"

namespace fbt {
namespace {

struct RunOutput {
  FunctionalBistResult result;
  std::vector<std::uint32_t> detect_count;
};

RunOutput run_generator(const Netlist& nl, FunctionalBistConfig cfg,
                        std::size_t threads, std::size_t lanes) {
  cfg.num_threads = threads;
  cfg.speculation_lanes = lanes;
  FunctionalBistGenerator gen(nl, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  RunOutput out;
  out.detect_count.assign(faults.size(), 0);
  out.result = gen.run(faults, out.detect_count);
  return out;
}

FunctionalBistConfig small_config() {
  FunctionalBistConfig cfg;
  cfg.segment_length = 64;
  cfg.max_segment_failures = 2;
  cfg.max_sequence_failures = 2;
  cfg.bounded = true;
  cfg.swa_bound_percent = 30.0;
  cfg.rng_seed = 2026;
  return cfg;
}

std::vector<std::size_t> thread_counts_under_test() {
  const std::size_t hw = jobs::JobSystem::resolve_threads(0);
  std::vector<std::size_t> counts = {1, 2};
  if (hw != 1 && hw != 2) counts.push_back(hw);
  return counts;
}

TEST(AttributionIdentity, RegistryWideAcrossThreadsAndLanes) {
  for (const BenchmarkSpec& spec : benchmark_registry()) {
    if (spec.num_gates > 1200) continue;  // sweep cost; same cut as packed eq.
    const Netlist nl = load_benchmark(spec.name);
    const FunctionalBistConfig cfg = small_config();
    const RunOutput reference = run_generator(nl, cfg, 1, 1);
    ASSERT_FALSE(reference.result.first_detect.empty()) << spec.name;

    for (const std::size_t threads : thread_counts_under_test()) {
      for (const std::size_t lanes : {std::size_t{1}, std::size_t{64}}) {
        if (threads == 1 && lanes == 1) continue;
        const RunOutput run = run_generator(nl, cfg, threads, lanes);
        EXPECT_EQ(run.result.first_detect, reference.result.first_detect)
            << spec.name << " threads=" << threads << " lanes=" << lanes;
        EXPECT_EQ(run.detect_count, reference.detect_count)
            << spec.name << " threads=" << threads << " lanes=" << lanes;
      }
    }
  }
}

TEST(AttributionIdentity, AttributionIsConsistentWithTheResult) {
  const Netlist nl = load_benchmark("s298");
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  const RunOutput out = run_generator(nl, small_config(), 2, 64);
  ASSERT_EQ(out.result.first_detect.size(), faults.size());

  std::size_t attributed = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const FaultFirstDetect& fd = out.result.first_detect[f];
    if (fd.sequence < 0) {
      // Sentinel entries are all-sentinel.
      EXPECT_EQ(fd.segment, -1);
      EXPECT_EQ(fd.test, -1);
      continue;
    }
    ++attributed;
    // Detected faults carry credit, and the pointers land inside the run.
    EXPECT_GT(out.detect_count[f], 0u);
    ASSERT_LT(static_cast<std::size_t>(fd.sequence),
              out.result.sequences.size());
    const SequenceRecord& seq =
        out.result.sequences[static_cast<std::size_t>(fd.sequence)];
    ASSERT_LT(static_cast<std::size_t>(fd.segment), seq.segments.size());
    EXPECT_EQ(seq.segments[static_cast<std::size_t>(fd.segment)].seed, fd.seed);
    EXPECT_GE(fd.test, 0);
    EXPECT_LT(fd.test, static_cast<std::int64_t>(out.result.num_tests));
  }
  // The construction run detects faults, and every newly detected fault is
  // attributed to the segment that first caught it.
  EXPECT_GT(attributed, 0u);
  EXPECT_GE(attributed, out.result.newly_detected);
}

TEST(AttributionIdentity, PreDetectedFaultsKeepSentinels) {
  const Netlist nl = load_benchmark("s298");
  const TransitionFaultList faults = TransitionFaultList::collapsed(nl);
  FunctionalBistConfig cfg = small_config();
  FunctionalBistGenerator gen(nl, cfg);
  // Saturate every fault before the run: nothing is newly detected, so no
  // fault may claim attribution.
  std::vector<std::uint32_t> detect_count(faults.size(), cfg.detect_limit);
  const FunctionalBistResult result = gen.run(faults, detect_count);
  for (const FaultFirstDetect& fd : result.first_detect) {
    EXPECT_EQ(fd, FaultFirstDetect{});
  }
}

}  // namespace
}  // namespace fbt
