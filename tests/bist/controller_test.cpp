#include "bist/controller.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fbt {
namespace {

BistControllerPlan small_plan() {
  BistControllerPlan plan;
  plan.shift_register_size = 5;
  plan.scan_length = 3;
  plan.sequences = {{4, 2}, {2}};  // two sequences; first has two segments
  plan.q = 1;
  return plan;
}

TEST(Controller, RunsTheFullModeSchedule) {
  BistController ctrl(small_plan());
  std::map<BistMode, std::size_t> cycles;
  std::size_t guard = 0;
  while (!ctrl.done()) {
    ASSERT_LT(guard++, 1000u);
    ++cycles[ctrl.tick()];
  }
  // Circuit init: once per sequence (2 x 3 cycles).
  EXPECT_EQ(cycles[BistMode::kCircuitInit], 2 * 3u);
  // Seed load + SR init: once per segment (3 segments).
  EXPECT_EQ(cycles[BistMode::kSeedLoad], 3u);
  EXPECT_EQ(cycles[BistMode::kShiftRegInit], 3 * 5u);
  // Apply: total functional cycles = 4 + 2 + 2.
  EXPECT_EQ(cycles[BistMode::kApply], 8u);
  // Circular shift after every capture (q = 1 -> one capture per 2 cycles):
  // 4 captures x 3 cycles.
  EXPECT_EQ(cycles[BistMode::kCircularShift], 4 * 3u);
  EXPECT_EQ(ctrl.total_cycles(),
            cycles[BistMode::kCircuitInit] + cycles[BistMode::kSeedLoad] +
                cycles[BistMode::kShiftRegInit] + cycles[BistMode::kApply] +
                cycles[BistMode::kCircularShift]);
}

TEST(Controller, ClockGatingFollowsTheModes) {
  BistController ctrl(small_plan());
  std::size_t guard = 0;
  while (!ctrl.done()) {
    ASSERT_LT(guard++, 1000u);
    const BistMode mode = ctrl.mode();
    const ClockEnables en = ctrl.enables();
    switch (mode) {
      case BistMode::kSeedLoad:
      case BistMode::kShiftRegInit:
        EXPECT_TRUE(en.tpg);
        EXPECT_FALSE(en.circuit);  // state held during reseeding (§4.4)
        break;
      case BistMode::kApply:
        EXPECT_TRUE(en.tpg);
        EXPECT_TRUE(en.circuit);
        break;
      case BistMode::kCircularShift:
        EXPECT_FALSE(en.tpg);
        EXPECT_TRUE(en.circuit);
        break;
      default:
        break;
    }
    ctrl.tick();
  }
}

TEST(Controller, CapturesEverySecondApplyCycleWhenQIsOne) {
  BistController ctrl(small_plan());
  std::size_t applies = 0;
  std::size_t captures = 0;
  std::size_t guard = 0;
  while (!ctrl.done()) {
    ASSERT_LT(guard++, 1000u);
    if (ctrl.mode() == BistMode::kApply) {
      ++applies;
      if (ctrl.at_capture()) ++captures;
    }
    ctrl.tick();
  }
  EXPECT_EQ(applies, 8u);
  EXPECT_EQ(captures, 4u);
}

TEST(Controller, FloplessBlockSkipsShiftPhases) {
  BistControllerPlan plan;
  plan.shift_register_size = 4;
  plan.scan_length = 0;  // no flops: no circuit init, no circular shift
  plan.sequences = {{4}};
  BistController ctrl(plan);
  std::map<BistMode, std::size_t> cycles;
  std::size_t guard = 0;
  while (!ctrl.done()) {
    ASSERT_LT(guard++, 100u);
    ++cycles[ctrl.tick()];
  }
  EXPECT_EQ(cycles[BistMode::kCircuitInit], 0u);
  EXPECT_EQ(cycles[BistMode::kCircularShift], 0u);
  EXPECT_EQ(cycles[BistMode::kApply], 4u);
}

TEST(Controller, EmptyPlanIsDoneImmediately) {
  BistController ctrl(BistControllerPlan{});
  EXPECT_TRUE(ctrl.done());
  EXPECT_EQ(ctrl.tick(), BistMode::kDone);
  EXPECT_EQ(ctrl.total_cycles(), 0u);
}

}  // namespace
}  // namespace fbt
