#include "bist/signal_transitions.hpp"

#include <gtest/gtest.h>

#include "bist/embedded.hpp"
#include "bist/functional_bist.hpp"
#include "circuits/registry.hpp"
#include "circuits/synth.hpp"
#include "fault/fault.hpp"
#include "sim/seqsim.hpp"
#include "util/rng.hpp"

namespace fbt {
namespace {

TEST(TransitionPattern, SubsetSemantics) {
  TransitionPattern a(10);
  TransitionPattern b(10);
  a.mark(2, true);
  a.mark(5, false);
  b.mark(2, true);
  b.mark(5, false);
  b.mark(7, true);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
  // Direction matters: the same line with the opposite direction is not a
  // subset.
  TransitionPattern c(10);
  c.mark(2, false);
  EXPECT_FALSE(c.subset_of(b));
}

TEST(TransitionPattern, MadeFromValueVectors) {
  const std::vector<std::uint8_t> prev{0, 1, 1, 0};
  const std::vector<std::uint8_t> cur{1, 1, 0, 0};
  const TransitionPattern p = make_transition_pattern(prev, cur);
  EXPECT_EQ(p.switching_lines(), 2u);
  TransitionPattern expected(4);
  expected.mark(0, true);   // 0 -> 1
  expected.mark(2, false);  // 1 -> 0
  EXPECT_TRUE(p.subset_of(expected));
  EXPECT_TRUE(expected.subset_of(p));
}

TEST(TransitionPatternStore, RecordsAndAdmits) {
  TransitionPatternStore store(16);
  TransitionPattern big(8);
  big.mark(1, true);
  big.mark(3, false);
  big.mark(6, true);
  EXPECT_TRUE(store.record(big));
  // A subset pattern is admitted and not stored again.
  TransitionPattern small(8);
  small.mark(1, true);
  small.mark(6, true);
  EXPECT_TRUE(store.admits(small));
  EXPECT_FALSE(store.record(small));
  // A pattern with a new direction is rejected.
  TransitionPattern other(8);
  other.mark(1, false);
  EXPECT_FALSE(store.admits(other));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TransitionPatternStore, CapIsHonoured) {
  TransitionPatternStore store(2);
  for (int i = 0; i < 5; ++i) {
    TransitionPattern p(16);
    p.mark(static_cast<NodeId>(i), true);
    store.record(p);
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.saturated());
}

// Integration property (§5.1): generation under the pattern bound emits only
// cycles whose PST is functionally observed -- and therefore its tests are a
// subset of what SWA-bounded generation can reach.
TEST(TransitionPatternStore, PatternBoundedGenerationIsAdmissible) {
  const Netlist target = load_benchmark("s298");
  const Netlist driver = load_benchmark("s386");
  SwaCalibrationConfig cal;
  cal.num_sequences = 4;
  cal.sequence_length = 600;
  const FunctionalProfile profile =
      measure_functional_profile(target, driver, cal, 2048);
  ASSERT_GT(profile.patterns.size(), 0u);

  FunctionalBistConfig cfg;
  cfg.segment_length = 200;
  cfg.max_segment_failures = 2;
  cfg.max_sequence_failures = 2;
  cfg.bounded = true;
  cfg.swa_bound_percent = profile.peak_percent;
  cfg.pattern_store = &profile.patterns;
  FunctionalBistGenerator gen(target, cfg);
  const TransitionFaultList faults = TransitionFaultList::collapsed(target);
  std::vector<std::uint32_t> detect(faults.size(), 0);
  const FunctionalBistResult run = gen.run(faults, detect);

  // Replay the committed sequences: every applied cycle's PST (beyond the
  // first of each sequence) must be admitted by the functional store.
  Tpg tpg(target, cfg.tpg);
  for (const SequenceRecord& seq : run.sequences) {
    SeqSim sim(target);
    sim.load_reset_state();
    bool first_cycle = true;
    for (const SegmentRecord& seg : seq.segments) {
      tpg.reseed(seg.seed);
      for (std::size_t c = 0; c < seg.length; ++c) {
        const SeqStep step = sim.step(tpg.next_vector());
        if (!first_cycle && step.toggled_lines > 0) {
          EXPECT_TRUE(profile.patterns.admits(
              make_transition_pattern(sim.prev_values(), sim.values())));
        }
        first_cycle = false;
      }
    }
  }
}

}  // namespace
}  // namespace fbt
