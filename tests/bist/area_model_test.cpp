#include "bist/area_model.hpp"

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/s27.hpp"

namespace fbt {
namespace {

TEST(AreaModel, CircuitAreaGrowsWithSize) {
  const double small = circuit_area(make_s27());
  const double big = circuit_area(load_benchmark("s1238"));
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 10 * small);
}

TEST(AreaModel, BistAreaChargesTheInventory) {
  BistHardwarePlan base;
  base.lfsr_bits = 32;
  base.cycle_counter_bits = 12;
  base.shift_counter_bits = 8;
  base.segment_counter_bits = 4;
  base.sequence_counter_bits = 6;
  const double a = bist_area(base);
  EXPECT_GT(a, 0.0);

  BistHardwarePlan more = base;
  more.bias_gates = 10;
  EXPECT_GT(bist_area(more), a);

  BistHardwarePlan seeded = base;
  seeded.seed_rom_bits = 100 * 32;
  EXPECT_GT(bist_area(seeded), a);

  BistHardwarePlan held = base;
  held.with_hold = true;
  held.hold_sets = 4;
  held.set_counter_bits = 3;
  held.decoder_outputs = 4;
  EXPECT_GT(bist_area(held), a);
}

TEST(AreaModel, HoldCostIsSmallRelativeToBase) {
  // Table 4.4's observation: adding state holding barely moves the area
  // (shared clock-gating cells, a set counter, a small decoder).
  BistHardwarePlan base;
  base.lfsr_bits = 32;
  base.cycle_counter_bits = 13;
  base.shift_counter_bits = 8;
  base.segment_counter_bits = 3;
  base.sequence_counter_bits = 5;
  base.bias_gates = 2;
  base.seed_rom_bits = 50 * 32;
  BistHardwarePlan held = base;
  held.with_hold = true;
  held.hold_sets = 2;
  held.set_counter_bits = 2;
  held.decoder_outputs = 2;
  const double base_area = bist_area(base);
  const double held_area = bist_area(held);
  EXPECT_LT(held_area - base_area, 0.1 * base_area);
}

TEST(AreaModel, OverheadShrinksForLargerCircuits) {
  BistHardwarePlan plan;
  plan.lfsr_bits = 32;
  plan.cycle_counter_bits = 12;
  plan.shift_counter_bits = 8;
  plan.segment_counter_bits = 4;
  plan.sequence_counter_bits = 6;
  const double hw = bist_area(plan);
  const double small = hw / circuit_area(load_benchmark("s1238"));
  const double large = hw / circuit_area(load_benchmark("s13207"));
  EXPECT_GT(small, large);
}

}  // namespace
}  // namespace fbt
