#include "bist/lfsr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/require.hpp"

namespace fbt {
namespace {

// Property sweep (Fig. 4.3): with the primitive polynomial table, an n-stage
// LFSR cycles through all 2^n - 1 nonzero states.
class LfsrPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriod, IsMaximal) {
  const unsigned n = GetParam();
  Lfsr lfsr(n);
  lfsr.seed(1);
  const std::uint32_t start = lfsr.state();
  const std::uint64_t expected = (1ULL << n) - 1;
  std::uint64_t period = 0;
  do {
    lfsr.step();
    ++period;
    ASSERT_NE(lfsr.state(), 0u) << "LFSR locked up at period " << period;
    ASSERT_LE(period, expected);
  } while (lfsr.state() != start);
  EXPECT_EQ(period, expected) << "stages=" << n;
}

INSTANTIATE_TEST_SUITE_P(StagesTwoToEighteen, LfsrPeriod,
                         ::testing::Range(2u, 19u));

TEST(Lfsr, ZeroSeedIsRepaired) {
  Lfsr lfsr(8);
  lfsr.seed(0);
  EXPECT_NE(lfsr.state(), 0u);
  lfsr.seed(256);  // == 0 mod 2^8
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, DeterministicFromSeed) {
  Lfsr a(32);
  Lfsr b(32);
  a.seed(0xdeadbeef);
  b.seed(0xdeadbeef);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.step(), b.step());
  }
}

TEST(Lfsr, OutputIsLastStage) {
  Lfsr lfsr(4);
  lfsr.seed(0b1000);
  EXPECT_TRUE(lfsr.output());
  lfsr.seed(0b0111);
  EXPECT_FALSE(lfsr.output());
}

TEST(Lfsr, BitBalanceIsRoughlyFair) {
  Lfsr lfsr(32);
  lfsr.seed(12345);
  std::size_t ones = 0;
  const std::size_t trials = 40000;
  for (std::size_t i = 0; i < trials; ++i) {
    lfsr.step();
    if (lfsr.output()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Lfsr, RejectsUnsupportedSizes) {
  EXPECT_THROW(Lfsr(1), Error);
  EXPECT_THROW(Lfsr(33), Error);
}

}  // namespace
}  // namespace fbt
